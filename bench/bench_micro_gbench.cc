// Google-benchmark micro-benchmarks for the snapshotting primitives:
// per-operation costs underlying Figures 5a/5b and Table 1 measured with
// statistical repetition (complements the paper-table harnesses), plus the
// commit-path AddVersion benchmark with a binary-wide malloc counter that
// proves version nodes come from the segment arena, not the heap.
//
// (This binary emits JSON natively: --benchmark_format=json or
// --benchmark_out=BENCH_micro_gbench.json.)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/macros.h"
#include "mvcc/version_store.h"
#include "snapshot/physical_buffer.h"
#include "snapshot/rewired_buffer.h"
#include "snapshot/vm_snapshot_buffer.h"
#include "vm/page.h"

// ---- Binary-wide allocation counter ---------------------------------------
// Every operator new in this process bumps the counter; the AddVersion
// benchmark asserts (via the reported counter) that the commit path does
// zero per-op heap allocations once the arena is warm.
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace anker {
namespace {

using snapshot::SnapshotView;
using vm::kPageSize;

constexpr size_t kColumnBytes = 4 << 20;  // 4 MB = 1024 pages

void BM_PhysicalSnapshot(benchmark::State& state) {
  auto buffer = snapshot::PhysicalBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  for (auto _ : state) {
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kColumnBytes));
}
BENCHMARK(BM_PhysicalSnapshot);

void BM_VmSnapshotClean(benchmark::State& state) {
  auto buffer = snapshot::VmSnapshotBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  for (auto _ : state) {
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
}
BENCHMARK(BM_VmSnapshotClean);

void BM_VmSnapshotDirtyPages(benchmark::State& state) {
  // Snapshot cost as a function of pages dirtied since the last snapshot —
  // the quantity the emulated system call's cost is proportional to.
  const size_t dirty = static_cast<size_t>(state.range(0));
  auto buffer = snapshot::VmSnapshotBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t p = 0; p < dirty; ++p) {
      buffer.value()->StoreU64(p * kPageSize, p + 1);
    }
    state.ResumeTiming();
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
}
BENCHMARK(BM_VmSnapshotDirtyPages)->Arg(1)->Arg(16)->Arg(128)->Arg(1024);

void BM_RewiredSnapshotFragmented(benchmark::State& state) {
  // Snapshot cost as a function of mapping fragmentation (VMA count).
  const size_t fragments = static_cast<size_t>(state.range(0));
  auto buffer = snapshot::RewiredBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  {
    auto warmup = buffer.value()->TakeSnapshot();
    ANKER_CHECK(warmup.ok());
    const size_t pages = kColumnBytes / kPageSize;
    const size_t stride = pages / fragments;
    for (size_t f = 0; f < fragments; ++f) {
      buffer.value()->StoreU64(f * stride * kPageSize, f + 1);
    }
  }
  for (auto _ : state) {
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
}
BENCHMARK(BM_RewiredSnapshotFragmented)->Arg(1)->Arg(16)->Arg(128)->Arg(512);

void BM_WriteAfterSnapshotRewired(benchmark::State& state) {
  // First write to a protected page: SIGSEGV + manual page copy.
  auto buffer = snapshot::RewiredBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  size_t page = 0;
  const size_t pages = kColumnBytes / kPageSize;
  std::unique_ptr<SnapshotView> snap;
  for (auto _ : state) {
    if (page == 0) {
      state.PauseTiming();
      auto fresh = buffer.value()->TakeSnapshot();  // re-protects all pages
      ANKER_CHECK(fresh.ok());
      snap = fresh.TakeValue();
      state.ResumeTiming();
    }
    buffer.value()->StoreU64(page * kPageSize, page);
    page = (page + 1) % pages;
  }
}
BENCHMARK(BM_WriteAfterSnapshotRewired);

void BM_WriteAfterSnapshotVm(benchmark::State& state) {
  // First write to a snapshot-shared page: OS copy-on-write fault only.
  auto buffer = snapshot::VmSnapshotBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  size_t page = 0;
  const size_t pages = kColumnBytes / kPageSize;
  std::unique_ptr<SnapshotView> snap;
  for (auto _ : state) {
    if (page == 0) {
      state.PauseTiming();
      auto fresh = buffer.value()->TakeSnapshot();
      ANKER_CHECK(fresh.ok());
      snap = fresh.TakeValue();
      state.ResumeTiming();
    }
    buffer.value()->StoreU64(page * kPageSize, page);
    page = (page + 1) % pages;
  }
}
BENCHMARK(BM_WriteAfterSnapshotVm);

void BM_AddVersionArena(benchmark::State& state) {
  // Commit-path microbench: AddVersion must be an arena bump (or free-list
  // pop), never a heap allocation. The benchmark keeps the chain volume
  // bounded by periodically truncating everything and recycling the
  // retired chains into the arena's free list — exactly the homogeneous
  // GC's behavior — outside the timed region.
  constexpr size_t kRows = 1 << 16;
  constexpr uint64_t kTruncateEvery = 1 << 15;
  mvcc::VersionStore store(kRows);
  std::vector<mvcc::VersionNode*> heads;
  heads.reserve(kRows);

  // Warm up: allocate chunks, then stock the free list so the measured
  // region reuses nodes (steady state of a long-running engine).
  uint64_t ts = 1;
  size_t row = 0;
  for (uint64_t i = 0; i < kTruncateEvery; ++i) {
    store.AddVersion(row, row, ts++);
    row = (row + 1) & (kRows - 1);
  }
  store.current()->TruncateOlderThan(ts, &heads);
  for (mvcc::VersionNode* head : heads) store.current()->RecycleChain(head);
  heads.clear();

  const uint64_t allocs_before = g_heap_allocs.load();
  uint64_t sinceTruncate = 0;
  for (auto _ : state) {
    store.AddVersion(row, row, ts++);
    row = (row + 1) & (kRows - 1);
    if (++sinceTruncate == kTruncateEvery) {
      state.PauseTiming();
      store.current()->TruncateOlderThan(ts, &heads);
      for (mvcc::VersionNode* head : heads) {
        store.current()->RecycleChain(head);
      }
      heads.clear();
      sinceTruncate = 0;
      state.ResumeTiming();
    }
  }
  const uint64_t allocs = g_heap_allocs.load() - allocs_before;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["heap_allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs) /
          static_cast<double>(std::max<int64_t>(state.iterations(), 1)));
}
BENCHMARK(BM_AddVersionArena);

}  // namespace
}  // namespace anker

BENCHMARK_MAIN();
