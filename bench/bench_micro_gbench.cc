// Google-benchmark micro-benchmarks for the snapshotting primitives:
// per-operation costs underlying Figures 5a/5b and Table 1 measured with
// statistical repetition (complements the paper-table harnesses).
#include <benchmark/benchmark.h>

#include "common/macros.h"
#include "snapshot/physical_buffer.h"
#include "snapshot/rewired_buffer.h"
#include "snapshot/vm_snapshot_buffer.h"
#include "vm/page.h"

namespace anker {
namespace {

using snapshot::SnapshotView;
using vm::kPageSize;

constexpr size_t kColumnBytes = 4 << 20;  // 4 MB = 1024 pages

void BM_PhysicalSnapshot(benchmark::State& state) {
  auto buffer = snapshot::PhysicalBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  for (auto _ : state) {
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kColumnBytes));
}
BENCHMARK(BM_PhysicalSnapshot);

void BM_VmSnapshotClean(benchmark::State& state) {
  auto buffer = snapshot::VmSnapshotBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  for (auto _ : state) {
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
}
BENCHMARK(BM_VmSnapshotClean);

void BM_VmSnapshotDirtyPages(benchmark::State& state) {
  // Snapshot cost as a function of pages dirtied since the last snapshot —
  // the quantity the emulated system call's cost is proportional to.
  const size_t dirty = static_cast<size_t>(state.range(0));
  auto buffer = snapshot::VmSnapshotBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t p = 0; p < dirty; ++p) {
      buffer.value()->StoreU64(p * kPageSize, p + 1);
    }
    state.ResumeTiming();
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
}
BENCHMARK(BM_VmSnapshotDirtyPages)->Arg(1)->Arg(16)->Arg(128)->Arg(1024);

void BM_RewiredSnapshotFragmented(benchmark::State& state) {
  // Snapshot cost as a function of mapping fragmentation (VMA count).
  const size_t fragments = static_cast<size_t>(state.range(0));
  auto buffer = snapshot::RewiredBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  {
    auto warmup = buffer.value()->TakeSnapshot();
    ANKER_CHECK(warmup.ok());
    const size_t pages = kColumnBytes / kPageSize;
    const size_t stride = pages / fragments;
    for (size_t f = 0; f < fragments; ++f) {
      buffer.value()->StoreU64(f * stride * kPageSize, f + 1);
    }
  }
  for (auto _ : state) {
    auto snap = buffer.value()->TakeSnapshot();
    ANKER_CHECK(snap.ok());
    benchmark::DoNotOptimize(snap.value()->data());
  }
}
BENCHMARK(BM_RewiredSnapshotFragmented)->Arg(1)->Arg(16)->Arg(128)->Arg(512);

void BM_WriteAfterSnapshotRewired(benchmark::State& state) {
  // First write to a protected page: SIGSEGV + manual page copy.
  auto buffer = snapshot::RewiredBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  size_t page = 0;
  const size_t pages = kColumnBytes / kPageSize;
  std::unique_ptr<SnapshotView> snap;
  for (auto _ : state) {
    if (page == 0) {
      state.PauseTiming();
      auto fresh = buffer.value()->TakeSnapshot();  // re-protects all pages
      ANKER_CHECK(fresh.ok());
      snap = fresh.TakeValue();
      state.ResumeTiming();
    }
    buffer.value()->StoreU64(page * kPageSize, page);
    page = (page + 1) % pages;
  }
}
BENCHMARK(BM_WriteAfterSnapshotRewired);

void BM_WriteAfterSnapshotVm(benchmark::State& state) {
  // First write to a snapshot-shared page: OS copy-on-write fault only.
  auto buffer = snapshot::VmSnapshotBuffer::Create(kColumnBytes);
  ANKER_CHECK(buffer.ok());
  size_t page = 0;
  const size_t pages = kColumnBytes / kPageSize;
  std::unique_ptr<SnapshotView> snap;
  for (auto _ : state) {
    if (page == 0) {
      state.PauseTiming();
      auto fresh = buffer.value()->TakeSnapshot();
      ANKER_CHECK(fresh.ok());
      snap = fresh.TakeValue();
      state.ResumeTiming();
    }
    buffer.value()->StoreU64(page * kPageSize, page);
    page = (page + 1) % pages;
  }
}
BENCHMARK(BM_WriteAfterSnapshotVm);

}  // namespace
}  // namespace anker

BENCHMARK_MAIN();
