// Reproduces Figure 10: the cost of snapshotting the individual columns of
// LINEITEM, ORDERS and PART with vm_snapshot (stacked per-column costs) in
// comparison to forking the whole engine process. Paper shape: per-column
// snapshots are negligibly cheap, all three tables together are still well
// below fork, which must replicate the entire process image (tables,
// indexes, version chains, metadata).
//
// --cold_budget=<bytes> additionally sweeps the tiered cold store: a
// hot-vs-cold full-column scan ratio (every cold segment faults in from
// its extent) and incremental-vs-full checkpoint bytes after updating 10%
// of the rows. Both land in the JSON report under "cold" and are gated in
// scripts/bench_gates.json. --cold_only skips the fig10 portion (CI).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/database.h"
#include "snapshot/fork_snapshotter.h"
#include "tpch/datagen.h"
#include "tpch/oltp_transactions.h"
#include "tpch/schema.h"
#include "wal/io_util.h"

namespace anker {
namespace {

double SnapshotTableMs(engine::Database* db, storage::Table* table,
                       bool print_columns) {
  double total = 0;
  for (size_t i = 0; i < table->num_columns(); ++i) {
    storage::Column* column = table->GetColumnAt(i);
    const mvcc::Timestamp epoch = db->txn_manager().oracle().Next();
    const mvcc::Timestamp seal = db->txn_manager().oracle().Next();
    Timer timer;
    auto snap = column->MaterializeSnapshot(epoch, seal, seal);
    const double ms = timer.ElapsedMillis();
    ANKER_CHECK(snap.ok());
    total += ms;
    if (print_columns) {
      std::printf("    %-18s %8.3f ms\n", column->name().c_str(), ms);
    }
  }
  return total;
}

double ScanMs(storage::Column* column, size_t rows, uint64_t* sum) {
  Timer timer;
  uint64_t s = 0;
  for (size_t row = 0; row < rows; ++row) {
    s += column->ReadLatestRaw(row);
  }
  *sum = s;
  return timer.ElapsedMillis();
}

engine::DatabaseConfig ColdConfig(const std::string& dir, uint64_t budget,
                                  size_t segment_rows) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.durability = wal::DurabilityMode::kGroupCommit;
  config.data_dir = dir;
  config.cold_budget_bytes = budget;
  config.cold_segment_rows = segment_rows;
  return config;
}

storage::Column* LoadLedger(engine::Database* db, size_t rows) {
  auto created = db->CreateTable(
      "ledger", {{"value", storage::ValueType::kInt64}}, rows);
  ANKER_CHECK(created.ok());
  storage::Column* column = created.value()->GetColumn("value");
  Rng rng(11);
  for (size_t row = 0; row < rows; ++row) {
    column->LoadValue(
        row, storage::EncodeInt64(static_cast<int64_t>(rng.Next() >> 16)));
  }
  return column;
}

/// The cold-tier sweep: two fresh single-column databases (so the scan
/// phase measures a version-free spill and the checkpoint phase starts
/// with nothing published), torn down before fig10 proper runs.
void RunColdSweep(uint64_t budget, bench::JsonReport* report) {
  constexpr size_t kRows = 1u << 20;        // 8 MB column.
  constexpr size_t kSegmentRows = 4096;     // 256 spillable segments.
  char tmpl[] = "/tmp/anker_fig10_cold_XXXXXX";
  ANKER_CHECK(::mkdtemp(tmpl) != nullptr);
  const std::string root = tmpl;
  std::printf("\nCold tier sweep (budget=%llu bytes, %zu rows, %zu-row "
              "segments)\n",
              static_cast<unsigned long long>(budget), kRows, kSegmentRows);

  // Phase 1: hot-vs-cold scan. The cold scan pays one extent load +
  // decode per segment on top of the same per-row read path.
  {
    engine::Database db(
        ColdConfig(root + "/scan", budget, kSegmentRows));
    storage::Column* column = LoadLedger(&db, kRows);
    db.Start();
    uint64_t hot_sum = 0;
    double hot_ms = ScanMs(column, kRows, &hot_sum);
    for (int rep = 0; rep < 2; ++rep) {
      uint64_t again = 0;
      hot_ms = std::min(hot_ms, ScanMs(column, kRows, &again));
      ANKER_CHECK(again == hot_sum);
    }
    ANKER_CHECK(db.SpillColdData().ok());
    const engine::ColdTierStats spilled = db.cold_stats();
    ANKER_CHECK(spilled.cold_bytes > 0);
    uint64_t cold_sum = 0;
    const double cold_ms = ScanMs(column, kRows, &cold_sum);
    ANKER_CHECK(cold_sum == hot_sum);
    ANKER_CHECK(db.cold_stats().counters.segment_fault_ins > 0);
    const double ratio = cold_ms / hot_ms;
    std::printf("  hot scan  %8.3f ms\n  cold scan %8.3f ms   "
                "(%.1fx, %llu extents published)\n",
                hot_ms, cold_ms, ratio,
                static_cast<unsigned long long>(
                    spilled.counters.extents_published));
    (*report)["cold"]["hot_scan_ms"] = hot_ms;
    (*report)["cold"]["cold_scan_ms"] = cold_ms;
    (*report)["cold"]["cold_over_hot_scan"] = ratio;
    (*report)["cold"]["extents_published"] =
        spilled.counters.extents_published;
    db.Stop();
  }

  // Phase 2: incremental-vs-full checkpoint bytes. Checkpoint #1 is the
  // full baseline (nothing published yet). An OLTP workload then updates
  // the first 10% of the rows; checkpoint #2 seals the version chains
  // those commits created (versioned snapshots always resolve in full),
  // and checkpoint #3 — clean snapshot again — republishes only the
  // dirtied segments, referencing the rest by extent id.
  {
    engine::Database db(
        ColdConfig(root + "/ckpt", budget, kSegmentRows));
    storage::Column* column = LoadLedger(&db, kRows);
    db.Start();
    auto full = db.Checkpoint();
    ANKER_CHECK(full.ok());
    ANKER_CHECK(full.value().data_bytes_written > 0);

    const size_t updated = kRows / 10;
    Rng rng(13);
    for (size_t base = 0; base < updated; base += 256) {
      auto txn = db.BeginOltp();
      const size_t end = std::min(base + 256, updated);
      for (size_t row = base; row < end; ++row) {
        txn->Write(column, row,
                   storage::EncodeInt64(static_cast<int64_t>(rng.Next())));
      }
      ANKER_CHECK(db.Commit(txn.get()).ok());
    }
    ANKER_CHECK(db.Checkpoint().ok());  // Seals the update versions.
    auto incr = db.Checkpoint();
    ANKER_CHECK(incr.ok());
    const double ratio =
        static_cast<double>(incr.value().data_bytes_written) /
        static_cast<double>(full.value().data_bytes_written);
    std::printf("  full ckpt %8llu bytes\n  incr ckpt %8llu bytes   "
                "(%.3fx after updating 10%% of rows, %llu reused)\n",
                static_cast<unsigned long long>(
                    full.value().data_bytes_written),
                static_cast<unsigned long long>(
                    incr.value().data_bytes_written),
                ratio,
                static_cast<unsigned long long>(
                    incr.value().extent_bytes_reused));
    (*report)["cold"]["full_ckpt_bytes"] = full.value().data_bytes_written;
    (*report)["cold"]["incr_ckpt_bytes"] = incr.value().data_bytes_written;
    (*report)["cold"]["incr_over_full_ckpt_bytes"] = ratio;
    (*report)["cold"]["incr_ckpt_reused_bytes"] =
        incr.value().extent_bytes_reused;
    db.Stop();
  }
  wal::RemoveDirRecursive(root);
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 2400000));
  const std::string json_out = flags.Str("json_out", "");
  const uint64_t cold_budget =
      static_cast<uint64_t>(flags.Int("cold_budget", 0));
  const bool cold_only = flags.Has("cold_only");
  flags.RejectUnknown();

  bench::PrintHeader(
      "Figure 10: per-column snapshot cost (vm_snapshot) vs fork()",
      "individual columns negligible; all tables together still well "
      "below fork of the whole process");

  bench::JsonReport report("fig10_column_cost");
  report["flags"]["li_rows"] = rows;
  report["flags"]["cold_budget"] = cold_budget;
  if (cold_budget > 0) {
    RunColdSweep(cold_budget, &report);
  }
  if (cold_only) {
    report.Write(json_out);
    return 0;
  }

  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  const tpch::TpchInstance& inst = loaded.value();

  // Steady state: the engine has been running, so every column has been
  // snapshotted at least once (the first materialization flushes the whole
  // load image — a one-time cost). Then dirty a spread of rows so the
  // measured snapshots have the per-epoch work the paper's system faces.
  for (storage::Table* table : {inst.lineitem, inst.orders, inst.part}) {
    (void)SnapshotTableMs(&db, table, /*print_columns=*/false);
  }
  Rng rng(3);
  tpch::OltpTransactions oltp(&db, inst);
  for (int i = 0; i < 20000; ++i) (void)oltp.RunRandom(&rng);

  std::printf("lineitem rows: %zu (~%.0f MB per column)\n\n",
              inst.lineitem_rows,
              inst.lineitem_rows * 8.0 / (1 << 20));

  // Fork first: the process state (tables + indexes + chains) is resident.
  auto fork_nanos = snapshot::ForkSnapshotter::MeasureSnapshotNanos();
  ANKER_CHECK(fork_nanos.ok());
  std::printf("%-22s %10.3f ms   (replicates the whole process)\n",
              "fork()", fork_nanos.value() / 1e6);
  report["fork_ms"] = fork_nanos.value() / 1e6;

  struct Entry {
    const char* name;
    storage::Table* table;
  };
  const Entry entries[] = {
      {"LINEITEM", inst.lineitem},
      {"ORDERS", inst.orders},
      {"PART", inst.part},
  };
  double all = 0;
  for (const Entry& entry : entries) {
    std::printf("%-22s\n", entry.name);
    const double ms = SnapshotTableMs(&db, entry.table, true);
    std::printf("    %-18s %8.3f ms\n", "= table total", ms);
    report["table_snapshot_ms"][entry.name] = ms;
    all += ms;
  }
  std::printf("%-22s %10.3f ms   (sum over the three tables)\n", "All",
              all);
  std::printf("\nfork / All ratio: %.1fx (paper: fork clearly above All)\n",
              fork_nanos.value() / 1e6 / all);
  report["all_tables_ms"] = all;
  report["fork_over_all"] = fork_nanos.value() / 1e6 / all;
  report.Write(json_out);
  db.Stop();
  return 0;
}
