// Reproduces Figure 10: the cost of snapshotting the individual columns of
// LINEITEM, ORDERS and PART with vm_snapshot (stacked per-column costs) in
// comparison to forking the whole engine process. Paper shape: per-column
// snapshots are negligibly cheap, all three tables together are still well
// below fork, which must replicate the entire process image (tables,
// indexes, version chains, metadata).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "snapshot/fork_snapshotter.h"
#include "tpch/datagen.h"
#include "tpch/oltp_transactions.h"
#include "tpch/schema.h"

namespace anker {
namespace {

double SnapshotTableMs(engine::Database* db, storage::Table* table,
                       bool print_columns) {
  double total = 0;
  for (size_t i = 0; i < table->num_columns(); ++i) {
    storage::Column* column = table->GetColumnAt(i);
    const mvcc::Timestamp epoch = db->txn_manager().oracle().Next();
    const mvcc::Timestamp seal = db->txn_manager().oracle().Next();
    Timer timer;
    auto snap = column->MaterializeSnapshot(epoch, seal, seal);
    const double ms = timer.ElapsedMillis();
    ANKER_CHECK(snap.ok());
    total += ms;
    if (print_columns) {
      std::printf("    %-18s %8.3f ms\n", column->name().c_str(), ms);
    }
  }
  return total;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 2400000));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::PrintHeader(
      "Figure 10: per-column snapshot cost (vm_snapshot) vs fork()",
      "individual columns negligible; all tables together still well "
      "below fork of the whole process");

  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  const tpch::TpchInstance& inst = loaded.value();

  // Steady state: the engine has been running, so every column has been
  // snapshotted at least once (the first materialization flushes the whole
  // load image — a one-time cost). Then dirty a spread of rows so the
  // measured snapshots have the per-epoch work the paper's system faces.
  for (storage::Table* table : {inst.lineitem, inst.orders, inst.part}) {
    (void)SnapshotTableMs(&db, table, /*print_columns=*/false);
  }
  Rng rng(3);
  tpch::OltpTransactions oltp(&db, inst);
  for (int i = 0; i < 20000; ++i) (void)oltp.RunRandom(&rng);

  std::printf("lineitem rows: %zu (~%.0f MB per column)\n\n",
              inst.lineitem_rows,
              inst.lineitem_rows * 8.0 / (1 << 20));

  // Fork first: the process state (tables + indexes + chains) is resident.
  auto fork_nanos = snapshot::ForkSnapshotter::MeasureSnapshotNanos();
  ANKER_CHECK(fork_nanos.ok());
  std::printf("%-22s %10.3f ms   (replicates the whole process)\n",
              "fork()", fork_nanos.value() / 1e6);
  bench::JsonReport report("fig10_column_cost");
  report["flags"]["li_rows"] = rows;
  report["fork_ms"] = fork_nanos.value() / 1e6;

  struct Entry {
    const char* name;
    storage::Table* table;
  };
  const Entry entries[] = {
      {"LINEITEM", inst.lineitem},
      {"ORDERS", inst.orders},
      {"PART", inst.part},
  };
  double all = 0;
  for (const Entry& entry : entries) {
    std::printf("%-22s\n", entry.name);
    const double ms = SnapshotTableMs(&db, entry.table, true);
    std::printf("    %-18s %8.3f ms\n", "= table total", ms);
    report["table_snapshot_ms"][entry.name] = ms;
    all += ms;
  }
  std::printf("%-22s %10.3f ms   (sum over the three tables)\n", "All",
              all);
  std::printf("\nfork / All ratio: %.1fx (paper: fork clearly above All)\n",
              fork_nanos.value() / 1e6 / all);
  report["all_tables_ms"] = all;
  report["fork_over_all"] = fork_nanos.value() / 1e6 / all;
  report.Write(json_out);
  db.Stop();
  return 0;
}
