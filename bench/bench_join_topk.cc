// Latency of the DAG's join + sort/top-k operators on the declarative
// TPC-H suite: Q3 (two hash joins, grouped agg, top-10) and Q18 (join +
// having + top-100) against the single-table Q1 baseline on the same
// instance. The report carries the absolute per-rep latencies and the
// q3/q18-over-q1 ratios the perf gates consume — a ratio of joined
// pipeline to plain scan is stable across runner speeds where absolute
// milliseconds are not.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace anker {
namespace {

struct Timed {
  std::vector<double> ms;
  uint64_t digest = 0;

  double Min() const { return *std::min_element(ms.begin(), ms.end()); }
  double Median() const {
    std::vector<double> sorted = ms;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  }
};

Timed MeasureQuery(engine::Database* db, const tpch::Tpch22& queries,
                   int q, int reps) {
  Timed timed;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    auto result = db->Run(queries.Compiled(q), queries.ParamsFor(q));
    const double ms = timer.ElapsedMillis();
    ANKER_CHECK(result.ok());
    const uint64_t digest =
        tpch::Tpch22::RawDigest(result.value(), queries.Ordered(q));
    if (rep == 0) {
      timed.digest = digest;
    } else {
      ANKER_CHECK(digest == timed.digest);  // Reps must agree bit-for-bit.
    }
    timed.ms.push_back(ms);
  }
  return timed;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 600000));
  const int reps = static_cast<int>(flags.Int("reps", 7));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::JsonReport report("join_topk");
  report["flags"]["li_rows"] = rows;
  report["flags"]["reps"] = reps;

  bench::PrintHeader(
      "Operator DAG: hash join + sort/top-k latency (TPC-H Q3/Q18 vs Q1)",
      "joined top-k pipelines within a small factor of a plain "
      "single-table aggregation");

  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = 10000;
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch_config;
  tpch_config.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch_config);
  ANKER_CHECK(loaded.ok());
  tpch::TpchInstance instance = loaded.TakeValue();
  (void)instance;
  tpch::Tpch22 queries(&db);

  struct Case {
    const char* name;
    int q;  ///< Tpch22 query number (1-based).
  };
  // Q1: single-table grouped aggregation (the fused fast path) as the
  // baseline; Q3 and Q18 are the join + top-k pipelines under test.
  const Case cases[] = {{"q1", 1}, {"q3", 3}, {"q18", 18}};

  double q1_min = 0.0;
  std::printf("%-6s %10s %10s\n", "query", "min ms", "p50 ms");
  for (const Case& c : cases) {
    // One untimed warm-up rep per query.
    (void)MeasureQuery(&db, queries, c.q, 1);
    Timed timed = MeasureQuery(&db, queries, c.q, reps);
    std::printf("%-6s %10.2f %10.2f\n", c.name, timed.Min(),
                timed.Median());
    auto& entry = report["queries"].Append();
    entry["query"] = c.name;
    entry["min_ms"] = timed.Min();
    entry["p50_ms"] = timed.Median();
    for (double ms : timed.ms) entry["reps_ms"].Append() = ms;
    if (c.q == 1) q1_min = timed.Min();
    if (c.q != 1 && q1_min > 0.0) {
      report[std::string(c.name) + "_over_q1_min"] =
          timed.Min() / q1_min;
    }
  }

  report.Write(json_out);
  return 0;
}
