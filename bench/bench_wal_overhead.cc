// Durability price list: what the write-ahead log costs the OLTP side.
//
// Sweeps the three durability modes over the paper's OLTP workload
// (heterogeneous configuration) on the same data directory — put it on
// tmpfs (--data_dir=/dev/shm/...) to measure the protocol (serialization,
// group-commit batching, flusher handoff) rather than a disk. Reports:
//   - throughput per mode and the overhead ratio vs. durability=off,
//   - fsync batching (commits per sync) under group commit,
//   - checkpoint duration while OLTP keeps running (the non-stalling
//     claim, quantified),
//   - recovery time and digest equality after reopening the database.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "tpch/workload_driver.h"
#include "wal/io_util.h"

namespace anker {
namespace {

struct ModeResult {
  double ktps = 0;
  double wall_seconds = 0;
  uint64_t syncs = 0;
  uint64_t commits = 0;
  double checkpoint_seconds = 0;
  double recovery_seconds = 0;
  uint64_t digest = 0;
  uint64_t recovered_digest = 0;
};

ModeResult RunMode(wal::DurabilityMode mode, const std::string& data_dir,
                   size_t rows, uint64_t oltp, size_t threads) {
  ModeResult result;
  wal::RemoveDirRecursive(data_dir);

  engine::DatabaseConfig config;  // Heterogeneous serializable.
  config.snapshot_interval_commits = 10000;
  if (mode != wal::DurabilityMode::kOff) {
    config.durability = mode;
    config.data_dir = data_dir;
  }
  {
    engine::Database db(config);
    db.Start();
    tpch::TpchConfig tpch;
    tpch.lineitem_rows = rows;
    auto loaded = tpch::LoadTpch(&db, tpch);
    ANKER_CHECK(loaded.ok());
    tpch::WorkloadDriver driver(&db, loaded.value());
    ANKER_CHECK(driver.WarmupSnapshots().ok());
    if (mode != wal::DurabilityMode::kOff) {
      ANKER_CHECK(db.Checkpoint().ok());  // Bootstrap: load becomes durable.
    }

    const uint64_t syncs_before =
        db.log_writer() != nullptr ? db.log_writer()->sync_count() : 0;
    tpch::WorkloadConfig workload;
    workload.oltp_transactions = oltp;
    workload.threads = threads;
    const tpch::WorkloadResult run = driver.RunMixed(workload);
    result.ktps = run.throughput_tps / 1000.0;
    result.wall_seconds = run.wall_seconds;
    result.commits = run.oltp_committed;
    if (db.log_writer() != nullptr) {
      result.syncs = db.log_writer()->sync_count() - syncs_before;
    }

    if (mode != wal::DurabilityMode::kOff) {
      // Checkpoint under pressure: OLTP keeps running on 2 worker threads
      // while the checkpoint streams the snapshot image.
      std::atomic<bool> stop{false};
      std::thread pressure([&] {
        Rng rng(99);
        while (!stop.load(std::memory_order_relaxed)) {
          driver.oltp().RunRandom(&rng);
        }
      });
      Timer timer;
      ANKER_CHECK(db.Checkpoint().ok());
      result.checkpoint_seconds = timer.ElapsedSeconds();
      stop.store(true);
      pressure.join();
      result.digest = db.ContentDigest();
    }
    db.Stop();
  }

  if (mode != wal::DurabilityMode::kOff) {
    Timer timer;
    auto reopened = engine::Database::Open(config);
    ANKER_CHECK(reopened.ok());
    result.recovery_seconds = timer.ElapsedSeconds();
    result.recovered_digest = reopened.value()->ContentDigest();
  }
  wal::RemoveDirRecursive(data_dir);
  return result;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 1000000));
  const uint64_t oltp = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 100000));
  const size_t threads = static_cast<size_t>(flags.Int("threads", 8));
  const std::string data_dir =
      flags.Str("data_dir", "/tmp/anker_wal_overhead");
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::JsonReport report("wal_overhead");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = oltp;
  report["flags"]["threads"] = threads;
  report["flags"]["data_dir"] = data_dir;

  bench::PrintHeader(
      "WAL overhead: OLTP throughput under the three durability modes",
      "group commit batches concurrent commits into shared fsyncs; on "
      "tmpfs the whole protocol should cost < 10%");
  std::printf("lineitem rows: %zu, %zu OLTP txns, %zu threads, dir %s\n\n",
              rows, static_cast<size_t>(oltp), threads, data_dir.c_str());

  const struct {
    wal::DurabilityMode mode;
    const char* name;
  } kModes[] = {
      {wal::DurabilityMode::kOff, "off"},
      {wal::DurabilityMode::kLazy, "lazy"},
      {wal::DurabilityMode::kGroupCommit, "group_commit"},
  };

  double off_ktps = 0;
  std::printf("%-14s %12s %10s %16s %14s %12s\n", "durability",
              "OLTP [ktps]", "vs off", "commits/fsync", "ckpt [ms]",
              "recover [ms]");
  for (const auto& m : kModes) {
    const ModeResult r = RunMode(m.mode, data_dir, rows, oltp, threads);
    if (m.mode == wal::DurabilityMode::kOff) off_ktps = r.ktps;
    const double ratio = off_ktps > 0 ? off_ktps / r.ktps : 0.0;
    const double batching =
        r.syncs > 0 ? static_cast<double>(r.commits) / r.syncs : 0.0;
    std::printf("%-14s %12.1f %9.3fx %16.1f %14.2f %12.2f\n", m.name,
                r.ktps, ratio, batching, r.checkpoint_seconds * 1e3,
                r.recovery_seconds * 1e3);
    std::fflush(stdout);
    auto& row = report["modes"].Append();
    row["durability"] = m.name;
    row["oltp_ktps"] = r.ktps;
    row["overhead_vs_off"] = ratio;
    row["commits_per_fsync"] = batching;
    row["checkpoint_ms"] = r.checkpoint_seconds * 1e3;
    row["recovery_ms"] = r.recovery_seconds * 1e3;
    const bool digest_ok =
        m.mode == wal::DurabilityMode::kOff || r.digest == r.recovered_digest;
    row["recovered_digest_matches"] = digest_ok;
    ANKER_CHECK(digest_ok);
  }
  report.Write(json_out);
  return 0;
}
