// Reproduces Figure 7: latency of each of the 7 OLAP transactions while
// the system is pressurized by a stream of OLTP transactions on the other
// threads, for the three configurations. The paper reports homogeneous
// latencies normalized to heterogeneous processing: heterogeneous is
// roughly 2x-4x faster because snapshots scan in tight loops while the
// homogeneous configurations traverse version chains.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "tpch/workload_driver.h"

namespace anker {
namespace {

struct ModeRun {
  std::unique_ptr<engine::Database> db;
  tpch::TpchInstance instance;
  std::unique_ptr<tpch::WorkloadDriver> driver;
};

ModeRun MakeRun(txn::ProcessingMode mode, size_t lineitem_rows,
                uint64_t warmup_txns) {
  ModeRun run;
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
  config.snapshot_interval_commits = 10000;
  run.db = std::make_unique<engine::Database>(config);
  run.db->Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = lineitem_rows;
  auto loaded = tpch::LoadTpch(run.db.get(), tpch);
  ANKER_CHECK(loaded.ok());
  run.instance = loaded.TakeValue();
  run.driver =
      std::make_unique<tpch::WorkloadDriver>(run.db.get(), run.instance);
  ANKER_CHECK(run.driver->WarmupSnapshots().ok());
  // Warm-up: build up version chains so the homogeneous scans face the
  // versioned data the paper describes.
  Rng rng(1);
  for (uint64_t i = 0; i < warmup_txns; ++i) {
    (void)run.driver->oltp().RunRandom(&rng);
  }
  return run;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 6000000));
  const uint64_t pressure = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 200000));
  const uint64_t warmup = static_cast<uint64_t>(
      flags.Int("warmup", flags.Has("full") ? 100000 : 50000));
  const size_t threads =
      static_cast<size_t>(flags.Int("threads", 8));
  const int reps = static_cast<int>(flags.Int("reps", 5));
  // --query_api: additionally measure every OLAP transaction through the
  // retired hand-written kernels and report old-vs-new latency (the CI
  // smoke gates Q1/Q6 at query_api <= 1.1x handwritten).
  const bool query_api = flags.Has("query_api");
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::JsonReport report("fig7_olap_latency");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = pressure;
  report["flags"]["warmup"] = warmup;
  report["flags"]["threads"] = threads;
  report["flags"]["reps"] = reps;
  report["flags"]["query_api"] = query_api;

  bench::PrintHeader(
      "Figure 7: OLAP transaction latency under OLTP pressure "
      "(normalized to heterogeneous)",
      "heterogeneous 2x-4x faster for every OLAP transaction");
  std::printf("lineitem rows: %zu, OLTP pressure bound: %zu txns, "
              "%zu threads (1 measuring), %d reps\n\n",
              rows, static_cast<size_t>(pressure), threads, reps);

  const txn::ProcessingMode modes[] = {
      txn::ProcessingMode::kHomogeneousSerializable,
      txn::ProcessingMode::kHomogeneousSnapshotIsolation,
      txn::ProcessingMode::kHeterogeneousSerializable,
  };

  double latency_ms[3][7];
  double latency_min_ms[3][7];
  double reference_ms[3][7];
  double reference_min_ms[3][7];
  for (int m = 0; m < 3; ++m) {
    ModeRun run = MakeRun(modes[m], rows, warmup);
    tpch::WorkloadConfig config;
    config.oltp_transactions = pressure;
    config.threads = threads;
    int k = 0;
    for (tpch::OlapKind kind : tpch::kAllOlapKinds) {
      double min_nanos = 0;
      latency_ms[m][k] =
          run.driver->MeasureOlapLatency(
              kind, config, reps, tpch::WorkloadDriver::OlapPath::kQueryLayer,
              &min_nanos) /
          1e6;
      latency_min_ms[m][k] = min_nanos / 1e6;
      if (query_api) {
        reference_ms[m][k] =
            run.driver->MeasureOlapLatency(
                kind, config, reps,
                tpch::WorkloadDriver::OlapPath::kReference, &min_nanos) /
            1e6;
        reference_min_ms[m][k] = min_nanos / 1e6;
      }
      ++k;
    }
    run.db->Stop();
  }

  std::printf("%-16s %14s %14s %14s | %9s %9s\n", "OLAP txn",
              "homog-ser[ms]", "homog-si[ms]", "hetero[ms]", "ser/het",
              "si/het");
  int k = 0;
  for (tpch::OlapKind kind : tpch::kAllOlapKinds) {
    std::printf("%-16s %14.3f %14.3f %14.3f | %8.2fx %8.2fx\n",
                tpch::OlapKindName(kind), latency_ms[0][k], latency_ms[1][k],
                latency_ms[2][k], latency_ms[0][k] / latency_ms[2][k],
                latency_ms[1][k] / latency_ms[2][k]);
    auto& row = report["latencies"].Append();
    row["olap"] = tpch::OlapKindName(kind);
    row["homogeneous_serializable_ms"] = latency_ms[0][k];
    row["homogeneous_si_ms"] = latency_ms[1][k];
    row["heterogeneous_ms"] = latency_ms[2][k];
    row["ser_over_het"] = latency_ms[0][k] / latency_ms[2][k];
    row["si_over_het"] = latency_ms[1][k] / latency_ms[2][k];
    ++k;
  }

  if (query_api) {
    std::printf("\nquery layer vs retired hand-written kernels "
                "(heterogeneous, lower ratio = builder path faster)\n");
    std::printf("%-16s %14s %14s %9s\n", "OLAP txn", "query_api[ms]",
                "handwritten[ms]", "new/old");
    k = 0;
    for (tpch::OlapKind kind : tpch::kAllOlapKinds) {
      std::printf("%-16s %14.3f %14.3f %8.2fx\n", tpch::OlapKindName(kind),
                  latency_ms[2][k], reference_ms[2][k],
                  latency_ms[2][k] / reference_ms[2][k]);
      auto& row = report["query_api"].Append();
      row["olap"] = tpch::OlapKindName(kind);
      for (int m = 0; m < 3; ++m) {
        const char* mode_name = m == 0   ? "homogeneous_serializable"
                                : m == 1 ? "homogeneous_si"
                                         : "heterogeneous";
        row[std::string(mode_name) + "_query_api_ms"] = latency_ms[m][k];
        row[std::string(mode_name) + "_handwritten_ms"] =
            reference_ms[m][k];
      }
      row["heterogeneous_query_api_min_ms"] = latency_min_ms[2][k];
      row["heterogeneous_handwritten_min_ms"] = reference_min_ms[2][k];
      row["new_over_old_heterogeneous"] =
          latency_ms[2][k] / reference_ms[2][k];
      row["new_over_old_heterogeneous_min"] =
          latency_min_ms[2][k] / reference_min_ms[2][k];
      ++k;
    }
  }
  report.Write(json_out);
  return 0;
}
