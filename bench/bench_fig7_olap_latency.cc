// Reproduces Figure 7: latency of each of the 7 OLAP transactions while
// the system is pressurized by a stream of OLTP transactions on the other
// threads, for the three configurations. The paper reports homogeneous
// latencies normalized to heterogeneous processing: heterogeneous is
// roughly 2x-4x faster because snapshots scan in tight loops while the
// homogeneous configurations traverse version chains.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "tpch/workload_driver.h"

namespace anker {
namespace {

struct ModeRun {
  std::unique_ptr<engine::Database> db;
  tpch::TpchInstance instance;
  std::unique_ptr<tpch::WorkloadDriver> driver;
};

ModeRun MakeRun(txn::ProcessingMode mode, size_t lineitem_rows,
                uint64_t warmup_txns) {
  ModeRun run;
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
  config.snapshot_interval_commits = 10000;
  run.db = std::make_unique<engine::Database>(config);
  run.db->Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = lineitem_rows;
  auto loaded = tpch::LoadTpch(run.db.get(), tpch);
  ANKER_CHECK(loaded.ok());
  run.instance = loaded.TakeValue();
  run.driver =
      std::make_unique<tpch::WorkloadDriver>(run.db.get(), run.instance);
  ANKER_CHECK(run.driver->WarmupSnapshots().ok());
  // Warm-up: build up version chains so the homogeneous scans face the
  // versioned data the paper describes.
  Rng rng(1);
  for (uint64_t i = 0; i < warmup_txns; ++i) {
    (void)run.driver->oltp().RunRandom(&rng);
  }
  return run;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 6000000));
  const uint64_t pressure = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 200000));
  const uint64_t warmup = static_cast<uint64_t>(
      flags.Int("warmup", flags.Has("full") ? 100000 : 50000));
  const size_t threads =
      static_cast<size_t>(flags.Int("threads", 8));
  const int reps = static_cast<int>(flags.Int("reps", 5));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::JsonReport report("fig7_olap_latency");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = pressure;
  report["flags"]["warmup"] = warmup;
  report["flags"]["threads"] = threads;
  report["flags"]["reps"] = reps;

  bench::PrintHeader(
      "Figure 7: OLAP transaction latency under OLTP pressure "
      "(normalized to heterogeneous)",
      "heterogeneous 2x-4x faster for every OLAP transaction");
  std::printf("lineitem rows: %zu, OLTP pressure bound: %zu txns, "
              "%zu threads (1 measuring), %d reps\n\n",
              rows, static_cast<size_t>(pressure), threads, reps);

  const txn::ProcessingMode modes[] = {
      txn::ProcessingMode::kHomogeneousSerializable,
      txn::ProcessingMode::kHomogeneousSnapshotIsolation,
      txn::ProcessingMode::kHeterogeneousSerializable,
  };

  double latency_ms[3][7];
  for (int m = 0; m < 3; ++m) {
    ModeRun run = MakeRun(modes[m], rows, warmup);
    tpch::WorkloadConfig config;
    config.oltp_transactions = pressure;
    config.threads = threads;
    int k = 0;
    for (tpch::OlapKind kind : tpch::kAllOlapKinds) {
      latency_ms[m][k++] =
          run.driver->MeasureOlapLatency(kind, config, reps) / 1e6;
    }
    run.db->Stop();
  }

  std::printf("%-16s %14s %14s %14s | %9s %9s\n", "OLAP txn",
              "homog-ser[ms]", "homog-si[ms]", "hetero[ms]", "ser/het",
              "si/het");
  int k = 0;
  for (tpch::OlapKind kind : tpch::kAllOlapKinds) {
    std::printf("%-16s %14.3f %14.3f %14.3f | %8.2fx %8.2fx\n",
                tpch::OlapKindName(kind), latency_ms[0][k], latency_ms[1][k],
                latency_ms[2][k], latency_ms[0][k] / latency_ms[2][k],
                latency_ms[1][k] / latency_ms[2][k]);
    auto& row = report["latencies"].Append();
    row["olap"] = tpch::OlapKindName(kind);
    row["homogeneous_serializable_ms"] = latency_ms[0][k];
    row["homogeneous_si_ms"] = latency_ms[1][k];
    row["heterogeneous_ms"] = latency_ms[2][k];
    row["ser_over_het"] = latency_ms[0][k] / latency_ms[2][k];
    row["si_over_het"] = latency_ms[1][k] / latency_ms[2][k];
    ++k;
  }
  report.Write(json_out);
  return 0;
}
