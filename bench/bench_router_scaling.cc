// Shard-router scale-out: what a second shard buys acked EXEC_TXN
// throughput.
//
// Builds an in-process cluster per sweep point: N durable engine shards
// (src/server/ session servers over group-commit databases), a shard
// map hash-partitioning accounts(id, balance) across them, and an
// anker_router front-end (src/shard/) on a loopback ephemeral port.
// Client threads connect to the ROUTER and drive single-shard EXEC_TXN
// frames (all writes in a transaction target one key, so every frame is
// a 1-RTT pass-through). The same client fleet runs against 1 shard and
// against 2; the CI gate (scripts/bench_gates.json,
// `router_scaling_2x`) requires the 2-shard cluster to clear 1.5x the
// single-shard throughput — the router's pass-through path must not
// serialize what the shards can do in parallel.
//
// Pass --data_dirs a comma-separated list so every shard's WAL lands on
// its own device (e.g. --data_dirs=/tmp/a,/dev/shm/b): sharding is
// shared-nothing, and two group-commit WALs fsyncing through one
// filesystem journal serialize each other, capping the cluster at
// single-device throughput regardless of shard count.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/backend_pool.h"
#include "shard/router_core.h"
#include "shard/router_server.h"
#include "shard/shard_map.h"
#include "wal/io_util.h"

namespace anker {
namespace {

struct ConnResult {
  uint64_t commits = 0;
  uint64_t errors = 0;
  Histogram latency;  ///< Nanos per acked EXEC_TXN round trip.
};

/// One client connection against the router: `txns` pipelined EXEC_TXN
/// frames. By default each writes `writes_per_txn` slots of ONE key
/// (single-shard by construction — the 1-RTT pass-through path). With
/// `cross_shard_pct` > 0, that fraction of transactions instead spans
/// TWO keys on different shards, forcing the router onto the
/// intent-based 2PC path (prepare fan-out + commit fan-out).
ConnResult RunConnection(uint16_t router_port, size_t txns,
                         size_t writes_per_txn, size_t pipeline,
                         size_t rows, size_t num_shards,
                         size_t cross_shard_pct, uint64_t seed) {
  ConnResult result;
  auto connected = server::Client::Connect("127.0.0.1", router_port);
  ANKER_CHECK_MSG(connected.ok(), "bench client cannot reach the router");
  std::unique_ptr<server::Client> client = connected.TakeValue();

  Rng rng(seed);
  std::deque<Timer> outstanding;
  auto reap_one = [&]() {
    auto response = client->ReceiveOne();
    ANKER_CHECK_MSG(response.ok(), "bench client lost the router");
    result.latency.Record(outstanding.front().ElapsedNanos());
    outstanding.pop_front();
    const server::Op op = response.value().empty()
                              ? server::Op::kErr
                              : static_cast<server::Op>(response.value()[0]);
    if (op == server::Op::kOk || op == server::Op::kCommitOk) {
      ++result.commits;
    } else {
      ++result.errors;  // Aborts and BUSY both land here.
    }
  };

  for (size_t t = 0; t < txns; ++t) {
    const uint64_t key = rng.NextBounded(rows);
    uint64_t second_key = key;
    if (num_shards > 1 && rng.NextBounded(100) < cross_shard_pct) {
      // A partner on a DIFFERENT shard: this transaction takes the
      // prepare/commit fan-out instead of the pass-through.
      const size_t home = shard::ShardMap::Mix64(key) % num_shards;
      do {
        second_key = rng.NextBounded(rows);
      } while (shard::ShardMap::Mix64(second_key) % num_shards == home);
    }
    std::vector<server::PointWrite> writes;
    writes.reserve(writes_per_txn);
    for (size_t w = 0; w < writes_per_txn; ++w) {
      server::PointWrite write;
      write.table = "accounts";
      write.column = "balance";
      write.by_key = true;
      write.key = (w % 2 == 0) ? key : second_key;
      write.raw = storage::EncodeDouble(100.0 + static_cast<double>(t % 97));
      writes.push_back(std::move(write));
    }
    std::string payload;
    server::EncodeWriteBatch(server::Op::kExecTxn, writes, &payload);
    ANKER_CHECK(client->SendOnly(payload).ok());
    outstanding.emplace_back();
    if (outstanding.size() >= pipeline) reap_one();
  }
  while (!outstanding.empty()) reap_one();
  return result;
}

struct ClusterResult {
  uint64_t commits = 0;
  uint64_t errors = 0;
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t passthrough_txns = 0;
  uint64_t twopc_txns = 0;
};

/// Stands up shards + router, runs the client fleet, tears down.
ClusterResult RunCluster(size_t num_shards, size_t rows, size_t connections,
                         size_t txns_per_conn, size_t writes_per_txn,
                         size_t pipeline, size_t shard_workers,
                         size_t cross_shard_pct,
                         wal::DurabilityMode durability,
                         const std::vector<std::string>& data_dirs) {
  // ---- shards: hash-partitioned accounts(id, balance), indexed --------
  std::vector<std::unique_ptr<engine::Database>> dbs;
  std::vector<std::unique_ptr<server::Server>> servers;
  std::string map_text = "version 1\n";
  for (size_t s = 0; s < num_shards; ++s) {
    engine::DatabaseConfig config;  // Heterogeneous serializable.
    // A shard is a FIXED-size resource: its worker pool bounds how many
    // dispatched commits can sit inside the group-commit protocol at
    // once. Scaling out means more pools, not a bigger one — that is
    // the capacity a second shard adds.
    config.worker_threads = shard_workers;
    config.durability = durability;
    if (durability != wal::DurabilityMode::kOff) {
      // Round-robin over the data-dir list: scale-out is shared-nothing,
      // so a real deployment gives every shard its own device — two WALs
      // contending for one filesystem journal serialize their fsyncs and
      // cap the cluster at single-device throughput no matter how many
      // shards front it (docs/OPERATIONS.md, "Shard sizing").
      config.data_dir = data_dirs[s % data_dirs.size()] + "/shard" +
                        std::to_string(s);
      wal::RemoveDirRecursive(config.data_dir);
    }
    auto db = std::make_unique<engine::Database>(config);
    db->Start();
    // This shard's slice of the keyspace, placed by the SAME hash the
    // router routes with.
    std::vector<uint64_t> keys;
    for (uint64_t key = 0; key < rows; ++key) {
      if (shard::ShardMap::Mix64(key) % num_shards == s) keys.push_back(key);
    }
    auto table = db->CreateTable("accounts",
                                 {{"id", storage::ValueType::kInt64},
                                  {"balance", storage::ValueType::kDouble}},
                                 keys.size());
    ANKER_CHECK(table.ok());
    storage::Column* id = table.value()->GetColumn("id");
    storage::Column* balance = table.value()->GetColumn("balance");
    table.value()->CreatePrimaryIndex(keys.size());
    for (size_t row = 0; row < keys.size(); ++row) {
      id->LoadValue(row, storage::EncodeInt64(static_cast<int64_t>(keys[row])));
      balance->LoadValue(row, storage::EncodeDouble(100.0));
      ANKER_CHECK(table.value()->primary_index()->Insert(keys[row], row).ok());
    }
    if (!config.data_dir.empty()) ANKER_CHECK(db->Checkpoint().ok());

    server::ServerConfig server_config;
    server_config.port = 0;
    server_config.max_inflight = connections + 8;
    auto srv = std::make_unique<server::Server>(db.get(), server_config);
    ANKER_CHECK(srv->Start().ok());
    map_text += "shard 127.0.0.1:" + std::to_string(srv->port()) + "\n";
    dbs.push_back(std::move(db));
    servers.push_back(std::move(srv));
  }
  map_text += "table accounts partition id\n";

  // ---- router ---------------------------------------------------------
  auto parsed = shard::ShardMap::Parse(map_text);
  ANKER_CHECK(parsed.ok());
  const shard::ShardMap map = parsed.TakeValue();
  shard::BackendPool pool(map.shards(), {});
  shard::RouterCoreConfig core_config;
  shard::RouterCore core(&map, &pool, core_config);
  shard::RouterServerConfig router_config;
  router_config.max_inflight = connections + 8;
  shard::RouterServer router(&core, router_config);
  ANKER_CHECK(router.Start().ok());

  // ---- client fleet ---------------------------------------------------
  std::vector<ConnResult> results(connections);
  std::vector<std::thread> threads;
  Timer wall;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      results[c] = RunConnection(router.port(), txns_per_conn,
                                 writes_per_txn, pipeline, rows, num_shards,
                                 cross_shard_pct, /*seed=*/1000 + c);
    });
  }
  for (std::thread& thread : threads) thread.join();

  ClusterResult out;
  out.seconds = wall.ElapsedSeconds();
  Histogram latency;
  for (ConnResult& r : results) {
    out.commits += r.commits;
    out.errors += r.errors;
    latency.Merge(r.latency);
  }
  out.p50_us = latency.Percentile(50) / 1e3;
  out.p99_us = latency.Percentile(99) / 1e3;
  const server::RouterStatusOkMsg status = core.StatusSnapshot();
  out.passthrough_txns = status.passthrough_txns;
  out.twopc_txns = status.twopc_txns;

  router.Shutdown();
  servers.clear();
  for (auto& db : dbs) db->Stop();
  if (durability != wal::DurabilityMode::kOff) {
    for (const std::string& dir : data_dirs) wal::RemoveDirRecursive(dir);
  }
  return out;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.Int("rows", 100000));
  const size_t connections =
      static_cast<size_t>(flags.Int("connections", 64));
  const size_t txns_per_conn =
      static_cast<size_t>(flags.Int("txns_per_conn", 2000));
  const size_t writes_per_txn =
      static_cast<size_t>(flags.Int("writes_per_txn", 4));
  const size_t pipeline = static_cast<size_t>(flags.Int("pipeline", 8));
  const size_t max_shards = static_cast<size_t>(flags.Int("shards", 2));
  // Sweep points are interleaved across repeats (1,2,1,2,...) and the
  // best run per point is gated, so slow drift in shared-box fsync
  // latency hits numerator and denominator alike instead of whichever
  // cluster happened to run during the bad patch.
  const size_t repeats = static_cast<size_t>(flags.Int("repeats", 1));
  const size_t shard_workers =
      static_cast<size_t>(flags.Int("shard_workers", 2));
  // Percentage of transactions that span TWO shards (the 2PC path).
  // 0 keeps the classic pure pass-through sweep; >0 adds one extra
  // sweep point at max shards running the mixed workload, and reports
  // its throughput relative to the pure point (`router_2pc_overhead`
  // gate: a cross-shard mix must keep at least a quarter of the
  // pass-through rate — 2 prepares + 2 commits + an HLC stamp, not a
  // cluster-wide stall).
  const size_t cross_shard_pct =
      static_cast<size_t>(flags.Int("cross_shard_pct", 0));
  const std::string durability = flags.Str("durability", "group_commit");
  // Comma-separated list, one entry per shard (round-robin when shorter).
  // Shared-nothing scale-out puts every shard's WAL on its own device;
  // pointing all shards at one filesystem makes the shared journal the
  // bottleneck and hides the scaling this bench exists to measure.
  const std::string data_dir_list =
      flags.Str("data_dirs", "/tmp/anker_router_bench");
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  std::vector<std::string> data_dirs;
  {
    std::string current;
    for (char c : data_dir_list + ",") {
      if (c == ',') {
        if (!current.empty()) data_dirs.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
  }
  ANKER_CHECK_MSG(!data_dirs.empty(), "--data_dirs must name a directory");

  const wal::DurabilityMode mode =
      durability == "off" ? wal::DurabilityMode::kOff
      : durability == "lazy" ? wal::DurabilityMode::kLazy
                             : wal::DurabilityMode::kGroupCommit;

  bench::PrintHeader(
      "Router scale-out: single-shard EXEC_TXN throughput vs shard count",
      "pass-through routing is 1 RTT and must not serialize independent "
      "shards: 2 shards behind one router clear 1.5x one shard");

  bench::JsonReport report("router_scaling");
  report["flags"]["rows"] = rows;
  report["flags"]["connections"] = connections;
  report["flags"]["txns_per_conn"] = txns_per_conn;
  report["flags"]["writes_per_txn"] = writes_per_txn;
  report["flags"]["pipeline"] = pipeline;
  report["flags"]["repeats"] = repeats;
  report["flags"]["shard_workers"] = shard_workers;
  report["flags"]["cross_shard_pct"] = cross_shard_pct;
  report["flags"]["durability"] = durability;
  report["flags"]["data_dirs"] = data_dir_list;

  // Sweep points: the pure pass-through scaling ladder, plus (when
  // --cross_shard_pct > 0) one mixed point at max shards whose ratio
  // against the pure max-shard point is the 2PC overhead metric.
  struct Point {
    size_t shards;
    size_t pct;
  };
  std::vector<Point> points;
  for (size_t shards = 1; shards <= max_shards; ++shards) {
    points.push_back({shards, 0});
  }
  if (cross_shard_pct > 0 && max_shards > 1) {
    points.push_back({max_shards, cross_shard_pct});
  }

  std::printf("%8s %6s %6s %12s %12s %12s %8s %10s %10s %10s\n", "shards",
              "xs%", "rep", "commits", "ktps", "passthrough", "2pc",
              "p50 [us]", "p99 [us]", "errors");
  std::vector<ClusterResult> best(points.size());
  std::vector<double> best_ktps(points.size(), 0.0);
  for (size_t rep = 0; rep < repeats; ++rep) {
    for (size_t p = 0; p < points.size(); ++p) {
      const ClusterResult r =
          RunCluster(points[p].shards, rows, connections, txns_per_conn,
                     writes_per_txn, pipeline, shard_workers, points[p].pct,
                     mode, data_dirs);
      const double ktps = r.commits / r.seconds / 1000.0;
      if (points[p].pct == 0) {
        // Every acked commit went through the 1-RTT pass-through path;
        // a counter short-fall would mean the router silently
        // re-planned them.
        ANKER_CHECK_MSG(r.passthrough_txns >= r.commits,
                        "commits bypassed the pass-through path");
      } else {
        // Mixed mode: each commit was EITHER a pass-through or a 2PC,
        // and the cross-shard fraction must actually have exercised
        // the prepare/commit fan-out.
        ANKER_CHECK_MSG(r.passthrough_txns + r.twopc_txns >= r.commits,
                        "commits bypassed both router commit paths");
        ANKER_CHECK_MSG(r.twopc_txns > 0,
                        "cross_shard_pct > 0 but no 2PC ever ran");
      }
      std::printf(
          "%8zu %6zu %6zu %12llu %12.1f %12llu %8llu %10.1f %10.1f %10llu\n",
          points[p].shards, points[p].pct, rep + 1,
          static_cast<unsigned long long>(r.commits), ktps,
          static_cast<unsigned long long>(r.passthrough_txns),
          static_cast<unsigned long long>(r.twopc_txns), r.p50_us, r.p99_us,
          static_cast<unsigned long long>(r.errors));
      std::fflush(stdout);
      if (ktps > best_ktps[p]) {
        best_ktps[p] = ktps;
        best[p] = r;
      }
    }
  }

  double best_ratio = 0;
  double pure_max_ktps = 0;
  for (size_t p = 0; p < points.size(); ++p) {
    const ClusterResult& r = best[p];
    auto& row = report["runs"].Append();
    row["shards"] = points[p].shards;
    row["cross_shard_pct"] = points[p].pct;
    row["commits"] = r.commits;
    row["errors"] = r.errors;
    row["commit_ktps"] = best_ktps[p];
    row["p50_us"] = r.p50_us;
    row["p99_us"] = r.p99_us;
    row["passthrough_txns"] = r.passthrough_txns;
    row["twopc_txns"] = r.twopc_txns;
    if (points[p].pct == 0) {
      if (points[p].shards == 1) continue;
      if (points[p].shards == max_shards) pure_max_ktps = best_ktps[p];
      if (best_ktps[0] > 0) {
        best_ratio = std::max(best_ratio, best_ktps[p] / best_ktps[0]);
      }
    }
  }
  report["scaling_over_one_shard"] = best_ratio;
  std::printf("\nscaling over one shard: %.2fx (best of %zu per point)\n",
              best_ratio, repeats);
  if (cross_shard_pct > 0 && max_shards > 1 && pure_max_ktps > 0) {
    const double overhead = best_ktps.back() / pure_max_ktps;
    auto& mixed = report["cross_shard"];
    mixed["pct"] = cross_shard_pct;
    mixed["commit_ktps"] = best_ktps.back();
    mixed["twopc_txns"] = best.back().twopc_txns;
    mixed["throughput_vs_passthrough"] = overhead;
    std::printf("mixed workload (%zu%% cross-shard): %.1f ktps, %.2fx the "
                "pure pass-through rate\n",
                cross_shard_pct, best_ktps.back(), overhead);
  }

  report.Write(json_out);
  return 0;
}
