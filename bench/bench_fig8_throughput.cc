// Reproduces Figure 8: end-to-end transaction throughput for the three
// configurations, once with a pure OLTP workload (500k transactions) and
// once with a mixed workload (500k OLTP + 10 OLAP transactions).
// Paper shape: OLTP-only throughput of heterogeneous equals homogeneous
// (snapshotting does not hurt the OLTP side), snapshot isolation is the
// fastest (no validation), and on the mixed workload heterogeneous is
// ~2x above both homogeneous configurations.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "tpch/workload_driver.h"

namespace anker {
namespace {

double RunThroughput(txn::ProcessingMode mode, size_t rows, uint64_t oltp,
                     uint64_t olap, size_t threads) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
  config.snapshot_interval_commits = 10000;
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  tpch::WorkloadDriver driver(&db, loaded.value());
  ANKER_CHECK(driver.WarmupSnapshots().ok());

  tpch::WorkloadConfig workload;
  workload.oltp_transactions = oltp;
  workload.olap_transactions = olap;
  workload.threads = threads;
  const tpch::WorkloadResult result = driver.RunMixed(workload);
  db.Stop();
  return result.throughput_tps;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  // The mixed-workload contrast requires the 10 OLAP transactions to be a
  // substantial share of the total work, as in the paper (seconds-long
  // scans over 200MB columns next to 500k point updates). Keep the table
  // large relative to the transaction count when scaling down.
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 6000000));
  const uint64_t oltp = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 150000));
  const size_t threads = static_cast<size_t>(flags.Int("threads", 8));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::JsonReport report("fig8_throughput");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = oltp;
  report["flags"]["threads"] = threads;

  bench::PrintHeader(
      "Figure 8: transaction throughput (x1000 txns/sec)",
      "OLTP-only: hetero == homog (SI slightly ahead); mixed: hetero ~2x "
      "over both homogeneous configurations");
  std::printf("lineitem rows: %zu, %zu OLTP txns, %zu threads\n\n", rows,
              static_cast<size_t>(oltp), threads);

  const txn::ProcessingMode modes[] = {
      txn::ProcessingMode::kHomogeneousSerializable,
      txn::ProcessingMode::kHomogeneousSnapshotIsolation,
      txn::ProcessingMode::kHeterogeneousSerializable,
  };

  std::printf("%-34s %18s %24s\n", "Configuration", "OLTP only [ktps]",
              "OLTP + 10 OLAP [ktps]");
  for (txn::ProcessingMode mode : modes) {
    const double oltp_only =
        RunThroughput(mode, rows, oltp, 0, threads) / 1000.0;
    const double mixed =
        RunThroughput(mode, rows, oltp, 10, threads) / 1000.0;
    std::printf("%-34s %18.1f %24.1f\n", txn::ProcessingModeName(mode),
                oltp_only, mixed);
    std::fflush(stdout);
    auto& row = report["throughput"].Append();
    row["mode"] = txn::ProcessingModeName(mode);
    row["oltp_only_ktps"] = oltp_only;
    row["mixed_ktps"] = mixed;
  }
  report.Write(json_out);
  return 0;
}
