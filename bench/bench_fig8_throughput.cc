// Reproduces Figure 8: end-to-end transaction throughput for the three
// configurations, once with a pure OLTP workload (500k transactions) and
// once with a mixed workload (500k OLTP + 10 OLAP transactions).
// Paper shape: OLTP-only throughput of heterogeneous equals homogeneous
// (snapshotting does not hurt the OLTP side), snapshot isolation is the
// fastest (no validation), and on the mixed workload heterogeneous is
// ~2x above both homogeneous configurations.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "tpch/workload_driver.h"
#include "wal/io_util.h"

namespace anker {
namespace {

/// Durability setup for the WAL-overhead comparison (--durability): the
/// CI gate runs the benchmark twice (off vs group_commit on tmpfs) and
/// asserts the logged configuration stays within 1.10x.
struct DurabilitySetup {
  wal::DurabilityMode mode = wal::DurabilityMode::kOff;
  std::string data_dir;
};

double RunThroughput(txn::ProcessingMode mode, size_t rows, uint64_t oltp,
                     uint64_t olap, size_t threads,
                     const DurabilitySetup& durability) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
  config.snapshot_interval_commits = 10000;
  if (durability.mode != wal::DurabilityMode::kOff) {
    config.durability = durability.mode;
    config.data_dir = durability.data_dir;
    wal::RemoveDirRecursive(config.data_dir);  // Fresh database per run.
  }
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  tpch::WorkloadDriver driver(&db, loaded.value());
  ANKER_CHECK(driver.WarmupSnapshots().ok());

  tpch::WorkloadConfig workload;
  workload.oltp_transactions = oltp;
  workload.olap_transactions = olap;
  workload.threads = threads;
  const tpch::WorkloadResult result = driver.RunMixed(workload);
  db.Stop();
  if (durability.mode != wal::DurabilityMode::kOff) {
    wal::RemoveDirRecursive(durability.data_dir);
  }
  return result.throughput_tps;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  // The mixed-workload contrast requires the 10 OLAP transactions to be a
  // substantial share of the total work, as in the paper (seconds-long
  // scans over 200MB columns next to 500k point updates). Keep the table
  // large relative to the transaction count when scaling down.
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 6000000));
  const uint64_t oltp = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 150000));
  const size_t threads = static_cast<size_t>(flags.Int("threads", 8));
  const std::string json_out = flags.Str("json_out", "");
  // WAL overhead comparison: --durability={off,lazy,group_commit} with
  // --data_dir (use tmpfs, e.g. /dev/shm, to measure the protocol rather
  // than the disk). --hetero_only / --oltp_only shrink the matrix for CI.
  const std::string durability_name = flags.Str("durability", "off");
  DurabilitySetup durability;
  durability.data_dir = flags.Str("data_dir", "/tmp/anker_fig8_wal");
  const bool hetero_only = flags.Has("hetero_only");
  const bool oltp_only = flags.Has("oltp_only");
  flags.RejectUnknown();
  if (durability_name == "lazy") {
    durability.mode = wal::DurabilityMode::kLazy;
  } else if (durability_name == "group_commit") {
    durability.mode = wal::DurabilityMode::kGroupCommit;
  } else if (durability_name != "off") {
    std::fprintf(stderr, "unknown --durability=%s\n",
                 durability_name.c_str());
    return 64;
  }

  bench::JsonReport report("fig8_throughput");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = oltp;
  report["flags"]["threads"] = threads;
  report["flags"]["durability"] = durability_name;

  bench::PrintHeader(
      "Figure 8: transaction throughput (x1000 txns/sec)",
      "OLTP-only: hetero == homog (SI slightly ahead); mixed: hetero ~2x "
      "over both homogeneous configurations");
  std::printf("lineitem rows: %zu, %zu OLTP txns, %zu threads\n\n", rows,
              static_cast<size_t>(oltp), threads);

  std::vector<txn::ProcessingMode> modes;
  if (!hetero_only) {
    modes.push_back(txn::ProcessingMode::kHomogeneousSerializable);
    modes.push_back(txn::ProcessingMode::kHomogeneousSnapshotIsolation);
  }
  modes.push_back(txn::ProcessingMode::kHeterogeneousSerializable);

  std::printf("%-34s %18s %24s\n", "Configuration", "OLTP only [ktps]",
              "OLTP + 10 OLAP [ktps]");
  for (txn::ProcessingMode mode : modes) {
    const double oltp_ktps =
        RunThroughput(mode, rows, oltp, 0, threads, durability) / 1000.0;
    const double mixed =
        oltp_only
            ? 0.0
            : RunThroughput(mode, rows, oltp, 10, threads, durability) /
                  1000.0;
    std::printf("%-34s %18.1f %24.1f\n", txn::ProcessingModeName(mode),
                oltp_ktps, mixed);
    std::fflush(stdout);
    auto& row = report["throughput"].Append();
    row["mode"] = txn::ProcessingModeName(mode);
    row["oltp_only_ktps"] = oltp_ktps;
    row["mixed_ktps"] = mixed;
  }
  report.Write(json_out);
  return 0;
}
