// Ablation A (design-choice study, beyond the paper's figures): how the
// snapshot interval (a snapshot epoch every n commits; the paper fixes
// n = 10,000) affects mixed-workload throughput, OLAP latency and the
// number of snapshot materializations. Smaller intervals give OLAP fresher
// data and shorter chains but pay more materializations.
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/workload_driver.h"

namespace anker {
namespace {

struct IntervalResult {
  double throughput_ktps;
  double olap_p50_ms;
  double olap_p95_ms;
  double olap_p99_ms;
  size_t materializations;
};

IntervalResult RunWithInterval(size_t rows, uint64_t oltp,
                               uint64_t interval, size_t threads) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = interval;
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  tpch::WorkloadDriver driver(&db, loaded.value());
  ANKER_CHECK(driver.WarmupSnapshots().ok());

  tpch::WorkloadConfig workload;
  workload.oltp_transactions = oltp;
  workload.olap_transactions = 20;
  workload.threads = threads;
  const tpch::WorkloadResult result = driver.RunMixed(workload);

  IntervalResult out;
  out.throughput_ktps = result.throughput_tps / 1000.0;
  out.olap_p50_ms = result.olap_latency.Percentile(50) / 1e6;
  out.olap_p95_ms = result.olap_latency.Percentile(95) / 1e6;
  out.olap_p99_ms = result.olap_latency.Percentile(99) / 1e6;
  out.materializations = db.snapshot_manager()->total_materializations();
  db.Stop();
  return out;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 2400000));
  const uint64_t oltp = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 120000));
  const size_t threads = static_cast<size_t>(flags.Int("threads", 8));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::JsonReport report("ablation_interval");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = oltp;
  report["flags"]["threads"] = threads;

  bench::PrintHeader(
      "Ablation A: snapshot interval sweep (paper fixes n = 10,000)",
      "smaller n: more materializations, fresher snapshots; throughput "
      "largely flat until n becomes very small");
  std::printf("lineitem rows: %zu, %zu OLTP + 20 OLAP txns, %zu threads\n\n",
              rows, static_cast<size_t>(oltp), threads);

  std::printf("%-16s %18s %16s %18s\n", "interval n", "throughput[ktps]",
              "OLAP p50 [ms]", "materializations");
  for (uint64_t interval : {1000, 5000, 10000, 50000, 100000}) {
    const IntervalResult r = RunWithInterval(rows, oltp, interval, threads);
    std::printf("%-16zu %18.1f %16.3f %18zu\n",
                static_cast<size_t>(interval), r.throughput_ktps,
                r.olap_p50_ms, r.materializations);
    std::fflush(stdout);
    auto& row = report["intervals"].Append();
    row["interval"] = interval;
    row["throughput_ktps"] = r.throughput_ktps;
    row["olap_p50_ms"] = r.olap_p50_ms;
    row["olap_p95_ms"] = r.olap_p95_ms;
    row["olap_p99_ms"] = r.olap_p99_ms;
    row["materializations"] = r.materializations;
  }
  report.Write(json_out);
  return 0;
}
