// Reproduces Figure 11: throughput scaling of heterogeneous processing
// (full serializability) with 1, 2, 4 and 8 threads, for the pure OLTP
// workload and the mixed workload. Paper shape: sub-linear scaling (~2.1x
// for OLTP-only, ~2.6x mixed at 8 threads) because the commit/validation
// phase is partially sequential behind the commit mutex.
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/workload_driver.h"

namespace anker {
namespace {

double RunThroughput(size_t rows, uint64_t oltp, uint64_t olap,
                     size_t threads) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = 10000;
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  tpch::WorkloadDriver driver(&db, loaded.value());
  ANKER_CHECK(driver.WarmupSnapshots().ok());

  tpch::WorkloadConfig workload;
  workload.oltp_transactions = oltp;
  workload.olap_transactions = olap;
  workload.threads = threads;
  const tpch::WorkloadResult result = driver.RunMixed(workload);
  db.Stop();
  return result.throughput_tps;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 2400000));
  const uint64_t oltp = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 120000));
  flags.RejectUnknown();

  bench::PrintHeader(
      "Figure 11: heterogeneous throughput scaling with threads",
      "sub-linear scaling (paper: ~2.1x OLTP-only / ~2.6x mixed at 8 "
      "threads) — commit validation is partially sequential");
  std::printf("lineitem rows: %zu, %zu OLTP txns per run\n\n", rows,
              static_cast<size_t>(oltp));

  std::printf("%-8s %20s %26s\n", "threads", "OLTP only [ktps]",
              "OLTP + 10 OLAP [ktps]");
  double base_oltp = 0;
  double base_mixed = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    const double t_oltp = RunThroughput(rows, oltp, 0, threads) / 1000.0;
    const double t_mixed = RunThroughput(rows, oltp, 10, threads) / 1000.0;
    if (threads == 1) {
      base_oltp = t_oltp;
      base_mixed = t_mixed;
    }
    std::printf("%-8zu %14.1f (%.2fx) %20.1f (%.2fx)\n", threads, t_oltp,
                t_oltp / base_oltp, t_mixed, t_mixed / base_mixed);
    std::fflush(stdout);
  }
  return 0;
}
