// Reproduces Figure 11: throughput scaling of heterogeneous processing
// (full serializability) with 1, 2, 4 and 8 threads, for the pure OLTP
// workload and the mixed workload. Paper shape: sub-linear scaling (~2.1x
// for OLTP-only, ~2.6x mixed at 8 threads) because the commit/validation
// phase is partially sequential behind the commit mutex.
//
// On top of the paper's inter-stream scaling, this bench measures
// *intra-query* scaling: one full-column scan over a clean snapshot fanned
// out as morsels over --scan_threads workers (the tight-loop kernel the
// paper's Fig. 1 step 5 promises, parallelized morsel-driven). Near-linear
// scaling is expected here — clean-snapshot scans share no state but the
// final accumulator merge.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "tpch/workload_driver.h"

namespace anker {
namespace {

double RunThroughput(size_t rows, uint64_t oltp, uint64_t olap,
                     size_t threads) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = 10000;
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  tpch::WorkloadDriver driver(&db, loaded.value());
  ANKER_CHECK(driver.WarmupSnapshots().ok());

  tpch::WorkloadConfig workload;
  workload.oltp_transactions = oltp;
  workload.olap_transactions = olap;
  workload.threads = threads;
  const tpch::WorkloadResult result = driver.RunMixed(workload);
  db.Stop();
  return result.throughput_tps;
}

struct ScanPoint {
  size_t threads;
  double seconds;
  double rows_per_sec;
};

/// Best-of-`reps` wall time of one clean-snapshot full-column scan fanned
/// out over `threads` morsel workers.
ScanPoint MeasureScan(engine::Database* db, storage::Column* column,
                      size_t threads, int reps) {
  ScanPoint point{threads, 1e30, 0};
  for (int rep = 0; rep < reps; ++rep) {
    auto ctx = db->BeginOlap({column});
    ANKER_CHECK(ctx.ok());
    engine::ColumnReader reader = ctx.value()->Reader(column);
    engine::ScanOptions options;
    options.pool = &db->worker_pool();
    options.max_threads = threads;
    Timer timer;
    const double sum =
        engine::ScanColumnSum(reader, /*as_double=*/true, nullptr, options);
    point.seconds = std::min(point.seconds, timer.ElapsedSeconds());
    ANKER_CHECK(sum > 0);
    ANKER_CHECK(db->FinishOlap(ctx.TakeValue()).ok());
  }
  point.rows_per_sec = static_cast<double>(column->num_rows()) /
                       point.seconds;
  return point;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const bool full = flags.Has("full");
  const bool scan_only = flags.Has("scan_only");
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", full ? 6000000 : 2400000));
  const uint64_t oltp = static_cast<uint64_t>(
      flags.Int("oltp", full ? 500000 : 120000));
  // 0 = sweep 1,2,4,8; a concrete value measures exactly that count (the
  // CI smoke job runs --scan_threads=1 vs --scan_threads=4).
  const size_t scan_threads =
      static_cast<size_t>(flags.Int("scan_threads", 0));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::PrintHeader(
      "Figure 11: heterogeneous throughput scaling with threads",
      "sub-linear stream scaling (paper: ~2.1x OLTP-only / ~2.6x mixed at 8 "
      "threads); near-linear intra-query scan scaling");
  std::printf("lineitem rows: %zu, %zu OLTP txns per run\n\n", rows,
              static_cast<size_t>(oltp));

  bench::JsonReport report("fig11_scaling");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = oltp;
  report["flags"]["scan_threads"] = scan_threads;
  report["flags"]["scan_only"] = scan_only;
  report["flags"]["full"] = full;

  // ---- Intra-query scan scaling (morsel-driven parallelism) -------------
  {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
        txn::ProcessingMode::kHeterogeneousSerializable);
    config.scan_threads = scan_threads > 0 ? scan_threads : 8;
    engine::Database db(config);
    db.Start();
    tpch::TpchConfig tpch;
    tpch.lineitem_rows = rows;
    auto loaded = tpch::LoadTpch(&db, tpch);
    ANKER_CHECK(loaded.ok());
    tpch::WorkloadDriver driver(&db, loaded.value());
    ANKER_CHECK(driver.WarmupSnapshots().ok());
    storage::Column* column =
        loaded.value().lineitem->GetColumn("l_extendedprice");

    std::printf("Clean-snapshot full-column scan (intra-query morsels):\n");
    std::printf("%-13s %14s %16s %9s\n", "scan_threads", "seconds",
                "rows/s [M]", "speedup");
    const int reps = full ? 7 : 5;
    double base_seconds = 0;
    std::vector<size_t> counts;
    if (scan_threads > 0) {
      counts = {scan_threads};
    } else {
      counts = {1, 2, 4, 8};
    }
    for (size_t threads : counts) {
      const ScanPoint point = MeasureScan(&db, column, threads, reps);
      if (base_seconds == 0) base_seconds = point.seconds;
      std::printf("%-13zu %14.6f %16.1f %8.2fx\n", threads, point.seconds,
                  point.rows_per_sec / 1e6, base_seconds / point.seconds);
      std::fflush(stdout);
      auto& row = report["scan_scaling"].Append();
      row["threads"] = point.threads;
      row["seconds"] = point.seconds;
      row["rows_per_sec"] = point.rows_per_sec;
      row["speedup"] = base_seconds / point.seconds;
    }
    db.Stop();
    std::printf("\n");
  }

  // ---- Inter-stream scaling (the paper's Figure 11) ---------------------
  if (!scan_only) {
    std::printf("%-8s %20s %26s\n", "threads", "OLTP only [ktps]",
                "OLTP + 10 OLAP [ktps]");
    double base_oltp = 0;
    double base_mixed = 0;
    for (size_t threads : {1, 2, 4, 8}) {
      const double t_oltp = RunThroughput(rows, oltp, 0, threads) / 1000.0;
      const double t_mixed = RunThroughput(rows, oltp, 10, threads) / 1000.0;
      if (threads == 1) {
        base_oltp = t_oltp;
        base_mixed = t_mixed;
      }
      std::printf("%-8zu %14.1f (%.2fx) %20.1f (%.2fx)\n", threads, t_oltp,
                  t_oltp / base_oltp, t_mixed, t_mixed / base_mixed);
      std::fflush(stdout);
      auto& row = report["stream_scaling"].Append();
      row["threads"] = threads;
      row["oltp_ktps"] = t_oltp;
      row["oltp_speedup"] = t_oltp / base_oltp;
      row["mixed_ktps"] = t_mixed;
      row["mixed_speedup"] = t_mixed / base_mixed;
    }
  }

  report.Write(json_out);
  return 0;
}
