// Loopback server throughput: what the network front-end costs an acked
// commit.
//
// Starts anker's session server (src/server/) in-process on a loopback
// ephemeral port over a durable database (group commit by default — the
// production ack discipline), then sweeps client connection counts, each
// connection a thread pipelining EXEC_TXN frames (BEGIN + keyed writes +
// COMMIT in one round trip). Reports acked-commit throughput and p50/p99
// commit latency per sweep point, and the best throughput for the CI
// gate: loopback acked commits must stay within 0.9x of the in-process
// bench_wal_overhead group_commit baseline (scripts/bench_gates.json,
// `server_loopback_throughput`) — the protocol may cost round trips, but
// group-commit batching across sessions has to keep aggregate throughput
// at parity. Put --data_dir on tmpfs to measure the protocol, not a disk.
#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "wal/io_util.h"

namespace anker {
namespace {

struct ConnResult {
  uint64_t commits = 0;
  uint64_t errors = 0;
  Histogram latency;  ///< Nanos per acked EXEC_TXN round trip.
};

/// One connection's workload: `txns` pipelined EXEC_TXN frames with
/// `writes_per_txn` keyed balance updates each, window-limited so at most
/// `pipeline` responses are outstanding.
ConnResult RunConnection(uint16_t port, size_t txns, size_t writes_per_txn,
                         size_t pipeline, size_t rows, uint64_t seed) {
  ConnResult result;
  auto connected = server::Client::Connect("127.0.0.1", port);
  ANKER_CHECK_MSG(connected.ok(), "bench client cannot connect");
  std::unique_ptr<server::Client> client = connected.TakeValue();

  Rng rng(seed);
  std::deque<Timer> outstanding;

  auto reap_one = [&]() {
    auto response = client->ReceiveOne();
    ANKER_CHECK_MSG(response.ok(), "bench client lost the connection");
    result.latency.Record(outstanding.front().ElapsedNanos());
    outstanding.pop_front();
    const server::Op op = response.value().empty()
                              ? server::Op::kErr
                              : static_cast<server::Op>(response.value()[0]);
    // kCommitOk carries the commit's WAL LSN; kOk is the pre-durability
    // ack shape. Either way the transaction was applied and acked.
    if (op == server::Op::kOk || op == server::Op::kCommitOk) {
      ++result.commits;
    } else {
      ++result.errors;  // Aborts (ww-conflict) and BUSY both land here.
    }
  };

  for (size_t t = 0; t < txns; ++t) {
    std::vector<server::PointWrite> writes;
    writes.reserve(writes_per_txn);
    for (size_t w = 0; w < writes_per_txn; ++w) {
      server::PointWrite write;
      write.table = "accounts";
      write.column = "balance";
      write.by_key = true;
      write.key = rng.NextBounded(rows);
      write.raw = storage::EncodeDouble(100.0 + static_cast<double>(t % 97));
      writes.push_back(std::move(write));
    }
    std::string payload;
    server::EncodeWriteBatch(server::Op::kExecTxn, writes, &payload);
    ANKER_CHECK(client->SendOnly(payload).ok());
    outstanding.emplace_back();
    if (outstanding.size() >= pipeline) reap_one();
  }
  while (!outstanding.empty()) reap_one();
  return result;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows =
      static_cast<size_t>(flags.Int("rows", flags.Has("full") ? 1000000
                                                              : 100000));
  const size_t txns_per_conn =
      static_cast<size_t>(flags.Int("txns_per_conn", 2000));
  const size_t writes_per_txn =
      static_cast<size_t>(flags.Int("writes_per_txn", 4));
  const size_t pipeline = static_cast<size_t>(flags.Int("pipeline", 8));
  const std::string connections_list = flags.Str("connections", "1,4,16");
  const std::string data_dir =
      flags.Str("data_dir", "/tmp/anker_server_bench");
  const std::string durability = flags.Str("durability", "group_commit");
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  std::vector<size_t> connection_counts;
  {
    size_t value = 0;
    for (char c : connections_list + ",") {
      if (c == ',') {
        if (value > 0) connection_counts.push_back(value);
        value = 0;
      } else if (c >= '0' && c <= '9') {
        value = value * 10 + static_cast<size_t>(c - '0');
      }
    }
  }

  bench::PrintHeader(
      "Server loopback throughput: acked commits through the wire protocol",
      "group-commit batching across sessions keeps loopback acked-commit "
      "throughput within ~10% of the in-process WAL baseline");

  wal::RemoveDirRecursive(data_dir);
  engine::DatabaseConfig config;  // Heterogeneous serializable.
  // Dispatched commits block inside the group-commit protocol while their
  // batch fsyncs; the pool must hold enough threads for every concurrent
  // session's commit to join the same batch, or cross-session batching
  // degenerates to one commit per sync.
  size_t max_connections = 1;
  for (size_t c : connection_counts) max_connections = std::max(max_connections, c);
  config.worker_threads = max_connections + 4;
  config.data_dir = data_dir;
  config.durability = durability == "off"
                          ? wal::DurabilityMode::kOff
                          : durability == "lazy"
                                ? wal::DurabilityMode::kLazy
                                : wal::DurabilityMode::kGroupCommit;
  if (config.durability == wal::DurabilityMode::kOff) config.data_dir = "";
  engine::Database db(config);
  db.Start();

  // In-process bootstrap: accounts(id, balance) with a primary index,
  // loaded and checkpointed before the server starts (the same shape the
  // smoke script builds over the wire, at bench scale).
  auto table = db.CreateTable("accounts",
                              {{"id", storage::ValueType::kInt64},
                               {"balance", storage::ValueType::kDouble}},
                              rows);
  ANKER_CHECK(table.ok());
  storage::Column* id = table.value()->GetColumn("id");
  storage::Column* balance = table.value()->GetColumn("balance");
  for (size_t row = 0; row < rows; ++row) {
    id->LoadValue(row, storage::EncodeInt64(static_cast<int64_t>(row)));
    balance->LoadValue(row, storage::EncodeDouble(100.0));
  }
  table.value()->CreatePrimaryIndex(rows);
  for (size_t row = 0; row < rows; ++row) {
    ANKER_CHECK(table.value()->primary_index()->Insert(row, row).ok());
  }
  if (!config.data_dir.empty()) {
    ANKER_CHECK(db.Checkpoint().ok());
  }

  server::ServerConfig server_config;
  server_config.port = 0;
  server::Server server(&db, server_config);
  ANKER_CHECK(server.Start().ok());
  std::printf("server on 127.0.0.1:%u, %zu rows, durability=%s\n\n",
              server.port(), rows,
              wal::DurabilityModeName(config.durability));

  bench::JsonReport report("server_throughput");
  report["flags"]["rows"] = rows;
  report["flags"]["txns_per_conn"] = txns_per_conn;
  report["flags"]["writes_per_txn"] = writes_per_txn;
  report["flags"]["pipeline"] = pipeline;
  report["flags"]["durability"] = durability;
  report["flags"]["data_dir"] = data_dir;

  std::printf("%12s %10s %12s %12s %10s %10s %10s\n", "connections",
              "threads", "commits", "ktps", "p50 [us]", "p99 [us]",
              "errors");
  double best_ktps = 0;
  for (size_t connections : connection_counts) {
    std::vector<ConnResult> results(connections);
    std::vector<std::thread> threads;
    Timer wall;
    for (size_t c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        results[c] = RunConnection(server.port(), txns_per_conn,
                                   writes_per_txn, pipeline, rows,
                                   /*seed=*/1000 + c);
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = wall.ElapsedSeconds();

    uint64_t commits = 0, errors = 0;
    Histogram latency;
    for (ConnResult& r : results) {
      commits += r.commits;
      errors += r.errors;
      latency.Merge(r.latency);
    }
    const double ktps = commits / seconds / 1000.0;
    const double p50 = latency.Percentile(50) / 1e3;
    const double p99 = latency.Percentile(99) / 1e3;
    best_ktps = std::max(best_ktps, ktps);
    std::printf("%12zu %10zu %12llu %12.1f %10.1f %10.1f %10llu\n",
                connections, connections,
                static_cast<unsigned long long>(commits), ktps, p50, p99,
                static_cast<unsigned long long>(errors));
    std::fflush(stdout);

    auto& row = report["sweep"].Append();
    row["connections"] = connections;
    row["threads"] = connections;
    row["commits"] = commits;
    row["errors"] = errors;
    row["commit_ktps"] = ktps;
    row["p50_us"] = p50;
    row["p99_us"] = p99;
  }
  report["best_commit_ktps"] = best_ktps;

  const server::ServerStats stats = server.stats();
  std::printf("\nserver: frames=%llu commits_acked=%llu busy=%llu\n",
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.commits_acked),
              static_cast<unsigned long long>(stats.busy_rejections));
  report["server"]["frames"] = stats.frames_received;
  report["server"]["commits_acked"] = stats.commits_acked;
  report["server"]["busy_rejections"] = stats.busy_rejections;

  server.Shutdown();
  db.Stop();
  report.Write(json_out);
  wal::RemoveDirRecursive(data_dir);
  return 0;
}
