// Reproduces Figure 9: full-scan runtime over LINEITEM, ORDERS and PART as
// the fraction of versioned rows grows from 0% to 100% (versioned rows
// uniformly distributed), with the 1024-row first/last-versioned-row
// metadata applied. Paper shape: scanning a fully versioned table is ~5x
// slower than an unversioned one despite the block-skipping optimization.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/executor.h"
#include "tpch/datagen.h"
#include "tpch/schema.h"

namespace anker {
namespace {

/// Versions rows [already_versioned, target) of `column` using a shuffled
/// uniform order shared by the caller.
void VersionRows(storage::Column* column,
                 const std::vector<uint64_t>& shuffled, size_t from,
                 size_t to, mvcc::Timestamp ts) {
  for (size_t i = from; i < to; ++i) {
    const uint64_t row = shuffled[i];
    column->ApplyCommittedWrite(row, column->ReadLatestRaw(row) + 1, ts);
  }
}

double MeasureScanMs(const storage::Column* column, mvcc::Timestamp read_ts,
                     int reps, engine::ScanStats* stats) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const engine::ColumnReader reader =
        engine::ColumnReader::ForLive(column, read_ts);
    Timer timer;
    const double sum =
        engine::ScanColumnSum(reader, /*as_double=*/false, stats);
    (void)sum;
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 600000));
  const int reps = static_cast<int>(flags.Int("reps", 3));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::PrintHeader(
      "Figure 9: full-scan time vs fraction of versioned rows",
      "runtime grows with versioned fraction; 100% versioned ~5x slower "
      "than 0% even with 1024-row skip metadata");

  // Homogeneous database without GC so the chains stay in place.
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHomogeneousSerializable);
  engine::Database db(config);  // Start() not called: no GC thread
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  const tpch::TpchInstance& inst = loaded.value();

  struct Target {
    const char* name;
    storage::Column* column;
    size_t rows;
  };
  const Target targets[] = {
      {"LineItem", inst.lineitem->GetColumn("l_orderkey"),
       inst.lineitem_rows},
      {"Orders", inst.orders->GetColumn("o_orderkey"), inst.orders_rows},
      {"Part", inst.part->GetColumn("p_partkey"), inst.part_rows},
  };

  std::printf("rows: lineitem=%zu orders=%zu part=%zu, reps=%d "
              "(best-of shown)\n\n",
              inst.lineitem_rows, inst.orders_rows, inst.part_rows, reps);
  std::printf("%-10s", "versioned");
  for (const auto& target : targets) std::printf(" %14s", target.name);
  std::printf("   (scan time ms; reader older than all versions)\n");

  // Shuffled row orders, one per table, so versioned rows are uniform.
  Rng rng(13);
  std::vector<std::vector<uint64_t>> shuffles;
  for (const auto& target : targets) {
    std::vector<uint64_t> order(target.rows);
    for (uint64_t i = 0; i < target.rows; ++i) order[i] = i;
    for (size_t i = target.rows - 1; i > 0; --i) {
      std::swap(order[i], order[rng.NextBounded(i + 1)]);
    }
    shuffles.push_back(std::move(order));
  }

  // The reader timestamp predates every version (versions use ts >= 100),
  // forcing chain resolution for versioned rows — the homogeneous-scan
  // situation the figure isolates.
  const mvcc::Timestamp read_ts = 10;
  bench::JsonReport report("fig9_versioned_scan");
  report["flags"]["li_rows"] = rows;
  report["flags"]["reps"] = reps;
  std::vector<size_t> versioned_so_far(3, 0);
  double baseline[3] = {0, 0, 0};
  for (int percent = 0; percent <= 100; percent += 10) {
    std::printf("%8d%%:", percent);
    auto& row = report["scan_times"].Append();
    row["versioned_percent"] = percent;
    for (int t = 0; t < 3; ++t) {
      const size_t target_count =
          static_cast<size_t>(targets[t].rows * (percent / 100.0));
      VersionRows(targets[t].column, shuffles[t], versioned_so_far[t],
                  target_count, /*ts=*/100 + percent);
      versioned_so_far[t] = target_count;
      engine::ScanStats stats;
      const double ms =
          MeasureScanMs(targets[t].column, read_ts, reps, &stats);
      if (percent == 0) baseline[t] = ms;
      std::printf(" %14.3f", ms);
      row[std::string(targets[t].name) + "_ms"] = ms;
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nslowdown at 100%% vs 0%% (paper: ~5x): ");
  for (int t = 0; t < 3; ++t) {
    engine::ScanStats stats;
    const double ms = MeasureScanMs(targets[t].column, read_ts, 1, &stats);
    std::printf("%s=%.1fx ", targets[t].name, ms / baseline[t]);
    report["slowdown_100_vs_0"][targets[t].name] = ms / baseline[t];
  }
  std::printf("\n");
  report.Write(json_out);
  return 0;
}
