#ifndef ANKER_BENCH_BENCH_UTIL_H_
#define ANKER_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace anker::bench {

/// Minimal ordered JSON value tree for the machine-readable bench reports
/// (see JsonReport). Supports exactly what the benches need: objects with
/// insertion-ordered keys, arrays of objects, numbers, strings, bools.
class JsonValue {
 public:
  JsonValue() = default;

  /// Object member access; creates the member (and turns a fresh value
  /// into an object) on first use.
  JsonValue& operator[](const std::string& key) {
    kind_ = Kind::kObject;
    for (auto& member : members_) {
      if (member.first == key) return member.second;
    }
    members_.emplace_back(key, JsonValue());
    return members_.back().second;
  }

  /// Array append; turns a fresh value into an array.
  JsonValue& Append() {
    kind_ = Kind::kArray;
    elements_.emplace_back();
    return elements_.back();
  }

  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  JsonValue& operator=(T value) {
    if constexpr (std::is_same_v<T, bool>) {
      kind_ = Kind::kBool;
      bool_ = value;
    } else if constexpr (std::is_floating_point_v<T>) {
      kind_ = Kind::kNumber;
      number_ = static_cast<double>(value);
    } else {
      kind_ = Kind::kInt;
      int_ = static_cast<int64_t>(value);
    }
    return *this;
  }

  JsonValue& operator=(const std::string& value) {
    kind_ = Kind::kString;
    string_ = value;
    return *this;
  }

  JsonValue& operator=(const char* value) {
    return *this = std::string(value);
  }

  void Dump(std::string* out, int indent = 0) const {
    char buf[64];
    switch (kind_) {
      case Kind::kNull:
        out->append("null");
        break;
      case Kind::kNumber:
        if (!std::isfinite(number_)) {
          out->append("null");
        } else {
          std::snprintf(buf, sizeof(buf), "%.12g", number_);
          out->append(buf);
        }
        break;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out->append(buf);
        break;
      case Kind::kBool:
        out->append(bool_ ? "true" : "false");
        break;
      case Kind::kString:
        AppendEscaped(out, string_);
        break;
      case Kind::kObject: {
        out->append("{");
        bool first = true;
        for (const auto& member : members_) {
          out->append(first ? "\n" : ",\n");
          first = false;
          out->append(static_cast<size_t>(indent) * 2 + 2, ' ');
          AppendEscaped(out, member.first);
          out->append(": ");
          member.second.Dump(out, indent + 1);
        }
        if (!first) {
          out->append("\n");
          out->append(static_cast<size_t>(indent) * 2, ' ');
        }
        out->append("}");
        break;
      }
      case Kind::kArray: {
        out->append("[");
        bool first = true;
        for (const JsonValue& element : elements_) {
          out->append(first ? "\n" : ",\n");
          first = false;
          out->append(static_cast<size_t>(indent) * 2 + 2, ' ');
          element.Dump(out, indent + 1);
        }
        if (!first) {
          out->append("\n");
          out->append(static_cast<size_t>(indent) * 2, ' ');
        }
        out->append("]");
        break;
      }
    }
  }

 private:
  enum class Kind { kNull, kNumber, kInt, kBool, kString, kObject, kArray };

  static void AppendEscaped(std::string* out, const std::string& s) {
    out->push_back('"');
    for (char c : s) {
      switch (c) {
        case '"':
          out->append("\\\"");
          break;
        case '\\':
          out->append("\\\\");
          break;
        case '\n':
          out->append("\\n");
          break;
        case '\t':
          out->append("\\t");
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out->append(buf);
          } else {
            out->push_back(c);
          }
      }
    }
    out->push_back('"');
  }

  Kind kind_ = Kind::kNull;
  double number_ = 0;
  int64_t int_ = 0;
  bool bool_ = false;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

/// Machine-readable companion to a bench's stdout report: every bench
/// writes a BENCH_<name>.json next to its textual output (throughput,
/// latency percentiles, and the flag values the run used), so the repo's
/// perf trajectory is trackable across PRs. Override the location with
/// --json_out=<path>.
class JsonReport {
 public:
  explicit JsonReport(const std::string& name) : name_(name) {
    root_["bench"] = name;
  }

  JsonValue& operator[](const std::string& key) { return root_[key]; }

  /// Writes the report; empty path = BENCH_<name>.json in the working
  /// directory. Prints where the report went.
  void Write(const std::string& path = "") const {
    const std::string target =
        path.empty() ? "BENCH_" + name_ + ".json" : path;
    std::string out;
    root_.Dump(&out);
    out.push_back('\n');
    if (FILE* f = std::fopen(target.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      std::printf("\nJSON report: %s\n", target.c_str());
    } else {
      std::fprintf(stderr, "could not write JSON report to %s\n",
                   target.c_str());
    }
  }

 private:
  std::string name_;
  JsonValue root_;
};

/// Minimal flag parser for the bench binaries: `--name=value` and boolean
/// `--name`. Unknown flags abort with a message so typos are not silently
/// ignored. The flags each bench accepts — and the common ones (`--full`
/// for paper-scale runs, `--li_rows`, `--threads`, ...) — are documented
/// per binary in docs/BENCHMARKS.md.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  bool Has(const char* name) const {
    known_bool_.insert(name);
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc_; ++i) {
      if (flag == argv_[i]) return true;
    }
    return false;
  }

  long Int(const char* name, long default_value) const {
    known_valued_.insert(name);
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::atol(argv_[i] + prefix.size());
      }
    }
    return default_value;
  }

  std::string Str(const char* name, const std::string& default_value) const {
    known_valued_.insert(name);
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::string(argv_[i] + prefix.size());
      }
    }
    return default_value;
  }

  /// Call after the last accessor: aborts on any `--flag` argument whose
  /// name was never queried, or whose form does not match how it was
  /// queried (`--threads 16` instead of `--threads=16`, `--full=1`
  /// instead of `--full`) — either mistake would otherwise silently fall
  /// back to the default.
  void RejectUnknown() const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], "--", 2) != 0) continue;
      std::string name(argv_[i] + 2);
      const size_t eq = name.find('=');
      const bool has_value = eq != std::string::npos;
      if (has_value) name.resize(eq);
      if (has_value ? known_valued_.count(name) : known_bool_.count(name)) {
        continue;
      }
      if (known_valued_.count(name)) {
        std::fprintf(stderr, "flag --%s needs a value: --%s=<value>\n",
                     name.c_str(), name.c_str());
      } else if (known_bool_.count(name)) {
        std::fprintf(stderr, "flag --%s is boolean and takes no value\n",
                     name.c_str());
      } else {
        std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      }
      std::exit(2);
    }
  }

 private:
  int argc_;
  char** argv_;
  mutable std::set<std::string> known_bool_;    ///< Queried via Has().
  mutable std::set<std::string> known_valued_;  ///< Queried via Int()/Str().
};

/// Best-effort raise of vm.max_map_count: the rewired-snapshot experiments
/// deliberately fragment mappings into tens of thousands of VMAs (that is
/// the effect under measurement; see docs/BENCHMARKS.md), which exceeds
/// the kernel default of 65530. Raising needs root; on failure the caller
/// sizes the run within the current limit. Returns the limit now in
/// effect (0 if unreadable).
inline long EnsureMapCountLimit(long wanted) {
  long current = 0;
  if (FILE* f = std::fopen("/proc/sys/vm/max_map_count", "r")) {
    if (std::fscanf(f, "%ld", &current) != 1) current = 0;
    std::fclose(f);
  }
  if (current >= wanted) return current;
  if (FILE* f = std::fopen("/proc/sys/vm/max_map_count", "w")) {
    std::fprintf(f, "%ld", wanted);
    std::fclose(f);
    if (FILE* rf = std::fopen("/proc/sys/vm/max_map_count", "r")) {
      if (std::fscanf(rf, "%ld", &current) != 1) current = 0;
      std::fclose(rf);
    }
  }
  return current;
}

/// Prints the standard bench header: what is being reproduced and at what
/// scale relative to the paper.
inline void PrintHeader(const char* experiment, const char* paper_shape) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("Paper shape to reproduce: %s\n", paper_shape);
  std::printf("(absolute numbers differ from the paper's 2x4-core Xeon "
              "testbed;\n shapes and ratios are what matters)\n");
  std::printf("==============================================================="
              "=\n");
}

}  // namespace anker::bench

#endif  // ANKER_BENCH_BENCH_UTIL_H_
