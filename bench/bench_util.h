#ifndef ANKER_BENCH_BENCH_UTIL_H_
#define ANKER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

namespace anker::bench {

/// Minimal flag parser for the bench binaries: `--name=value` and boolean
/// `--name`. Unknown flags abort with a message so typos are not silently
/// ignored. The flags each bench accepts — and the common ones (`--full`
/// for paper-scale runs, `--li_rows`, `--threads`, ...) — are documented
/// per binary in docs/BENCHMARKS.md.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  bool Has(const char* name) const {
    known_bool_.insert(name);
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc_; ++i) {
      if (flag == argv_[i]) return true;
    }
    return false;
  }

  long Int(const char* name, long default_value) const {
    known_valued_.insert(name);
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::atol(argv_[i] + prefix.size());
      }
    }
    return default_value;
  }

  std::string Str(const char* name, const std::string& default_value) const {
    known_valued_.insert(name);
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::string(argv_[i] + prefix.size());
      }
    }
    return default_value;
  }

  /// Call after the last accessor: aborts on any `--flag` argument whose
  /// name was never queried, or whose form does not match how it was
  /// queried (`--threads 16` instead of `--threads=16`, `--full=1`
  /// instead of `--full`) — either mistake would otherwise silently fall
  /// back to the default.
  void RejectUnknown() const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], "--", 2) != 0) continue;
      std::string name(argv_[i] + 2);
      const size_t eq = name.find('=');
      const bool has_value = eq != std::string::npos;
      if (has_value) name.resize(eq);
      if (has_value ? known_valued_.count(name) : known_bool_.count(name)) {
        continue;
      }
      if (known_valued_.count(name)) {
        std::fprintf(stderr, "flag --%s needs a value: --%s=<value>\n",
                     name.c_str(), name.c_str());
      } else if (known_bool_.count(name)) {
        std::fprintf(stderr, "flag --%s is boolean and takes no value\n",
                     name.c_str());
      } else {
        std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      }
      std::exit(2);
    }
  }

 private:
  int argc_;
  char** argv_;
  mutable std::set<std::string> known_bool_;    ///< Queried via Has().
  mutable std::set<std::string> known_valued_;  ///< Queried via Int()/Str().
};

/// Best-effort raise of vm.max_map_count: the rewired-snapshot experiments
/// deliberately fragment mappings into tens of thousands of VMAs (that is
/// the effect under measurement; see docs/BENCHMARKS.md), which exceeds
/// the kernel default of 65530. Raising needs root; on failure the caller
/// sizes the run within the current limit. Returns the limit now in
/// effect (0 if unreadable).
inline long EnsureMapCountLimit(long wanted) {
  long current = 0;
  if (FILE* f = std::fopen("/proc/sys/vm/max_map_count", "r")) {
    if (std::fscanf(f, "%ld", &current) != 1) current = 0;
    std::fclose(f);
  }
  if (current >= wanted) return current;
  if (FILE* f = std::fopen("/proc/sys/vm/max_map_count", "w")) {
    std::fprintf(f, "%ld", wanted);
    std::fclose(f);
    if (FILE* rf = std::fopen("/proc/sys/vm/max_map_count", "r")) {
      if (std::fscanf(rf, "%ld", &current) != 1) current = 0;
      std::fclose(rf);
    }
  }
  return current;
}

/// Prints the standard bench header: what is being reproduced and at what
/// scale relative to the paper.
inline void PrintHeader(const char* experiment, const char* paper_shape) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("Paper shape to reproduce: %s\n", paper_shape);
  std::printf("(absolute numbers differ from the paper's 2x4-core Xeon "
              "testbed;\n shapes and ratios are what matters)\n");
  std::printf("==============================================================="
              "=\n");
}

}  // namespace anker::bench

#endif  // ANKER_BENCH_BENCH_UTIL_H_
