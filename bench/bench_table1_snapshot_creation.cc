// Reproduces Table 1: snapshot creation time for physical, fork-based and
// rewired snapshotting over a 50-column table, with the rewired cost as a
// function of previously modified pages (which fragment the mapping into
// more VMAs). Paper: physical grows linearly with columns, fork is flat
// (~100ms for the whole process), rewiring ranges from ~0.02ms (clean) to
// physical-like cost (fully fragmented).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "snapshot/fork_snapshotter.h"
#include "snapshot/physical_buffer.h"
#include "snapshot/rewired_buffer.h"
#include "snapshot/snapshotable_buffer.h"
#include "vm/page.h"

namespace anker {
namespace {

using snapshot::ForkSnapshotter;
using snapshot::PhysicalBuffer;
using snapshot::RewiredBuffer;
using snapshot::SnapshotView;
using vm::kPageSize;

struct TableUnderTest {
  std::vector<std::unique_ptr<snapshot::SnapshotableBuffer>> columns;
};

double MeasurePhysical(size_t num_columns, size_t column_bytes) {
  // Fresh columns; snapshot the first `num_columns` with a deep copy.
  std::vector<std::unique_ptr<PhysicalBuffer>> columns;
  for (size_t c = 0; c < num_columns; ++c) {
    auto buffer = PhysicalBuffer::Create(column_bytes);
    ANKER_CHECK(buffer.ok());
    columns.push_back(buffer.TakeValue());
  }
  std::vector<std::unique_ptr<SnapshotView>> views;
  Timer timer;
  for (auto& column : columns) {
    auto view = column->TakeSnapshot();
    ANKER_CHECK(view.ok());
    views.push_back(view.TakeValue());
  }
  return timer.ElapsedMillis();
}

/// Returns -1 when the kernel's mapping budget is exhausted (the VMA
/// explosion is the measured effect; on locked-down kernels the largest
/// configurations are simply not measurable).
double MeasureRewired(size_t num_columns, size_t column_bytes,
                      size_t dirty_pages_per_column) {
  std::vector<std::unique_ptr<RewiredBuffer>> columns;
  for (size_t c = 0; c < num_columns; ++c) {
    auto buffer = RewiredBuffer::Create(column_bytes);
    ANKER_CHECK(buffer.ok());
    columns.push_back(buffer.TakeValue());
  }
  // Fragment each column: a first snapshot arms the write detection, then
  // one write to the first 8B of every k-th page triggers a manual COW.
  std::vector<std::unique_ptr<SnapshotView>> warmup;
  const size_t pages = column_bytes / kPageSize;
  if (dirty_pages_per_column > 0) {
    for (auto& column : columns) {
      auto view = column->TakeSnapshot();
      ANKER_CHECK(view.ok());
      warmup.push_back(view.TakeValue());
    }
    // Dirty the pages in shuffled order: consecutive COWs would otherwise
    // receive consecutive pool pages and the mappings would coalesce back
    // into few VMAs, hiding the fragmentation the experiment measures.
    const size_t stride = pages / dirty_pages_per_column;
    std::vector<size_t> order(dirty_pages_per_column);
    for (size_t i = 0; i < dirty_pages_per_column; ++i) order[i] = i * stride;
    Rng rng(99);
    for (size_t i = order.size() - 1; i > 0; --i) {
      std::swap(order[i], order[rng.NextBounded(i + 1)]);
    }
    for (auto& column : columns) {
      for (size_t page : order) {
        column->StoreU64(page * kPageSize, page + 1);
      }
    }
  }
  std::vector<std::unique_ptr<SnapshotView>> views;
  Timer timer;
  for (auto& column : columns) {
    auto view = column->TakeSnapshot();
    if (!view.ok()) return -1;  // mapping budget exhausted
    views.push_back(view.TakeValue());
  }
  return timer.ElapsedMillis();
}

void PrintCell(double ms) {
  if (ms < 0) {
    std::printf(" %10s", "n/a");
  } else {
    std::printf(" %10.2f", ms);
  }
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  // Paper scale: 50 columns x 200MB (51200 pages). Default: 50 x 16MB.
  const size_t column_mb = static_cast<size_t>(
      flags.Int("column_mb", flags.Has("full") ? 200 : 16));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();
  const size_t column_bytes = column_mb * (1 << 20);
  const size_t pages = column_bytes / vm::kPageSize;
  const double scale = static_cast<double>(pages) / 51200.0;

  bench::PrintHeader(
      "Table 1: snapshot creation time [ms] (physical / fork / rewired)",
      "physical linear in #columns; fork flat; rewired grows with dirty "
      "pages up to ~physical");
  const long map_limit = bench::EnsureMapCountLimit(1 << 20);
  std::printf("column size: %zu MB (%zu pages, %.2fx paper scale), "
              "vm.max_map_count=%ld\n\n",
              column_mb, pages, scale, map_limit);

  bench::JsonReport report("table1_snapshot_creation");
  report["flags"]["column_mb"] = column_mb;
  report["max_map_count"] = map_limit;

  const size_t col_counts[] = {1, 25, 50};
  // Dirty-page counts scaled from the paper's 0 / 500 / 5,000 / 50,000.
  const size_t paper_dirty[] = {0, 500, 5000, 50000};

  std::printf("%-28s %10s %10s %10s\n", "Method / dirty pages per col",
              "1 col", "25 col", "50 col");

  {
    std::printf("%-28s", "Physical");
    auto& row = report["creation_ms"].Append();
    row["method"] = "physical";
    for (size_t cols : col_counts) {
      const double ms = MeasurePhysical(cols, column_bytes);
      std::printf(" %10.2f", ms);
      row["cols_" + std::to_string(cols)] = ms;
    }
    std::printf("\n");
  }
  {
    // Fork snapshots the whole process regardless of p; measure once with
    // the full table resident.
    std::vector<std::unique_ptr<snapshot::SnapshotableBuffer>> table;
    for (size_t c = 0; c < 50; ++c) {
      auto buffer = snapshot::CreateBuffer(snapshot::BufferBackend::kPlain,
                                           column_bytes);
      ANKER_CHECK(buffer.ok());
      // Touch the memory so fork has page tables to copy.
      for (size_t off = 0; off < column_bytes; off += vm::kPageSize) {
        buffer.value()->StoreU64(off, off);
      }
      table.push_back(buffer.TakeValue());
    }
    auto nanos = ForkSnapshotter::MeasureSnapshotNanos();
    ANKER_CHECK(nanos.ok());
    const double ms = static_cast<double>(nanos.value()) / 1e6;
    std::printf("%-28s %10.2f %10.2f %10.2f\n", "Fork-based", ms, ms, ms);
    auto& row = report["creation_ms"].Append();
    row["method"] = "fork";
    for (size_t cols : col_counts) row["cols_" + std::to_string(cols)] = ms;
  }
  for (size_t paper_pages : paper_dirty) {
    const size_t dirty = static_cast<size_t>(
        static_cast<double>(paper_pages) * scale);
    char label[64];
    std::snprintf(label, sizeof(label), "Rewiring (%zu dirty)", dirty);
    std::printf("%-28s", label);
    auto& row = report["creation_ms"].Append();
    row["method"] = "rewiring";
    row["dirty_pages_per_col"] = dirty;
    for (size_t cols : col_counts) {
      const double ms = MeasureRewired(cols, column_bytes, dirty);
      PrintCell(ms);
      std::fflush(stdout);
      row["cols_" + std::to_string(cols)] = ms;
    }
    std::printf("\n");
  }
  report.Write(json_out);
  return 0;
}
