// Reproduces Figure 5a/5b: the vm_snapshot vs rewiring micro-benchmark.
// For each page of a column, write 8B to it and then take a new snapshot.
//   Fig 5a: snapshot creation time as writes accumulate — rewiring degrades
//           with the number of VMAs backing the column (up to 68x slower in
//           the paper); vm_snapshot stays flat.
//   Fig 5b: time of the 8B write itself — rewiring pays a SIGSEGV + manual
//           page copy; vm_snapshot relies on the OS COW (paper: up to 6x
//           faster).
// Alongside, the number of VMAs backing the column is reported (the right
// y-axis of the paper's plots).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "snapshot/rewired_buffer.h"
#include "snapshot/vm_snapshot_buffer.h"
#include "vm/page.h"
#include "vm/proc_maps.h"

namespace anker {
namespace {

using snapshot::RewiredBuffer;
using snapshot::SnapshotView;
using snapshot::VmSnapshotBuffer;
using vm::kPageSize;

struct Sample {
  size_t pages_written;
  double snap_ms;
  double write_us;
  size_t vmas;
};

template <typename BufferT>
std::vector<Sample> RunSequence(BufferT* buffer, size_t pages,
                                size_t snapshot_every, size_t report_every) {
  // Visit the pages in shuffled order: sequential writes would hand the
  // rewired backend consecutive pool pages, letting the kernel merge the
  // remapped pages back into few VMAs and hiding the fragmentation the
  // experiment measures. (vm_snapshot is order-insensitive.)
  std::vector<size_t> visit(pages);
  for (size_t i = 0; i < pages; ++i) visit[i] = i;
  Rng rng(4242);
  for (size_t i = pages - 1; i > 0; --i) {
    std::swap(visit[i], visit[rng.NextBounded(i + 1)]);
  }
  std::vector<Sample> samples;
  std::unique_ptr<SnapshotView> current;
  {
    auto first = buffer->TakeSnapshot();
    ANKER_CHECK(first.ok());
    current = first.TakeValue();
  }
  double write_acc_us = 0;
  size_t write_count = 0;
  double snap_acc_ms = 0;
  size_t snap_count = 0;
  for (size_t i = 0; i < pages; ++i) {
    const size_t page = visit[i];
    Timer write_timer;
    buffer->StoreU64(page * kPageSize, page + 1);
    write_acc_us += write_timer.ElapsedMicros();
    ++write_count;

    if ((i + 1) % snapshot_every == 0) {
      Timer snap_timer;
      auto snap = buffer->TakeSnapshot();
      ANKER_CHECK(snap.ok());
      snap_acc_ms += snap_timer.ElapsedMillis();
      ++snap_count;
      current = snap.TakeValue();  // drop the previous snapshot
    }
    if ((i + 1) % report_every == 0) {
      samples.push_back(Sample{
          i + 1, snap_acc_ms / static_cast<double>(snap_count),
          write_acc_us / static_cast<double>(write_count),
          vm::CountVmasInRange(buffer->data(), buffer->size())});
      write_acc_us = 0;
      write_count = 0;
      snap_acc_ms = 0;
      snap_count = 0;
    }
  }
  return samples;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  // Paper scale: 200MB column = 51200 pages, snapshot after every write.
  // Default: 16MB = 4096 pages, snapshot after every 8 writes.
  const size_t column_mb = static_cast<size_t>(
      flags.Int("column_mb", flags.Has("full") ? 200 : 16));
  const size_t column_bytes = column_mb << 20;
  const size_t pages = column_bytes / vm::kPageSize;
  const size_t snapshot_every = static_cast<size_t>(
      flags.Int("snapshot_every", flags.Has("full") ? 1 : 8));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();
  const size_t report_every = pages / 16;

  bench::PrintHeader(
      "Figure 5a/5b: snapshot creation and write cost, rewiring vs "
      "vm_snapshot",
      "rewiring creation grows with VMA count (68x at the end in the "
      "paper); vm_snapshot flat; vm_snapshot writes up to 6x faster");
  bench::EnsureMapCountLimit(1 << 20);
  std::printf("column: %zu MB (%zu pages), snapshot every %zu writes\n\n",
              column_mb, pages, snapshot_every);

  auto rewired = snapshot::RewiredBuffer::Create(column_bytes);
  ANKER_CHECK(rewired.ok());
  const auto rewired_samples = RunSequence(rewired.value().get(), pages,
                                           snapshot_every, report_every);

  auto vmsnap = snapshot::VmSnapshotBuffer::Create(column_bytes);
  ANKER_CHECK(vmsnap.ok());
  const auto vm_samples = RunSequence(vmsnap.value().get(), pages,
                                      snapshot_every, report_every);

  bench::JsonReport report("fig5_microbench");
  report["flags"]["column_mb"] = column_mb;
  report["flags"]["snapshot_every"] = snapshot_every;
  std::printf("%12s | %12s %12s %8s | %12s %12s %8s\n", "pages written",
              "rewire ms", "rewire wr us", "VMAs", "vmsnap ms",
              "vmsnap wr us", "VMAs");
  for (size_t i = 0; i < rewired_samples.size(); ++i) {
    const auto& r = rewired_samples[i];
    const auto& v = vm_samples[i];
    std::printf("%12zu | %12.3f %12.3f %8zu | %12.3f %12.3f %8zu\n",
                r.pages_written, r.snap_ms, r.write_us, r.vmas, v.snap_ms,
                v.write_us, v.vmas);
    auto& row = report["samples"].Append();
    row["pages_written"] = r.pages_written;
    row["rewire_snap_ms"] = r.snap_ms;
    row["rewire_write_us"] = r.write_us;
    row["rewire_vmas"] = r.vmas;
    row["vmsnap_snap_ms"] = v.snap_ms;
    row["vmsnap_write_us"] = v.write_us;
    row["vmsnap_vmas"] = v.vmas;
  }
  const double creation_ratio =
      rewired_samples.back().snap_ms / vm_samples.back().snap_ms;
  const double write_ratio =
      rewired_samples.back().write_us / vm_samples.back().write_us;
  std::printf("\nfinal snapshot-creation ratio (rewiring / vm_snapshot): "
              "%.1fx (paper: 68x at full fragmentation)\n",
              creation_ratio);
  std::printf("final write-cost ratio (rewiring / vm_snapshot): %.1fx "
              "(paper: up to 6x)\n",
              write_ratio);
  report["final_creation_ratio"] = creation_ratio;
  report["final_write_ratio"] = write_ratio;
  report.Write(json_out);
  return 0;
}
