// Ablation B (design-choice study): the full heterogeneous engine run with
// each snapshot-capable buffer backend. The claim to verify (see
// docs/ARCHITECTURE.md): the
// engine-level win of heterogeneous processing does not depend on the
// snapshotting trick per se, but cheap snapshots (vm_snapshot) keep the
// materialization pauses negligible where physical copies stall commits
// (the exclusive column latch is held during materialization).
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/workload_driver.h"

namespace anker {
namespace {

struct BackendResult {
  double throughput_ktps;
  double olap_p50_ms;
  double olap_p95_ms;
  double olap_p99_ms;
};

BackendResult RunWithBackend(snapshot::BufferBackend backend, size_t rows,
                             uint64_t oltp, size_t threads) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.backend = backend;
  config.snapshot_interval_commits = 5000;  // frequent: stress snapshots
  engine::Database db(config);
  db.Start();
  tpch::TpchConfig tpch;
  tpch.lineitem_rows = rows;
  auto loaded = tpch::LoadTpch(&db, tpch);
  ANKER_CHECK(loaded.ok());
  tpch::WorkloadDriver driver(&db, loaded.value());
  ANKER_CHECK(driver.WarmupSnapshots().ok());

  tpch::WorkloadConfig workload;
  workload.oltp_transactions = oltp;
  workload.olap_transactions = 20;
  workload.threads = threads;
  const tpch::WorkloadResult result = driver.RunMixed(workload);

  BackendResult out;
  out.throughput_ktps = result.throughput_tps / 1000.0;
  out.olap_p50_ms = result.olap_latency.Percentile(50) / 1e6;
  out.olap_p95_ms = result.olap_latency.Percentile(95) / 1e6;
  out.olap_p99_ms = result.olap_latency.Percentile(99) / 1e6;
  db.Stop();
  return out;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const size_t rows = static_cast<size_t>(
      flags.Int("li_rows", flags.Has("full") ? 6000000 : 2400000));
  const uint64_t oltp = static_cast<uint64_t>(
      flags.Int("oltp", flags.Has("full") ? 500000 : 120000));
  const size_t threads = static_cast<size_t>(flags.Int("threads", 8));
  const std::string json_out = flags.Str("json_out", "");
  flags.RejectUnknown();

  bench::JsonReport report("ablation_backend");
  report["flags"]["li_rows"] = rows;
  report["flags"]["oltp"] = oltp;
  report["flags"]["threads"] = threads;

  bench::PrintHeader(
      "Ablation B: snapshot backend inside the full engine",
      "vm_snapshot >= rewired > physical in throughput; physical pays a "
      "full column copy inside the exclusive latch at every epoch");
  std::printf("lineitem rows: %zu, %zu OLTP + 20 OLAP txns, %zu threads, "
              "snapshot every 5000 commits\n\n",
              rows, static_cast<size_t>(oltp), threads);

  std::printf("%-14s %18s %16s\n", "backend", "throughput[ktps]",
              "OLAP p50 [ms]");
  for (snapshot::BufferBackend backend :
       {snapshot::BufferBackend::kPhysical, snapshot::BufferBackend::kRewired,
        snapshot::BufferBackend::kVmSnapshot}) {
    const BackendResult r = RunWithBackend(backend, rows, oltp, threads);
    std::printf("%-14s %18.1f %16.3f\n",
                snapshot::BufferBackendName(backend), r.throughput_ktps,
                r.olap_p50_ms);
    std::fflush(stdout);
    auto& row = report["backends"].Append();
    row["backend"] = snapshot::BufferBackendName(backend);
    row["throughput_ktps"] = r.throughput_ktps;
    row["olap_p50_ms"] = r.olap_p50_ms;
    row["olap_p95_ms"] = r.olap_p95_ms;
    row["olap_p99_ms"] = r.olap_p99_ms;
  }
  report.Write(json_out);
  return 0;
}
