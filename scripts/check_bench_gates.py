#!/usr/bin/env python3
"""Consolidated performance gates over the BENCH_*.json reports.

Replaces the inline-Python snippets that used to live in the CI workflow:
one thresholds file (scripts/bench_gates.json), one checker, one summary
table. Every standalone bench emits a machine-readable report via
--json_out; CI collects them into one directory, runs this script, and
uploads the reports as artifacts either way.

Thresholds file format:
  {"gates": [
      {"name": "...", "description": "...",
       "kind": "ratio",                 # metric = numerator / denominator
       "numerator":   {"file": "...", "path": "a[0].b"},
       "denominator": {"file": "...", "path": "a[key=value].b"},
       "max": 1.10},
      {"name": "...",
       "kind": "value",                 # metric read directly
       "value": {"file": "...", "path": "..."},
       "max": 1.10}
  ]}

Path syntax: dot-separated member access; `[N]` indexes an array,
`[key=value]` selects the array element whose member `key` stringifies to
`value` (how per-mode rows are addressed).

Exit code 0 iff every gate holds. A missing file or path is a hard
failure — a gate that silently stops measuring is worse than a red build.
"""

import argparse
import json
import os
import re
import sys

_TOKEN = re.compile(r"([A-Za-z0-9_]+)((?:\[[^\]]+\])*)$")


def resolve_path(doc, path):
    node = doc
    for part in path.split("."):
        match = _TOKEN.match(part)
        if not match:
            raise KeyError(f"bad path token {part!r}")
        name, selectors = match.groups()
        if not isinstance(node, dict) or name not in node:
            raise KeyError(f"no member {name!r}")
        node = node[name]
        for selector in re.findall(r"\[([^\]]+)\]", selectors):
            if "=" in selector:
                key, _, want = selector.partition("=")
                matches = [e for e in node
                           if isinstance(e, dict) and str(e.get(key)) == want]
                if not matches:
                    raise KeyError(f"no element with {key}={want!r}")
                node = matches[0]
            else:
                node = node[int(selector)]
    return node


def read_metric(spec, directory):
    path = os.path.join(directory, spec["file"])
    with open(path) as f:
        doc = json.load(f)
    value = resolve_path(doc, spec["path"])
    if not isinstance(value, (int, float)):
        raise TypeError(f"{spec['file']}:{spec['path']} is not a number")
    return float(value)


def evaluate(gate, directory):
    if gate["kind"] == "ratio":
        numerator = read_metric(gate["numerator"], directory)
        denominator = read_metric(gate["denominator"], directory)
        if denominator == 0:
            raise ZeroDivisionError("denominator metric is zero")
        return numerator / denominator
    if gate["kind"] == "value":
        return read_metric(gate["value"], directory)
    raise ValueError(f"unknown gate kind {gate['kind']!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--thresholds", required=True,
                        help="path to the gates JSON (scripts/bench_gates.json)")
    parser.add_argument("--dir", required=True,
                        help="directory holding the BENCH_*.json reports")
    parser.add_argument("--only", default=None,
                        help="comma-separated gate names to check (default all)")
    args = parser.parse_args()

    with open(args.thresholds) as f:
        config = json.load(f)
    only = set(args.only.split(",")) if args.only else None

    failures = []
    checked = 0
    width = max((len(g["name"]) for g in config["gates"]), default=20)
    for gate in config["gates"]:
        if only is not None and gate["name"] not in only:
            continue
        checked += 1
        try:
            metric = evaluate(gate, args.dir)
        except Exception as error:  # noqa: BLE001 — any miss fails the gate
            print(f"FAIL  {gate['name']:<{width}}  unmeasurable: {error}")
            failures.append(gate["name"])
            continue
        ok = True
        bounds = []
        if "max" in gate:
            bounds.append(f"max {gate['max']:g}")
            ok = ok and metric <= gate["max"]
        if "min" in gate:
            bounds.append(f"min {gate['min']:g}")
            ok = ok and metric >= gate["min"]
        verdict = "ok  " if ok else "FAIL"
        print(f"{verdict}  {gate['name']:<{width}}  {metric:8.3f}  "
              f"({', '.join(bounds)})  {gate.get('description', '')}")
        if not ok:
            failures.append(gate["name"])

    if only is not None and checked < len(only):
        missing = only - {g["name"] for g in config["gates"]}
        print(f"FAIL  unknown gate name(s): {', '.join(sorted(missing))}")
        failures.append("unknown-gates")

    if failures:
        print(f"\n{len(failures)} gate(s) failed: {', '.join(failures)}")
        return 1
    print(f"\nAll {checked} perf gate(s) hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
