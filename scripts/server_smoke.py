#!/usr/bin/env python3
"""End-to-end lifecycle smoke for the network front-end.

Proves the full operational story from docs/OPERATIONS.md in one run:

  1. `anker_serve` starts on an empty data directory (ephemeral port),
  2. a scripted `anker_cli` session creates a table, bulk-loads it,
     builds the primary index, runs an OLTP transaction (BEGIN ->
     keyed writes -> COMMIT) and checks a declarative aggregate,
  3. SIGTERM: the server drains sessions, takes a checkpoint and exits 0
     (stdout must show CHECKPOINT and EXIT OK),
  4. a second `anker_serve` reopens the same directory (checkpoint + WAL
     replay) and a fresh session must see the committed state,
  5. SIGTERM again; both shutdowns must be clean.

Used by ctest (server_smoke_harness) and by the CI server-smoke job.
"""

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

LISTEN_RE = re.compile(r"LISTENING host=\S+ port=(\d+)")


class Server:
    def __init__(self, binary, data_dir):
        self.proc = subprocess.Popen(
            [binary, "--port=0", f"--data_dir={data_dir}",
             "--durability=group_commit"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        self.port = None
        self.lines = []
        deadline = time.time() + 30
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.lines.append(line)
            match = LISTEN_RE.search(line)
            if match:
                self.port = int(match.group(1))
                return
        raise SystemExit(
            f"server never reported LISTENING; output so far: {self.lines}")

    def stop(self):
        """SIGTERM, wait, return (exit_code, full_stdout)."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            out, _ = self.proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise SystemExit("server did not exit within 60s of SIGTERM")
        return self.proc.returncode, "".join(self.lines) + (out or "")


def run_cli(binary, port, script):
    proc = subprocess.run(
        [binary, f"--port={port}"], input=script, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, timeout=120)
    return proc.returncode, proc.stdout


def expect(condition, message, output=""):
    if not condition:
        print(f"FAIL: {message}")
        if output:
            print("---- output ----")
            print(output)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True, help="anker_serve binary")
    parser.add_argument("--cli", required=True, help="anker_cli binary")
    parser.add_argument("--workdir", default=None,
                        help="data directory root (default: a fresh tmpdir)")
    args = parser.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="anker-server-smoke-")
    data_dir = os.path.join(workdir, "db")
    shutil.rmtree(data_dir, ignore_errors=True)

    rows = 64
    ids = " ".join(str(i) for i in range(rows))
    balances = " ".join("100" for _ in range(rows))

    # ---- phase 1: fresh serve + scripted session -------------------------
    server = Server(args.serve, data_dir)
    script = f"""
create accounts {rows} id:int64 balance:double
load accounts id 0 {ids}
load accounts balance 0 {balances}
index accounts id
begin
write accounts balance 1 75.5 bykey
write accounts balance 2 124.5 bykey
commit
read accounts balance 1 bykey
query accounts sum(balance) count()
"""
    code, out = run_cli(args.cli, server.port, script)
    expect(code == 0, f"phase-1 CLI session failed (exit {code})", out)
    expect("VALUE 75.5" in out, "keyed read did not see the commit", out)
    expect(f"sum(balance)={rows * 100}" in out,
           "aggregate does not balance after the transfer", out)
    expect(f"count()={rows}" in out, "count over all rows wrong", out)

    code, out = server.stop()
    expect(code == 0, f"phase-1 server exit code {code}", out)
    expect("CHECKPOINT ts=" in out, "no shutdown checkpoint reported", out)
    expect("EXIT OK" in out, "shutdown did not complete cleanly", out)
    print("phase 1 OK: serve + session + checkpointed shutdown")

    # ---- phase 2: reopen the same directory ------------------------------
    server = Server(args.serve, data_dir)
    opened = next((l for l in server.lines if l.startswith("OPENED")), "")
    expect("tables=1" in opened, "reopen did not recover the table",
           "".join(server.lines))
    script = f"""
read accounts balance 1 bykey
read accounts balance 2 bykey
query accounts sum(balance) count()
"""
    code, out = run_cli(args.cli, server.port, script)
    expect(code == 0, f"phase-2 CLI session failed (exit {code})", out)
    expect("VALUE 75.5" in out and "VALUE 124.5" in out,
           "recovered state lost the committed writes", out)
    expect(f"sum(balance)={rows * 100}" in out,
           "recovered aggregate wrong", out)

    code, out = server.stop()
    expect(code == 0, f"phase-2 server exit code {code}", out)
    expect("EXIT OK" in out, "second shutdown not clean", out)
    print("phase 2 OK: checkpoint + WAL reopen served identical state")

    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    print("server smoke: all phases OK")


if __name__ == "__main__":
    main()
