#!/usr/bin/env python3
"""Kill-point recovery harness.

Repeatedly SIGKILLs a crash_driver workload process at a randomized moment
and asserts that Database::Open recovers to a digest-consistent state.
The random kill delay, the small WAL segments and the frequent automatic
checkpoints make the kill land mid-commit, mid-checkpoint and mid-log-
rotation across iterations; the driver's verify mode proves atomicity
(balance conservation), durability (no acknowledged commit lost) and — on
single-threaded iterations — bit-exact prefix equality against an
in-memory re-simulation.

Most iterations additionally run the tiered cold store (tiny
cold_budget_bytes plus a spillable archive table) and cycle armed fault
points through extent publication (extent.publish.pre/post) and the
checkpoint manifest flip (ckpt.publish.pre/post), so kills land inside
the extent fsync→rename protocol and the incremental-checkpoint publish;
each cold iteration also asserts recovery pruned every orphaned .tmp
extent.

Usage:
  crash_recovery_harness.py --driver build/tools/crash_driver \
      [--iterations 24] [--max-run-ms 1500] [--seed 1234] [--workdir DIR]

Exit code 0 iff every iteration recovered consistently.
"""

import argparse
import glob
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from harness_common import sigkill, wait_for_line

# Extent-era fault shapes, cycled across the cold-tier iterations. The
# probabilities keep the bootstrap phase (which publishes a dozen-plus
# extents while spilling the archive table) likely to survive, so kills
# land across both bootstrap and steady-state extent publication, plus
# the incremental-checkpoint manifest flip.
FAULT_SHAPES = [
    None,
    "extent.publish.pre:kill:0.05",
    "extent.publish.post:kill:0.05",
    "ckpt.publish.pre:kill:0.5",
    "ckpt.publish.post:kill:0.5",
]


def run_iteration(args, iteration, rng):
    workdir = os.path.join(args.workdir, f"iter-{iteration}")
    shutil.rmtree(workdir, ignore_errors=True)
    os.makedirs(workdir)

    # Alternate shapes: single-threaded iterations get the strongest check
    # (digest re-simulation); multi-threaded ones stress group commit and
    # concurrent checkpointing under the conservation + durability checks.
    # Most iterations also run the cold tier (spillable extents + archive
    # churn); every fourth keeps the classic RAM-resident shape.
    threads = 1 if iteration % 2 == 0 else 4
    cold = iteration % 4 != 3
    fault = FAULT_SHAPES[iteration % len(FAULT_SHAPES)] if cold else None
    seed = args.seed + 1000 * iteration
    common = [
        f"--dir={workdir}",
        f"--threads={threads}",
        f"--seed={seed}",
        f"--accounts={args.accounts}",
        f"--ckpt_every={args.ckpt_every}",
        f"--segment_bytes={args.segment_bytes}",
        "--durability=group_commit",
    ]
    if cold:
        common += [f"--cold_budget={args.cold_budget}",
                   "--cold_segment_rows=1024"]

    env = dict(os.environ)
    env.pop("ANKER_FAULTS", None)
    if fault:
        env["ANKER_FAULTS"] = fault
        env["ANKER_FAULT_SEED"] = str(seed)
    proc = subprocess.Popen(
        [args.driver, "--mode=run"] + common,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
    )
    try:
        if wait_for_line(proc, b"READY", timeout_s=60) is None:
            if fault is None or proc.poll() is None:
                print(f"iter {iteration}: driver never became READY "
                      f"(seed={seed})", flush=True)
                return False
            # An armed fault point killed the driver during bootstrap —
            # itself a kill point worth verifying recovery from.
        else:
            # The randomized kill point: anywhere from "barely started" to
            # "thousands of commits and several checkpoints in". An armed
            # fault may beat the timer; either way the process dies hard.
            time.sleep(rng.uniform(0.0, args.max_run_ms / 1000.0))
    finally:
        sigkill(proc)

    verify = subprocess.run(
        [args.driver, "--mode=verify"] + common,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env={k: v for k, v in os.environ.items() if k != "ANKER_FAULTS"},
    )
    out = verify.stdout.decode(errors="replace").strip()
    shape = f"threads={threads}" + (", cold" if cold else "") + \
        (f", fault={fault}" if fault else "")
    print(f"iter {iteration} ({shape}): {out}", flush=True)
    if verify.returncode != 0:
        print(f"iter {iteration}: replay with --seed {args.seed} "
              f"(iteration seed {seed})", flush=True)
        return False
    if cold:
        # Recovery (which verify just ran) must have pruned every orphaned
        # temporary extent the kill left behind.
        stray = glob.glob(os.path.join(workdir, "extents", "*.tmp"))
        if stray:
            print(f"iter {iteration}: orphaned tmp extents survived "
                  f"recovery: {stray}", flush=True)
            return False
    shutil.rmtree(workdir, ignore_errors=True)
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--driver", required=True,
                        help="path to the crash_driver binary")
    parser.add_argument("--iterations", type=int, default=24)
    parser.add_argument("--max-run-ms", type=float, default=1500,
                        help="upper bound of the randomized kill delay")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--accounts", type=int, default=1024)
    parser.add_argument("--ckpt_every", type=int, default=4000)
    parser.add_argument("--segment_bytes", type=int, default=1 << 16)
    parser.add_argument("--cold_budget", type=int, default=1,
                        help="cold_budget_bytes for the cold-tier "
                             "iterations (tiny by default so everything "
                             "spillable spills)")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir; "
                             "use tmpfs, e.g. /dev/shm, for speed)")
    args = parser.parse_args()

    if not os.path.exists(args.driver):
        print(f"driver not found: {args.driver}")
        return 2

    owns_workdir = args.workdir is None
    if owns_workdir:
        args.workdir = tempfile.mkdtemp(prefix="anker_crash_")
    os.makedirs(args.workdir, exist_ok=True)

    rng = random.Random(args.seed)
    failures = 0
    try:
        for iteration in range(args.iterations):
            if not run_iteration(args, iteration, rng):
                failures += 1
    finally:
        if owns_workdir and failures == 0:
            shutil.rmtree(args.workdir, ignore_errors=True)

    if failures:
        print(f"FAILED: {failures}/{args.iterations} iterations "
              f"(seed={args.seed}, scratch kept at {args.workdir})")
        return 1
    print(f"PASSED: {args.iterations}/{args.iterations} kill-point "
          f"iterations recovered consistently")
    return 0


if __name__ == "__main__":
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    sys.exit(main())
