#!/usr/bin/env python3
"""Shared process plumbing for the crash / replication harnesses.

Every harness in this directory does the same four things: spawn a
binary, wait for a readiness line on its stdout without risking a hung
readline, SIGKILL it at an inconvenient moment, and drive `anker_cli`
scripts against a port. Keeping those helpers here means a fix to the
select() loop or the kill semantics lands in every drill at once.
"""

import os
import re
import select
import signal
import socket
import subprocess
import time

LISTEN_RE = re.compile(r"LISTENING host=\S+ port=(\d+)")


def wait_for_line(proc, needle, timeout_s):
    """Reads proc.stdout (bytes) until a line containing `needle` appears.

    Returns the buffered output on success, None on timeout or process
    exit. select()-based so the deadline holds even when the process
    wedges without producing output — a blocking readline() would turn
    a hung bootstrap into a hung CI job.
    """
    deadline = time.monotonic() + timeout_s
    buffered = b""
    needle = needle if isinstance(needle, bytes) else needle.encode()
    while time.monotonic() < deadline:
        if any(needle in line for line in buffered.splitlines()):
            return buffered
        if proc.poll() is not None:
            buffered += proc.stdout.read() or b""
            if any(needle in line for line in buffered.splitlines()):
                return buffered
            return None
        ready, _, _ = select.select([proc.stdout], [], [], 0.1)
        if not ready:
            continue
        chunk = os.read(proc.stdout.fileno(), 4096)
        if chunk:
            buffered += chunk
    return None


def sigkill(proc):
    """SIGKILL + reap: no atexit, no flush, no destructor runs."""
    proc.kill()
    proc.wait()


def pick_port():
    """Reserves an ephemeral port and releases it for the next bind.

    Needed when a node must be restarted on the SAME address a peer
    already dialed (a replica reconnecting to its primary); --port=0
    would land the restart somewhere else.
    """
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServeNode:
    """One `anker_serve` process: spawn, await LISTENING, kill or drain."""

    def __init__(self, binary, data_dir, extra_args=(), env_faults=None,
                 fault_seed=0, timeout_s=60):
        env = dict(os.environ)
        env.pop("ANKER_FAULTS", None)
        if env_faults:
            env["ANKER_FAULTS"] = env_faults
            env["ANKER_FAULT_SEED"] = str(fault_seed)
        self.proc = subprocess.Popen(
            [binary, f"--data_dir={data_dir}", "--durability=group_commit"]
            + list(extra_args),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env)
        self.port = None
        self.startup = wait_for_line(self.proc, b"LISTENING", timeout_s)
        if self.startup is not None:
            match = LISTEN_RE.search(self.startup.decode(errors="replace"))
            if match:
                self.port = int(match.group(1))

    def alive(self):
        return self.proc.poll() is None

    def kill(self):
        sigkill(self.proc)

    def terminate(self, timeout_s=60):
        """SIGTERM and wait; returns (exit_code, remaining_stdout)."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            out, _ = self.proc.communicate(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -9, ""
        return self.proc.returncode, (out or b"").decode(errors="replace")


def run_cli(binary, port, script, timeout_s=120, extra_args=()):
    """Feeds a scripted session to anker_cli; returns (code, stdout)."""
    proc = subprocess.run(
        [binary, f"--port={port}", "--echo"] + list(extra_args),
        input=script, text=True, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, timeout=timeout_s)
    return proc.returncode, proc.stdout


def start_cli(binary, port, script, extra_args=()):
    """Launches a scripted anker_cli session in the background.

    Used when the harness needs to kill a server while the session is
    mid-flight; pair with finish_cli() to collect what was acked.
    """
    proc = subprocess.Popen(
        [binary, f"--port={port}", "--echo"] + list(extra_args),
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    proc.stdin.write(script)
    proc.stdin.close()
    proc.stdin = None  # communicate() must not re-flush the closed pipe.
    return proc


def finish_cli(proc, timeout_s=120):
    """Waits for a start_cli() session; returns its full stdout."""
    try:
        out, _ = proc.communicate(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
    return out or ""
