#!/usr/bin/env python3
"""Cross-shard 2PC chaos gauntlet: kill the coordinator, prove atomicity.

Stands up a 2-shard cluster behind `anker_router` and runs
`twopc_driver --mode=run` — a loop of zero-sum balance transfers where
the two accounts always live on DIFFERENT shards, so every transaction
takes the intent-based two-phase commit path. Then it gets hostile,
round-robin over three scenarios:

  prepare_post  ANKER_FAULTS SIGKILLs the ROUTER at 2pc.prepare.post —
                right after a shard acked a prepare. Intents exist on
                some shards, no commit decision anywhere: the classic
                "coordinator died before deciding" wound. Readers must
                escalate the undecided transaction to a durable abort.
  commit_pre    SIGKILLs the router at 2pc.commit.pre — possibly after
                the primary already committed. The transaction IS
                committed; secondary intents must heal lazily through
                the primary's recorded outcome.
  shard_kill    SIGKILLs a random SHARD mid-traffic and restarts it on
                the same port: WAL recovery must resurrect prepared
                transactions (intents included) before serving.

After every round a fault-free router is stood up and
`twopc_driver --mode=verify` asserts the two invariants that define the
subsystem: sum(balance) over all accounts equals exactly
accounts * 1000 (no transfer ever half-applied), and — once the
verifier's reads have forced lazy resolution — every shard reports
pending_intents == 0 (no intent is orphaned forever). The final verify
additionally demands that at least one transfer was acked end to end,
so a gauntlet that never made progress cannot pass vacuously.

Used by ctest (twopc_drill_harness, small) and by the CI
shard-2pc-drill job (more iterations). Failures print the seed +
scenario needed to replay deterministically.

Usage:
  twopc_harness.py --serve build/tools/anker_serve \
      --router build/tools/anker_router --cli build/tools/anker_cli \
      --driver build/tools/twopc_driver [--iterations 6] [--run-ms 1500]
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time

from harness_common import (LISTEN_RE, ServeNode, pick_port, run_cli,
                            sigkill, wait_for_line)

MASK = (1 << 64) - 1

SCENARIOS = ["prepare_post", "commit_pre", "shard_kill"]
ROUTER_FAULTS = {
    # High enough that a busy transfer loop trips it within a second or
    # two, low enough that a handful of transactions commit first.
    "prepare_post": "2pc.prepare.post:kill:0.04",
    "commit_pre": "2pc.commit.pre:kill:0.04",
}

NUM_SHARDS = 2
INITIAL_BALANCE = 1000


def mix64(x):
    """splitmix64 finalizer — must match ShardMap::Mix64 exactly."""
    x = (x + 0x9E3779B97F4A7C15) & MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK
    return x ^ (x >> 31)


assert mix64(0) == 0xE220A8397B1DCDAF  # pinned in shard_map_test.cc


def expect(condition, message, output=""):
    if not condition:
        print(f"FAIL: {message}")
        if output:
            print("---- output ----")
            print(output)
        sys.exit(1)


class RouterNode:
    """One `anker_router` process, optionally running under ANKER_FAULTS."""

    def __init__(self, binary, shard_map, env_faults=None, fault_seed=0):
        env = dict(os.environ)
        env.pop("ANKER_FAULTS", None)
        if env_faults:
            env["ANKER_FAULTS"] = env_faults
            env["ANKER_FAULT_SEED"] = str(fault_seed)
        self.proc = subprocess.Popen(
            [binary, "--port=0", f"--shard_map={shard_map}"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env)
        self.port = None
        startup = wait_for_line(self.proc, b"LISTENING", 60)
        if startup is not None:
            match = LISTEN_RE.search(startup.decode(errors="replace"))
            if match:
                self.port = int(match.group(1))
        expect(self.port is not None, "router never reported LISTENING",
               (startup or b"").decode(errors="replace"))

    def alive(self):
        return self.proc.poll() is None

    def kill(self):
        sigkill(self.proc)

    def terminate(self, timeout_s=60):
        self.proc.terminate()
        try:
            out, _ = self.proc.communicate(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -9, ""
        return self.proc.returncode, (out or b"").decode(errors="replace")


def seed_script(keys):
    """anker_cli script creating this shard's slice of `acct`.

    Ends with an explicit checkpoint: schema and the primary index only
    persist through the checkpoint manifest, and the shard_kill rounds
    SIGKILL shards that never got a graceful shutdown checkpoint.
    """
    lines = [f"create acct {len(keys)} id:int64 balance:int64",
             "load acct id 0 " + " ".join(str(k) for k in keys),
             "load acct balance 0 "
             + " ".join(str(INITIAL_BALANCE) for _ in keys),
             "index acct id",
             "checkpoint"]
    return "\n".join(lines) + "\n"


def start_shard(args, workdir, index, port):
    node = ServeNode(args.serve, os.path.join(workdir, f"shard{index}"),
                     extra_args=[f"--port={port}"])
    expect(node.port == port, f"shard {index} not on pinned port {port}",
           (node.startup or b"").decode(errors="replace"))
    return node


def run_verify(args, router_port, shard_ports, ack_file, min_acks, label):
    proc = subprocess.run(
        [args.driver, "--mode=verify", f"--port={router_port}",
         "--shard_ports=" + ",".join(str(p) for p in shard_ports),
         f"--ack_file={ack_file}", f"--accounts={args.accounts}",
         f"--min_acks={min_acks}"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=120)
    expect(proc.returncode == 0, f"verify failed after {label}",
           proc.stdout)
    return proc.stdout.strip()


def start_driver(args, router_port, shard_ports, ack_file, seed):
    proc = subprocess.Popen(
        [args.driver, "--mode=run", f"--port={router_port}",
         "--shard_ports=" + ",".join(str(p) for p in shard_ports),
         f"--ack_file={ack_file}", f"--accounts={args.accounts}",
         f"--seed={seed}"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    ready = wait_for_line(proc, b"READY", 60)
    expect(ready is not None, "driver never reported READY",
           (ready or b"").decode(errors="replace"))
    return proc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True)
    parser.add_argument("--router", required=True)
    parser.add_argument("--cli", required=True)
    parser.add_argument("--driver", required=True)
    parser.add_argument("--iterations", type=int, default=6,
                        help="chaos rounds, round-robin over scenarios")
    parser.add_argument("--run-ms", type=int, default=1500,
                        help="traffic window per round before the kill")
    parser.add_argument("--accounts", type=int, default=64)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="anker-2pc-drill-")
    ack_file = os.path.join(workdir, "acks.bin")

    # ---- bring-up: 2 shards on pinned ports + seeded acct table ---------
    shard_ports = [pick_port() for _ in range(NUM_SHARDS)]
    shards = [start_shard(args, workdir, s, shard_ports[s])
              for s in range(NUM_SHARDS)]
    keys_of = {s: sorted(k for k in range(1, args.accounts + 1)
                         if mix64(k) % NUM_SHARDS == s)
               for s in range(NUM_SHARDS)}
    for s in range(NUM_SHARDS):
        expect(len(keys_of[s]) > 0, f"hash starved shard {s} outright")
        code, out = run_cli(args.cli, shard_ports[s],
                            seed_script(keys_of[s]))
        expect(code == 0, f"seeding shard {s} failed", out)

    shard_map = os.path.join(workdir, "shards.conf")
    with open(shard_map, "w") as f:
        f.write("version 1\n")
        for port in shard_ports:
            f.write(f"shard 127.0.0.1:{port}\n")
        f.write("table acct partition id\n")
    print(f"bring-up OK: {NUM_SHARDS} shards, {args.accounts} accounts "
          f"at {INITIAL_BALANCE} each")

    # Baseline sanity before any chaos: sum conserved, no intents.
    clean = RouterNode(args.router, shard_map)
    run_verify(args, clean.port, shard_ports, ack_file, 0, "bring-up")
    clean.terminate()

    # ---- the gauntlet ---------------------------------------------------
    rounds_hit = 0
    for iteration in range(args.iterations):
        scenario = SCENARIOS[iteration % len(SCENARIOS)]
        fault_seed = args.seed * 1000 + iteration
        faults = ROUTER_FAULTS.get(scenario)
        router = RouterNode(args.router, shard_map, env_faults=faults,
                            fault_seed=fault_seed)
        driver = start_driver(args, router.port, shard_ports, ack_file,
                              seed=fault_seed)

        if scenario == "shard_kill":
            time.sleep(args.run_ms / 1000.0)
            victim = iteration % NUM_SHARDS
            shards[victim].kill()
            time.sleep(0.5)  # let in-flight 2PCs trip over the corpse
            shards[victim] = start_shard(args, workdir, victim,
                                         shard_ports[victim])
            time.sleep(args.run_ms / 1000.0)
            sigkill(driver)
            router_code, _ = router.terminate()
            expect(router_code == 0,
                   f"[{scenario} #{iteration}] router did not survive "
                   f"a shard kill (exit {router_code})")
        else:
            # The fault point fires inside the 2PC loops; wait for the
            # router to drop dead under the driver's traffic.
            deadline = time.monotonic() + 30
            while router.alive() and time.monotonic() < deadline:
                time.sleep(0.05)
            died = not router.alive()
            sigkill(driver)
            if not died:
                router.kill()
            expect(died,
                   f"[{scenario} #{iteration}] fault point never fired "
                   f"(seed {fault_seed}) — is MaybeKill wired in?")
            rounds_hit += 1

        # Fault-free router: the verifier's reads force lazy resolution
        # of whatever the dead coordinator left behind.
        fresh = RouterNode(args.router, shard_map)
        summary = run_verify(args, fresh.port, shard_ports, ack_file, 0,
                             f"{scenario} #{iteration} (seed {fault_seed})")
        fresh.terminate()
        print(f"round {iteration} [{scenario}] OK: {summary}")

    # ---- final verify: progress is mandatory ----------------------------
    final = RouterNode(args.router, shard_map)
    summary = run_verify(args, final.port, shard_ports, ack_file, 1,
                         "the full gauntlet")
    code, out = final.terminate()
    expect(code == 0, f"final router exit code {code}", out)
    for s, node in enumerate(shards):
        code, out = node.terminate()
        expect(code == 0, f"shard {s} exit code {code}", out)
    expect(rounds_hit > 0, "no router-kill round ever ran")

    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    print(f"2pc drill: {args.iterations} rounds OK — {summary}")


if __name__ == "__main__":
    main()
