#!/usr/bin/env python3
"""Randomized replication fault drill: kill, partition, promote, verify.

Each iteration stands up a primary + read replica (`anker_serve
--replica_of`), runs a scripted writer that records which commits the
primary ACKED (commit OK + its COMMIT_OK LSN token), and then does
something hostile, chosen round-robin so every class is exercised:

  kill_primary     SIGKILL the primary mid-write, restart it, replica
                   reconnects and resumes from its applied LSN.
  kill_replica     SIGKILL the replica mid-stream, restart it; it
                   recovers its local WAL mirror and resumes.
  wal_fault        ANKER_FAULTS kills the primary *inside* WAL
                   append/fsync — the worst possible torn-write moment.
  ckpt_fault       ANKER_FAULTS kills the primary inside checkpoint
                   publish — usually mid-bootstrap, so the replica's
                   first FETCH_CHECKPOINT fails and must be retried.
  repl_send_flaky  the primary's stream socket fails probabilistically
                   (simulated partition); the replica must reconnect
                   and converge through the flapping.
  repl_recv_flaky  same, injected on the replica's receive path.
  promote          SIGKILL the primary (replica runs with --sync_ack),
                   PROMOTE the replica, and require every synchronously
                   acked commit to be readable on the new primary —
                   then prove it accepts writes.

After the chaos every iteration asserts the two invariants that define
the subsystem (ISSUE 7): no acknowledged commit is ever lost, and the
surviving pair converges to identical content digests. Failures print
the seed + iteration + scenario needed to replay deterministically.

Usage:
  replication_harness.py --serve build/tools/anker_serve \
      --cli build/tools/anker_cli [--iterations 12] [--rounds 120] \
      [--seed 1] [--workdir DIR]
"""

import argparse
import os
import random
import re
import shutil
import signal
import sys
import tempfile
import time

from harness_common import ServeNode, finish_cli, pick_port, run_cli, \
    start_cli

SCENARIOS = [
    "kill_primary", "kill_replica", "wal_fault", "ckpt_fault",
    "repl_send_flaky", "repl_recv_flaky", "promote",
]

PRIMARY_FAULTS = {
    "wal_fault": "wal.append:kill:0.002,wal.flush.pre:kill:0.008",
    "ckpt_fault": "ckpt.publish.pre:kill:0.7",
    "repl_send_flaky": "repl.send:fail:0.05",
}
REPLICA_FAULTS = {
    "repl_recv_flaky": "repl.recv:fail:0.08",
}


class IterationFailure(Exception):
    pass


def expect(condition, message, output=""):
    if not condition:
        raise IterationFailure(
            message + ("\n---- output ----\n" + output if output else ""))


def parse_writer(out):
    """Returns (last_acked_round, last_acked_lsn, last_attempted_round).

    A round counts as ACKED only when its `commit` echoed OK *and* the
    following `lastlsn` returned a larger token: the primary both
    acknowledged the commit and handed out its durable LSN.
    """
    acked_round, acked_lsn, attempted = 0, 0, 0
    committed = None
    current = None
    await_commit = False
    for line in out.splitlines():
        line = line.strip()
        if line.startswith("> write "):
            current = int(line.split()[-1])
            attempted = max(attempted, current)
            await_commit = False
        elif line == "> commit":
            await_commit = True
        elif await_commit:
            if line == "OK":
                committed = current
            await_commit = False
        elif line.startswith("LSN ") and committed is not None:
            lsn = int(line.split()[1])
            if lsn > acked_lsn:
                acked_round, acked_lsn = committed, lsn
    return acked_round, acked_lsn, attempted


def writer_script(rounds):
    lines = []
    for r in range(1, rounds + 1):
        lines += ["begin", f"write acct val 0 {r}", "commit", "lastlsn"]
    return "\n".join(lines) + "\n"


def read_value(cli, port):
    code, out = run_cli(cli, port, "read acct val 0\n")
    match = re.search(r"VALUE (-?\d+)", out)
    expect(match is not None, f"no VALUE from port {port}", out)
    return int(match.group(1))


def node_status(cli, port):
    _, out = run_cli(cli, port, "status\n")
    match = re.search(
        r"STATUS role=(\S+) stream=(\S+) applied_lsn=(\d+) "
        r"durable_lsn=(\d+)", out)
    expect(match is not None, f"no STATUS from port {port}", out)
    return {"role": match.group(1), "stream": match.group(2),
            "applied_lsn": int(match.group(3)),
            "durable_lsn": int(match.group(4))}


def content_digest(cli, port):
    _, out = run_cli(cli, port, "digest\n")
    match = re.search(r"DIGEST ([0-9a-f]{16})", out)
    expect(match is not None, f"no DIGEST from port {port}", out)
    return match.group(1)


def wait_applied(cli, port, lsn, attempts=3, timeout_ms=20000):
    for _ in range(attempts):
        _, out = run_cli(cli, port, f"waitlsn {lsn} {timeout_ms}\n")
        if "OK applied" in out:
            return
    raise IterationFailure(f"replica never applied LSN {lsn}")


class Iteration:
    def __init__(self, args, index, rng):
        self.args = args
        self.rng = rng
        self.scenario = SCENARIOS[index % len(SCENARIOS)]
        self.workdir = os.path.join(args.workdir, f"iter-{index}")
        shutil.rmtree(self.workdir, ignore_errors=True)
        os.makedirs(self.workdir)
        self.primary_dir = os.path.join(self.workdir, "primary")
        self.replica_dir = os.path.join(self.workdir, "replica")
        self.primary_port = pick_port()
        self.replica_port = pick_port()
        self.primary = None
        self.replica = None

    # -- topology ---------------------------------------------------------

    def primary_args(self):
        return [f"--port={self.primary_port}", "--heartbeat_ms=50",
                "--ack_wait_ms=500", "--snapshot_interval=2000"]

    def replica_args(self):
        args = [f"--port={self.replica_port}",
                f"--replica_of=127.0.0.1:{self.primary_port}",
                "--replica_id=r1", "--stream_timeout_ms=1500",
                "--ack_interval_ms=20"]
        if self.scenario == "promote":
            args.append("--sync_ack=1")
        return args

    def start_primary(self, faults=None):
        self.primary = ServeNode(
            self.args.serve, self.primary_dir, self.primary_args(),
            env_faults=faults, fault_seed=self.rng.getrandbits(32))
        expect(self.primary.port is not None, "primary never listened",
               (self.primary.startup or b"").decode(errors="replace"))

    def setup_schema(self):
        zeros = " ".join("0" for _ in range(64))
        run_cli(self.args.cli, self.primary_port,
                f"create acct 64 val:int64\nload acct val 0 {zeros}\n")

    def start_replica(self, faults=None):
        self.replica = ServeNode(
            self.args.serve, self.replica_dir, self.replica_args(),
            env_faults=faults, fault_seed=self.rng.getrandbits(32))

    def bring_up(self):
        """Primary + schema + bootstrapped replica, surviving injected
        deaths during setup or bootstrap (ckpt_fault usually kills the
        primary inside the bootstrap checkpoint; wal_fault can kill it
        during the schema commits). A node that died restarts CLEAN —
        the drill is that recovery + a retried bootstrap succeed."""
        self.start_primary(PRIMARY_FAULTS.get(self.scenario))
        self.setup_schema()
        for _ in range(3):
            if not self.primary.alive():
                self.start_primary()  # Clean restart on the same port.
                self.setup_schema()
            self.start_replica(REPLICA_FAULTS.get(self.scenario))
            if self.replica.port is not None:
                return
            self.replica.kill()
        raise IterationFailure("replica failed to bootstrap 3 times")

    # -- the drill --------------------------------------------------------

    def run_writer_with_chaos(self):
        writer = start_cli(self.args.cli, self.primary_port,
                           writer_script(self.args.rounds),
                           extra_args=["--busy_retries=2"])
        if self.scenario in ("kill_primary", "promote"):
            time.sleep(self.rng.uniform(0.0, 0.25))
            self.primary.kill()
        elif self.scenario == "kill_replica":
            time.sleep(self.rng.uniform(0.0, 0.25))
            self.replica.kill()
        out = finish_cli(writer)
        acked_round, acked_lsn, attempted = parse_writer(out)
        expect(attempted > 0, "writer never attempted a commit", out)
        return acked_round, acked_lsn, attempted

    def verify_converged(self, acked_round, attempted):
        """Both nodes up (restarting any faulted/dead one cleanly), no
        acked commit lost, replica catches up, digests identical."""
        if not self.primary.alive() or self.scenario in PRIMARY_FAULTS:
            if self.primary.alive():
                self.primary.kill()
            self.start_primary()
        if not self.replica.alive() or self.scenario in REPLICA_FAULTS:
            if self.replica.alive():
                self.replica.kill()
            self.start_replica()
            expect(self.replica.port is not None,
                   "replica did not restart",
                   (self.replica.startup or b"").decode(errors="replace"))

        value = read_value(self.args.cli, self.primary_port)
        expect(acked_round <= value <= attempted,
               f"durability violated: primary has {value}, "
               f"acked {acked_round}, attempted {attempted}")

        durable = node_status(self.args.cli, self.primary_port)
        expect(durable["role"] == "primary", "primary lost its role")
        wait_applied(self.args.cli, self.replica_port,
                     durable["durable_lsn"])
        replica_value = read_value(self.args.cli, self.replica_port)
        expect(replica_value == value,
               f"replica diverged: {replica_value} vs {value}")
        expect(content_digest(self.args.cli, self.primary_port) ==
               content_digest(self.args.cli, self.replica_port),
               "content digests diverged after convergence")

    def verify_promoted(self, acked_round, attempted):
        """Failover: every synchronously-acked commit must survive on
        the promoted replica, which must then accept writes."""
        if self.primary.alive():
            self.primary.kill()
        _, out = run_cli(self.args.cli, self.replica_port, "promote\n")
        expect("OK promoted" in out, "PROMOTE refused", out)
        value = read_value(self.args.cli, self.replica_port)
        expect(acked_round <= value <= attempted,
               f"failover lost a sync-acked commit: promoted node has "
               f"{value}, acked {acked_round}")
        status = node_status(self.args.cli, self.replica_port)
        expect(status["role"] == "promoted", "role not promoted")
        epilogue = attempted + 1
        _, out = run_cli(
            self.args.cli, self.replica_port,
            f"begin\nwrite acct val 0 {epilogue}\ncommit\n")
        expect(out.count("OK") >= 3, "promoted node refused a write", out)
        expect(read_value(self.args.cli, self.replica_port) == epilogue,
               "write on promoted node not visible")

    def run(self):
        try:
            self.bring_up()
            acked_round, acked_lsn, attempted = self.run_writer_with_chaos()
            if self.scenario == "promote":
                self.verify_promoted(acked_round, attempted)
            else:
                self.verify_converged(acked_round, attempted)
            return (f"acked={acked_round}@lsn{acked_lsn} "
                    f"attempted={attempted}")
        finally:
            for node in (self.primary, self.replica):
                if node is not None and node.alive():
                    node.kill()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True,
                        help="path to the anker_serve binary")
    parser.add_argument("--cli", required=True,
                        help="path to the anker_cli binary")
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--rounds", type=int, default=120,
                        help="writer commits per iteration")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir; "
                             "use tmpfs, e.g. /dev/shm, for speed)")
    args = parser.parse_args()

    for binary in (args.serve, args.cli):
        if not os.path.exists(binary):
            print(f"binary not found: {binary}")
            return 2

    owns_workdir = args.workdir is None
    if owns_workdir:
        args.workdir = tempfile.mkdtemp(prefix="anker_repl_")
    os.makedirs(args.workdir, exist_ok=True)

    failures = 0
    for index in range(args.iterations):
        rng = random.Random(args.seed + 1000 * index)
        iteration = Iteration(args, index, rng)
        try:
            detail = iteration.run()
            print(f"iter {index} ({iteration.scenario}): OK {detail}",
                  flush=True)
            shutil.rmtree(iteration.workdir, ignore_errors=True)
        except IterationFailure as failure:
            failures += 1
            print(f"iter {index} ({iteration.scenario}): FAILED "
                  f"[replay: --seed {args.seed}, iteration {index}]\n"
                  f"{failure}", flush=True)

    if owns_workdir and failures == 0:
        shutil.rmtree(args.workdir, ignore_errors=True)
    if failures:
        print(f"FAILED: {failures}/{args.iterations} iterations "
              f"(seed={args.seed}, scratch kept at {args.workdir})")
        return 1
    print(f"PASSED: {args.iterations}/{args.iterations} replication "
          f"drill iterations (seed={args.seed})")
    return 0


if __name__ == "__main__":
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    sys.exit(main())
