#!/usr/bin/env python3
"""Scale-out smoke: a 3-shard cluster behind anker_router.

Proves the scale-out runbook from docs/OPERATIONS.md end to end:

  1. three `anker_serve` shards start on ephemeral ports; a TPC-H-style
     lineitem table is split across them by the SAME splitmix64 hash the
     router uses (re-implemented below — the shard_map_test pins the
     vectors, this file proves a loader can reproduce the placement),
  2. an `anker_router` fronts them from a generated shard map; Q1-, Q6-
     and Q18-shaped queries through the router must be BYTE-IDENTICAL to
     a single-node reference server holding the full table (partial-agg
     re-aggregation, AVG finalize, top-k re-sort/re-limit are all exact),
  3. single-shard transactions pass through at 1 RTT — asserted via the
     router's passthrough_txns counter, which only moves on forwarded
     commits,
  4. `anker_cli --server=a,b` fails over past a dead endpoint,
  5. SIGKILL one shard: writes routed to it surface as ResourceBusy
     (recoverable), a strict router refuses scatter queries, and an
     --allow_partial=1 router answers from the surviving shards,
  6. SIGTERM: routers drain and exit 0; shards were never coupled to the
     router's lifecycle.

Used by ctest (router_smoke_harness) and by the CI router-smoke job.
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time

from harness_common import (LISTEN_RE, ServeNode, pick_port, run_cli,
                            wait_for_line)

MASK = (1 << 64) - 1


def mix64(x):
    """splitmix64 finalizer — must match ShardMap::Mix64 exactly."""
    x = (x + 0x9E3779B97F4A7C15) & MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK
    return x ^ (x >> 31)


# Pinned in tests/shard/shard_map_test.cc; a drift here means this file
# would load rows onto the wrong shard and every routed read would miss.
assert mix64(0) == 0xE220A8397B1DCDAF
assert mix64(0xDEADBEEF) == 0x4ADFB90F68C9EB9B


def expect(condition, message, output=""):
    if not condition:
        print(f"FAIL: {message}")
        if output:
            print("---- output ----")
            print(output)
        sys.exit(1)


def retry(fn, attempts=30, delay=0.25, what="condition"):
    """Calls fn() until it returns a non-None value; None keeps trying."""
    last = None
    for _ in range(attempts):
        result = fn()
        if result is not None:
            return result
        time.sleep(delay)
        last = result
    raise SystemExit(f"retry exhausted waiting for {what}: {last}")


class RouterNode:
    """One `anker_router` process: spawn, await LISTENING, drain."""

    def __init__(self, binary, shard_map, extra_args=()):
        self.proc = subprocess.Popen(
            [binary, "--port=0", f"--shard_map={shard_map}"]
            + list(extra_args),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        self.port = None
        startup = wait_for_line(self.proc, b"LISTENING", 60)
        if startup is not None:
            match = LISTEN_RE.search(startup.decode(errors="replace"))
            if match:
                self.port = int(match.group(1))
        expect(self.port is not None, "router never reported LISTENING",
               (startup or b"").decode(errors="replace"))

    def terminate(self, timeout_s=60):
        self.proc.terminate()
        try:
            out, _ = self.proc.communicate(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -9, ""
        return self.proc.returncode, (out or b"").decode(errors="replace")


def query_rows(out):
    """ROW lines plus the DONE row count (scan totals may legitimately
    differ in how they accumulate, row content and order may not)."""
    rows = [l for l in out.splitlines() if l.startswith("ROW")]
    done = [l.split(" scanned=")[0] for l in out.splitlines()
            if l.startswith("DONE")]
    return rows + done


def parse_counter(out, name):
    for line in out.splitlines():
        if line.startswith("ROUTER "):
            for field in line.split():
                if field.startswith(f"{name}="):
                    return int(field.split("=", 1)[1], 0)
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True, help="anker_serve binary")
    parser.add_argument("--router", required=True,
                        help="anker_router binary")
    parser.add_argument("--cli", required=True, help="anker_cli binary")
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="anker-router-smoke-")

    # ---- the dataset: dyadic values so every merge is exact -------------
    # Keys 1..240 hash-split over 3 shards; quantities are small integers,
    # prices/discounts multiples of 2^-4 — float sums are order-invariant,
    # which is what lets us demand BYTE-identical router output.
    num_shards = 3
    keys = list(range(1, 241))
    data = {k: {"l_quantity": float((k % 40) + 1),
                "l_extendedprice": k * 0.25,
                "l_discount": (k % 5) * 0.0625,
                "l_returnflag": k % 3} for k in keys}
    shard_of = {k: mix64(k) % num_shards for k in keys}
    columns = ("l_orderkey:int64 l_quantity:double l_extendedprice:double "
               "l_discount:double l_returnflag:int64")

    def load_script(subset):
        lines = [f"create lineitem {len(subset)} {columns}"]
        lines.append("load lineitem l_orderkey 0 "
                     + " ".join(str(k) for k in subset))
        for col in ("l_quantity", "l_extendedprice", "l_discount"):
            lines.append(f"load lineitem {col} 0 "
                         + " ".join(repr(data[k][col]) for k in subset))
        lines.append("load lineitem l_returnflag 0 "
                     + " ".join(str(data[k]["l_returnflag"])
                                for k in subset))
        lines.append("index lineitem l_orderkey")
        return "\n".join(lines) + "\n"

    # ---- phase 1: bring-up (runbook step 1) -----------------------------
    shards = []
    for s in range(num_shards):
        node = ServeNode(args.serve, os.path.join(workdir, f"shard{s}"),
                        extra_args=["--port=0"])
        expect(node.port is not None, f"shard {s} never came up")
        shards.append(node)
    reference = ServeNode(args.serve, os.path.join(workdir, "reference"),
                          extra_args=["--port=0"])
    expect(reference.port is not None, "reference server never came up")

    for s, node in enumerate(shards):
        subset = sorted(k for k in keys if shard_of[k] == s)
        expect(len(subset) > 0, f"hash starved shard {s} outright")
        code, out = run_cli(args.cli, node.port, load_script(subset))
        expect(code == 0, f"loading shard {s} failed", out)
    code, out = run_cli(args.cli, reference.port, load_script(keys))
    expect(code == 0, "loading the reference server failed", out)

    shard_map = os.path.join(workdir, "shards.conf")
    with open(shard_map, "w") as f:
        f.write("version 1\n")
        for node in shards:
            f.write(f"shard 127.0.0.1:{node.port}\n")
        f.write("table lineitem partition l_orderkey\n")

    strict = RouterNode(args.router, shard_map)
    partial = RouterNode(args.router, shard_map, ["--allow_partial=1"])
    print(f"phase 1 OK: {num_shards} shards + 2 routers up, "
          f"{len(keys)} rows hash-split")

    # ---- phase 2: scatter-gather equivalence ----------------------------
    q1 = ("query lineitem sum(l_quantity) avg(l_quantity) "
          "sum(l_extendedprice) count() group l_returnflag "
          "order l_returnflag")
    q6 = ("query lineitem sum(l_extendedprice) "
          "where l_quantity < 24 and l_discount >= 0.125")
    q18 = ("query lineitem sum(l_quantity) group l_orderkey "
           "order sum(l_quantity):desc,l_orderkey limit 10")
    for name, q in (("Q1", q1), ("Q6", q6), ("Q18", q18)):
        code, ref_out = run_cli(args.cli, reference.port, q + "\n")
        expect(code == 0, f"{name} failed on the reference node", ref_out)
        code, routed_out = run_cli(args.cli, strict.port, q + "\n")
        expect(code == 0, f"{name} failed through the router", routed_out)
        expect("PARTIAL" not in routed_out,
               f"{name} marked partial with all shards healthy", routed_out)
        ref_rows, routed_rows = query_rows(ref_out), query_rows(routed_out)
        expect(ref_rows == routed_rows,
               f"{name} router output diverges from single-node",
               "reference:\n" + "\n".join(ref_rows)
               + "\nrouter:\n" + "\n".join(routed_rows))
        expect(len(ref_rows) > 1, f"{name} produced no rows", ref_out)
    print("phase 2 OK: Q1/Q6/Q18 byte-identical to the single-node run")

    # ---- phase 3: 1-RTT pass-through ------------------------------------
    code, out = run_cli(args.cli, strict.port, "routerstatus\n")
    expect(code == 0, "routerstatus failed", out)
    before = parse_counter(out, "passthrough_txns")
    expect(before is not None, "no passthrough_txns counter", out)

    txn_keys = [k for k in keys if shard_of[k] == 0][:2]
    script = ""
    for k in txn_keys:
        script += (f"begin\nwrite lineitem l_quantity {k} 99.5 bykey\n"
                   f"commit\nread lineitem l_quantity {k} bykey\n")
    script += "routerstatus\n"
    code, out = run_cli(args.cli, strict.port, script)
    expect(code == 0, "routed transactions failed", out)
    expect(out.count("VALUE 99.5") == len(txn_keys),
           "routed commit not visible through the router", out)
    after = parse_counter(out, "passthrough_txns")
    # Exactly one forwarded frame per commit: the router added no extra
    # round trips, and nothing else (queries, reads) touched the counter.
    expect(after == before + len(txn_keys),
           f"passthrough_txns moved {before}->{after}, expected "
           f"+{len(txn_keys)} (1 RTT per transaction)", out)
    # The write really landed on the owning shard, not somewhere a
    # scatter read would paper over.
    code, out = run_cli(args.cli, shards[0].port,
                        f"read lineitem l_quantity {txn_keys[0]} bykey\n")
    expect(code == 0 and "VALUE 99.5" in out,
           "owning shard does not hold the routed write", out)
    print("phase 3 OK: transactions passed through at 1 RTT")

    # ---- phase 4: client-side failover ----------------------------------
    dead = pick_port()
    proc = subprocess.run(
        [args.cli, f"--server=127.0.0.1:{dead},127.0.0.1:{strict.port}"],
        input="ping\n", text=True, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, timeout=60)
    expect(proc.returncode == 0 and "PONG" in proc.stdout,
           "--server failover did not reach the second endpoint",
           proc.stdout)
    print("phase 4 OK: --server list failed over past a dead endpoint")

    # ---- phase 5: shard loss (runbook: shard-down drill) ----------------
    victim = 2
    victim_key = next(k for k in keys if shard_of[k] == victim)
    live_sum = sum(data[k]["l_extendedprice"] for k in keys
                   if shard_of[k] != victim)
    shards[victim].kill()

    def write_is_busy():
        code, out = run_cli(
            args.cli, strict.port,
            f"begin\nwrite lineitem l_quantity {victim_key} 1.0 bykey\n")
        expect(code != 0, "write to a dead shard was acked", out)
        # First contact over a stale pooled connection can surface as
        # IoError; once the pool re-dials it must be ResourceBusy.
        return out if "ResourceBusy" in out else None
    out = retry(write_is_busy, what="BUSY on writes to the dead shard")

    def strict_query_refused():
        code, out = run_cli(args.cli, strict.port,
                            "query lineitem sum(l_extendedprice)\n")
        expect(code != 0, "strict router answered with a shard down", out)
        return out if "ResourceBusy" in out else None
    retry(strict_query_refused, what="BUSY on strict scatter queries")

    def partial_query_answers():
        code, out = run_cli(args.cli, partial.port,
                            "query lineitem sum(l_extendedprice)\n"
                            "routerstatus\n")
        if code != 0:  # Stale pooled connection: retry reconnects.
            return None
        want = "sum(l_extendedprice)=" + ("%.17g" % live_sum)
        expect(want in out, "partial answer is not the live-shard union",
               out + f"\nwanted: {want}")
        # The degraded answer must be wire-marked, not silently served:
        # QUERY_DONE carries the skipped-shard count.
        expect("PARTIAL shards_missing=1" in out,
               "partial answer is not marked as degraded", out)
        expect(f"healthy={num_shards - 1}" in out,
               "routerstatus does not report the dead shard", out)
        return out
    retry(partial_query_answers, what="partial query over live shards")

    # A single-shard txn on a LIVE shard keeps working throughout.
    live_key = next(k for k in keys if shard_of[k] == 0)
    code, out = run_cli(
        args.cli, strict.port,
        f"begin\nwrite lineitem l_quantity {live_key} 7.5 bykey\ncommit\n"
        f"read lineitem l_quantity {live_key} bykey\n")
    expect(code == 0 and "VALUE 7.5" in out,
           "live shard lost service while a peer was down", out)
    print("phase 5 OK: dead shard = recoverable BUSY; "
          "--allow_partial=1 serves the survivors")

    # ---- phase 6: clean drain -------------------------------------------
    for name, node in (("strict", strict), ("partial", partial)):
        code, out = node.terminate()
        expect(code == 0, f"{name} router exit code {code}", out)
        expect("EXIT OK" in out, f"{name} router drain not clean", out)
        expect("DRAINED" in out, f"{name} router printed no drain stats",
               out)
    for s in (0, 1):
        code, out = shards[s].terminate()
        expect(code == 0, f"shard {s} exit code {code}", out)
    reference.terminate()
    print("phase 6 OK: routers drained; surviving shards shut down clean")

    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    print("router smoke: all phases OK")


if __name__ == "__main__":
    main()
