#!/usr/bin/env python3
"""Intra-repo documentation link checker (CI: the docs-link-check step).

Scans every tracked *.md file for markdown links and inline file
references, and fails when:
  - a relative link points at a file or directory that does not exist,
  - a link's #anchor does not match any heading in the target document,
  - a `path/to/file`-style inline code reference names a src/ docs/
    scripts/ tools/ bench/ tests/ examples/ path that does not exist.

External links (http/https/mailto) are not fetched — CI must not depend
on the internet being nice. Anchors are slugified the way GitHub does
(lowercase, spaces to dashes, punctuation dropped).

Repo-meta files that are logs or upstream-generated (CHANGES.md,
ISSUE.md, PAPER.md, PAPERS.md, SNIPPETS.md) are skipped: they quote
external material and historical names, not maintained documentation.
"""

import argparse
import os
import re
import sys

SKIP_FILES = {"CHANGES.md", "ISSUE.md", "PAPER.md", "PAPERS.md",
              "SNIPPETS.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_PATH_RE = re.compile(
    r"`((?:src|docs|scripts|tools|bench|tests|examples)/[A-Za-z0-9_./-]+)`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading):
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- §]", "", slug, flags=re.UNICODE)
    slug = slug.replace("§", "")
    slug = re.sub(r"\s+", "-", slug.strip())
    return slug


def anchors_of(path, cache):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        cache[path] = {github_slug(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def check_file(md_path, repo_root, anchor_cache):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    base = os.path.dirname(md_path)

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # Pure in-document anchor.
            if anchor and github_slug(anchor) not in anchors_of(
                    md_path, anchor_cache):
                errors.append(f"{md_path}: broken anchor #{anchor}")
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: broken link {match.group(1)}")
            continue
        if anchor and resolved.endswith(".md"):
            if github_slug(anchor) not in anchors_of(resolved, anchor_cache):
                errors.append(
                    f"{md_path}: broken anchor {target}#{anchor}")

    for match in CODE_PATH_RE.finditer(text):
        target = match.group(1).rstrip(".")
        resolved = os.path.join(repo_root, target)
        # Globby or placeholder-ish references ("BENCH_<name>.json") are
        # prose, not paths.
        if any(c in target for c in "*<>{}"):
            continue
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: stale file reference `{target}`")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    repo_root = os.path.abspath(args.root)

    md_files = []
    for dirpath, dirnames, filenames in os.walk(repo_root):
        dirnames[:] = [d for d in dirnames
                       if d not in {".git", ".claude"}
                       and not d.startswith("build")]
        md_files.extend(os.path.join(dirpath, f) for f in filenames
                        if f.endswith(".md") and f not in SKIP_FILES)

    anchor_cache = {}
    errors = []
    for md in sorted(md_files):
        errors.extend(check_file(md, repo_root, anchor_cache))

    rel = lambda p: os.path.relpath(p, repo_root)
    for error in errors:
        print(f"FAIL  {error}")
    print(f"checked {len(md_files)} markdown files"
          f" ({', '.join(sorted(rel(m) for m in md_files)[:6])}, ...)")
    if errors:
        print(f"{len(errors)} broken reference(s)")
        return 1
    print("all intra-repo links and file references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
