// Ad-hoc analytics through the composable query API: a sensor-readings
// schema (nothing TPC-H about it) is defined, loaded and queried entirely
// with typed expressions and declarative pipelines — no hand-written scan
// kernels. Shows:
//   1. grouped roll-ups (Avg/Min/Max per station) on the fused kernels,
//   2. parameterized filters re-run with different bindings,
//   3. dictionary-encoded string equality,
//   4. an expression aggregate outside the fused menu (vectorized path),
// all running on the engine's virtual snapshots (heterogeneous mode).
//
//   build/examples/adhoc_queries
#include <cstdio>

#include "engine/database.h"
#include "query/query.h"

using namespace anker;
using query::Avg;
using query::Between;
using query::Col;
using query::Count;
using query::DateDays;
using query::ExprType;
using query::F64;
using query::Max;
using query::Min;
using query::Param;
using query::Params;
using query::Query;
using query::QueryResult;
using query::Str;
using query::Sum;

int main() {
  // 1. Heterogeneous engine: OLAP runs on fine-granular virtual
  //    snapshots; the queries never notice.
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = 500;
  auto created = engine::Database::Create(config);
  ANKER_CHECK(created.ok());
  engine::Database& db = *created.value();
  db.Start();

  // 2. A sensor-readings table: 100k readings from 4 stations.
  constexpr size_t kRows = 100000;
  auto table_result = db.CreateTable(
      "readings",
      {{"sensor_id", storage::ValueType::kInt64},
       {"station", storage::ValueType::kDict32},
       {"day", storage::ValueType::kDate},
       {"temperature", storage::ValueType::kDouble},
       {"humidity", storage::ValueType::kDouble},
       {"power_watts", storage::ValueType::kDouble}},
      kRows);
  ANKER_CHECK(table_result.ok());
  storage::Table* readings = table_result.value();

  storage::Dictionary* stations = readings->GetDictionary("station");
  const char* station_names[4] = {"arctic", "desert", "forest", "reef"};
  for (const char* name : station_names) stations->GetOrAdd(name);

  for (size_t row = 0; row < kRows; ++row) {
    const uint32_t station = static_cast<uint32_t>(row % 4);
    const double base = 5.0 + 12.0 * static_cast<double>(station);
    readings->GetColumn("sensor_id")
        ->LoadValue(row, storage::EncodeInt64(
                             static_cast<int64_t>(row % 250)));
    readings->GetColumn("station")
        ->LoadValue(row, storage::EncodeDict(station));
    readings->GetColumn("day")->LoadValue(
        row, storage::EncodeDate(static_cast<int64_t>(row % 365)));
    readings->GetColumn("temperature")
        ->LoadValue(row, storage::EncodeDouble(
                             base + static_cast<double>(row % 17) * 0.5));
    readings->GetColumn("humidity")
        ->LoadValue(row, storage::EncodeDouble(
                             0.2 + 0.02 * static_cast<double>(row % 30)));
    readings->GetColumn("power_watts")
        ->LoadValue(row, storage::EncodeDouble(
                             1.5 + 0.1 * static_cast<double>(row % 11)));
  }

  // 3. Per-station climate roll-up — a grouped query on the fused
  //    kernels. One definition, executed per snapshot.
  auto rollup = Query::On(readings)
                    .Aggregate({Avg(Col("temperature")).As("avg_temp"),
                                Min(Col("temperature")).As("min_temp"),
                                Max(Col("temperature")).As("max_temp"),
                                Count().As("readings")})
                    .GroupBy({"station"})
                    .Build();
  ANKER_CHECK(rollup.ok());
  auto rollup_result = db.Run(rollup.value(), Params());
  ANKER_CHECK(rollup_result.ok());
  std::printf("station climate roll-up (%zu rows scanned):\n",
              static_cast<size_t>(rollup_result.value().rows_scanned));
  std::printf("  %-8s %9s %9s %9s %9s\n", "station", "avg", "min", "max",
              "count");
  for (const QueryResult::Row& row : rollup_result.value().rows) {
    std::printf("  %-8s %9.2f %9.2f %9.2f %9.0f\n",
                stations->Decode(static_cast<uint32_t>(row.keys[0])).c_str(),
                row.values[0], row.values[1], row.values[2],
                row.values[3]);
  }

  // 4. Parameterized window: summer energy draw, re-run for two windows
  //    without rebuilding the plan.
  auto energy =
      Query::On(readings)
          .Filter(Between(Col("day"), Param("from", ExprType::kDate),
                          Param("to", ExprType::kDate)))
          .Aggregate({Sum(Col("power_watts")).As("total_watts"),
                      Count().As("n")})
          .Build();
  ANKER_CHECK(energy.ok());
  for (const auto& [label, from, to] :
       {std::tuple{"summer", int64_t{172}, int64_t{264}},
        std::tuple{"winter", int64_t{0}, int64_t{58}}}) {
    auto result = db.Run(energy.value(),
                         Params().SetDate("from", from).SetDate("to", to));
    ANKER_CHECK(result.ok());
    std::printf("%s energy: %.1f watt-readings over %.0f samples\n", label,
                result.value().Value("total_watts"),
                result.value().Value("n"));
  }

  // 5. Dictionary equality by string, plus an expression aggregate
  //    outside the fused menu (humidity-weighted temperature) — this one
  //    lowers onto the vectorized selection path.
  auto reef = Query::On(readings)
                  .Filter(Col("station") == Str("reef"))
                  .Filter(Col("humidity") > Param("min_hum",
                                                  ExprType::kDouble))
                  .Aggregate({Avg(Col("temperature") *
                                  (F64(1.0) + Col("humidity")))
                                  .As("muggy_index")})
                  .Build();
  ANKER_CHECK(reef.ok());
  auto reef_result =
      db.Run(reef.value(), Params().SetDouble("min_hum", 0.5));
  ANKER_CHECK(reef_result.ok());
  std::printf("reef muggy index (humid readings only): %.3f\n",
              reef_result.value().Value("muggy_index"));

  // 6. Queries keep reading their snapshot while OLTP writes land: the
  //    same plan sees the mutation only once a new epoch is pinned.
  auto txn = db.BeginOltp();
  txn->Write(readings->GetColumn("power_watts"), 0,
             storage::EncodeDouble(999.0));
  ANKER_CHECK(db.Commit(txn.get()).ok());
  auto after = db.Run(energy.value(),
                      Params().SetDate("from", 0).SetDate("to", 364));
  ANKER_CHECK(after.ok());
  std::printf("after a committed write, full-year energy: %.1f "
              "(tight rows: %zu)\n",
              after.value().Value("total_watts"),
              after.value().scan.tight_rows);

  // Type errors surface as recoverable statuses, not crashes.
  auto bad = Query::On(readings)
                 .Filter(Col("station") + F64(1.0) > F64(0.0))
                 .Aggregate({Count().As("n")})
                 .Build();
  std::printf("type checker: %s\n", bad.status().ToString().c_str());

  db.Stop();
  return 0;
}
