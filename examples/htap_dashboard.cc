// HTAP dashboard scenario: the motivating workload of the paper — a stream
// of short update transactions (order processing) runs at full speed while
// an "analytics dashboard" repeatedly refreshes aggregate reports. Under
// heterogeneous processing, the reports run on fine-granular virtual
// snapshots and never slow the updates down.
//
//   build/examples/htap_dashboard [oltp_txns] [refreshes]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/timer.h"
#include "tpch/workload_driver.h"

using namespace anker;

int main(int argc, char** argv) {
  const uint64_t oltp_txns = argc > 1 ? std::atoll(argv[1]) : 100000;
  const int refreshes = argc > 2 ? std::atoi(argv[2]) : 5;

  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = 5000;
  engine::Database db(config);
  db.Start();

  std::printf("loading TPC-H style data...\n");
  tpch::TpchConfig tpch_config;
  tpch_config.lineitem_rows = 120000;
  auto instance = tpch::LoadTpch(&db, tpch_config);
  ANKER_CHECK(instance.ok());
  tpch::WorkloadDriver driver(&db, instance.value());

  // Order-processing stream on 3 background threads.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> processed{0};
  std::vector<std::thread> workers;
  for (int worker = 0; worker < 3; ++worker) {
    workers.emplace_back([&, worker] {
      Rng rng(worker + 1);
      while (!stop.load(std::memory_order_relaxed) &&
             processed.fetch_add(1, std::memory_order_relaxed) < oltp_txns) {
        (void)driver.oltp().RunRandom(&rng);
      }
    });
  }

  // Dashboard thread: refresh the pricing summary (Q1), the revenue
  // forecast (Q6) and the order-priority report (Q4) on fresh snapshots.
  Rng rng(99);
  for (int refresh = 1; refresh <= refreshes; ++refresh) {
    std::printf("\n--- dashboard refresh %d (orders processed so far: %zu) "
                "---\n",
                refresh,
                static_cast<size_t>(processed.load()));
    for (tpch::OlapKind kind :
         {tpch::OlapKind::kQ1, tpch::OlapKind::kQ6, tpch::OlapKind::kQ4}) {
      const tpch::OlapParams params =
          driver.queries().RandomParams(kind, &rng);
      Timer timer;
      auto result = driver.RunOlapOnce(kind, params);
      ANKER_CHECK(result.ok());
      std::printf("  %-10s digest=%18.2f rows=%8zu  (%.3f ms, "
                  "%zu rows scanned tight / %zu resolved)\n",
                  tpch::OlapKindName(kind), result.value().digest,
                  static_cast<size_t>(result.value().rows_considered),
                  timer.ElapsedMillis(), result.value().scan.tight_rows,
                  result.value().scan.resolved_rows);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();

  const txn::TxnStats stats = db.txn_manager().stats();
  std::printf("\norder stream: %zu commits, %zu ww-aborts, %zu validation "
              "aborts\n",
              static_cast<size_t>(stats.commits),
              static_cast<size_t>(stats.aborts_ww),
              static_cast<size_t>(stats.aborts_validation));
  std::printf("snapshot epochs materialized %zu column snapshots\n",
              db.snapshot_manager()->total_materializations());
  db.Stop();
  return 0;
}
