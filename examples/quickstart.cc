// Quickstart: create a database in heterogeneous (AnKer) mode, define a
// table, run OLTP updates and an OLAP scan on a virtual snapshot, then
// the same engine with durability on — commit, "crash", recover.
//
//   build/examples/quickstart
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/database.h"
#include "storage/value.h"
#include "wal/io_util.h"

using namespace anker;

// Portable scratch location: honor TMPDIR, fall back to /tmp. Examples
// must run as any user — no /var/lib-style paths that need root.
static std::string TempDataDir() {
  const char* base = std::getenv("TMPDIR");
  return std::string(base != nullptr ? base : "/tmp") +
         "/anker-quickstart-db";
}

int main() {
  // 1. Configure the engine: heterogeneous processing (OLAP on virtual
  //    snapshots) with the emulated vm_snapshot backend, a snapshot epoch
  //    every 1000 commits.
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = 1000;
  engine::Database db(config);
  db.Start();

  // 2. Create a table: accounts(id INT64, balance DOUBLE).
  auto table = db.CreateTable(
      "accounts",
      {{"id", storage::ValueType::kInt64},
       {"balance", storage::ValueType::kDouble}},
      /*num_rows=*/10000);
  ANKER_CHECK(table.ok());
  storage::Column* id = table.value()->GetColumn("id");
  storage::Column* balance = table.value()->GetColumn("balance");

  // 3. Bulk-load initial data (unversioned, timestamp 0).
  for (size_t row = 0; row < 10000; ++row) {
    id->LoadValue(row, storage::EncodeInt64(static_cast<int64_t>(row)));
    balance->LoadValue(row, storage::EncodeDouble(100.0));
  }

  // 4. OLTP: transfer 25.0 from account 1 to account 2, transactionally.
  auto txn = db.BeginOltp();
  const double from = storage::DecodeDouble(txn->Read(balance, 1));
  const double to = storage::DecodeDouble(txn->Read(balance, 2));
  txn->Write(balance, 1, storage::EncodeDouble(from - 25.0));
  txn->Write(balance, 2, storage::EncodeDouble(to + 25.0));
  Status committed = db.Commit(txn.get());
  std::printf("transfer committed: %s\n", committed.ToString().c_str());

  // 5. OLAP: sum all balances on a snapshot. The snapshot is materialized
  //    lazily for exactly the columns the query touches.
  auto olap = db.BeginOlap({balance});
  ANKER_CHECK(olap.ok());
  const engine::ColumnReader reader = olap.value()->Reader(balance);
  const double total =
      engine::ScanColumnSum(reader, /*as_double=*/true, nullptr);
  std::printf("total balance (on snapshot, epoch ts %zu): %.2f\n",
              static_cast<size_t>(olap.value()->read_ts()), total);
  ANKER_CHECK(db.FinishOlap(std::move(olap.TakeValue())).ok());

  // 6. Conflicting writers: first committer wins, the loser aborts cheaply.
  auto t1 = db.BeginOltp();
  auto t2 = db.BeginOltp();
  t1->Write(balance, 7, storage::EncodeDouble(1.0));
  t2->Write(balance, 7, storage::EncodeDouble(2.0));
  std::printf("t1 commit: %s\n", db.Commit(t1.get()).ToString().c_str());
  std::printf("t2 commit: %s (write-write conflict)\n",
              db.Commit(t2.get()).ToString().c_str());

  db.Stop();

  // 7. Durability: the same engine with a write-ahead log. Commits are
  //    on disk when they return; Open() recovers the exact state. The
  //    config validator probes (mkdir -p) the directory up front, so a
  //    bad location fails here with a recoverable Status, not deep
  //    inside the engine.
  const std::string data_dir = TempDataDir();
  wal::RemoveDirRecursive(data_dir);
  engine::DatabaseConfig durable = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  durable.durability = wal::DurabilityMode::kGroupCommit;
  durable.data_dir = data_dir;
  {
    auto fresh = engine::Database::Create(durable);
    ANKER_CHECK(fresh.ok());
    auto ledger = fresh.value()->CreateTable(
        "ledger", {{"amount", storage::ValueType::kDouble}}, 8);
    ANKER_CHECK(ledger.ok());
    ANKER_CHECK(fresh.value()->Checkpoint().ok());  // Load -> durable.
    auto t = fresh.value()->BeginOltp();
    t->Write(ledger.value()->GetColumn("amount"), 0,
             storage::EncodeDouble(123.45));
    ANKER_CHECK(fresh.value()->Commit(t.get()).ok());  // fsynced ack
  }  // Destructor ~ "crash": no shutdown checkpoint taken.
  auto reopened = engine::Database::Open(durable);
  ANKER_CHECK(reopened.ok());
  const double recovered = storage::DecodeDouble(
      reopened.value()
          ->catalog()
          .GetTable("ledger")
          ->GetColumn("amount")
          ->ReadLatestRaw(0));
  std::printf("recovered ledger amount after reopen: %.2f (from %s)\n",
              recovered, data_dir.c_str());
  reopened.value().reset();
  wal::RemoveDirRecursive(data_dir);
  return 0;
}
