// Snapshot playground: the snapshotting subsystem in isolation. Walks
// through the same column with each backend — physical copy, rewired
// memfd mapping with manual COW, and the emulated vm_snapshot — and shows
// creation cost, write cost and VMA fragmentation side by side.
//
//   build/examples/snapshot_playground [column_mb]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "snapshot/snapshotable_buffer.h"
#include "vm/page.h"
#include "vm/proc_maps.h"

using namespace anker;
using snapshot::BufferBackend;
using snapshot::SnapshotView;
using vm::kPageSize;

namespace {

void Demo(BufferBackend backend, size_t column_bytes) {
  std::printf("\n=== backend: %s ===\n",
              snapshot::BufferBackendName(backend));
  auto created = snapshot::CreateBuffer(backend, column_bytes);
  ANKER_CHECK(created.ok());
  auto buffer = created.TakeValue();
  const size_t pages = buffer->size() / kPageSize;

  // Fill the column.
  for (size_t page = 0; page < pages; ++page) {
    buffer->StoreU64(page * kPageSize, page);
  }

  // Snapshot 1: clean column.
  Timer t1;
  auto snap1 = buffer->TakeSnapshot();
  ANKER_CHECK(snap1.ok());
  std::printf("snapshot of clean column:          %8.3f ms\n",
              t1.ElapsedMillis());

  // Dirty 10% of the pages, measuring the write cost (first write to a
  // snapshot-shared page pays the COW).
  Timer t2;
  for (size_t page = 0; page < pages; page += 10) {
    buffer->StoreU64(page * kPageSize, page + 1);
  }
  std::printf("first-write cost per dirtied page: %8.3f us\n",
              t2.ElapsedMicros() / (pages / 10.0));

  // Snapshot 2: after the writes.
  Timer t3;
  auto snap2 = buffer->TakeSnapshot();
  ANKER_CHECK(snap2.ok());
  std::printf("snapshot after 10%% dirty pages:    %8.3f ms\n",
              t3.ElapsedMillis());

  // Isolation check.
  ANKER_CHECK(snap1.value()->ReadU64(0) == 0);
  ANKER_CHECK(snap2.value()->ReadU64(0) == 1);
  buffer->StoreU64(0, 12345);
  ANKER_CHECK(snap2.value()->ReadU64(0) == 1);
  std::printf("isolation verified: snapshots unaffected by later writes\n");

  std::printf("VMAs backing the source column:    %8zu\n",
              vm::CountVmasInRange(buffer->data(), buffer->size()));
  const snapshot::BufferStats stats = buffer->stats();
  std::printf("stats: %zu snapshots, %zu manual COW faults, %zu dirty "
              "pages flushed\n",
              stats.snapshots_taken, stats.cow_faults,
              stats.dirty_pages_flushed);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t column_mb = argc > 1 ? std::atoll(argv[1]) : 8;
  const size_t column_bytes = column_mb << 20;
  std::printf("column size: %zu MB (%zu pages)\n", column_mb,
              column_bytes / kPageSize);
  Demo(BufferBackend::kPhysical, column_bytes);
  Demo(BufferBackend::kRewired, column_bytes);
  Demo(BufferBackend::kVmSnapshot, column_bytes);
  return 0;
}
