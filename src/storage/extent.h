#ifndef ANKER_STORAGE_EXTENT_H_
#define ANKER_STORAGE_EXTENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/extent_codec.h"
#include "storage/value.h"

namespace anker::storage {

/// Identity of one published extent file as seen by segments and
/// checkpoints: enough to find the file, verify it byte-for-byte, and
/// account for its size without re-reading it.
struct PublishedExtent {
  uint64_t id = 0;
  uint32_t crc = 0;  ///< CRC32C over the whole frame file (unmasked).
  uint64_t file_bytes = 0;
  ExtentEncoding encoding = ExtentEncoding::kPlainU64;
};

/// Cold-tier counters, all monotonic over the store's lifetime. The
/// differential residency suite keys off `segment_fault_ins` to prove a
/// run actually crossed the cold tier; the bench emits the publish/reuse
/// byte counters.
struct ExtentTierCounters {
  uint64_t extents_published = 0;
  uint64_t publish_bytes = 0;   ///< Encoded bytes written to extent files.
  uint64_t extents_loaded = 0;  ///< Decode passes (fault-ins + recovery).
  uint64_t load_bytes = 0;
  uint64_t segments_evicted = 0;
  uint64_t evicted_bytes = 0;  ///< Raw slot bytes released to the cold tier.
  uint64_t segment_fault_ins = 0;
  uint64_t fault_in_bytes = 0;  ///< Raw slot bytes restored from extents.
  uint64_t files_pruned = 0;
  uint64_t tmp_pruned = 0;
};

/// Flat store of immutable extent files under `<data_dir>/extents/`, named
/// `ext-<id>.ext`. Publication follows the WAL/checkpoint discipline:
/// write to `ext-<id>.ext.tmp`, fsync, rename, fsync the directory — a
/// crash leaves either a complete published extent or a `.tmp` orphan that
/// Open() prunes. Files are immutable once published; superseded or
/// unreferenced ones are garbage-collected by Prune() against the keep-set
/// derived from the current checkpoint manifest plus live segments.
///
/// Thread safety: Publish and Load are safe to call concurrently. Prune
/// must be serialized against Publish by the caller (the engine runs both
/// under its cold-tier mutex / the checkpoint mutex), otherwise a file
/// published between the keep-set walk and the directory scan could be
/// deleted while referenced.
class ExtentStore {
 public:
  ANKER_DISALLOW_COPY_AND_MOVE(ExtentStore);

  /// Opens (creating if needed) the extent directory, removes orphaned
  /// `.tmp` files from a crashed publication, and seeds the id allocator
  /// past every file on disk.
  static Result<std::unique_ptr<ExtentStore>> Open(const std::string& dir);

  /// Encodes `row_count` slots and durably publishes them as a new extent
  /// file. Honors the `extent.publish.pre` / `extent.publish.post` fault
  /// points (kill or injected IO failure) on either side of the rename.
  Result<PublishedExtent> Publish(const uint64_t* slots, size_t row_count,
                                  ValueType type);

  /// Reads extent `id` back into `out` via a shared read-only mapping,
  /// verifying the whole-file CRC and the advertised row count against the
  /// caller's expectation before any byte is trusted. `file_bytes`, when
  /// non-null, receives the on-disk frame size.
  Status Load(uint64_t id, uint32_t expected_crc, uint64_t expected_rows,
              std::vector<uint64_t>* out, uint64_t* file_bytes = nullptr);

  /// Deletes every published extent whose id is not in `keep`, plus any
  /// stray `.tmp`. Best-effort: individual unlink failures are skipped.
  Status Prune(const std::unordered_set<uint64_t>& keep);

  /// Raises the id allocator to at least `next_id` (recovery replays the
  /// manifest's allocator watermark so restarts never reuse an id).
  void NoteNextId(uint64_t next_id);
  uint64_t next_id() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  std::string ExtentPath(uint64_t id) const;
  const std::string& dir() const { return dir_; }

  /// Coarse LRU clock for coldest-first eviction: bumped once per OLAP
  /// acquisition / enforcement pass, sampled by segment touches.
  uint64_t AdvanceClock() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t clock_now() const {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Counter hooks for ColumnSegments (evictions and fault-ins happen at
  /// the segment layer but are reported centrally).
  void RecordEviction(uint64_t raw_bytes) {
    segments_evicted_.fetch_add(1, std::memory_order_relaxed);
    evicted_bytes_.fetch_add(raw_bytes, std::memory_order_relaxed);
  }
  void RecordFaultIn(uint64_t raw_bytes) {
    segment_fault_ins_.fetch_add(1, std::memory_order_relaxed);
    fault_in_bytes_.fetch_add(raw_bytes, std::memory_order_relaxed);
  }

  ExtentTierCounters counters() const;

 private:
  explicit ExtentStore(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> clock_{0};

  std::atomic<uint64_t> extents_published_{0};
  std::atomic<uint64_t> publish_bytes_{0};
  std::atomic<uint64_t> extents_loaded_{0};
  std::atomic<uint64_t> load_bytes_{0};
  std::atomic<uint64_t> segments_evicted_{0};
  std::atomic<uint64_t> evicted_bytes_{0};
  std::atomic<uint64_t> segment_fault_ins_{0};
  std::atomic<uint64_t> fault_in_bytes_{0};
  std::atomic<uint64_t> files_pruned_{0};
  std::atomic<uint64_t> tmp_pruned_{0};
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_EXTENT_H_
