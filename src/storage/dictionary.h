#ifndef ANKER_STORAGE_DICTIONARY_H_
#define ANKER_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace anker::storage {

/// Order-preserving-free string dictionary for VARCHAR/CHAR columns
/// (l_returnflag, o_orderpriority, p_brand, ...). Codes are dense uint32
/// values stored in the column slots. The dictionary is built during data
/// load and is immutable afterwards: the paper's OLTP transactions always
/// pick *existing* values for string attributes (Section 5.2), so updates
/// never add entries.
class Dictionary {
 public:
  Dictionary() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(Dictionary);

  /// Returns the code for `value`, inserting it if new. Thread-safe; used
  /// only during load.
  uint32_t GetOrAdd(const std::string& value);

  /// Code lookup without insertion.
  Result<uint32_t> Lookup(const std::string& value) const;

  /// Reverse lookup. Code must exist.
  const std::string& Decode(uint32_t code) const;

  size_t size() const;

  /// All entries in code order (checkpoint serialization). The dictionary
  /// is immutable after load, so the copy is a consistent image.
  std::vector<std::string> Snapshot() const;

  /// Bulk-loads a serialized dictionary image (recovery). The dictionary
  /// must be empty; entry i receives code i, reproducing the image the
  /// checkpoint was taken from.
  void Preload(const std::vector<std::string>& entries);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, uint32_t> to_code_;
  std::vector<std::string> to_value_;
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_DICTIONARY_H_
