#include "storage/segment_storage.h"

#include <cstring>

namespace anker::storage {

namespace {

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

unsigned ShiftFor(size_t v) {
  return static_cast<unsigned>(__builtin_ctzll(v));
}

}  // namespace

ColumnSegments::ColumnSegments(snapshot::SnapshotableBuffer* buffer,
                               mvcc::VersionStore* versions, Latch* latch,
                               size_t num_rows, size_t segment_rows,
                               ValueType type, ExtentStore* store,
                               std::string desc)
    : buffer_(buffer),
      versions_(versions),
      latch_(latch),
      num_rows_(num_rows),
      segment_rows_(segment_rows),
      segment_shift_(ShiftFor(segment_rows)),
      type_(type),
      store_(store),
      desc_(std::move(desc)) {
  ANKER_CHECK_MSG(IsPowerOfTwo(segment_rows) && segment_rows >= 1024,
                  "cold_segment_rows must be a power of two >= 1024");
  ANKER_CHECK(segment_rows <= kMaxExtentRows);
  const size_t count = (num_rows + segment_rows - 1) / segment_rows;
  segments_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto seg = std::make_unique<Segment>();
    seg->row_begin = i * segment_rows;
    seg->row_count = std::min(segment_rows, num_rows - seg->row_begin);
    segments_.push_back(std::move(seg));
  }
}

bool ColumnSegments::TryReadFast(const Segment& seg, size_t row,
                                 uint64_t* out) const {
  const uint64_t g = seg.gen.load(std::memory_order_acquire);
  if ((g & 1) != 0) return false;
  if (seg.state.load(std::memory_order_acquire) != kResident) return false;
  // LoadU64 is an acquire load, so the gen re-check below cannot be
  // reordered before it: a read that overlapped an eviction's page
  // release is reliably detected and discarded.
  const uint64_t value = buffer_->LoadU64(row * sizeof(uint64_t));
  if (seg.gen.load(std::memory_order_acquire) != g) return false;
  *out = value;
  return true;
}

uint64_t ColumnSegments::Read(size_t row) {
  Segment& seg = SegmentFor(row);
  uint64_t value = 0;
  if (TryReadFast(seg, row, &value)) {
    Touch(seg);
    return value;
  }
  // Retry under the segment lock: the seqlock may have failed only
  // because an eviction was mid-release.
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    if (seg.state.load(std::memory_order_relaxed) == kResident) {
      Touch(seg);
      return buffer_->LoadU64(row * sizeof(uint64_t));
    }
  }
  // Cold: fault the segment in under the column's exclusive latch. The
  // restore writes through WriteSpan, whose dirty tracking is only safe
  // with committers drained (they hold the latch shared). The segment
  // lock is NOT held while acquiring the latch — a committer blocked on
  // seg.mu while we waited for its latch would deadlock otherwise.
  ExclusiveGuard guard(*latch_);
  std::lock_guard<std::mutex> lock(seg.mu);
  if (seg.state.load(std::memory_order_relaxed) != kResident) {
    const Status s = FaultInLocked(seg);
    ANKER_CHECK_MSG(s.ok(), "cold segment fault-in failed");
  }
  Touch(seg);
  return buffer_->LoadU64(row * sizeof(uint64_t));
}

std::unique_lock<std::mutex> ColumnSegments::BeginWrite(size_t row) {
  Segment& seg = SegmentFor(row);
  std::unique_lock<std::mutex> lock(seg.mu);
  if (seg.state.load(std::memory_order_relaxed) != kResident) {
    // Write-side fault-in runs in contexts that already serialize dirty
    // tracking (commit critical section or quiesced load), so no latch
    // upgrade is needed here.
    const Status s = FaultInLocked(seg);
    ANKER_CHECK_MSG(s.ok(), "cold segment fault-in failed on write");
  }
  seg.dirty_gen.fetch_add(1, std::memory_order_relaxed);
  Touch(seg);
  return lock;
}

Status ColumnSegments::FaultInLocked(Segment& seg) {
  ANKER_CHECK_MSG(seg.extent_id != 0 &&
                      seg.published_gen ==
                          seg.dirty_gen.load(std::memory_order_relaxed),
                  "cold segment without a current extent");
  std::vector<uint64_t> slots;
  ANKER_RETURN_IF_ERROR(store_->Load(seg.extent_id, seg.extent_crc,
                                     seg.row_count, &slots));
  buffer_->WriteSpan(seg.row_begin * sizeof(uint64_t), slots.data(),
                     slots.size() * sizeof(uint64_t));
  // Restoring does not advance dirty_gen: the logical content is exactly
  // the published extent, so incremental checkpoints keep re-referencing
  // it across fault-ins.
  seg.state.store(kResident, std::memory_order_release);
  store_->RecordFaultIn(seg.row_count * sizeof(uint64_t));
  return Status::OK();
}

Result<std::shared_ptr<void>> ColumnSegments::PinResidentLocked() {
  pins_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& seg_ptr : segments_) {
    Segment& seg = *seg_ptr;
    std::lock_guard<std::mutex> lock(seg.mu);
    if (seg.state.load(std::memory_order_relaxed) != kResident) {
      const Status s = FaultInLocked(seg);
      if (!s.ok()) {
        pins_.fetch_sub(1, std::memory_order_release);
        return s;
      }
    }
    Touch(seg);
  }
  std::atomic<uint64_t>* pins = &pins_;
  return std::shared_ptr<void>(static_cast<void*>(this),
                               [pins](void*) {
                                 pins->fetch_sub(
                                     1, std::memory_order_release);
                               });
}

void ColumnSegments::CollectSpillCandidates(
    std::vector<SpillCandidate>* out) const {
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = *segments_[i];
    if (seg.state.load(std::memory_order_acquire) != kResident) continue;
    SpillCandidate c;
    c.segment = i;
    c.last_access = seg.last_access.load(std::memory_order_relaxed);
    c.bytes = seg.row_count * sizeof(uint64_t);
    out->push_back(c);
  }
}

Result<bool> ColumnSegments::TrySpill(size_t segment) {
  ANKER_CHECK(segment < segments_.size());
  Segment& seg = *segments_[segment];
  if (pins_.load(std::memory_order_acquire) > 0) return false;
  if (seg.state.load(std::memory_order_acquire) != kResident) return false;

  // Phase A: make sure a current extent exists. Bytes are captured under
  // the segment lock (excluding writers to this segment only) and tagged
  // with the dirty generation; the durable publish happens outside every
  // lock and is discarded if a write slipped in meanwhile.
  uint64_t captured_gen = 0;
  std::vector<uint64_t> slots;
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    if (seg.state.load(std::memory_order_relaxed) != kResident) {
      return false;
    }
    captured_gen = seg.dirty_gen.load(std::memory_order_relaxed);
    if (seg.published_gen != captured_gen) {
      slots.resize(seg.row_count);
      std::memcpy(slots.data(),
                  buffer_->data() + seg.row_begin * sizeof(uint64_t),
                  seg.row_count * sizeof(uint64_t));
    }
  }
  if (!slots.empty()) {
    auto published = store_->Publish(slots.data(), slots.size(), type_);
    if (!published.ok()) return published.status();
    std::lock_guard<std::mutex> lock(seg.mu);
    if (seg.dirty_gen.load(std::memory_order_relaxed) != captured_gen) {
      // A write intervened; the fresh extent is unreferenced garbage the
      // next checkpoint prune collects.
      return false;
    }
    seg.published_gen = captured_gen;
    seg.extent_id = published.value().id;
    seg.extent_crc = published.value().crc;
    seg.extent_bytes = published.value().file_bytes;
  }

  // Phase B: release the buffer range under the column's exclusive latch
  // — it drains committers (ReleaseRange mutates dirty bitmaps that
  // writers also touch) and makes the version-chain walk safe.
  ExclusiveGuard guard(*latch_);
  std::lock_guard<std::mutex> lock(seg.mu);
  if (pins_.load(std::memory_order_relaxed) > 0) return false;
  if (seg.state.load(std::memory_order_relaxed) != kResident) return false;
  if (seg.published_gen != seg.dirty_gen.load(std::memory_order_relaxed)) {
    return false;
  }
  // Only version-free rows may go cold: a cold read restores the newest
  // committed slots, and any reader needing an older version would have
  // nothing to resolve against.
  if (versions_->HasVersionsInRange(seg.row_begin,
                                    seg.row_begin + seg.row_count)) {
    return false;
  }
  seg.gen.fetch_add(1, std::memory_order_release);  // Odd: readers bail.
  const Status released = buffer_->ReleaseRange(
      seg.row_begin * sizeof(uint64_t), seg.row_count * sizeof(uint64_t));
  if (released.ok()) {
    seg.state.store(kCold, std::memory_order_release);
  }
  seg.gen.fetch_add(1, std::memory_order_release);
  if (!released.ok()) return released;
  store_->RecordEviction(seg.row_count * sizeof(uint64_t));
  return true;
}

void ColumnSegments::SampleDirtyGens(std::vector<uint64_t>* out) const {
  out->clear();
  out->reserve(segments_.size());
  for (const auto& seg_ptr : segments_) {
    out->push_back(seg_ptr->dirty_gen.load(std::memory_order_relaxed));
  }
}

Result<std::vector<SegmentExtentRef>> ColumnSegments::CollectCheckpointRefs(
    const uint64_t* image, const std::vector<uint64_t>& image_gens) {
  ANKER_CHECK(image != nullptr && image_gens.size() == segments_.size());
  std::vector<SegmentExtentRef> refs;
  refs.reserve(segments_.size());
  for (size_t i = 0; i < segments_.size(); ++i) {
    Segment& seg = *segments_[i];
    const uint64_t image_gen = image_gens[i];
    SegmentExtentRef ref;
    ref.row_begin = seg.row_begin;
    ref.row_count = seg.row_count;

    {
      std::lock_guard<std::mutex> lock(seg.mu);
      if (seg.published_gen == image_gen) {
        // The published extent was captured at exactly the image's
        // content version — same generation, same bytes. Re-reference.
        ref.extent_id = seg.extent_id;
        ref.crc = seg.extent_crc;
        ref.file_bytes = seg.extent_bytes;
        ref.reused = true;
        refs.push_back(ref);
        continue;
      }
    }
    // Encode from the (immutable) image — no lock needed — and publish
    // outside every lock.
    auto published =
        store_->Publish(image + seg.row_begin, seg.row_count, type_);
    if (!published.ok()) return published.status();
    {
      // The extent is the segment's content at image_gen; record that
      // unconditionally. If no write landed since the seal the extent is
      // current (published_gen == dirty_gen) and a later spill evicts
      // without republishing; otherwise it is stale and the currency
      // check handles it. No concurrent publisher can race this: spills
      // hold the engine's cold mutex and checkpoints are serialized.
      std::lock_guard<std::mutex> lock(seg.mu);
      seg.published_gen = image_gen;
      seg.extent_id = published.value().id;
      seg.extent_crc = published.value().crc;
      seg.extent_bytes = published.value().file_bytes;
    }
    ref.extent_id = published.value().id;
    ref.crc = published.value().crc;
    ref.file_bytes = published.value().file_bytes;
    ref.reused = false;
    refs.push_back(ref);
  }
  return refs;
}

void ColumnSegments::NoteRecoveredExtent(const SegmentExtentRef& ref) {
  if (ref.row_begin + ref.row_count > num_rows_) return;
  const size_t index = ref.row_begin >> segment_shift_;
  if (index >= segments_.size()) return;
  Segment& seg = *segments_[index];
  if (seg.row_begin != ref.row_begin || seg.row_count != ref.row_count) {
    // Segment geometry changed across restarts; the rows are loaded, the
    // ref just cannot be reused. The next checkpoint re-publishes.
    return;
  }
  std::lock_guard<std::mutex> lock(seg.mu);
  seg.published_gen = seg.dirty_gen.load(std::memory_order_relaxed);
  seg.extent_id = ref.extent_id;
  seg.extent_crc = ref.crc;
  seg.extent_bytes = ref.file_bytes;
}

void ColumnSegments::AppendLiveExtents(
    std::unordered_set<uint64_t>* keep) const {
  for (const auto& seg_ptr : segments_) {
    const Segment& seg = *seg_ptr;
    std::lock_guard<std::mutex> lock(seg.mu);
    if (seg.extent_id != 0) keep->insert(seg.extent_id);
  }
}

uint64_t ColumnSegments::resident_bytes() const {
  uint64_t total = 0;
  for (const auto& seg_ptr : segments_) {
    if (seg_ptr->state.load(std::memory_order_acquire) == kResident) {
      total += seg_ptr->row_count * sizeof(uint64_t);
    }
  }
  return total;
}

uint64_t ColumnSegments::cold_bytes() const {
  uint64_t total = 0;
  for (const auto& seg_ptr : segments_) {
    if (seg_ptr->state.load(std::memory_order_acquire) == kCold) {
      total += seg_ptr->row_count * sizeof(uint64_t);
    }
  }
  return total;
}

}  // namespace anker::storage
