#include "storage/hash_index.h"

namespace anker::storage {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 16;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

HashIndex::HashIndex(size_t expected_keys)
    : slots_(NextPowerOfTwo(expected_keys * 2 + 16)) {
  for (auto& slot : slots_) slot.occupied = false;
}

uint64_t HashIndex::Mix(uint64_t key) {
  // Finalizer of MurmurHash3: good avalanche for sequential keys.
  key ^= key >> 33;
  key *= 0xFF51AFD7ED558CCDULL;
  key ^= key >> 33;
  key *= 0xC4CEB9FE1A85EC53ULL;
  key ^= key >> 33;
  return key;
}

void HashIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{0, 0, false});
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.occupied) {
      const Status st = Insert(slot.key, slot.row);
      ANKER_CHECK(st.ok());
    }
  }
}

Status HashIndex::Insert(uint64_t key, uint64_t row) {
  if ((size_ + 1) * 2 > slots_.size()) Grow();
  size_t i = ProbeStart(key);
  for (;;) {
    Slot& slot = slots_[i];
    if (!slot.occupied) {
      slot.key = key;
      slot.row = row;
      slot.occupied = true;
      ++size_;
      return Status::OK();
    }
    if (slot.key == key) {
      return Status::AlreadyExists("duplicate key in HashIndex");
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

Result<uint64_t> HashIndex::Lookup(uint64_t key) const {
  size_t i = ProbeStart(key);
  for (;;) {
    const Slot& slot = slots_[i];
    if (!slot.occupied) return Status::NotFound("key not in HashIndex");
    if (slot.key == key) return slot.row;
    i = (i + 1) & (slots_.size() - 1);
  }
}

bool HashIndex::Contains(uint64_t key) const { return Lookup(key).ok(); }

void HashIndex::ForEach(
    const std::function<void(uint64_t key, uint64_t row)>& fn) const {
  for (const Slot& slot : slots_) {
    if (slot.occupied) fn(slot.key, slot.row);
  }
}

}  // namespace anker::storage
