#ifndef ANKER_STORAGE_HASH_INDEX_H_
#define ANKER_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace anker::storage {

/// Open-addressing hash index mapping a 64-bit key to a row id. Built once
/// during data load (keys are primary keys; the paper's OLTP transactions
/// update non-key attributes only), then read concurrently without
/// synchronization. Linear probing, power-of-two capacity, ~50% max load.
class HashIndex {
 public:
  /// Creates an index sized for `expected_keys` entries.
  explicit HashIndex(size_t expected_keys);
  ANKER_DISALLOW_COPY_AND_MOVE(HashIndex);

  /// Inserts key -> row. Fails with kAlreadyExists on duplicate keys.
  /// Not thread-safe (load phase only).
  Status Insert(uint64_t key, uint64_t row);

  /// Looks up a key. Thread-safe after load.
  Result<uint64_t> Lookup(uint64_t key) const;

  /// True iff the key is present.
  bool Contains(uint64_t key) const;

  /// Visits every (key, row) pair in slot order (checkpoint
  /// serialization). Thread-safe after load, like Lookup.
  void ForEach(const std::function<void(uint64_t key, uint64_t row)>& fn)
      const;

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t key;
    uint64_t row;
    bool occupied;
  };

  static uint64_t Mix(uint64_t key);
  size_t ProbeStart(uint64_t key) const {
    return static_cast<size_t>(Mix(key)) & (slots_.size() - 1);
  }
  void Grow();

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_HASH_INDEX_H_
