#include "storage/table.h"

#include <algorithm>

#include "vm/page.h"

namespace anker::storage {

Table::Table(std::string name, std::vector<ColumnDef> schema, size_t num_rows)
    : name_(std::move(name)), schema_(std::move(schema)),
      num_rows_(num_rows) {}

Result<std::unique_ptr<Table>> Table::Create(
    std::string name, const std::vector<ColumnDef>& schema, size_t num_rows,
    snapshot::BufferBackend backend) {
  std::unique_ptr<Table> table(new Table(std::move(name), schema, num_rows));
  const size_t bytes = vm::RoundUpToPage(num_rows * sizeof(uint64_t));
  for (const ColumnDef& def : schema) {
    auto buffer = snapshot::CreateBuffer(backend, bytes);
    if (!buffer.ok()) return buffer.status();
    table->column_index_.emplace(def.name, table->columns_.size());
    table->columns_.push_back(std::make_unique<Column>(
        def.name, def.type, buffer.TakeValue(), num_rows));
  }
  return table;
}

Column* Table::GetColumn(const std::string& name) const {
  auto it = column_index_.find(name);
  ANKER_CHECK_MSG(it != column_index_.end(), name.c_str());
  return columns_[it->second].get();
}

Dictionary* Table::GetDictionary(const std::string& column_name) {
  std::lock_guard<std::mutex> guard(dict_mutex_);
  auto it = dictionaries_.find(column_name);
  if (it == dictionaries_.end()) {
    it = dictionaries_
             .emplace(column_name, std::make_unique<Dictionary>())
             .first;
  }
  return it->second.get();
}

const Dictionary* Table::GetDictionary(const std::string& column_name) const {
  std::lock_guard<std::mutex> guard(dict_mutex_);
  auto it = dictionaries_.find(column_name);
  ANKER_CHECK_MSG(it != dictionaries_.end(), column_name.c_str());
  return it->second.get();
}

std::vector<std::string> Table::DictionaryNames() const {
  std::lock_guard<std::mutex> guard(dict_mutex_);
  std::vector<std::string> names;
  names.reserve(dictionaries_.size());
  for (const auto& [name, dict] : dictionaries_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Table::CreatePrimaryIndex(size_t expected_keys) {
  primary_index_ = std::make_unique<HashIndex>(expected_keys);
  published_index_.store(primary_index_.get(), std::memory_order_release);
}

void Table::AdoptPrimaryIndex(std::unique_ptr<HashIndex> index) {
  ANKER_CHECK_MSG(primary_index_ == nullptr,
                  "primary index already built (immutable after load)");
  primary_index_ = std::move(index);
  published_index_.store(primary_index_.get(), std::memory_order_release);
}

}  // namespace anker::storage
