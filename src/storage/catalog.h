#ifndef ANKER_STORAGE_CATALOG_H_
#define ANKER_STORAGE_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/table.h"

namespace anker::storage {

/// Name -> Table registry for one database instance. Mostly populated
/// during load, but background machinery (the homogeneous GC walks
/// AllColumns on its own thread, the checkpointer snapshots AllTables)
/// can run while a table is still being added, so every access takes the
/// registry mutex. Table objects themselves are stable once returned —
/// the lock covers the map, not the tables.
class Catalog {
 public:
  Catalog() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(Catalog);

  Status AddTable(std::unique_ptr<Table> table);

  /// Table lookup; fail-fast on unknown names.
  Table* GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// All columns of all tables (used by the garbage collector).
  std::vector<Column*> AllColumns() const;

  std::vector<Table*> AllTables() const;

  size_t num_tables() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return tables_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_CATALOG_H_
