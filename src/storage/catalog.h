#ifndef ANKER_STORAGE_CATALOG_H_
#define ANKER_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/table.h"

namespace anker::storage {

/// Name -> Table registry for one database instance. Tables are registered
/// during load; afterwards the catalog is read-only and safe to share.
class Catalog {
 public:
  Catalog() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(Catalog);

  Status AddTable(std::unique_ptr<Table> table);

  /// Table lookup; fail-fast on unknown names.
  Table* GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// All columns of all tables (used by the garbage collector).
  std::vector<Column*> AllColumns() const;

  std::vector<Table*> AllTables() const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_CATALOG_H_
