#ifndef ANKER_STORAGE_COLUMN_H_
#define ANKER_STORAGE_COLUMN_H_

#include <memory>
#include <string>

#include "common/latch.h"
#include "common/macros.h"
#include "common/status.h"
#include "mvcc/version_store.h"
#include "snapshot/snapshotable_buffer.h"
#include "storage/segment_storage.h"
#include "storage/value.h"

namespace anker::storage {

/// Point-in-time snapshot of one column: the virtually snapshotted data
/// plus the handed-over version chains (paper contribution IV — snapshots
/// are taken *of versioned columns*, so a reader at the epoch timestamp can
/// still resolve versions written between the epoch trigger and the lazy
/// materialization).
struct ColumnSnapshot {
  /// Keeps the column's segments resident while the snapshot lives (null
  /// when the column is untiered). Declared first so it is destroyed
  /// last: the view must never outlive the residency it scans over.
  std::shared_ptr<void> residency_lease;
  std::unique_ptr<snapshot::SnapshotView> view;
  std::shared_ptr<mvcc::ChainDirectory> chains;  ///< nullptr when clean.
  /// Tiered columns only: each segment's dirty generation at seal time —
  /// the content version the view holds per segment. Incremental
  /// checkpoints use it to decide which published extents still match
  /// this image (see SegmentStorage::CollectCheckpointRefs).
  std::vector<uint64_t> segment_gens;
  mvcc::Timestamp epoch_ts = 0;  ///< Logical snapshot time (trigger).
  mvcc::Timestamp seal_ts = 0;   ///< Materialization time.
};

/// A fixed-width (8-byte slot) versioned column: the up-to-date data lives
/// in a SnapshotableBuffer, superseded values in a VersionStore. The latch
/// implements the paper's snapshot-consistency protocol (Section 2.2.3):
/// updaters hold it shared, snapshot materialization exclusive.
///
/// With tiering enabled (EnableTiering), a SegmentStorage layer under the
/// buffer lets fixed-size row segments go cold: their slots are released
/// after being published to an on-disk extent, and reads/writes fault them
/// back in transparently. An untiered column (`segments_ == nullptr`)
/// takes none of these paths — byte-for-byte today's behavior.
class Column {
 public:
  Column(std::string name, ValueType type,
         std::unique_ptr<snapshot::SnapshotableBuffer> buffer,
         size_t num_rows);
  ANKER_DISALLOW_COPY_AND_MOVE(Column);

  const std::string& name() const { return name_; }
  ValueType type() const { return type_; }
  size_t num_rows() const { return num_rows_; }

  /// Stable (table, column) ordinal the engine assigns when it registers
  /// the column for WAL addressing (table = creation order, column =
  /// schema position); immutable afterwards. Read lock-free on the commit
  /// path: registration happens-before any commit that can reference the
  /// column, because callers only learn about the column through the
  /// fully registered table.
  void SetStableId(uint32_t table_id, uint32_t column_id) {
    stable_table_id_ = table_id;
    stable_column_id_ = column_id;
  }
  uint32_t stable_table_id() const { return stable_table_id_; }
  uint32_t stable_column_id() const { return stable_column_id_; }

  /// Attaches the cold tier: rows are split into `segment_rows`-sized
  /// spillable segments backed by `store`. Must be called before the
  /// column is visible to any other thread (the engine does it while
  /// publishing the table).
  void EnableTiering(ExtentStore* store, size_t segment_rows);

  /// Residency layer, or nullptr when untiered.
  SegmentStorage* segments() const { return segments_.get(); }

  /// Unversioned store used during the initial data load (timestamp 0).
  void LoadValue(size_t row, uint64_t raw);

  /// Newest committed raw value (faults the row's segment in when cold).
  uint64_t ReadLatestRaw(size_t row) const {
    if (segments_ != nullptr) return segments_->Read(row);
    return buffer_->LoadU64(row * sizeof(uint64_t));
  }

  /// Raw value visible at `start_ts` (slot read first, then chain — see
  /// VersionStore::ResolveVisible for why the order matters).
  uint64_t ReadVisibleRaw(size_t row, mvcc::Timestamp start_ts) const {
    const uint64_t slot = ReadLatestRaw(row);
    return versions_->ResolveVisible(row, start_ts, slot);
  }

  /// Materializes a committed write: pushes the current value into the
  /// version chain, then overwrites the slot in place (newest-to-oldest
  /// order, paper Section 2.1). Must be called from the commit critical
  /// section while holding the column latch shared. Returns the value the
  /// slot held before the write — committers must take the old value from
  /// here rather than a separate ReadLatestRaw: the read path's cold-
  /// segment fault-in acquires the exclusive latch, which self-deadlocks
  /// under the shared hold, while this path faults in under the segment
  /// lock alone.
  uint64_t ApplyCommittedWrite(size_t row, uint64_t new_raw,
                               mvcc::Timestamp commit_ts);

  /// Commit timestamp of the last write to `row` (kLoadTimestamp if none
  /// newer than `since` exists) — first-committer-wins conflict checks.
  mvcc::Timestamp LastWriteTs(size_t row, mvcc::Timestamp since) const {
    return versions_->LastWriteTs(row, since);
  }

  /// Takes a virtual snapshot of the column and hands over the current
  /// version chains (paper Fig. 1, steps 4 and 7). `epoch_ts` is the
  /// logical snapshot timestamp logged at trigger time; `min_active_ts`
  /// (minimum start_ts of in-flight transactions) lets the column cut
  /// links to chain segments no reader can need.
  Result<ColumnSnapshot> MaterializeSnapshot(mvcc::Timestamp epoch_ts,
                                             mvcc::Timestamp seal_ts,
                                             mvcc::Timestamp min_active_ts);

  /// Faults every cold segment in and pins the column resident until the
  /// returned lease is dropped — live (non-snapshot) scans hold one so
  /// their raw pointers stay valid. Returns a null lease when untiered.
  Result<std::shared_ptr<void>> PinResident();

  /// Direct access for executors and the transaction manager.
  snapshot::SnapshotableBuffer* buffer() const { return buffer_.get(); }
  mvcc::VersionStore* versions() const { return versions_.get(); }
  Latch& latch() const { return latch_; }

  /// Raw base pointer of the up-to-date representation (live scans).
  /// With tiering on, callers must hold a residency lease.
  const uint8_t* raw_data() const { return buffer_->data(); }

 private:
  std::string name_;
  ValueType type_;
  std::unique_ptr<snapshot::SnapshotableBuffer> buffer_;
  std::unique_ptr<mvcc::VersionStore> versions_;
  std::unique_ptr<SegmentStorage> segments_;  ///< nullptr = untiered.
  size_t num_rows_;
  uint32_t stable_table_id_ = 0;
  uint32_t stable_column_id_ = 0;
  mutable Latch latch_;
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_COLUMN_H_
