#ifndef ANKER_STORAGE_SEGMENT_STORAGE_H_
#define ANKER_STORAGE_SEGMENT_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/latch.h"
#include "common/macros.h"
#include "common/status.h"
#include "mvcc/version_store.h"
#include "snapshot/snapshotable_buffer.h"
#include "storage/extent.h"
#include "storage/value.h"

namespace anker::storage {

/// One extent reference as recorded by an incremental checkpoint ("these
/// rows of this column are exactly the bytes of extent N"). `file_bytes`
/// and `reused` are in-memory accounting only; the serialized ACL2 record
/// carries id, row range and crc.
struct SegmentExtentRef {
  uint64_t extent_id = 0;
  uint64_t row_begin = 0;
  uint64_t row_count = 0;
  uint32_t crc = 0;       ///< Whole-file CRC32C of the extent.
  uint64_t file_bytes = 0;
  bool reused = false;  ///< True when the checkpoint re-referenced an
                        ///< already-published extent instead of writing.
};

/// Residency layer under Column: the column's rows are split into
/// fixed-size segments that are each either *resident* (their slots in the
/// column's SnapshotableBuffer are live) or *cold* (the slots were
/// released and the bytes live in a published extent file). The query
/// layer never sees the difference — reads fault cold segments back in,
/// and scans run over buffers whose residency is pinned for the scan's
/// lifetime. A null SegmentStorage on a column means "untiered": every
/// fast path keeps today's all-RAM behavior.
class SegmentStorage {
 public:
  virtual ~SegmentStorage() = default;

  /// Point read of the newest committed raw value, faulting the segment
  /// in from its extent when cold. Lock-free while the segment is
  /// resident. A fault-in that cannot read its extent back is fatal
  /// (ANKER_CHECK): the read path has no way to surface a status.
  virtual uint64_t Read(size_t row) = 0;

  /// Prepares `row`'s segment for a slot mutation: faults it in when
  /// cold and advances its dirty generation (invalidating any published
  /// extent). The returned lock is held by the caller across the slot
  /// store, so extent captures never see a torn write. Caller context
  /// must serialize buffer dirty tracking — the commit path (latches
  /// shared under the commit mutex) and quiesced loads both qualify.
  virtual std::unique_lock<std::mutex> BeginWrite(size_t row) = 0;

  /// Faults every segment in and pins the column resident; the returned
  /// lease unpins on destruction. Eviction skips pinned columns, so raw
  /// scan pointers stay valid for the lease's lifetime. Caller holds the
  /// column latch EXCLUSIVE (or the engine is quiesced).
  virtual Result<std::shared_ptr<void>> PinResidentLocked() = 0;

  struct SpillCandidate {
    size_t segment = 0;
    uint64_t last_access = 0;
    uint64_t bytes = 0;  ///< Raw slot bytes the eviction would release.
  };
  /// Appends every currently-resident segment (coldest-first ordering is
  /// the caller's job — it merges candidates across columns).
  virtual void CollectSpillCandidates(
      std::vector<SpillCandidate>* out) const = 0;

  /// Attempts to evict one segment: publish its extent if none is
  /// current, then release the buffer range. Returns false (not an
  /// error) when the segment is unspillable right now — pinned, already
  /// cold, carrying versions, or racing a writer. Takes the column latch
  /// exclusively for the release step; callers hold no locks.
  virtual Result<bool> TrySpill(size_t segment) = 0;

  /// Samples every segment's dirty generation. Called under the column's
  /// exclusive latch at snapshot seal time: the returned vector identifies
  /// the exact content version each segment had in that snapshot image.
  virtual void SampleDirtyGens(std::vector<uint64_t>* out) const = 0;

  /// One extent ref per segment for an incremental checkpoint, captured
  /// from `image` — a consistent snapshot of the whole column whose
  /// per-segment content versions are `image_gens` (from SampleDirtyGens
  /// at seal time). A segment whose published extent already carries its
  /// image generation is re-referenced without touching bytes; the rest
  /// are encoded from the image and published now. Never reads the live
  /// buffer, so concurrent commits cannot tear a transaction across the
  /// checkpoint.
  virtual Result<std::vector<SegmentExtentRef>> CollectCheckpointRefs(
      const uint64_t* image, const std::vector<uint64_t>& image_gens) = 0;

  /// Recovery: the checkpoint restored this ref's rows from its extent,
  /// so the segment's published extent is current again (until WAL replay
  /// dirties it). Refs that no longer line up with a segment boundary
  /// (the segment size changed across restarts) are silently ignored —
  /// the data is already loaded; the next checkpoint just re-publishes.
  virtual void NoteRecoveredExtent(const SegmentExtentRef& ref) = 0;

  /// Adds every extent id any segment still references to `keep` (the
  /// checkpoint prune keep-set).
  virtual void AppendLiveExtents(std::unordered_set<uint64_t>* keep) const = 0;

  virtual uint64_t resident_bytes() const = 0;
  virtual uint64_t cold_bytes() const = 0;
  virtual size_t num_segments() const = 0;
  virtual size_t segment_rows() const = 0;
};

/// The tiered implementation. Concurrency design, in one place:
///
///  - Every slot mutation goes through BeginWrite, which holds the
///    segment mutex across the store. Commits additionally hold the
///    column latch shared (and the engine's commit mutex).
///  - The resident fast path is a seqlock: readers check `gen` is even
///    and the state resident, load the slot, and re-check `gen`.
///    Eviction bumps `gen` odd before releasing pages and even after, so
///    a read that overlapped a release is discarded and retried slowly.
///    Eviction never changes logical content — only reads of released
///    (zeroed) pages must be excluded.
///  - Fault-in restores bytes with WriteSpan, whose dirty tracking is
///    not thread-safe against concurrent committers; reader-side
///    fault-ins therefore take the column latch exclusively (draining
///    committers) first. Write-side fault-ins already run serialized.
///  - Lock order is always: column latch, then segment mutex. Disk IO
///    (extent publication) happens outside both; captured bytes are
///    tagged with the segment's dirty generation and the publication is
///    discarded if a write intervened.
class ColumnSegments : public SegmentStorage {
 public:
  /// `segment_rows` must be a power of two (>= 1024 keeps segments
  /// page-aligned and whole version-metadata blocks). The last segment
  /// may be shorter. `desc` names the column in fatal messages.
  ColumnSegments(snapshot::SnapshotableBuffer* buffer,
                 mvcc::VersionStore* versions, Latch* latch, size_t num_rows,
                 size_t segment_rows, ValueType type, ExtentStore* store,
                 std::string desc);
  ANKER_DISALLOW_COPY_AND_MOVE(ColumnSegments);

  uint64_t Read(size_t row) override;
  std::unique_lock<std::mutex> BeginWrite(size_t row) override;
  Result<std::shared_ptr<void>> PinResidentLocked() override;
  void CollectSpillCandidates(
      std::vector<SpillCandidate>* out) const override;
  Result<bool> TrySpill(size_t segment) override;
  void SampleDirtyGens(std::vector<uint64_t>* out) const override;
  Result<std::vector<SegmentExtentRef>> CollectCheckpointRefs(
      const uint64_t* image,
      const std::vector<uint64_t>& image_gens) override;
  void NoteRecoveredExtent(const SegmentExtentRef& ref) override;
  void AppendLiveExtents(std::unordered_set<uint64_t>* keep) const override;
  uint64_t resident_bytes() const override;
  uint64_t cold_bytes() const override;
  size_t num_segments() const override { return segments_.size(); }
  size_t segment_rows() const override { return segment_rows_; }

 private:
  enum State : uint8_t { kResident = 0, kCold = 1 };

  struct Segment {
    /// Serializes slot writes, captures, fault-ins and state flips for
    /// this segment. Never held across disk IO.
    mutable std::mutex mu;
    /// Seqlock word for the lock-free resident read path; odd while an
    /// eviction is releasing pages.
    std::atomic<uint64_t> gen{0};
    std::atomic<uint8_t> state{kResident};
    /// Advances on every BeginWrite; the published extent is current iff
    /// published_gen matches. Starts at 1 with published_gen 0: a fresh
    /// segment has no current extent.
    std::atomic<uint64_t> dirty_gen{1};
    std::atomic<uint64_t> last_access{0};

    // Published-extent identity; guarded by mu.
    uint64_t published_gen = 0;
    uint64_t extent_id = 0;
    uint32_t extent_crc = 0;
    uint64_t extent_bytes = 0;

    size_t row_begin = 0;  ///< Immutable after construction.
    size_t row_count = 0;
  };

  Segment& SegmentFor(size_t row) {
    return *segments_[row >> segment_shift_];
  }
  /// Lock-free seqlock read; false when the segment is cold or an
  /// eviction overlapped.
  bool TryReadFast(const Segment& seg, size_t row, uint64_t* out) const;
  /// Restores a cold segment's bytes from its extent. Caller holds
  /// seg.mu and a context where WriteSpan's dirty tracking is safe (see
  /// class comment).
  Status FaultInLocked(Segment& seg);
  void Touch(Segment& seg) {
    const uint64_t now = store_->clock_now();
    if (seg.last_access.load(std::memory_order_relaxed) != now) {
      seg.last_access.store(now, std::memory_order_relaxed);
    }
  }

  snapshot::SnapshotableBuffer* buffer_;
  mvcc::VersionStore* versions_;
  Latch* latch_;
  size_t num_rows_;
  size_t segment_rows_;
  unsigned segment_shift_;
  ValueType type_;
  ExtentStore* store_;
  std::string desc_;
  std::vector<std::unique_ptr<Segment>> segments_;
  /// Active residency leases over the whole column; eviction refuses
  /// while > 0.
  std::atomic<uint64_t> pins_{0};
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_SEGMENT_STORAGE_H_
