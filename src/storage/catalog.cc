#include "storage/catalog.h"

namespace anker::storage {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  std::lock_guard<std::mutex> guard(mutex_);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = tables_.find(name);
  ANKER_CHECK_MSG(it != tables_.end(), name.c_str());
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return tables_.count(name) > 0;
}

std::vector<Column*> Catalog::AllColumns() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<Column*> columns;
  for (const auto& [name, table] : tables_) {
    for (size_t i = 0; i < table->num_columns(); ++i) {
      columns.push_back(table->GetColumnAt(i));
    }
  }
  return columns;
}

std::vector<Table*> Catalog::AllTables() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<Table*> tables;
  for (const auto& [name, table] : tables_) tables.push_back(table.get());
  return tables;
}

}  // namespace anker::storage
