#ifndef ANKER_STORAGE_TABLE_H_
#define ANKER_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/hash_index.h"

namespace anker::storage {

/// Declaration of one column in a table schema.
struct ColumnDef {
  std::string name;
  ValueType type;
};

/// Column-oriented table: a set of equally sized Columns, per-string-column
/// dictionaries, and an optional primary-key hash index. The row count is
/// fixed at creation (the paper's workload is update-only).
class Table {
 public:
  ANKER_DISALLOW_COPY_AND_MOVE(Table);

  /// Creates a table with the given schema; every column is backed by a
  /// buffer of the requested backend.
  static Result<std::unique_ptr<Table>> Create(
      std::string name, const std::vector<ColumnDef>& schema, size_t num_rows,
      snapshot::BufferBackend backend);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Column accessors; fail-fast on unknown names (schema errors are
  /// programming errors).
  Column* GetColumn(const std::string& name) const;
  Column* GetColumnAt(size_t i) const { return columns_[i].get(); }
  bool HasColumn(const std::string& name) const {
    return column_index_.count(name) > 0;
  }

  /// Dictionary for a kDict32 column (created lazily at first use).
  Dictionary* GetDictionary(const std::string& column_name);
  const Dictionary* GetDictionary(const std::string& column_name) const;

  /// Names of columns that have a dictionary, sorted (deterministic
  /// checkpoint manifests).
  std::vector<std::string> DictionaryNames() const;

  /// Primary-key index management (built during load).
  void CreatePrimaryIndex(size_t expected_keys);
  /// Publishes a fully built index (release-store; readers that observed
  /// `primary_index() == nullptr` a moment earlier either still see none
  /// or see the complete index, never one under construction). This is
  /// how the network server attaches an index while point lookups from
  /// other sessions may already be probing; in-process loaders use
  /// CreatePrimaryIndex + Insert single-threaded, as before. CHECK-fails
  /// if an index is already published (indexes are immutable after load).
  void AdoptPrimaryIndex(std::unique_ptr<HashIndex> index);
  HashIndex* primary_index() const {
    return published_index_.load(std::memory_order_acquire);
  }

  const std::vector<ColumnDef>& schema() const { return schema_; }

 private:
  Table(std::string name, std::vector<ColumnDef> schema, size_t num_rows);

  std::string name_;
  std::vector<ColumnDef> schema_;
  size_t num_rows_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, size_t> column_index_;
  std::unordered_map<std::string, std::unique_ptr<Dictionary>> dictionaries_;
  std::unique_ptr<HashIndex> primary_index_;  ///< Owner.
  /// Lock-free mirror primary_index() reads (see AdoptPrimaryIndex).
  std::atomic<HashIndex*> published_index_{nullptr};
  mutable std::mutex dict_mutex_;
};

}  // namespace anker::storage

#endif  // ANKER_STORAGE_TABLE_H_
