#ifndef ANKER_STORAGE_VALUE_H_
#define ANKER_STORAGE_VALUE_H_

#include <bit>
#include <cstdint>

namespace anker::storage {

/// Logical column types. Every column slot is physically a raw 8-byte word
/// so the snapshotting and versioning machinery is type-agnostic; these
/// helpers convert between the logical value and the raw slot encoding.
enum class ValueType {
  kInt64,   ///< Signed integer (keys, counts).
  kDouble,  ///< IEEE double (prices, discounts).
  kDate,    ///< Days since 1992-01-01 (TPC-H epoch), stored as int64.
  kDict32,  ///< Dictionary code for a string column.
};

inline uint64_t EncodeInt64(int64_t v) { return static_cast<uint64_t>(v); }
inline int64_t DecodeInt64(uint64_t raw) { return static_cast<int64_t>(raw); }

inline uint64_t EncodeDouble(double v) { return std::bit_cast<uint64_t>(v); }
inline double DecodeDouble(uint64_t raw) { return std::bit_cast<double>(raw); }

inline uint64_t EncodeDate(int64_t days) { return EncodeInt64(days); }
inline int64_t DecodeDate(uint64_t raw) { return DecodeInt64(raw); }

inline uint64_t EncodeDict(uint32_t code) { return code; }
inline uint32_t DecodeDict(uint64_t raw) { return static_cast<uint32_t>(raw); }

/// Typed three-way comparison of raw slot values. Needed by precision
/// locking: predicate ranges compare in the value domain, not on raw bits
/// (doubles and negative integers do not order correctly as uint64).
inline int CompareRaw(ValueType type, uint64_t a, uint64_t b) {
  switch (type) {
    case ValueType::kDouble: {
      const double da = DecodeDouble(a);
      const double db = DecodeDouble(b);
      return da < db ? -1 : (da > db ? 1 : 0);
    }
    case ValueType::kInt64:
    case ValueType::kDate: {
      const int64_t ia = DecodeInt64(a);
      const int64_t ib = DecodeInt64(b);
      return ia < ib ? -1 : (ia > ib ? 1 : 0);
    }
    case ValueType::kDict32: {
      const uint32_t ua = DecodeDict(a);
      const uint32_t ub = DecodeDict(b);
      return ua < ub ? -1 : (ua > ub ? 1 : 0);
    }
  }
  return 0;
}

/// True iff raw value v lies in the closed interval [lo, hi] under the
/// typed ordering.
inline bool RawInRange(ValueType type, uint64_t v, uint64_t lo, uint64_t hi) {
  return CompareRaw(type, v, lo) >= 0 && CompareRaw(type, v, hi) <= 0;
}

}  // namespace anker::storage

#endif  // ANKER_STORAGE_VALUE_H_
