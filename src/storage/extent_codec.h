#ifndef ANKER_STORAGE_EXTENT_CODEC_H_
#define ANKER_STORAGE_EXTENT_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace anker::storage {

/// Columnar encodings for one sealed, version-free column segment. The
/// encoder tries every applicable encoding and keeps the smallest frame;
/// ties resolve in enum order, so the choice is deterministic for a given
/// input (recovery digests depend on values, not on the encoding, but the
/// checkpoint-byte gates depend on the choice being stable).
enum class ExtentEncoding : uint8_t {
  kPlainU64 = 0,  ///< Raw 8-byte slots, memcpy in/out.
  kDictU64 = 1,   ///< Distinct values + bit-packed indices.
  kForInt64 = 2,  ///< Frame-of-reference: base + bit-packed deltas.
};

/// Frame layout (little-endian):
///   u32 magic "AEX1" | u8 version | u8 encoding | u16 reserved(0)
///   u64 row_count    | u64 payload_len
///   payload_len bytes of payload
///   u32 masked CRC32C over header + payload
inline constexpr uint32_t kExtentMagic = 0x31584541u;  // "AEX1"
inline constexpr uint8_t kExtentVersion = 1;
inline constexpr size_t kExtentHeaderBytes = 4 + 1 + 1 + 2 + 8 + 8;
inline constexpr size_t kExtentTrailerBytes = 4;
/// Dictionary encoding bails beyond this many distinct values ("dict
/// miss"): past that point the dictionary plus wide indices cannot beat
/// plain on 8-byte slots, so scanning further is wasted work.
inline constexpr size_t kMaxExtentDictEntries = 4096;
/// Hard cap on rows per extent; decode rejects anything larger before
/// allocating (a hostile frame must not size a vector from its own bytes).
inline constexpr size_t kMaxExtentRows = 1u << 24;

/// Encodes `row_count` raw slots into a self-verifying extent frame.
/// `type` gates the frame-of-reference candidate (integer-like columns
/// only); plain always applies, so encoding never fails. The chosen
/// encoding is reported through `chosen` when non-null.
std::string EncodeExtent(const uint64_t* slots, size_t row_count,
                         ValueType type, ExtentEncoding* chosen = nullptr);

/// Decodes a frame produced by EncodeExtent into `out` (resized to the
/// frame's row count). Every byte is validated before use: magic, version,
/// encoding, exact payload size, CRC, dictionary bounds and packed-stream
/// sizes. Truncated or bit-flipped frames come back as IoError, never as
/// wrong data or a crash.
Status DecodeExtent(std::string_view frame, std::vector<uint64_t>* out);

/// Row count a valid frame advertises (header fields + CRC are verified
/// first; cheap relative to a full decode only in that no payload pass
/// runs). Used by loaders to pre-check against the expected segment shape.
Result<uint64_t> ExtentRowCount(std::string_view frame);

const char* ExtentEncodingName(ExtentEncoding encoding);

}  // namespace anker::storage

#endif  // ANKER_STORAGE_EXTENT_CODEC_H_
