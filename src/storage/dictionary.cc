#include "storage/dictionary.h"

namespace anker::storage {

uint32_t Dictionary::GetOrAdd(const std::string& value) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = to_code_.find(value);
  if (it != to_code_.end()) return it->second;
  const uint32_t code = static_cast<uint32_t>(to_value_.size());
  to_value_.push_back(value);
  to_code_.emplace(value, code);
  return code;
}

Result<uint32_t> Dictionary::Lookup(const std::string& value) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = to_code_.find(value);
  if (it == to_code_.end()) {
    return Status::NotFound("dictionary value not found: " + value);
  }
  return it->second;
}

const std::string& Dictionary::Decode(uint32_t code) const {
  std::lock_guard<std::mutex> guard(mutex_);
  ANKER_CHECK(code < to_value_.size());
  return to_value_[code];
}

size_t Dictionary::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return to_value_.size();
}

std::vector<std::string> Dictionary::Snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return to_value_;
}

void Dictionary::Preload(const std::vector<std::string>& entries) {
  std::lock_guard<std::mutex> guard(mutex_);
  ANKER_CHECK_MSG(to_value_.empty(), "Preload into a non-empty dictionary");
  to_value_ = entries;
  for (uint32_t code = 0; code < to_value_.size(); ++code) {
    to_code_.emplace(to_value_[code], code);
  }
}

}  // namespace anker::storage
