#include "storage/column.h"

namespace anker::storage {

Column::Column(std::string name, ValueType type,
               std::unique_ptr<snapshot::SnapshotableBuffer> buffer,
               size_t num_rows)
    : name_(std::move(name)),
      type_(type),
      buffer_(std::move(buffer)),
      versions_(std::make_unique<mvcc::VersionStore>(num_rows)),
      num_rows_(num_rows) {
  ANKER_CHECK(buffer_->size() >= num_rows_ * sizeof(uint64_t));
}

void Column::EnableTiering(ExtentStore* store, size_t segment_rows) {
  ANKER_CHECK(segments_ == nullptr);
  segments_ = std::make_unique<ColumnSegments>(
      buffer_.get(), versions_.get(), &latch_, num_rows_, segment_rows,
      type_, store, name_);
}

void Column::LoadValue(size_t row, uint64_t raw) {
  ANKER_CHECK(row < num_rows_);
  std::unique_lock<std::mutex> segment_lock;
  if (segments_ != nullptr) segment_lock = segments_->BeginWrite(row);
  buffer_->StoreU64(row * sizeof(uint64_t), raw);
}

uint64_t Column::ApplyCommittedWrite(size_t row, uint64_t new_raw,
                                     mvcc::Timestamp commit_ts) {
  ANKER_CHECK(row < num_rows_);
  // BeginWrite faults the segment in when cold and holds the segment
  // lock across the slot store, so extent captures never see a torn
  // write. The old value is read only after residency is ensured.
  std::unique_lock<std::mutex> segment_lock;
  if (segments_ != nullptr) segment_lock = segments_->BeginWrite(row);
  const uint64_t old_raw = buffer_->LoadU64(row * sizeof(uint64_t));
  // Publication order: chain node first, slot second. A reader that
  // observes the new slot value is then guaranteed to observe the node
  // carrying the old one (both stores are release, loads acquire).
  versions_->AddVersion(row, old_raw, commit_ts);
  buffer_->StoreU64(row * sizeof(uint64_t), new_raw);
  return old_raw;
}

Result<ColumnSnapshot> Column::MaterializeSnapshot(
    mvcc::Timestamp epoch_ts, mvcc::Timestamp seal_ts,
    mvcc::Timestamp min_active_ts) {
  // Exclusive latch: drains and blocks updaters for the duration of the
  // snapshot (paper Section 2.2.3).
  ExclusiveGuard guard(latch_);

  ColumnSnapshot snap;
  snap.epoch_ts = epoch_ts;
  snap.seal_ts = seal_ts;

  // Cold segments must be restored before the snapshot view is taken
  // (the view is an image of the live buffer), and stay pinned for the
  // snapshot's lifetime so eviction cannot zero pages under its scans.
  if (segments_ != nullptr) {
    auto lease = segments_->PinResidentLocked();
    if (!lease.ok()) return lease.status();
    snap.residency_lease = lease.TakeValue();
    // Sampled under the same exclusive latch that freezes updaters: the
    // gens identify exactly the content the view below will capture.
    segments_->SampleDirtyGens(&snap.segment_gens);
  }

  auto view = buffer_->TakeSnapshot();
  if (!view.ok()) return view.status();
  snap.view = view.TakeValue();

  std::shared_ptr<mvcc::ChainDirectory> sealed =
      versions_->SealEpoch(seal_ts);
  // Hand the chains over only if the segment actually carries versions;
  // a clean snapshot scans with zero per-row overhead.
  if (sealed->TotalVersions() > 0) {
    snap.chains = sealed;
  }
  // If no in-flight transaction is older than the sealed segment, the live
  // column never needs to descend into it (or anything older): cut the
  // link so retiring the snapshot really frees the chains.
  if (min_active_ts >= sealed->seal_ts()) {
    versions_->current()->DropPrev();
  } else if (sealed->prev() != nullptr &&
             min_active_ts >= sealed->prev()->seal_ts()) {
    sealed->DropPrev();
  }
  return snap;
}

Result<std::shared_ptr<void>> Column::PinResident() {
  if (segments_ == nullptr) return std::shared_ptr<void>();
  // Exclusive latch: the pin's fault-ins restore bytes through WriteSpan,
  // whose dirty tracking requires committers drained.
  ExclusiveGuard guard(latch_);
  return segments_->PinResidentLocked();
}

}  // namespace anker::storage
