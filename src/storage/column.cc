#include "storage/column.h"

namespace anker::storage {

Column::Column(std::string name, ValueType type,
               std::unique_ptr<snapshot::SnapshotableBuffer> buffer,
               size_t num_rows)
    : name_(std::move(name)),
      type_(type),
      buffer_(std::move(buffer)),
      versions_(std::make_unique<mvcc::VersionStore>(num_rows)),
      num_rows_(num_rows) {
  ANKER_CHECK(buffer_->size() >= num_rows_ * sizeof(uint64_t));
}

void Column::LoadValue(size_t row, uint64_t raw) {
  ANKER_CHECK(row < num_rows_);
  buffer_->StoreU64(row * sizeof(uint64_t), raw);
}

void Column::ApplyCommittedWrite(size_t row, uint64_t new_raw,
                                 mvcc::Timestamp commit_ts) {
  ANKER_CHECK(row < num_rows_);
  const uint64_t old_raw = buffer_->LoadU64(row * sizeof(uint64_t));
  // Publication order: chain node first, slot second. A reader that
  // observes the new slot value is then guaranteed to observe the node
  // carrying the old one (both stores are release, loads acquire).
  versions_->AddVersion(row, old_raw, commit_ts);
  buffer_->StoreU64(row * sizeof(uint64_t), new_raw);
}

Result<ColumnSnapshot> Column::MaterializeSnapshot(
    mvcc::Timestamp epoch_ts, mvcc::Timestamp seal_ts,
    mvcc::Timestamp min_active_ts) {
  // Exclusive latch: drains and blocks updaters for the duration of the
  // snapshot (paper Section 2.2.3).
  ExclusiveGuard guard(latch_);

  ColumnSnapshot snap;
  snap.epoch_ts = epoch_ts;
  snap.seal_ts = seal_ts;

  auto view = buffer_->TakeSnapshot();
  if (!view.ok()) return view.status();
  snap.view = view.TakeValue();

  std::shared_ptr<mvcc::ChainDirectory> sealed =
      versions_->SealEpoch(seal_ts);
  // Hand the chains over only if the segment actually carries versions;
  // a clean snapshot scans with zero per-row overhead.
  if (sealed->TotalVersions() > 0) {
    snap.chains = sealed;
  }
  // If no in-flight transaction is older than the sealed segment, the live
  // column never needs to descend into it (or anything older): cut the
  // link so retiring the snapshot really frees the chains.
  if (min_active_ts >= sealed->seal_ts()) {
    versions_->current()->DropPrev();
  } else if (sealed->prev() != nullptr &&
             min_active_ts >= sealed->prev()->seal_ts()) {
    sealed->DropPrev();
  }
  return snap;
}

}  // namespace anker::storage
