#include "storage/extent_codec.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/macros.h"
#include "wal/crc32c.h"
#include "wal/wal_format.h"

namespace anker::storage {

namespace {

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#error "extent frame format assumes a little-endian host"
#endif

/// Width in bits needed to represent `v` (0 for v == 0).
unsigned BitWidth(uint64_t v) {
  return v == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(v));
}

/// Appends ceil(n*width/8) bytes holding the low `width` bits of each
/// value, LSB-first within the byte stream.
void PackBits(const std::vector<uint64_t>& values, unsigned width,
              std::string* out) {
  if (width == 0) return;
  const size_t start = out->size();
  out->resize(start + (values.size() * width + 7) / 8, '\0');
  uint8_t* p = reinterpret_cast<uint8_t*>(out->data() + start);
  size_t bitpos = 0;
  for (uint64_t v : values) {
    size_t byte = bitpos >> 3;
    unsigned off = static_cast<unsigned>(bitpos & 7);
    unsigned remaining = width;
    while (remaining > 0) {
      const unsigned chunk = std::min(8u - off, remaining);
      p[byte] |= static_cast<uint8_t>((v & ((1ull << chunk) - 1)) << off);
      v >>= chunk;
      remaining -= chunk;
      ++byte;
      off = 0;
    }
    bitpos += width;
  }
}

uint64_t UnpackBits(const uint8_t* p, size_t index, unsigned width) {
  uint64_t v = 0;
  size_t bitpos = index * width;
  unsigned shift = 0;
  unsigned remaining = width;
  size_t byte = bitpos >> 3;
  unsigned off = static_cast<unsigned>(bitpos & 7);
  while (remaining > 0) {
    const unsigned chunk = std::min(8u - off, remaining);
    v |= (static_cast<uint64_t>(p[byte] >> off) & ((1ull << chunk) - 1))
         << shift;
    shift += chunk;
    remaining -= chunk;
    ++byte;
    off = 0;
  }
  return v;
}

size_t PackedBytes(size_t count, unsigned width) {
  return (count * width + 7) / 8;
}

/// Dictionary candidate: distinct values in first-occurrence order plus
/// bit-packed indices. Returns false on a dict miss (too many distinct
/// values to ever beat plain).
bool EncodeDict(const uint64_t* slots, size_t n, std::string* payload) {
  std::unordered_map<uint64_t, uint32_t> codes;
  std::vector<uint64_t> dict;
  std::vector<uint64_t> indices;
  indices.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] =
        codes.emplace(slots[i], static_cast<uint32_t>(dict.size()));
    if (inserted) {
      if (dict.size() >= kMaxExtentDictEntries) return false;
      dict.push_back(slots[i]);
    }
    indices.push_back(it->second);
  }
  const unsigned width =
      dict.size() <= 1 ? 0 : BitWidth(dict.size() - 1);
  wal::PutU32(payload, static_cast<uint32_t>(dict.size()));
  for (uint64_t v : dict) wal::PutU64(payload, v);
  PackBits(indices, width, payload);
  return true;
}

/// Frame-of-reference candidate: signed minimum as the base, bit-packed
/// unsigned deltas. Returns false when the value range needs 64 bits
/// (plain is the honest representation then).
bool EncodeFor(const uint64_t* slots, size_t n, std::string* payload) {
  int64_t min_v = DecodeInt64(slots[0]);
  uint64_t max_delta = 0;
  for (size_t i = 0; i < n; ++i) {
    min_v = std::min(min_v, DecodeInt64(slots[i]));
  }
  std::vector<uint64_t> deltas;
  deltas.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t d = slots[i] - static_cast<uint64_t>(min_v);
    max_delta = std::max(max_delta, d);
    deltas.push_back(d);
  }
  const unsigned width = BitWidth(max_delta);
  if (width >= 64) return false;
  wal::PutU64(payload, static_cast<uint64_t>(min_v));
  wal::PutU8(payload, static_cast<uint8_t>(width));
  PackBits(deltas, width, payload);
  return true;
}

std::string Frame(ExtentEncoding encoding, uint64_t row_count,
                  const std::string& payload) {
  std::string frame;
  frame.reserve(kExtentHeaderBytes + payload.size() + kExtentTrailerBytes);
  wal::PutU32(&frame, kExtentMagic);
  wal::PutU8(&frame, kExtentVersion);
  wal::PutU8(&frame, static_cast<uint8_t>(encoding));
  wal::PutU8(&frame, 0);
  wal::PutU8(&frame, 0);
  wal::PutU64(&frame, row_count);
  wal::PutU64(&frame, payload.size());
  frame += payload;
  wal::PutU32(&frame,
              wal::MaskCrc(wal::Crc32c(0, frame.data(), frame.size())));
  return frame;
}

struct FrameHeader {
  ExtentEncoding encoding;
  uint64_t row_count;
  std::string_view payload;
};

Status ParseFrame(std::string_view frame, FrameHeader* h) {
  const Status malformed = Status::IoError("malformed extent frame");
  if (frame.size() < kExtentHeaderBytes + kExtentTrailerBytes) {
    return malformed;
  }
  std::string_view in = frame;
  uint32_t magic = 0;
  uint8_t version = 0, encoding = 0, pad0 = 0, pad1 = 0;
  uint64_t row_count = 0, payload_len = 0;
  if (!wal::GetU32(&in, &magic) || !wal::GetU8(&in, &version) ||
      !wal::GetU8(&in, &encoding) || !wal::GetU8(&in, &pad0) ||
      !wal::GetU8(&in, &pad1) || !wal::GetU64(&in, &row_count) ||
      !wal::GetU64(&in, &payload_len)) {
    return malformed;
  }
  if (magic != kExtentMagic) return Status::IoError("bad extent magic");
  if (version != kExtentVersion) {
    return Status::IoError("unsupported extent version");
  }
  if (encoding > static_cast<uint8_t>(ExtentEncoding::kForInt64) ||
      pad0 != 0 || pad1 != 0) {
    return malformed;
  }
  if (row_count > kMaxExtentRows) {
    return Status::IoError("extent row count exceeds limit");
  }
  if (payload_len !=
      frame.size() - kExtentHeaderBytes - kExtentTrailerBytes) {
    return Status::IoError("extent payload length mismatch");
  }
  const size_t covered = frame.size() - kExtentTrailerBytes;
  std::string_view trailer = frame.substr(covered);
  uint32_t masked = 0;
  if (!wal::GetU32(&trailer, &masked) ||
      wal::UnmaskCrc(masked) != wal::Crc32c(0, frame.data(), covered)) {
    return Status::IoError("extent checksum mismatch");
  }
  h->encoding = static_cast<ExtentEncoding>(encoding);
  h->row_count = row_count;
  h->payload = in.substr(0, payload_len);
  return Status::OK();
}

}  // namespace

std::string EncodeExtent(const uint64_t* slots, size_t row_count,
                         ValueType type, ExtentEncoding* chosen) {
  ANKER_CHECK(row_count <= kMaxExtentRows);
  std::string best;
  best.assign(reinterpret_cast<const char*>(slots),
              row_count * sizeof(uint64_t));
  ExtentEncoding best_encoding = ExtentEncoding::kPlainU64;

  if (row_count > 0) {
    std::string dict;
    if (EncodeDict(slots, row_count, &dict) && dict.size() < best.size()) {
      best = std::move(dict);
      best_encoding = ExtentEncoding::kDictU64;
    }
    // Frame-of-reference only for integer-like slots (int64 columns and
    // dictionary codes); double bit patterns have no meaningful deltas.
    if (type == ValueType::kInt64 || type == ValueType::kDict32) {
      std::string forp;
      if (EncodeFor(slots, row_count, &forp) && forp.size() < best.size()) {
        best = std::move(forp);
        best_encoding = ExtentEncoding::kForInt64;
      }
    }
  }
  if (chosen != nullptr) *chosen = best_encoding;
  return Frame(best_encoding, row_count, best);
}

Status DecodeExtent(std::string_view frame, std::vector<uint64_t>* out) {
  FrameHeader h;
  ANKER_RETURN_IF_ERROR(ParseFrame(frame, &h));
  const size_t n = h.row_count;
  std::string_view payload = h.payload;
  out->clear();

  switch (h.encoding) {
    case ExtentEncoding::kPlainU64: {
      if (payload.size() != n * sizeof(uint64_t)) {
        return Status::IoError("plain extent size mismatch");
      }
      out->resize(n);
      std::memcpy(out->data(), payload.data(), payload.size());
      return Status::OK();
    }
    case ExtentEncoding::kDictU64: {
      uint32_t count = 0;
      if (!wal::GetU32(&payload, &count) ||
          count > kMaxExtentDictEntries ||
          payload.size() < count * sizeof(uint64_t)) {
        return Status::IoError("dict extent header mismatch");
      }
      std::vector<uint64_t> dict(count);
      std::memcpy(dict.data(), payload.data(), count * sizeof(uint64_t));
      payload.remove_prefix(count * sizeof(uint64_t));
      if (count == 0 && n != 0) {
        return Status::IoError("dict extent with rows but no entries");
      }
      const unsigned width = count <= 1 ? 0 : BitWidth(count - 1);
      if (payload.size() != PackedBytes(n, width)) {
        return Status::IoError("dict extent index stream size mismatch");
      }
      out->resize(n);
      const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
      for (size_t i = 0; i < n; ++i) {
        const uint64_t idx = width == 0 ? 0 : UnpackBits(p, i, width);
        if (idx >= count) {
          return Status::IoError("dict extent index out of range");
        }
        (*out)[i] = dict[idx];
      }
      return Status::OK();
    }
    case ExtentEncoding::kForInt64: {
      uint64_t base = 0;
      uint8_t width = 0;
      if (!wal::GetU64(&payload, &base) || !wal::GetU8(&payload, &width) ||
          width >= 64) {
        return Status::IoError("FOR extent header mismatch");
      }
      if (payload.size() != PackedBytes(n, width)) {
        return Status::IoError("FOR extent delta stream size mismatch");
      }
      out->resize(n);
      const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
      for (size_t i = 0; i < n; ++i) {
        const uint64_t d = width == 0 ? 0 : UnpackBits(p, i, width);
        (*out)[i] = base + d;
      }
      return Status::OK();
    }
  }
  return Status::IoError("extent with unknown encoding");
}

Result<uint64_t> ExtentRowCount(std::string_view frame) {
  FrameHeader h;
  ANKER_RETURN_IF_ERROR(ParseFrame(frame, &h));
  return h.row_count;
}

const char* ExtentEncodingName(ExtentEncoding encoding) {
  switch (encoding) {
    case ExtentEncoding::kPlainU64:
      return "plain";
    case ExtentEncoding::kDictU64:
      return "dict";
    case ExtentEncoding::kForInt64:
      return "for";
  }
  return "unknown";
}

}  // namespace anker::storage
