#include "storage/extent.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/fault_injector.h"
#include "vm/map_region.h"
#include "wal/crc32c.h"
#include "wal/io_util.h"

namespace anker::storage {

namespace {

constexpr char kExtentPrefix[] = "ext-";
constexpr char kExtentSuffix[] = ".ext";
constexpr char kTmpSuffix[] = ".tmp";

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Parses "ext-<id>.ext" into `id`; false for anything else.
bool ParseExtentName(const std::string& name, uint64_t* id) {
  uint64_t parsed = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "ext-%" SCNu64 ".ext%n", &parsed,
                  &consumed) != 1) {
    return false;
  }
  if (static_cast<size_t>(consumed) != name.size()) return false;
  std::string expected(kExtentPrefix);
  expected += std::to_string(parsed);
  expected += kExtentSuffix;
  if (expected != name) return false;  // rejects "ext-007.ext" style aliases
  *id = parsed;
  return true;
}

}  // namespace

Result<std::unique_ptr<ExtentStore>> ExtentStore::Open(
    const std::string& dir) {
  ANKER_RETURN_IF_ERROR(wal::EnsureDir(dir));
  std::unique_ptr<ExtentStore> store(new ExtentStore(dir));

  std::vector<std::string> names;
  ANKER_RETURN_IF_ERROR(wal::ListDir(dir, &names));
  bool removed_tmp = false;
  uint64_t max_id = 0;
  for (const std::string& name : names) {
    if (EndsWith(name, kTmpSuffix)) {
      // A crash between write and rename leaves a .tmp orphan; it was
      // never referenced by anything durable, so drop it.
      ANKER_RETURN_IF_ERROR(wal::RemoveFile(dir + "/" + name));
      store->tmp_pruned_.fetch_add(1, std::memory_order_relaxed);
      removed_tmp = true;
      continue;
    }
    uint64_t id = 0;
    if (ParseExtentName(name, &id)) max_id = std::max(max_id, id);
  }
  if (removed_tmp) ANKER_RETURN_IF_ERROR(wal::SyncDir(dir));
  store->next_id_.store(max_id + 1, std::memory_order_relaxed);
  return store;
}

std::string ExtentStore::ExtentPath(uint64_t id) const {
  return dir_ + "/" + kExtentPrefix + std::to_string(id) + kExtentSuffix;
}

void ExtentStore::NoteNextId(uint64_t next_id) {
  uint64_t cur = next_id_.load(std::memory_order_relaxed);
  while (cur < next_id &&
         !next_id_.compare_exchange_weak(cur, next_id,
                                         std::memory_order_relaxed)) {
  }
}

Result<PublishedExtent> ExtentStore::Publish(const uint64_t* slots,
                                             size_t row_count,
                                             ValueType type) {
  PublishedExtent out;
  out.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::string frame = EncodeExtent(slots, row_count, type,
                                         &out.encoding);
  out.crc = wal::Crc32c(0, frame.data(), frame.size());
  out.file_bytes = frame.size();

  const std::string final_path = ExtentPath(out.id);
  const std::string tmp_path = final_path + kTmpSuffix;
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp_path + ": " +
                           std::strerror(errno));
  }
  Status s = wal::WriteFully(fd, frame.data(), frame.size());
  if (s.ok()) s = wal::SyncFd(fd);
  ::close(fd);
  FaultInjector& faults = FaultInjector::Instance();
  if (s.ok() && faults.armed() && faults.ShouldFail("extent.publish.pre")) {
    s = Status::IoError("injected failure at extent.publish.pre");
  }
  if (!s.ok()) {
    wal::RemoveFile(tmp_path);
    return s;
  }
  // Kill point before the rename: the durable state still has only the
  // .tmp file, which recovery prunes — the extent never existed.
  faults.MaybeKill("extent.publish.pre");
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    s = Status::IoError("rename " + tmp_path + ": " + std::strerror(errno));
    wal::RemoveFile(tmp_path);
    return s;
  }
  ANKER_RETURN_IF_ERROR(wal::SyncDir(dir_));
  // Kill point after the rename: the extent file is durable but nothing
  // references it yet — recovery prunes it as unreferenced garbage.
  faults.MaybeKill("extent.publish.post");

  extents_published_.fetch_add(1, std::memory_order_relaxed);
  publish_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  return out;
}

Status ExtentStore::Load(uint64_t id, uint32_t expected_crc,
                         uint64_t expected_rows,
                         std::vector<uint64_t>* out, uint64_t* file_bytes) {
  const std::string path = ExtentPath(id);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IoError("fstat " + path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // Map the file read-only instead of read()ing it: cold scans stream
  // straight out of the page cache and the decode pass is the only copy.
  auto region = vm::MapRegion::MapSharedFile(fd, size, 0, PROT_READ);
  ::close(fd);
  if (!region.ok()) return region.status();
  const vm::MapRegion& map = region.value();
  const std::string_view frame(reinterpret_cast<const char*>(map.data()),
                               size);

  if (wal::Crc32c(0, frame.data(), frame.size()) != expected_crc) {
    return Status::IoError("extent " + std::to_string(id) +
                           ": file checksum mismatch");
  }
  ANKER_RETURN_IF_ERROR(DecodeExtent(frame, out));
  if (out->size() != expected_rows) {
    return Status::IoError("extent " + std::to_string(id) +
                           ": row count mismatch");
  }
  if (file_bytes != nullptr) *file_bytes = size;
  extents_loaded_.fetch_add(1, std::memory_order_relaxed);
  load_bytes_.fetch_add(size, std::memory_order_relaxed);
  return Status::OK();
}

Status ExtentStore::Prune(const std::unordered_set<uint64_t>& keep) {
  std::vector<std::string> names;
  ANKER_RETURN_IF_ERROR(wal::ListDir(dir_, &names));
  bool removed = false;
  for (const std::string& name : names) {
    if (EndsWith(name, kTmpSuffix)) {
      if (wal::RemoveFile(dir_ + "/" + name).ok()) {
        tmp_pruned_.fetch_add(1, std::memory_order_relaxed);
        removed = true;
      }
      continue;
    }
    uint64_t id = 0;
    if (!ParseExtentName(name, &id) || keep.count(id) != 0) continue;
    if (wal::RemoveFile(dir_ + "/" + name).ok()) {
      files_pruned_.fetch_add(1, std::memory_order_relaxed);
      removed = true;
    }
  }
  if (removed) ANKER_RETURN_IF_ERROR(wal::SyncDir(dir_));
  return Status::OK();
}

ExtentTierCounters ExtentStore::counters() const {
  ExtentTierCounters c;
  c.extents_published = extents_published_.load(std::memory_order_relaxed);
  c.publish_bytes = publish_bytes_.load(std::memory_order_relaxed);
  c.extents_loaded = extents_loaded_.load(std::memory_order_relaxed);
  c.load_bytes = load_bytes_.load(std::memory_order_relaxed);
  c.segments_evicted = segments_evicted_.load(std::memory_order_relaxed);
  c.evicted_bytes = evicted_bytes_.load(std::memory_order_relaxed);
  c.segment_fault_ins =
      segment_fault_ins_.load(std::memory_order_relaxed);
  c.fault_in_bytes = fault_in_bytes_.load(std::memory_order_relaxed);
  c.files_pruned = files_pruned_.load(std::memory_order_relaxed);
  c.tmp_pruned = tmp_pruned_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace anker::storage
