#include "server/replication.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injector.h"
#include "wal/io_util.h"
#include "wal/wal_tail.h"

namespace anker::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Interprets a simple (kOk / kErr / kBusy) response payload.
Status SimpleStatus(const std::string& payload) {
  if (payload.empty()) return Status::IoError("empty response payload");
  const Op op = static_cast<Op>(payload[0]);
  if (op == Op::kOk) return Status::OK();
  if (op == Op::kErr || op == Op::kBusy) {
    ErrMsg err;
    ANKER_RETURN_IF_ERROR(
        DecodeErr(std::string_view(payload).substr(1), &err));
    return StatusFromWire(err.code, err.message);
  }
  return Status::IoError("unexpected response opcode");
}

std::string OpOnly(Op op) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  return payload;
}

void MakeBlockingWithTimeout(int fd, int timeout_millis) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  timeval tv{};
  tv.tv_sec = timeout_millis / 1000;
  tv.tv_usec = (timeout_millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// send(2) loop; false on any failure (including the send timeout — a
/// replica that stopped reading is treated as gone, not waited on).
bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ReplicationMaster
// ---------------------------------------------------------------------------

ReplicationMaster::ReplicationMaster(engine::Database* db,
                                     ReplicationMasterConfig config)
    : db_(db), config_(config) {
  ANKER_CHECK(db_ != nullptr);
}

ReplicationMaster::~ReplicationMaster() { Stop(); }

Status ReplicationMaster::Subscribe(int fd, std::string residual_inbox,
                                    const ReplicateHelloMsg& hello) {
  if (db_->log_writer() == nullptr) {
    return Status::NotSupported("durability is off: no WAL to ship");
  }
  std::lock_guard<std::mutex> guard(mutex_);
  if (stopping_.load()) {
    return Status::Aborted("replication master is shutting down");
  }
  Subscriber& sub = subscribers_[hello.replica_id];
  if (sub.connected) {
    // A second connection under the same id is almost always the same
    // replica re-dialing before the primary noticed the old socket die;
    // cut the stale one (its streamer exits on the failed send).
    ::shutdown(sub.fd, SHUT_RDWR);
    sub.connected = false;
  }
  sub.sync_ack = hello.sync_ack;
  sub.connected = true;
  sub.fd = fd;
  sync_subscribers_ = 0;
  for (const auto& [id, s] : subscribers_) {
    if (s.sync_ack) ++sync_subscribers_;
  }
  UpdateRetainLocked();
  if (sync_subscribers_ > 0) {
    db_->SetReplicationWaiter(
        [this](uint64_t lsn) { return WaitSyncAck(lsn); });
  }
  threads_.emplace_back(
      [this, fd, inbox = std::move(residual_inbox), hello]() mutable {
        StreamLoop(fd, std::move(inbox), hello);
      });
  return Status::OK();
}

void ReplicationMaster::Stop() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (stopping_.exchange(true)) return;
    for (auto& [id, sub] : subscribers_) {
      if (sub.connected) ::shutdown(sub.fd, SHUT_RDWR);
    }
    threads.swap(threads_);
  }
  ack_cv_.notify_all();
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  db_->SetReplicationWaiter(nullptr);
}

Status ReplicationMaster::Decommission(const std::string& replica_id) {
  bool clear_waiter = false;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = subscribers_.find(replica_id);
    if (it == subscribers_.end()) {
      return Status::NotFound("unknown replica id: " + replica_id);
    }
    if (it->second.connected) {
      return Status::InvalidArgument(
          "replica '" + replica_id +
          "' is still connected; stop it before decommissioning");
    }
    subscribers_.erase(it);
    sync_subscribers_ = 0;
    for (const auto& [id, s] : subscribers_) {
      if (s.sync_ack) ++sync_subscribers_;
    }
    clear_waiter = sync_subscribers_ == 0;
    wal::LogWriter* log = db_->log_writer();
    if (log != nullptr && subscribers_.empty()) {
      // UpdateRetainLocked never touches the floor with an empty map;
      // the last decommission must release it explicitly.
      log->SetRetainLsn(UINT64_MAX);
    } else {
      UpdateRetainLocked();
    }
  }
  // Outside the lock: the waiter callback itself takes mutex_.
  if (clear_waiter) db_->SetReplicationWaiter(nullptr);
  ack_cv_.notify_all();
  return Status::OK();
}

size_t ReplicationMaster::connected_subscribers() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t n = 0;
  for (const auto& [id, sub] : subscribers_) {
    if (sub.connected) ++n;
  }
  return n;
}

ReplicaStatusOkMsg ReplicationMaster::PrimaryStatus() const {
  ReplicaStatusOkMsg status;
  status.role = NodeRole::kPrimary;
  status.stream_connected = connected_subscribers() > 0;
  wal::LogWriter* log = db_->log_writer();
  if (log != nullptr) {
    status.applied_lsn = log->appended_lsn();
    status.durable_lsn = log->durable_lsn();
  }
  return status;
}

void ReplicationMaster::UpdateRetainLocked() {
  wal::LogWriter* log = db_->log_writer();
  if (log == nullptr || subscribers_.empty()) return;
  uint64_t floor = UINT64_MAX;
  for (const auto& [id, sub] : subscribers_) {
    floor = std::min(floor, sub.acked_durable);
  }
  log->SetRetainLsn(floor);
}

void ReplicationMaster::RecordAck(const std::string& id,
                                  const ReplicaStatusMsg& ack) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    Subscriber& sub = subscribers_[id];
    sub.acked_durable = std::max(sub.acked_durable, ack.durable_lsn);
    sub.acked_applied = std::max(sub.acked_applied, ack.applied_lsn);
    UpdateRetainLocked();
  }
  ack_cv_.notify_all();
}

Status ReplicationMaster::WaitSyncAck(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.ack_wait_millis);
  const auto acked = [&] {
    if (sync_subscribers_ == 0) return true;  // Gate dissolved; ack flows.
    for (const auto& [id, sub] : subscribers_) {
      if (sub.sync_ack && sub.acked_durable >= lsn) return true;
    }
    return false;
  };
  while (!acked()) {
    if (stopping_.load() ||
        ack_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (acked()) break;
      // The record IS durable locally; only the replication guarantee
      // is unconfirmed. ResourceBusy = retryable/uncertain, not failed.
      return Status::ResourceBusy(
          "commit uncertain: durable locally, replica ack timed out at LSN " +
          std::to_string(lsn));
    }
  }
  return Status::OK();
}

void ReplicationMaster::MarkDisconnected(const std::string& id) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = subscribers_.find(id);
  if (it != subscribers_.end()) it->second.connected = false;
  // The acked watermark (and so the retention floor) deliberately stays:
  // a reconnecting replica must still find its resume point on disk.
}

bool ReplicationMaster::DrainAcks(const std::string& id, std::string* inbox) {
  size_t offset = 0;
  while (true) {
    std::string_view rest(inbox->data() + offset, inbox->size() - offset);
    std::string_view payload;
    size_t consumed = 0;
    const FrameStatus fs = DecodeFrame(rest, &payload, &consumed);
    if (fs == FrameStatus::kNeedMore) break;
    if (fs == FrameStatus::kCorrupt) return false;
    if (payload.empty() ||
        static_cast<Op>(payload[0]) != Op::kReplicaStatus) {
      return false;  // Only acks travel upstream on a stream connection.
    }
    ReplicaStatusMsg ack;
    if (!DecodeReplicaStatus(payload.substr(1), &ack).ok()) return false;
    RecordAck(id, ack);
    offset += consumed;
  }
  inbox->erase(0, offset);
  return true;
}

void ReplicationMaster::StreamLoop(int fd, std::string inbox,
                                   ReplicateHelloMsg hello) {
  MakeBlockingWithTimeout(
      fd, std::max(2000, config_.heartbeat_millis * 4));
  wal::LogWriter* log = db_->log_writer();
  wal::WalTailer tailer(db_->wal_dir());

  const auto send_error = [&](const Status& status) {
    std::string payload, frame;
    EncodeErr(Op::kErr, {WireErrorFor(status), status.message()}, &payload);
    EncodeFrame(payload, &frame);
    SendAll(fd, frame);
  };

  const Status positioned =
      tailer.Seek(hello.start_lsn, log->durable_lsn() + 1);
  if (!positioned.ok()) {
    // OutOfRange here = the follower needs a checkpoint re-bootstrap
    // (history truncated) or claims divergent history; tell it why.
    send_error(positioned);
    MarkDisconnected(hello.replica_id);
    ::close(fd);
    return;
  }

  // Force an immediate heartbeat so the replica learns the primary's
  // watermark (and that the subscription succeeded) right away.
  auto last_send = Clock::now() - std::chrono::hours(1);
  bool healthy = true;

  while (healthy && !stopping_.load()) {
    // Drain acks the replica pushed (non-blocking).
    char buf[4096];
    while (healthy) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        inbox.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) healthy = false;  // Replica closed.
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN: nothing pending.
    }
    if (!healthy || !DrainAcks(hello.replica_id, &inbox)) break;

    std::vector<wal::TailRecord> batch;
    const Status polled =
        tailer.Poll(log->durable_lsn(), config_.max_batch_bytes, &batch);
    if (!polled.ok()) {
      send_error(polled);
      break;
    }

    const bool heartbeat_due =
        Clock::now() - last_send >=
        std::chrono::milliseconds(config_.heartbeat_millis);
    if (!batch.empty() || heartbeat_due) {
      FaultInjector& faults = FaultInjector::Instance();
      faults.MaybeKill("repl.send");
      if (faults.ShouldFail("repl.send")) break;  // Simulated partition.
      // Re-frame the batch; split so no frame exceeds the wire cap.
      std::string wire;
      std::vector<StreamRecord> frame_records;
      size_t frame_bytes = 0;
      const uint64_t durable = log->durable_lsn();
      const auto flush_frame = [&] {
        std::string payload;
        EncodeLogStream(durable, frame_records, &payload);
        EncodeFrame(payload, &wire);
        frame_records.clear();
        frame_bytes = 0;
      };
      bool encodable = true;
      for (wal::TailRecord& record : batch) {
        const size_t need = record.payload.size() + 64;
        if (need > kMaxFramePayload) {
          send_error(Status::Internal("WAL record exceeds one wire frame"));
          encodable = false;
          break;
        }
        if (!frame_records.empty() &&
            (frame_bytes + need > kMaxFramePayload - 64 ||
             frame_records.size() >= kMaxLogStreamRecords)) {
          flush_frame();
        }
        frame_bytes += need;
        frame_records.push_back({record.lsn, std::move(record.payload)});
      }
      if (!encodable) break;
      flush_frame();  // Also emits the empty heartbeat frame.
      if (!SendAll(fd, wire)) break;
      last_send = Clock::now();
    }

    if (batch.empty()) {
      // Live tail: wait a beat for new durable records instead of
      // spinning. Acks wake nothing here — 2ms keeps sync-ack latency
      // negligible against the fsync they are gated on.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  MarkDisconnected(hello.replica_id);
  ack_cv_.notify_all();
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Checkpoint transfer
// ---------------------------------------------------------------------------

Status EncodeCheckpointStream(const std::string& data_dir, std::string* out) {
  if (data_dir.empty()) {
    return Status::NotSupported("server runs without a data_dir");
  }
  std::string current;
  Status s = wal::ReadFile(data_dir + "/CURRENT", &current);
  if (s.IsNotFound()) {
    return Status::NotFound(
        "no checkpoint published yet (CHECKPOINT_NOW first)");
  }
  ANKER_RETURN_IF_ERROR(s);
  std::string dir_name = current;
  while (!dir_name.empty() &&
         (dir_name.back() == '\n' || dir_name.back() == '\r')) {
    dir_name.pop_back();
  }
  if (dir_name.empty() || dir_name.find('/') != std::string::npos) {
    return Status::IoError("corrupt CURRENT in " + data_dir);
  }

  std::vector<std::string> names;
  ANKER_RETURN_IF_ERROR(wal::ListDir(data_dir + "/" + dir_name, &names));
  std::sort(names.begin(), names.end());

  // Build into a scratch buffer: a file vanishing mid-read (pruned by a
  // newer checkpoint) must not leave half a transfer in `out`.
  std::string wire;
  uint32_t file_count = 0;
  const auto emit_file = [&](const std::string& rel,
                             const std::string& contents) {
    size_t offset = 0;
    do {
      CkptChunkMsg chunk;
      chunk.file = rel;
      chunk.offset = offset;
      const size_t n =
          std::min<size_t>(contents.size() - offset, kMaxCkptChunkBytes);
      chunk.data = contents.substr(offset, n);
      offset += n;
      chunk.last = offset >= contents.size();
      std::string payload;
      EncodeCkptChunk(chunk, &payload);
      EncodeFrame(payload, &wire);
    } while (offset < contents.size());
    ++file_count;
  };

  for (const std::string& name : names) {
    std::string contents;
    const Status read =
        wal::ReadFile(data_dir + "/" + dir_name + "/" + name, &contents);
    if (!read.ok()) {
      return Status::IoError("checkpoint pruned mid-transfer; retry fetch (" +
                             read.message() + ")");
    }
    emit_file(dir_name + "/" + name, contents);
  }
  // Cold-tier extents live outside the checkpoint directory, but the
  // manifest may reference them; ship every published extent so the
  // replica can resolve extent-backed columns. Extras the manifest does
  // not reference are pruned by the replica's own next checkpoint.
  std::vector<std::string> extent_names;
  const std::string extents_dir = data_dir + "/extents";
  if (wal::ListDir(extents_dir, &extent_names).ok()) {
    std::sort(extent_names.begin(), extent_names.end());
    for (const std::string& name : extent_names) {
      if (name.size() >= 4 &&
          name.compare(name.size() - 4, 4, ".tmp") == 0) {
        continue;  // In-flight publish, never durable state.
      }
      std::string contents;
      const Status read = wal::ReadFile(extents_dir + "/" + name, &contents);
      if (!read.ok()) {
        return Status::IoError("extent pruned mid-transfer; retry fetch (" +
                               read.message() + ")");
      }
      emit_file("extents/" + name, contents);
    }
  }
  // CURRENT travels last; the fetcher publishes it only after everything
  // else is durable, mirroring how checkpoints flip locally.
  emit_file("CURRENT", current);

  std::string payload;
  EncodeCkptDone(file_count, &payload);
  EncodeFrame(payload, &wire);
  out->append(wire);
  return Status::OK();
}

Status FetchCheckpointInto(Client* client, const std::string& data_dir) {
  ANKER_RETURN_IF_ERROR(wal::EnsureDir(data_dir));
  ANKER_RETURN_IF_ERROR(client->SendOnly(OpOnly(Op::kFetchCheckpoint)));

  std::string current_content;
  std::vector<std::string> written;  // Relative paths, for the fsync pass.
  int fd = -1;
  std::string open_path;
  const auto close_open = [&]() -> Status {
    if (fd < 0) return Status::OK();
    const Status synced = wal::SyncFd(fd);
    ::close(fd);
    fd = -1;
    if (!synced.ok()) {
      return Status::IoError("fsync failed for " + open_path);
    }
    return Status::OK();
  };

  while (true) {
    auto received = client->ReceiveOne();
    if (!received.ok()) {
      close_open();
      return received.status();
    }
    const std::string& payload = received.value();
    if (payload.empty()) {
      close_open();
      return Status::IoError("empty frame in checkpoint stream");
    }
    const Op op = static_cast<Op>(payload[0]);
    const std::string_view body = std::string_view(payload).substr(1);

    if (op == Op::kCkptChunk) {
      CkptChunkMsg chunk;
      const Status decoded = DecodeCkptChunk(body, &chunk);
      if (!decoded.ok()) {
        close_open();
        return decoded;  // Hostile path / lying length: refuse, recover.
      }
      if (chunk.file == "CURRENT") {
        // Published last, atomically, after the fsync pass below.
        current_content.append(chunk.data);
        continue;
      }
      const std::string path = data_dir + "/" + chunk.file;
      if (path != open_path) {
        ANKER_RETURN_IF_ERROR(close_open());
        const size_t slash = chunk.file.rfind('/');
        if (slash != std::string::npos) {
          ANKER_RETURN_IF_ERROR(
              wal::EnsureDir(data_dir + "/" + chunk.file.substr(0, slash)));
        }
        fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
        if (fd < 0) {
          return Status::IoError("cannot create " + path + ": " +
                                 std::strerror(errno));
        }
        open_path = path;
        written.push_back(chunk.file);
      }
      size_t done = 0;
      while (done < chunk.data.size()) {
        const ssize_t n = ::pwrite(
            fd, chunk.data.data() + done, chunk.data.size() - done,
            static_cast<off_t>(chunk.offset + done));
        if (n < 0) {
          if (errno == EINTR) continue;
          const Status failed =
              Status::IoError("write failed for " + path);
          close_open();
          return failed;
        }
        done += static_cast<size_t>(n);
      }
      if (chunk.last) ANKER_RETURN_IF_ERROR(close_open());
      continue;
    }
    if (op == Op::kCkptDone) {
      ANKER_RETURN_IF_ERROR(close_open());
      uint32_t file_count = 0;
      ANKER_RETURN_IF_ERROR(DecodeCkptDone(body, &file_count));
      if (current_content.empty()) {
        return Status::IoError("checkpoint stream carried no CURRENT");
      }
      // Make the files and their directories durable, then publish.
      for (const std::string& rel : written) {
        const size_t slash = rel.rfind('/');
        if (slash != std::string::npos) {
          ANKER_RETURN_IF_ERROR(
              wal::SyncDir(data_dir + "/" + rel.substr(0, slash)));
        }
      }
      ANKER_RETURN_IF_ERROR(wal::SyncDir(data_dir));
      ANKER_RETURN_IF_ERROR(
          wal::AtomicWriteFile(data_dir + "/CURRENT", current_content));
      return Status::OK();
    }
    close_open();
    return SimpleStatus(payload);  // kErr/kBusy (or protocol violation).
  }
}

// ---------------------------------------------------------------------------
// ReplicaController
// ---------------------------------------------------------------------------

ReplicaController::ReplicaController(engine::Database* db,
                                     ReplicaConfig config)
    : db_(db), config_(std::move(config)) {
  ANKER_CHECK(db_ != nullptr);
}

ReplicaController::~ReplicaController() { Stop(); }

Status ReplicaController::Bootstrap(const ReplicaConfig& config,
                                    const std::string& data_dir) {
  ClientOptions options;
  options.auth_token = config.auth_token;
  options.io_timeout_millis = 30000;  // Checkpoints can take a moment.
  auto connected =
      Client::Connect(config.primary_host, config.primary_port, options);
  if (!connected.ok()) return connected.status();
  Client* client = connected.value().get();

  // Force a fresh checkpoint first: bulk LOADs are not WAL-logged, so
  // only a checkpoint taken *now* captures them for the new replica.
  auto ckpt = client->RoundTrip(OpOnly(Op::kCheckpointNow));
  if (!ckpt.ok()) return ckpt.status();
  ANKER_RETURN_IF_ERROR(SimpleStatus(ckpt.value()));

  return FetchCheckpointInto(client, data_dir);
}

void ReplicaController::Start() {
  ANKER_CHECK_MSG(!fetcher_.joinable(), "ReplicaController started twice");
  stop_.store(false);
  fetcher_ = std::thread([this] { FetchLoop(); });
}

void ReplicaController::Stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (live_client_ != nullptr) live_client_->ShutdownSocket();
  }
  if (fetcher_.joinable()) fetcher_.join();
}

Status ReplicaController::Promote() {
  if (promoted_.load()) return Status::OK();  // Idempotent.
  Stop();
  // Finalize: the in-memory state already reflects every applied record
  // (ApplyReplicated applies before mirroring); making the local mirror
  // durable seals the history this new head will extend. A torn tail
  // from an earlier crash was already repaired by recovery at Open.
  if (db_->log_writer() != nullptr) {
    ANKER_RETURN_IF_ERROR(db_->log_writer()->Sync());
  }
  promoted_.store(true);
  std::fprintf(stderr, "[replica] promoted: accepting writes from LSN %llu\n",
               static_cast<unsigned long long>(db_->applied_lsn()) + 1);
  return Status::OK();
}

ReplicaStatusOkMsg ReplicaController::Status_() const {
  ReplicaStatusOkMsg status;
  status.role = promoted_.load() ? NodeRole::kPromoted : NodeRole::kReplica;
  status.stream_connected = connected_.load();
  status.applied_lsn = db_->applied_lsn();
  if (db_->log_writer() != nullptr) {
    status.durable_lsn = db_->log_writer()->durable_lsn();
  }
  status.primary_addr =
      config_.primary_host + ":" + std::to_string(config_.primary_port);
  std::lock_guard<std::mutex> guard(mutex_);
  status.staleness_millis = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            last_progress_)
          .count());
  return status;
}

Status ReplicaController::SendAck(Client* client) {
  ReplicaStatusMsg ack;
  if (db_->log_writer() != nullptr) {
    // Only fsynced records may be acked: the primary's retention floor
    // and sync-ack gate both trust this watermark to survive our crash.
    ANKER_RETURN_IF_ERROR(db_->log_writer()->Sync());
    ack.durable_lsn = db_->log_writer()->durable_lsn();
  }
  ack.applied_lsn = db_->applied_lsn();
  std::string payload;
  EncodeReplicaStatus(ack, &payload);
  return client->SendOnly(payload);
}

void ReplicaController::FetchLoop() {
  int backoff = config_.backoff_initial_millis;
  while (!stop_.load()) {
    const Clock::time_point session_start = Clock::now();
    RunSession();
    connected_.store(false);
    if (stop_.load()) break;
    // A session that made progress for a while earns a fresh backoff;
    // rapid connect/die cycles keep doubling up to the cap.
    if (Clock::now() - session_start > std::chrono::seconds(2)) {
      backoff = config_.backoff_initial_millis;
    }
    const int delay = needs_rebootstrap_.load()
                          ? config_.backoff_max_millis
                          : backoff;
    for (int waited = 0; waited < delay && !stop_.load(); waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    backoff = std::min(backoff * 2, config_.backoff_max_millis);
  }
}

void ReplicaController::RunSession() {
  ClientOptions options;
  options.auth_token = config_.auth_token;
  // The receive timeout doubles as dead-primary detection: heartbeats
  // arrive every heartbeat interval, so a silent stream for this long
  // means the primary (or the path to it) is gone.
  options.io_timeout_millis = config_.stream_timeout_millis;
  auto connected =
      Client::Connect(config_.primary_host, config_.primary_port, options);
  if (!connected.ok()) return;
  std::unique_ptr<Client> client = connected.TakeValue();
  {
    std::lock_guard<std::mutex> guard(mutex_);
    live_client_ = client.get();
  }
  const auto detach = [&] {
    std::lock_guard<std::mutex> guard(mutex_);
    live_client_ = nullptr;
  };

  ReplicateHelloMsg hello;
  hello.replica_id = config_.replica_id;
  hello.start_lsn = db_->applied_lsn() + 1;
  hello.sync_ack = config_.sync_ack;
  std::string payload;
  EncodeReplicateHello(hello, &payload);
  if (!client->SendOnly(payload).ok()) {
    detach();
    return;
  }

  auto last_ack = Clock::now();
  FaultInjector& faults = FaultInjector::Instance();
  while (!stop_.load()) {
    auto received = client->ReceiveOne();
    if (!received.ok()) break;  // Timeout / reset: reconnect with backoff.
    const std::string& frame = received.value();
    if (frame.empty()) break;
    const Op op = static_cast<Op>(frame[0]);
    const std::string_view body = std::string_view(frame).substr(1);

    if (op == Op::kLogStream) {
      uint64_t primary_durable = 0;
      std::vector<StreamRecord> records;
      if (!DecodeLogStream(body, &primary_durable, &records).ok()) {
        break;  // Hostile/corrupt stream bytes: drop and re-dial.
      }
      connected_.store(true);
      needs_rebootstrap_.store(false);
      {
        std::lock_guard<std::mutex> guard(mutex_);
        last_progress_ = Clock::now();
      }
      bool applied_ok = true;
      for (const StreamRecord& record : records) {
        faults.MaybeKill("repl.recv");
        if (faults.ShouldFail("repl.recv")) {
          applied_ok = false;  // Simulated partition mid-batch.
          break;
        }
        const Status applied = db_->ApplyReplicated(record.lsn,
                                                    record.payload);
        if (!applied.ok()) {
          // Gap or bad payload: resuming from applied_lsn()+1 re-ships
          // the missing prefix; a persistently bad record keeps the
          // replica stalled (and visibly stale) rather than corrupt.
          std::fprintf(stderr, "[replica] apply LSN %llu failed: %s\n",
                       static_cast<unsigned long long>(record.lsn),
                       applied.ToString().c_str());
          applied_ok = false;
          break;
        }
      }
      if (!applied_ok) break;
      const bool ack_due =
          !records.empty() ||
          Clock::now() - last_ack >=
              std::chrono::milliseconds(config_.ack_interval_millis);
      if (ack_due) {
        if (!SendAck(client.get()).ok()) break;
        last_ack = Clock::now();
      }
      continue;
    }
    if (op == Op::kErr || op == Op::kBusy) {
      ErrMsg err;
      if (DecodeErr(body, &err).ok() &&
          err.code == WireError::kOutOfRange) {
        // Our resume point was truncated away (offline across too many
        // checkpoints) or our history diverged. Only a fresh bootstrap
        // from a checkpoint can fix this; retries are throttled to the
        // backoff cap and the operator sees why.
        if (!needs_rebootstrap_.exchange(true)) {
          std::fprintf(stderr,
                       "[replica] stream refused: %s — re-seed this "
                       "replica from a fresh checkpoint\n",
                       err.message.c_str());
        }
      }
      break;
    }
    break;  // Anything else on a stream connection is a violation.
  }
  detach();
}

}  // namespace anker::server
