#include "server/protocol.h"

#include <algorithm>
#include <cstring>

#include "wal/crc32c.h"
#include "wal/wal_format.h"

namespace anker::server {

namespace {

using wal::GetString;
using wal::GetU32;
using wal::GetU64;
using wal::GetU8;
using wal::PutString;
using wal::PutU32;
using wal::PutU64;
using wal::PutU8;

Status Truncated() { return Status::InvalidArgument("truncated message"); }

Status ExpectDrained(std::string_view in) {
  if (!in.empty()) {
    return Status::InvalidArgument("trailing bytes after message body");
  }
  return Status::OK();
}

bool GetBool(std::string_view* in, bool* v) {
  uint8_t byte = 0;
  if (!GetU8(in, &byte) || byte > 1) return false;
  *v = byte == 1;
  return true;
}

}  // namespace

bool IsRequestOp(uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kHello:
    case Op::kPing:
    case Op::kBegin:
    case Op::kCommit:
    case Op::kAbort:
    case Op::kRead:
    case Op::kWrite:
    case Op::kWriteBatch:
    case Op::kExecTxn:
    case Op::kQuery:
    case Op::kCreateTable:
    case Op::kLoad:
    case Op::kBuildIndex:
    case Op::kListTables:
    case Op::kDictDefine:
    case Op::kReplicateHello:
    case Op::kFetchCheckpoint:
    case Op::kReplicaStatus:
    case Op::kWaitLsn:
    case Op::kPromote:
    case Op::kCheckpointNow:
    case Op::kDigest:
    case Op::kRouterStatus:
    case Op::kDecommissionReplica:
    case Op::kPrepareTxn:
    case Op::kCommitPrepared:
    case Op::kAbortPrepared:
    case Op::kResolveIntent:
      return true;
    default:
      return false;
  }
}

WireError WireErrorFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireError::kOk;
    case StatusCode::kInvalidArgument:
      return WireError::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireError::kAlreadyExists;
    case StatusCode::kOutOfRange:
      return WireError::kOutOfRange;
    case StatusCode::kIoError:
      return WireError::kIoError;
    case StatusCode::kAborted:
      return WireError::kAborted;
    case StatusCode::kResourceBusy:
      return WireError::kResourceBusy;
    case StatusCode::kNotSupported:
      return WireError::kNotSupported;
    case StatusCode::kInternal:
      return WireError::kInternal;
  }
  return WireError::kInternal;
}

Status StatusFromWire(WireError code, std::string message) {
  switch (code) {
    case WireError::kOk:
      return Status::OK();
    case WireError::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireError::kNotFound:
      return Status::NotFound(std::move(message));
    case WireError::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case WireError::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case WireError::kIoError:
      return Status::IoError(std::move(message));
    case WireError::kAborted:
      return Status::Aborted(std::move(message));
    case WireError::kResourceBusy:
      return Status::ResourceBusy(std::move(message));
    case WireError::kNotSupported:
      return Status::NotSupported(std::move(message));
    case WireError::kInternal:
      return Status::Internal(std::move(message));
    case WireError::kBadHandshake:
      return Status::InvalidArgument("handshake: " + message);
    case WireError::kProtocolError:
      return Status::InvalidArgument("protocol: " + message);
    case WireError::kReadOnlyReplica:
      // Retryable by reconnecting to the primary; kResourceBusy keeps it
      // in the "try elsewhere / try later" class rather than a hard fail.
      return Status::ResourceBusy("read-only replica: " + message);
  }
  return Status::Internal(std::move(message));
}

void EncodeFrame(std::string_view payload, std::string* out) {
  ANKER_CHECK_MSG(payload.size() <= kMaxFramePayload,
                  "frame payload exceeds kMaxFramePayload");
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, wal::MaskCrc(wal::Crc32c(0, payload.data(), payload.size())));
  out->append(payload);
}

FrameStatus DecodeFrame(std::string_view buffer, std::string_view* payload,
                        size_t* consumed) {
  if (buffer.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  uint32_t len = 0, masked = 0;
  std::string_view header = buffer.substr(0, kFrameHeaderBytes);
  GetU32(&header, &len);
  GetU32(&header, &masked);
  if (len > kMaxFramePayload) return FrameStatus::kCorrupt;
  if (buffer.size() < kFrameHeaderBytes + len) return FrameStatus::kNeedMore;
  std::string_view body = buffer.substr(kFrameHeaderBytes, len);
  const uint32_t crc = wal::Crc32c(0, body.data(), body.size());
  if (wal::MaskCrc(crc) != masked) return FrameStatus::kCorrupt;
  *payload = body;
  *consumed = kFrameHeaderBytes + len;
  return FrameStatus::kOk;
}

void EncodeHello(const HelloMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kHello));
  PutU64(out, kHelloMagic);
  PutU32(out, msg.version);
  PutString(out, msg.auth_token);
}

Status DecodeHello(std::string_view in, HelloMsg* msg) {
  uint64_t magic = 0;
  if (!GetU64(&in, &magic) || !GetU32(&in, &msg->version) ||
      !GetString(&in, &msg->auth_token)) {
    return Truncated();
  }
  if (magic != kHelloMagic) {
    return Status::InvalidArgument("bad HELLO magic");
  }
  return ExpectDrained(in);
}

void EncodeHelloOk(const HelloOkMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kHelloOk));
  PutU32(out, msg.version);
  PutString(out, msg.server_info);
  PutU32(out, msg.flags);
  PutU64(out, msg.shard_map_digest);
}

Status DecodeHelloOk(std::string_view in, HelloOkMsg* msg) {
  if (!GetU32(&in, &msg->version) || !GetString(&in, &msg->server_info) ||
      !GetU32(&in, &msg->flags) || !GetU64(&in, &msg->shard_map_digest)) {
    return Truncated();
  }
  return ExpectDrained(in);
}

void EncodeErr(Op op, const ErrMsg& msg, std::string* out) {
  ANKER_CHECK(op == Op::kErr || op == Op::kBusy);
  PutU8(out, static_cast<uint8_t>(op));
  PutU8(out, static_cast<uint8_t>(msg.code));
  PutString(out, msg.message);
}

Status DecodeErr(std::string_view in, ErrMsg* msg) {
  uint8_t code = 0;
  if (!GetU8(&in, &code) || !GetString(&in, &msg->message)) {
    return Truncated();
  }
  msg->code = static_cast<WireError>(code);
  return ExpectDrained(in);
}

void EncodePointRead(const PointReadMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kRead));
  PutString(out, msg.table);
  PutString(out, msg.column);
  PutU8(out, msg.by_key ? 1 : 0);
  PutU64(out, msg.key);
}

Status DecodePointRead(std::string_view in, PointReadMsg* msg) {
  if (!GetString(&in, &msg->table) || !GetString(&in, &msg->column) ||
      !GetBool(&in, &msg->by_key) || !GetU64(&in, &msg->key)) {
    return Truncated();
  }
  return ExpectDrained(in);
}

namespace {

void PutWriteBody(const PointWrite& write, std::string* out) {
  PutString(out, write.table);
  PutString(out, write.column);
  PutU8(out, write.by_key ? 1 : 0);
  PutU64(out, write.key);
  PutU64(out, write.raw);
}

bool GetWriteBody(std::string_view* in, PointWrite* write) {
  return GetString(in, &write->table) && GetString(in, &write->column) &&
         GetBool(in, &write->by_key) && GetU64(in, &write->key) &&
         GetU64(in, &write->raw);
}

/// Shared schema decode (CREATE_TABLE request, TABLES response):
/// u32 count, then count x (name, u8 type tag), tags validated.
Status GetSchema(std::string_view* in, std::vector<storage::ColumnDef>* out) {
  uint32_t ncols = 0;
  if (!GetU32(in, &ncols)) return Truncated();
  if (ncols > 4096) {
    return Status::InvalidArgument("bad schema column count");
  }
  out->clear();
  for (uint32_t i = 0; i < ncols; ++i) {
    storage::ColumnDef def;
    uint8_t type = 0;
    if (!GetString(in, &def.name) || !GetU8(in, &type)) return Truncated();
    if (type > static_cast<uint8_t>(storage::ValueType::kDict32)) {
      return Status::InvalidArgument("unknown column type tag");
    }
    def.type = static_cast<storage::ValueType>(type);
    out->push_back(std::move(def));
  }
  return Status::OK();
}

}  // namespace

void EncodeWrite(const PointWrite& write, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kWrite));
  PutWriteBody(write, out);
}

Status DecodeWrite(std::string_view in, PointWrite* write) {
  if (!GetWriteBody(&in, write)) return Truncated();
  return ExpectDrained(in);
}

void EncodeWriteBatch(Op op, const std::vector<PointWrite>& writes,
                      std::string* out) {
  ANKER_CHECK(op == Op::kWriteBatch || op == Op::kExecTxn);
  ANKER_CHECK(writes.size() <= kMaxWritesPerBatch);
  PutU8(out, static_cast<uint8_t>(op));
  PutU32(out, static_cast<uint32_t>(writes.size()));
  for (const PointWrite& write : writes) PutWriteBody(write, out);
}

Status DecodeWriteBatch(std::string_view in, std::vector<PointWrite>* writes) {
  uint32_t count = 0;
  if (!GetU32(&in, &count)) return Truncated();
  if (count > kMaxWritesPerBatch) {
    return Status::InvalidArgument("write batch too large");
  }
  writes->clear();
  writes->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PointWrite write;
    if (!GetWriteBody(&in, &write)) return Truncated();
    writes->push_back(std::move(write));
  }
  return ExpectDrained(in);
}

void EncodeReadOk(uint64_t raw, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kReadOk));
  PutU64(out, raw);
}

Status DecodeReadOk(std::string_view in, uint64_t* raw) {
  if (!GetU64(&in, raw)) return Truncated();
  return ExpectDrained(in);
}

Status EncodeQuery(const QueryMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kQuery));
  ANKER_RETURN_IF_ERROR(query::EncodeWireQuery(msg.query, out));
  query::EncodeParams(msg.params, out);
  return Status::OK();
}

Status DecodeQuery(std::string_view in, QueryMsg* msg) {
  ANKER_RETURN_IF_ERROR(query::DecodeWireQuery(&in, &msg->query));
  ANKER_RETURN_IF_ERROR(query::DecodeParams(&in, &msg->params));
  return ExpectDrained(in);
}

void EncodeQueryBatch(const query::QueryResult& result, size_t row_begin,
                      size_t row_end, std::string* out) {
  ANKER_CHECK(row_begin <= row_end && row_end <= result.rows.size());
  PutU8(out, static_cast<uint8_t>(Op::kQueryBatch));
  PutU32(out, static_cast<uint32_t>(row_end - row_begin));
  for (size_t r = row_begin; r < row_end; ++r) {
    const query::QueryResult::Row& row = result.rows[r];
    PutU32(out, static_cast<uint32_t>(row.keys.size()));
    for (uint64_t key : row.keys) PutU64(out, key);
    PutU32(out, static_cast<uint32_t>(row.values.size()));
    for (double value : row.values) {
      PutU64(out, storage::EncodeDouble(value));
    }
  }
}

Status DecodeQueryBatch(std::string_view in, query::QueryResult* result) {
  uint32_t nrows = 0;
  if (!GetU32(&in, &nrows)) return Truncated();
  if (nrows > kMaxFramePayload / 8) {
    return Status::InvalidArgument("query batch row count implausible");
  }
  for (uint32_t r = 0; r < nrows; ++r) {
    query::QueryResult::Row row;
    uint32_t nkeys = 0;
    if (!GetU32(&in, &nkeys) || nkeys > in.size() / 8 + 1) return Truncated();
    row.keys.reserve(nkeys);
    for (uint32_t k = 0; k < nkeys; ++k) {
      uint64_t raw = 0;
      if (!GetU64(&in, &raw)) return Truncated();
      row.keys.push_back(raw);
    }
    uint32_t nvals = 0;
    if (!GetU32(&in, &nvals) || nvals > in.size() / 8 + 1) return Truncated();
    row.values.reserve(nvals);
    for (uint32_t v = 0; v < nvals; ++v) {
      uint64_t raw = 0;
      if (!GetU64(&in, &raw)) return Truncated();
      row.values.push_back(storage::DecodeDouble(raw));
    }
    result->rows.push_back(std::move(row));
  }
  return ExpectDrained(in);
}

void EncodeQueryDone(const query::QueryResult& result, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kQueryDone));
  PutU32(out, static_cast<uint32_t>(result.columns.size()));
  for (const std::string& name : result.columns) PutString(out, name);
  PutU32(out, static_cast<uint32_t>(result.key_names.size()));
  for (const std::string& name : result.key_names) PutString(out, name);
  // One type tag per key column (v2: keys are typed 64-bit raws, not
  // bare dictionary codes).
  for (const query::ExprType type : result.key_types) {
    PutU8(out, static_cast<uint8_t>(type));
  }
  PutU64(out, result.rows_scanned);
  PutU64(out, static_cast<uint64_t>(result.rows.size()));
  // v4: the output schema's key/value interleave (one byte per output
  // column in DAG schema order; 0 = key slot, 1 = value slot). Empty
  // means "keys then values" — the pre-v4 assumption.
  PutU32(out, static_cast<uint32_t>(result.interleave.size()));
  for (const uint8_t tag : result.interleave) PutU8(out, tag);
  // v4: shards that did not contribute (router --allow_partial with a
  // shard down). 0 = complete; a plain engine server always sends 0.
  PutU32(out, result.shards_missing);
}

Status DecodeQueryDone(std::string_view in, query::QueryResult* result) {
  uint32_t ncols = 0;
  if (!GetU32(&in, &ncols) || ncols > query::kMaxWireQueryLists) {
    return Truncated();
  }
  result->columns.clear();
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name;
    if (!GetString(&in, &name)) return Truncated();
    result->columns.push_back(std::move(name));
  }
  uint32_t nkeys = 0;
  if (!GetU32(&in, &nkeys) || nkeys > query::kMaxWireQueryLists) {
    return Truncated();
  }
  result->key_names.clear();
  for (uint32_t i = 0; i < nkeys; ++i) {
    std::string name;
    if (!GetString(&in, &name)) return Truncated();
    result->key_names.push_back(std::move(name));
  }
  result->key_types.clear();
  for (uint32_t i = 0; i < nkeys; ++i) {
    uint8_t tag = 0;
    if (!GetU8(&in, &tag)) return Truncated();
    if (tag > static_cast<uint8_t>(query::ExprType::kBool)) {
      return Status::InvalidArgument("unknown key type tag");
    }
    result->key_types.push_back(static_cast<query::ExprType>(tag));
  }
  uint64_t total_rows = 0;
  if (!GetU64(&in, &result->rows_scanned) || !GetU64(&in, &total_rows)) {
    return Truncated();
  }
  if (total_rows != result->rows.size()) {
    return Status::InvalidArgument("query stream lost rows in transit");
  }
  uint32_t ninter = 0;
  if (!GetU32(&in, &ninter)) return Truncated();
  if (ninter != 0 && ninter != ncols + nkeys) {
    return Status::InvalidArgument("interleave length mismatch");
  }
  result->interleave.clear();
  uint32_t value_tags = 0;
  for (uint32_t i = 0; i < ninter; ++i) {
    uint8_t tag = 0;
    if (!GetU8(&in, &tag)) return Truncated();
    if (tag > 1) return Status::InvalidArgument("bad interleave tag");
    value_tags += tag;
    result->interleave.push_back(tag);
  }
  if (ninter != 0 && (value_tags != ncols || ninter - value_tags != nkeys)) {
    return Status::InvalidArgument("interleave tag counts mismatch");
  }
  if (!GetU32(&in, &result->shards_missing)) return Truncated();
  return ExpectDrained(in);
}

void EncodeCreateTable(const CreateTableMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kCreateTable));
  PutString(out, msg.name);
  PutU64(out, msg.num_rows);
  PutU32(out, static_cast<uint32_t>(msg.schema.size()));
  for (const storage::ColumnDef& def : msg.schema) {
    PutString(out, def.name);
    PutU8(out, static_cast<uint8_t>(def.type));
  }
}

Status DecodeCreateTable(std::string_view in, CreateTableMsg* msg) {
  if (!GetString(&in, &msg->name) || !GetU64(&in, &msg->num_rows)) {
    return Truncated();
  }
  if (msg->num_rows > kMaxWireTableRows) {
    return Status::InvalidArgument(
        "table row count exceeds the wire limit");
  }
  ANKER_RETURN_IF_ERROR(GetSchema(&in, &msg->schema));
  return ExpectDrained(in);
}

void EncodeLoad(const LoadMsg& msg, std::string* out) {
  ANKER_CHECK(msg.values.size() <= kMaxLoadValues);
  PutU8(out, static_cast<uint8_t>(Op::kLoad));
  PutString(out, msg.table);
  PutString(out, msg.column);
  PutU64(out, msg.start_row);
  PutU32(out, static_cast<uint32_t>(msg.values.size()));
  for (uint64_t value : msg.values) PutU64(out, value);
}

Status DecodeLoad(std::string_view in, LoadMsg* msg) {
  if (!GetString(&in, &msg->table) || !GetString(&in, &msg->column) ||
      !GetU64(&in, &msg->start_row)) {
    return Truncated();
  }
  uint32_t count = 0;
  if (!GetU32(&in, &count) || count > kMaxLoadValues) {
    return Status::InvalidArgument("bad load value count");
  }
  msg->values.clear();
  msg->values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    if (!GetU64(&in, &value)) return Truncated();
    msg->values.push_back(value);
  }
  return ExpectDrained(in);
}

void EncodeBuildIndex(const BuildIndexMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kBuildIndex));
  PutString(out, msg.table);
  PutString(out, msg.key_column);
}

Status DecodeBuildIndex(std::string_view in, BuildIndexMsg* msg) {
  if (!GetString(&in, &msg->table) || !GetString(&in, &msg->key_column)) {
    return Truncated();
  }
  return ExpectDrained(in);
}

void EncodeDictDefine(const DictDefineMsg& msg, std::string* out) {
  ANKER_CHECK(msg.values.size() <= kMaxLoadValues);
  PutU8(out, static_cast<uint8_t>(Op::kDictDefine));
  PutString(out, msg.table);
  PutString(out, msg.column);
  PutU32(out, static_cast<uint32_t>(msg.values.size()));
  for (const std::string& value : msg.values) PutString(out, value);
}

Status DecodeDictDefine(std::string_view in, DictDefineMsg* msg) {
  if (!GetString(&in, &msg->table) || !GetString(&in, &msg->column)) {
    return Truncated();
  }
  uint32_t count = 0;
  if (!GetU32(&in, &count) || count > kMaxLoadValues) {
    return Status::InvalidArgument("bad dictionary entry count");
  }
  msg->values.clear();
  msg->values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string value;
    if (!GetString(&in, &value)) return Truncated();
    msg->values.push_back(std::move(value));
  }
  return ExpectDrained(in);
}

void EncodeTables(const std::vector<TableInfo>& tables, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kTables));
  PutU32(out, static_cast<uint32_t>(tables.size()));
  for (const TableInfo& info : tables) {
    PutString(out, info.name);
    PutU64(out, info.num_rows);
    PutU8(out, info.has_primary_index ? 1 : 0);
    PutU32(out, static_cast<uint32_t>(info.schema.size()));
    for (const storage::ColumnDef& def : info.schema) {
      PutString(out, def.name);
      PutU8(out, static_cast<uint8_t>(def.type));
    }
  }
}

Status DecodeTables(std::string_view in, std::vector<TableInfo>* tables) {
  uint32_t ntables = 0;
  if (!GetU32(&in, &ntables) || ntables > 65536) {
    return Status::InvalidArgument("bad table count");
  }
  tables->clear();
  for (uint32_t t = 0; t < ntables; ++t) {
    TableInfo info;
    if (!GetString(&in, &info.name) || !GetU64(&in, &info.num_rows) ||
        !GetBool(&in, &info.has_primary_index)) {
      return Truncated();
    }
    ANKER_RETURN_IF_ERROR(GetSchema(&in, &info.schema));
    tables->push_back(std::move(info));
  }
  return ExpectDrained(in);
}

void EncodeReplicateHello(const ReplicateHelloMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kReplicateHello));
  PutString(out, msg.replica_id);
  PutU64(out, msg.start_lsn);
  PutU8(out, msg.sync_ack ? 1 : 0);
}

Status DecodeReplicateHello(std::string_view in, ReplicateHelloMsg* msg) {
  if (!GetString(&in, &msg->replica_id) || !GetU64(&in, &msg->start_lsn) ||
      !GetBool(&in, &msg->sync_ack)) {
    return Truncated();
  }
  if (msg->replica_id.empty() || msg->replica_id.size() > 256) {
    return Status::InvalidArgument("bad replica id");
  }
  if (msg->start_lsn == 0) {
    return Status::InvalidArgument("replication start LSN must be >= 1");
  }
  return ExpectDrained(in);
}

void EncodeReplicaStatus(const ReplicaStatusMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kReplicaStatus));
  PutU64(out, msg.durable_lsn);
  PutU64(out, msg.applied_lsn);
}

Status DecodeReplicaStatus(std::string_view in, ReplicaStatusMsg* msg) {
  if (!GetU64(&in, &msg->durable_lsn) || !GetU64(&in, &msg->applied_lsn)) {
    return Truncated();
  }
  if (msg->applied_lsn > msg->durable_lsn) {
    // A record becomes visible only after it was mirrored; a claim to
    // have applied past its own durable watermark is lying or corrupt —
    // and would drag the primary's retention floor forward incorrectly.
    return Status::InvalidArgument("replica ack: applied > durable");
  }
  return ExpectDrained(in);
}

void EncodeLogStream(uint64_t primary_durable_lsn,
                     const std::vector<StreamRecord>& records,
                     std::string* out) {
  ANKER_CHECK(records.size() <= kMaxLogStreamRecords);
  PutU8(out, static_cast<uint8_t>(Op::kLogStream));
  PutU64(out, primary_durable_lsn);
  PutU32(out, static_cast<uint32_t>(records.size()));
  for (const StreamRecord& record : records) {
    PutU64(out, record.lsn);
    PutString(out, record.payload);
  }
}

Status DecodeLogStream(std::string_view in, uint64_t* primary_durable_lsn,
                       std::vector<StreamRecord>* records) {
  uint32_t count = 0;
  if (!GetU64(&in, primary_durable_lsn) || !GetU32(&in, &count)) {
    return Truncated();
  }
  if (count > kMaxLogStreamRecords) {
    return Status::InvalidArgument("log stream record count implausible");
  }
  records->clear();
  records->reserve(count);
  uint64_t prev_lsn = 0;
  for (uint32_t i = 0; i < count; ++i) {
    StreamRecord record;
    if (!GetU64(&in, &record.lsn) || !GetString(&in, &record.payload)) {
      return Truncated();
    }
    if (record.lsn == 0 || record.lsn <= prev_lsn) {
      return Status::InvalidArgument("log stream LSNs not increasing");
    }
    if (record.lsn > *primary_durable_lsn) {
      return Status::InvalidArgument(
          "log stream record beyond the durable watermark");
    }
    if (record.payload.size() > wal::kMaxRecordBytes) {
      return Status::InvalidArgument("log stream record implausibly large");
    }
    prev_lsn = record.lsn;
    records->push_back(std::move(record));
  }
  return ExpectDrained(in);
}

namespace {

/// A checkpoint file travels as a relative path ("ckpt-12/MANIFEST",
/// "CURRENT"). Reject anything that could escape the replica's data_dir.
bool SafeRelativePath(const std::string& path) {
  if (path.empty() || path.size() > 4096 || path.front() == '/') return false;
  size_t begin = 0;
  while (begin <= path.size()) {
    const size_t end = std::min(path.find('/', begin), path.size());
    const std::string_view part(path.data() + begin, end - begin);
    if (part.empty() || part == "." || part == "..") return false;
    begin = end + 1;
  }
  return true;
}

}  // namespace

void EncodeCkptChunk(const CkptChunkMsg& msg, std::string* out) {
  ANKER_CHECK(msg.data.size() <= kMaxCkptChunkBytes);
  PutU8(out, static_cast<uint8_t>(Op::kCkptChunk));
  PutString(out, msg.file);
  PutU64(out, msg.offset);
  PutU8(out, msg.last ? 1 : 0);
  PutString(out, msg.data);
}

Status DecodeCkptChunk(std::string_view in, CkptChunkMsg* msg) {
  if (!GetString(&in, &msg->file) || !GetU64(&in, &msg->offset) ||
      !GetBool(&in, &msg->last) || !GetString(&in, &msg->data)) {
    return Truncated();
  }
  if (!SafeRelativePath(msg->file)) {
    return Status::InvalidArgument("unsafe checkpoint file path");
  }
  if (msg->data.size() > kMaxCkptChunkBytes) {
    return Status::InvalidArgument("checkpoint chunk too large");
  }
  return ExpectDrained(in);
}

void EncodeCkptDone(uint32_t file_count, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kCkptDone));
  PutU32(out, file_count);
}

Status DecodeCkptDone(std::string_view in, uint32_t* file_count) {
  if (!GetU32(&in, file_count)) return Truncated();
  return ExpectDrained(in);
}

void EncodeWaitLsn(const WaitLsnMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kWaitLsn));
  PutU64(out, msg.lsn);
  PutU32(out, msg.timeout_millis);
}

Status DecodeWaitLsn(std::string_view in, WaitLsnMsg* msg) {
  if (!GetU64(&in, &msg->lsn) || !GetU32(&in, &msg->timeout_millis)) {
    return Truncated();
  }
  if (msg->timeout_millis > 60'000) {
    // A remote peer must not be able to park a server slot for hours.
    msg->timeout_millis = 60'000;
  }
  return ExpectDrained(in);
}

void EncodeCommitOk(uint64_t lsn, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kCommitOk));
  PutU64(out, lsn);
}

Status DecodeCommitOk(std::string_view in, uint64_t* lsn) {
  if (!GetU64(&in, lsn)) return Truncated();
  return ExpectDrained(in);
}

void EncodeReplicaStatusOk(const ReplicaStatusOkMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kReplicaStatusOk));
  PutU8(out, static_cast<uint8_t>(msg.role));
  PutU8(out, msg.stream_connected ? 1 : 0);
  PutU64(out, msg.applied_lsn);
  PutU64(out, msg.durable_lsn);
  PutU64(out, msg.staleness_millis);
  PutString(out, msg.primary_addr);
  PutU64(out, msg.pending_intents);
}

Status DecodeReplicaStatusOk(std::string_view in, ReplicaStatusOkMsg* msg) {
  uint8_t role = 0;
  if (!GetU8(&in, &role) || !GetBool(&in, &msg->stream_connected) ||
      !GetU64(&in, &msg->applied_lsn) || !GetU64(&in, &msg->durable_lsn) ||
      !GetU64(&in, &msg->staleness_millis) ||
      !GetString(&in, &msg->primary_addr) ||
      !GetU64(&in, &msg->pending_intents)) {
    return Truncated();
  }
  if (role > static_cast<uint8_t>(NodeRole::kPromoted)) {
    return Status::InvalidArgument("unknown node role");
  }
  msg->role = static_cast<NodeRole>(role);
  return ExpectDrained(in);
}

void EncodeDigestOk(uint64_t digest, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kDigestOk));
  PutU64(out, digest);
}

Status DecodeDigestOk(std::string_view in, uint64_t* digest) {
  if (!GetU64(&in, digest)) return Truncated();
  return ExpectDrained(in);
}

void EncodeDecommissionReplica(const DecommissionReplicaMsg& msg,
                               std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kDecommissionReplica));
  PutString(out, msg.replica_id);
}

Status DecodeDecommissionReplica(std::string_view in,
                                 DecommissionReplicaMsg* msg) {
  if (!GetString(&in, &msg->replica_id)) return Truncated();
  if (msg->replica_id.empty() || msg->replica_id.size() > 256) {
    return Status::InvalidArgument("bad replica id");
  }
  return ExpectDrained(in);
}

void EncodeRouterStatusOk(const RouterStatusOkMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kRouterStatusOk));
  PutU32(out, msg.shard_count);
  PutU32(out, msg.healthy_shards);
  PutU32(out, msg.shard_map_version);
  PutU64(out, msg.shard_map_digest);
  PutU8(out, msg.allow_partial ? 1 : 0);
  PutU64(out, msg.passthrough_txns);
  PutU64(out, msg.scatter_queries);
  PutU64(out, msg.single_shard_queries);
  PutU64(out, msg.fanout_ops);
  PutU64(out, msg.twopc_txns);
  PutU64(out, msg.intent_resolutions);
}

Status DecodeRouterStatusOk(std::string_view in, RouterStatusOkMsg* msg) {
  if (!GetU32(&in, &msg->shard_count) || !GetU32(&in, &msg->healthy_shards) ||
      !GetU32(&in, &msg->shard_map_version) ||
      !GetU64(&in, &msg->shard_map_digest) ||
      !GetBool(&in, &msg->allow_partial) ||
      !GetU64(&in, &msg->passthrough_txns) ||
      !GetU64(&in, &msg->scatter_queries) ||
      !GetU64(&in, &msg->single_shard_queries) ||
      !GetU64(&in, &msg->fanout_ops) || !GetU64(&in, &msg->twopc_txns) ||
      !GetU64(&in, &msg->intent_resolutions)) {
    return Truncated();
  }
  if (msg->healthy_shards > msg->shard_count) {
    return Status::InvalidArgument("healthy shard count exceeds shard count");
  }
  return ExpectDrained(in);
}

void EncodePrepareTxn(const PrepareTxnMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kPrepareTxn));
  PutU64(out, msg.gtid);
  PutU32(out, msg.primary_shard);
  PutU32(out, static_cast<uint32_t>(msg.writes.size()));
  for (const PointWrite& write : msg.writes) PutWriteBody(write, out);
}

Status DecodePrepareTxn(std::string_view in, PrepareTxnMsg* msg) {
  uint32_t count = 0;
  if (!GetU64(&in, &msg->gtid) || !GetU32(&in, &msg->primary_shard) ||
      !GetU32(&in, &count)) {
    return Truncated();
  }
  if (count == 0 || count > kMaxWritesPerBatch) {
    return Status::InvalidArgument("bad prepare write count");
  }
  msg->writes.clear();
  msg->writes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PointWrite write;
    if (!GetWriteBody(&in, &write)) return Truncated();
    msg->writes.push_back(std::move(write));
  }
  return ExpectDrained(in);
}

void EncodePreparedOk(const PreparedOkMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kPreparedOk));
  PutU64(out, msg.prepare_ts);
  PutU64(out, msg.lsn);
}

Status DecodePreparedOk(std::string_view in, PreparedOkMsg* msg) {
  if (!GetU64(&in, &msg->prepare_ts) || !GetU64(&in, &msg->lsn)) {
    return Truncated();
  }
  return ExpectDrained(in);
}

void EncodeCommitPrepared(const CommitPreparedMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kCommitPrepared));
  PutU64(out, msg.gtid);
  PutU64(out, msg.commit_ts);
}

Status DecodeCommitPrepared(std::string_view in, CommitPreparedMsg* msg) {
  if (!GetU64(&in, &msg->gtid) || !GetU64(&in, &msg->commit_ts)) {
    return Truncated();
  }
  if (msg->commit_ts == 0) {
    return Status::InvalidArgument("commit_ts must be nonzero");
  }
  return ExpectDrained(in);
}

void EncodeAbortPrepared(const AbortPreparedMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kAbortPrepared));
  PutU64(out, msg.gtid);
}

Status DecodeAbortPrepared(std::string_view in, AbortPreparedMsg* msg) {
  if (!GetU64(&in, &msg->gtid)) return Truncated();
  return ExpectDrained(in);
}

void EncodeResolveIntent(const ResolveIntentMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kResolveIntent));
  PutU64(out, msg.gtid);
  PutU8(out, msg.abort_pending ? 1 : 0);
}

Status DecodeResolveIntent(std::string_view in, ResolveIntentMsg* msg) {
  if (!GetU64(&in, &msg->gtid) || !GetBool(&in, &msg->abort_pending)) {
    return Truncated();
  }
  return ExpectDrained(in);
}

void EncodeResolvedOk(const ResolvedOkMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kResolvedOk));
  PutU8(out, msg.outcome);
  PutU64(out, msg.commit_ts);
}

Status DecodeResolvedOk(std::string_view in, ResolvedOkMsg* msg) {
  if (!GetU8(&in, &msg->outcome) || !GetU64(&in, &msg->commit_ts)) {
    return Truncated();
  }
  if (msg->outcome > 2) {
    return Status::InvalidArgument("unknown txn outcome");
  }
  return ExpectDrained(in);
}

void EncodeIntentPending(const IntentPendingMsg& msg, std::string* out) {
  PutU8(out, static_cast<uint8_t>(Op::kIntentPending));
  PutU64(out, msg.gtid);
  PutU32(out, msg.primary_shard);
}

Status DecodeIntentPending(std::string_view in, IntentPendingMsg* msg) {
  if (!GetU64(&in, &msg->gtid) || !GetU32(&in, &msg->primary_shard)) {
    return Truncated();
  }
  return ExpectDrained(in);
}

}  // namespace anker::server
