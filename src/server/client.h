#ifndef ANKER_SERVER_CLIENT_H_
#define ANKER_SERVER_CLIENT_H_

// Blocking C++ client for the anker wire protocol: one TCP connection,
// strict request/response (responses arrive in request order; queries
// additionally stream result batches before their terminating frame).
// Used by tools/anker_cli.cc, bench/bench_server_throughput.cc and the
// loopback end-to-end tests; the walkthrough lives in docs/SERVER.md.
//
// Error surface: every remote failure comes back as the Status the
// server would have produced in-process (wire error codes map 1:1 onto
// StatusCode). BUSY backpressure surfaces as kResourceBusy — retryable
// by construction. Transport-level failures (connection reset, framing
// corruption) are kIoError and poison the client: every later call
// fails fast until the caller reconnects.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "server/protocol.h"

namespace anker::server {

struct ClientOptions {
  std::string auth_token;
  /// Send/receive timeout per socket operation; 0 = block forever.
  int io_timeout_millis = 0;
};

class Client {
 public:
  /// Connects and completes the HELLO handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ClientOptions options = {});
  ~Client();
  ANKER_DISALLOW_COPY_AND_MOVE(Client);

  Status Ping();

  /// Transaction control (one open transaction per connection, mirroring
  /// the server's session state machine).
  Status Begin();
  Status Commit();
  Status Abort();

  /// Point operations. With `by_key` the row is resolved through the
  /// table's primary index; otherwise `key` is the row id.
  Result<uint64_t> Read(const std::string& table, const std::string& column,
                        uint64_t key, bool by_key = false);
  Status Write(const std::string& table, const std::string& column,
               uint64_t key, uint64_t raw, bool by_key = false);
  Status WriteBatch(const std::vector<PointWrite>& writes);
  /// One-round-trip auto-commit transaction (BEGIN + writes + COMMIT).
  Status ExecTxn(const std::vector<PointWrite>& writes);

  /// Ships a declarative query (query/serialize.h) and reassembles the
  /// streamed result. Aggregate values travel as raw IEEE bits: the
  /// returned rows are byte-identical to an in-process Database::Run.
  Result<query::QueryResult> Query(const query::WireQuery& query,
                                   const query::Params& params);

  /// Schema / load surface.
  Status CreateTable(const std::string& name, uint64_t num_rows,
                     const std::vector<storage::ColumnDef>& schema);
  Status Load(const std::string& table, const std::string& column,
              uint64_t start_row, const std::vector<uint64_t>& values);
  Status BuildIndex(const std::string& table, const std::string& key_column);
  /// Appends dictionary entries to a dict32 column (code = position);
  /// required before grouping on a column loaded with raw codes.
  Status DefineDict(const std::string& table, const std::string& column,
                    const std::vector<std::string>& values);
  Result<std::vector<TableInfo>> ListTables();

  /// Fire-and-wait raw round trip for tests and benches: sends one
  /// already-encoded request payload, returns the raw response payload.
  Result<std::string> RoundTrip(const std::string& request_payload);

  /// Pipelining for benches: queue a request without reading responses...
  Status SendOnly(const std::string& request_payload);
  /// ...then collect one pending simple (non-query) response.
  Result<std::string> ReceiveOne();

 private:
  Client() = default;

  Status SendFrame(const std::string& payload);
  /// Blocks until one complete frame arrives.
  Status ReceiveFrame(std::string* payload);
  /// Decodes kOk / kErr / kBusy into a Status; anything else is a
  /// protocol error (poisons the client).
  Status StatusResponse(const std::string& payload);

  int fd_ = -1;
  std::string inbox_;
  Status poisoned_ = Status::OK();  ///< First transport failure, sticky.
};

}  // namespace anker::server

#endif  // ANKER_SERVER_CLIENT_H_
