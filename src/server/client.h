#ifndef ANKER_SERVER_CLIENT_H_
#define ANKER_SERVER_CLIENT_H_

// Blocking C++ client for the anker wire protocol: one TCP connection,
// strict request/response (responses arrive in request order; queries
// additionally stream result batches before their terminating frame).
// Used by tools/anker_cli.cc, bench/bench_server_throughput.cc and the
// loopback end-to-end tests; the walkthrough lives in docs/SERVER.md.
//
// Error surface: every remote failure comes back as the Status the
// server would have produced in-process (wire error codes map 1:1 onto
// StatusCode). BUSY backpressure surfaces as kResourceBusy — retryable
// by construction. Transport-level failures (connection reset, framing
// corruption) are kIoError and poison the client: every later call
// fails fast until the caller reconnects.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "server/protocol.h"

namespace anker::server {

struct ClientOptions {
  std::string auth_token;
  /// Send/receive timeout per socket operation; 0 = block forever.
  int io_timeout_millis = 0;
  /// Opt-in retry budget for BUSY responses: RoundTrip-style operations
  /// re-send up to this many times with bounded exponential backoff
  /// before surfacing kResourceBusy. 0 (default) = no retries. BUSY is
  /// emitted *before* the server runs an operation (admission control),
  /// so re-sending is safe; callers enabling this on COMMIT/EXEC_TXN
  /// accept at-least-once submission if a sync-ack gate times out.
  int busy_retry_budget = 0;
  int busy_backoff_initial_millis = 5;
  int busy_backoff_max_millis = 500;
};

class Client {
 public:
  /// Connects and completes the HELLO handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ClientOptions options = {});
  ~Client();
  ANKER_DISALLOW_COPY_AND_MOVE(Client);

  Status Ping();

  /// Transaction control (one open transaction per connection, mirroring
  /// the server's session state machine).
  Status Begin();
  Status Commit();
  Status Abort();

  /// Point operations. With `by_key` the row is resolved through the
  /// table's primary index; otherwise `key` is the row id.
  /// A read that lands on an unresolved 2PC write intent returns
  /// kResourceBusy; when `intent` is non-null it carries the blocking
  /// transaction's gtid + primary shard so the caller can resolve via
  /// ResolveIntent on the primary and retry.
  Result<uint64_t> Read(const std::string& table, const std::string& column,
                        uint64_t key, bool by_key = false,
                        IntentPendingMsg* intent = nullptr);
  Status Write(const std::string& table, const std::string& column,
               uint64_t key, uint64_t raw, bool by_key = false);
  Status WriteBatch(const std::vector<PointWrite>& writes);
  /// One-round-trip auto-commit transaction (BEGIN + writes + COMMIT).
  Status ExecTxn(const std::vector<PointWrite>& writes);

  /// Ships a declarative query (query/serialize.h) and reassembles the
  /// streamed result. Aggregate values travel as raw IEEE bits: the
  /// returned rows are byte-identical to an in-process Database::Run.
  Result<query::QueryResult> Query(const query::WireQuery& query,
                                   const query::Params& params);

  /// Schema / load surface.
  Status CreateTable(const std::string& name, uint64_t num_rows,
                     const std::vector<storage::ColumnDef>& schema);
  Status Load(const std::string& table, const std::string& column,
              uint64_t start_row, const std::vector<uint64_t>& values);
  Status BuildIndex(const std::string& table, const std::string& key_column);
  /// Appends dictionary entries to a dict32 column (code = position);
  /// required before grouping on a column loaded with raw codes.
  Status DefineDict(const std::string& table, const std::string& column,
                    const std::vector<std::string>& values);
  Result<std::vector<TableInfo>> ListTables();

  /// Replication / operations surface (protocol v3).
  /// Blocks until the node has applied `lsn` (read-your-writes against a
  /// replica: pass last_commit_lsn() from the primary connection).
  /// kResourceBusy when the wait times out — the replica is lagging.
  Status WaitLsn(uint64_t lsn, uint32_t timeout_millis);
  Result<ReplicaStatusOkMsg> ReplicaStatus();
  /// Controlled failover: flips a replica writable. See docs/OPERATIONS.md.
  Status Promote();
  Status CheckpointNow();
  /// Whole-database content digest; meaningful on a quiesced node.
  Result<uint64_t> Digest();

  /// Sharding / operations surface (protocol v4).
  /// Erases a permanently-departed replica from a primary's retention
  /// registry so WAL truncation stops protecting its resume point.
  /// InvalidArgument while that replica is still connected.
  Status DecommissionReplica(const std::string& replica_id);
  /// Routing counters from a shard router; NotSupported on an engine
  /// server (the probe doubles as "is this endpoint a router").
  Result<RouterStatusOkMsg> RouterStatus();

  /// Cross-shard 2PC surface (protocol v5) — normally driven by the
  /// shard router; exposed here for harnesses and tests.
  /// Phase one: stage `writes` as intents under `gtid`. On OK the
  /// shard's prepare stamp and durable kPrepare LSN are returned.
  Status PrepareTxn(uint64_t gtid, uint32_t primary_shard,
                    const std::vector<PointWrite>& writes,
                    uint64_t* prepare_ts = nullptr, uint64_t* lsn = nullptr);
  /// Phase two: materialize (idempotent; duplicate → OK with lsn 0)...
  Status CommitPrepared(uint64_t gtid, uint64_t commit_ts,
                        uint64_t* lsn = nullptr);
  /// ...or discard. Unknown gtids are fenced with a durable tombstone.
  Status AbortPrepared(uint64_t gtid);
  /// Outcome query at the primary shard. `abort_pending` escalates an
  /// undecided transaction to a durable abort (dead-router recovery).
  Status ResolveIntent(uint64_t gtid, bool abort_pending,
                       uint8_t* outcome, uint64_t* commit_ts = nullptr);

  /// LSN of the last COMMIT/EXEC_TXN acknowledged on this connection
  /// (0 before any durable commit) — the read-your-writes token.
  uint64_t last_commit_lsn() const { return last_commit_lsn_; }

  /// Unblocks any thread stuck in recv/send on this client (the fd stays
  /// owned and is closed by the destructor). Safe from another thread.
  void ShutdownSocket();

  /// Fire-and-wait raw round trip for tests and benches: sends one
  /// already-encoded request payload, returns the raw response payload.
  Result<std::string> RoundTrip(const std::string& request_payload);

  /// Pipelining for benches: queue a request without reading responses...
  Status SendOnly(const std::string& request_payload);
  /// ...then collect one pending simple (non-query) response.
  Result<std::string> ReceiveOne();

 private:
  Client() = default;

  Status SendFrame(const std::string& payload);
  /// Blocks until one complete frame arrives.
  Status ReceiveFrame(std::string* payload);
  /// Decodes kOk / kErr / kBusy into a Status; anything else is a
  /// protocol error (poisons the client).
  Status StatusResponse(const std::string& payload);
  /// kOk or kCommitOk (stashing the LSN) → OK; else StatusResponse.
  Status CommitResponse(const std::string& payload);

  int fd_ = -1;
  std::string inbox_;
  ClientOptions options_;
  uint64_t last_commit_lsn_ = 0;
  Status poisoned_ = Status::OK();  ///< First transport failure, sticky.
};

}  // namespace anker::server

#endif  // ANKER_SERVER_CLIENT_H_
