#ifndef ANKER_SERVER_PROTOCOL_H_
#define ANKER_SERVER_PROTOCOL_H_

// The anker wire protocol: CRC-framed, length-prefixed binary messages
// over TCP. One frame carries one request or one response; the first
// payload byte is the opcode. Framing reuses the WAL's integrity idiom —
// little-endian fields (wal/wal_format.h) and masked CRC32C
// (wal/crc32c.h) — so a torn or corrupted frame is detected before any
// payload byte is interpreted. The full specification (frame layout,
// opcode table, error codes, versioning rules) lives in docs/SERVER.md;
// this header is its executable form.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "query/serialize.h"
#include "storage/table.h"

namespace anker::server {

/// ---- frame layout --------------------------------------------------------
/// | u32 payload_len | u32 masked CRC32C(payload) | payload bytes |
/// A frame is only acted on once complete and checksum-verified.

inline constexpr size_t kFrameHeaderBytes = 8;
/// Upper bound on one frame's payload. Large enough for a maximal result
/// batch or bulk load slice, small enough that a torn/hostile length
/// field cannot drive a gigabyte allocation (same reasoning as
/// wal::kMaxRecordBytes).
inline constexpr uint32_t kMaxFramePayload = 4u << 20;

/// Protocol version exchanged in HELLO. The server refuses other
/// versions; see docs/SERVER.md for the compatibility rules.
/// v2: QUERY carries operator-DAG forms (joins, order/limit, window,
/// select); QUERY_BATCH key slots widened to typed 64-bit raws and
/// QUERY_DONE gained per-key type tags.
/// v3: replication surface (REPLICATE_HELLO / FETCH_CHECKPOINT /
/// LOG_STREAM / REPLICA_STATUS, plus WAIT_LSN / PROMOTE / CHECKPOINT_NOW
/// / DIGEST); COMMIT and EXEC_TXN now acknowledge with COMMIT_OK
/// carrying the commit's WAL LSN (the read-your-writes token); writes on
/// a replica fail with the READ_ONLY_REPLICA error code.
/// v4: sharding surface. HELLO_OK gained a flags word (bit 0 = "this
/// endpoint is a shard router") and the router's shard-map digest;
/// QUERY_DONE gained the result's column interleave (DAG schema order of
/// key/value outputs, so a router can re-sort merged rows exactly);
/// ROUTER_STATUS exposes routing counters; DECOMMISSION_REPLICA drops a
/// permanently-departed replica from the primary's retention registry.
/// v5: cross-shard 2PC surface (PREPARE_TXN / COMMIT_PREPARED /
/// ABORT_PREPARED / RESOLVE_INTENT with the PREPARED_OK / RESOLVED_OK /
/// INTENT_PENDING responses); READ can now answer INTENT_PENDING when
/// the slot carries an unresolved write intent; REPLICA_STATUS_OK grew
/// the node's pending-intent count and ROUTER_STATUS_OK its 2PC
/// counters (both appended fields — safe, handshakes require exact
/// version equality).
inline constexpr uint32_t kProtocolVersion = 5;

/// Magic the client opens HELLO with ("ANKRNET1", little-endian), so a
/// stray connection speaking another protocol is rejected on byte one.
inline constexpr uint64_t kHelloMagic = 0x3154454E524B4E41ULL;

/// ---- opcodes -------------------------------------------------------------
/// Requests occupy 0x01..0x7f, responses 0x80..0xff: a peer can always
/// tell which direction a frame belongs to.
enum class Op : uint8_t {
  // Session setup / liveness.
  kHello = 0x01,  ///< magic, version, auth token. First frame, exactly once.
  kPing = 0x02,

  // Transaction control (one open OLTP transaction per session).
  kBegin = 0x10,
  kCommit = 0x11,
  kAbort = 0x12,

  // Point operations against the open transaction. `by_key` routes the
  // row through the table's primary HashIndex; otherwise the key is the
  // row id itself.
  kRead = 0x13,
  kWrite = 0x14,
  kWriteBatch = 0x15,  ///< n writes in one frame (amortizes round trips).
  kExecTxn = 0x16,     ///< BEGIN + n writes + COMMIT in one frame (1 RTT).

  // Declarative queries (query/serialize.h payloads).
  kQuery = 0x20,

  // Schema / load surface (bootstrap and tooling).
  kCreateTable = 0x30,
  kLoad = 0x31,        ///< Unversioned bulk load of consecutive slots.
  kBuildIndex = 0x32,  ///< Build the primary index over a key column.
  kListTables = 0x33,
  kDictDefine = 0x34,  ///< Append dictionary entries (code = position).

  // Replication / operations surface (v3).
  kReplicateHello = 0x40,   ///< Subscribe this connection to the WAL stream.
  kFetchCheckpoint = 0x41,  ///< Stream the newest checkpoint's files.
  kReplicaStatus = 0x42,    ///< Stream ack (replica -> primary) or probe.
  kWaitLsn = 0x43,          ///< Block until applied_lsn >= lsn (replica).
  kPromote = 0x44,          ///< Flip a replica writable (operator action).
  kCheckpointNow = 0x45,    ///< Force a checkpoint (pre-bootstrap).
  kDigest = 0x46,           ///< Content digest of all visible data.

  // Sharding / operations surface (v4).
  kRouterStatus = 0x47,        ///< Routing counters + shard map health.
  kDecommissionReplica = 0x48, ///< Drop a departed replica's retention pin.

  // Cross-shard 2PC surface (v5; router -> shard, docs/SERVER.md).
  kPrepareTxn = 0x49,      ///< Stage a write set as intents (phase one).
  kCommitPrepared = 0x4a,  ///< Materialize a prepared write set (phase two).
  kAbortPrepared = 0x4b,   ///< Discard a prepared write set (phase two).
  kResolveIntent = 0x4c,   ///< Ask the primary shard for a txn's outcome.

  // Responses.
  kHelloOk = 0x81,
  kOk = 0x82,          ///< Generic success ack (BEGIN/COMMIT/WRITE/...).
  kErr = 0x83,         ///< Error code + message; session usually survives.
  kBusy = 0x84,        ///< Admission control: retry later.
  kReadOk = 0x85,      ///< One raw slot value.
  kQueryBatch = 0x86,  ///< A slice of result rows (0..n per query).
  kQueryDone = 0x87,   ///< Result metadata + scan stats; ends the stream.
  kPong = 0x88,
  kTables = 0x89,      ///< ListTables response.

  // Replication / operations responses (v3).
  kLogStream = 0x8a,        ///< A batch of WAL records (empty = heartbeat).
  kCkptChunk = 0x8b,        ///< One slice of one checkpoint file.
  kCkptDone = 0x8c,         ///< Checkpoint transfer complete.
  kCommitOk = 0x8d,         ///< Commit ack carrying the commit's WAL LSN.
  kReplicaStatusOk = 0x8e,  ///< Role, watermarks, staleness.
  kDigestOk = 0x8f,         ///< Content digest value.

  // Sharding / operations responses (v4).
  kRouterStatusOk = 0x90,   ///< Routing counters + shard map health.

  // Cross-shard 2PC responses (v5).
  kPreparedOk = 0x91,      ///< Prepare ack: local prepare_ts + durable LSN.
  kResolvedOk = 0x92,      ///< RESOLVE_INTENT answer: outcome + commit_ts.
  kIntentPending = 0x93,   ///< READ hit an unresolved intent; go resolve it.
};

/// True iff `op` is a known request opcode (client -> server).
bool IsRequestOp(uint8_t op);

/// ---- wire error codes ----------------------------------------------------
/// StatusCode travels as its underlying value (stable, documented in
/// docs/SERVER.md); protocol-level failures get their own range so a
/// client can distinguish "your transaction aborted" from "you broke the
/// protocol".
enum class WireError : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIoError = 5,
  kAborted = 6,
  kResourceBusy = 7,
  kNotSupported = 8,
  kInternal = 9,
  // Protocol-level (no StatusCode equivalent).
  kBadHandshake = 32,  ///< Malformed/missing HELLO, wrong magic or version.
  kProtocolError = 33, ///< Op sequencing violation (e.g. op before HELLO).
  /// Write-class op sent to a read replica. Recoverable: the session
  /// survives and reads keep working — redirect writes to the primary.
  kReadOnlyReplica = 34,
};

WireError WireErrorFor(const Status& status);
Status StatusFromWire(WireError code, std::string message);

/// ---- framing -------------------------------------------------------------

/// Appends one complete frame (header + payload) to `out`.
/// CHECK-fails on a payload over kMaxFramePayload — building an
/// oversized frame is a programming error on the sending side.
void EncodeFrame(std::string_view payload, std::string* out);

enum class FrameStatus {
  kOk,       ///< One frame decoded; *consumed bytes were used.
  kNeedMore, ///< Buffer holds a valid prefix; read more bytes.
  kCorrupt,  ///< Oversized length or checksum mismatch; close the peer.
};

/// Attempts to decode one frame from the front of `buffer`. On kOk,
/// `*payload` receives the payload bytes and `*consumed` the total frame
/// size; on kNeedMore/kCorrupt both outputs are untouched.
FrameStatus DecodeFrame(std::string_view buffer, std::string_view* payload,
                        size_t* consumed);

/// ---- message payloads ----------------------------------------------------
/// Every message is `opcode byte + body`. Encoders append to a string;
/// decoders consume a string_view positioned *after* the opcode byte and
/// fail with InvalidArgument on malformed input (wire input is
/// untrusted; nothing here CHECKs).

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  std::string auth_token;
};
void EncodeHello(const HelloMsg& msg, std::string* out);
Status DecodeHello(std::string_view in, HelloMsg* msg);

/// HELLO_OK flags word (v4).
inline constexpr uint32_t kHelloFlagRouter = 1u << 0;

struct HelloOkMsg {
  uint32_t version = kProtocolVersion;
  std::string server_info;
  /// kHelloFlag* bits; 0 for a plain engine server.
  uint32_t flags = 0;
  /// Router only: digest of the active shard map, so clients (and the
  /// smoke harness) can pin the topology they loaded against.
  uint64_t shard_map_digest = 0;
};
void EncodeHelloOk(const HelloOkMsg& msg, std::string* out);
Status DecodeHelloOk(std::string_view in, HelloOkMsg* msg);

struct ErrMsg {
  WireError code = WireError::kInternal;
  std::string message;
};
void EncodeErr(Op op, const ErrMsg& msg, std::string* out);  ///< kErr/kBusy.
Status DecodeErr(std::string_view in, ErrMsg* msg);

/// One point write (kWrite carries one, kWriteBatch/kExecTxn carry n).
struct PointWrite {
  std::string table;
  std::string column;
  bool by_key = false;
  uint64_t key = 0;
  uint64_t raw = 0;
};

struct PointReadMsg {
  std::string table;
  std::string column;
  bool by_key = false;
  uint64_t key = 0;
};
void EncodePointRead(const PointReadMsg& msg, std::string* out);
Status DecodePointRead(std::string_view in, PointReadMsg* msg);

void EncodeWrite(const PointWrite& write, std::string* out);
Status DecodeWrite(std::string_view in, PointWrite* write);

/// kWriteBatch and kExecTxn share one body shape.
inline constexpr uint32_t kMaxWritesPerBatch = 4096;
void EncodeWriteBatch(Op op, const std::vector<PointWrite>& writes,
                      std::string* out);
Status DecodeWriteBatch(std::string_view in, std::vector<PointWrite>* writes);

void EncodeReadOk(uint64_t raw, std::string* out);
Status DecodeReadOk(std::string_view in, uint64_t* raw);

struct QueryMsg {
  query::WireQuery query;
  query::Params params;
};
Status EncodeQuery(const QueryMsg& msg, std::string* out);
Status DecodeQuery(std::string_view in, QueryMsg* msg);

/// Result rows stream in batches; doubles travel as raw IEEE bits so the
/// client reassembles aggregates byte-identically to an in-process Run.
inline constexpr size_t kQueryBatchRows = 256;
void EncodeQueryBatch(const query::QueryResult& result, size_t row_begin,
                      size_t row_end, std::string* out);
Status DecodeQueryBatch(std::string_view in, query::QueryResult* result);

void EncodeQueryDone(const query::QueryResult& result, std::string* out);
/// Fills names/stats; rows must already have arrived via batches.
Status DecodeQueryDone(std::string_view in, query::QueryResult* result);

/// Row-count ceiling for remotely created tables: 2^28 rows = 2 GiB per
/// column. A bigger claim in a CREATE_TABLE frame is rejected at decode
/// time — a remote peer must not be able to dictate an allocation that
/// takes the process down (embedded callers are not subject to this cap).
inline constexpr uint64_t kMaxWireTableRows = 1ull << 28;

struct CreateTableMsg {
  std::string name;
  uint64_t num_rows = 0;
  std::vector<storage::ColumnDef> schema;
};
void EncodeCreateTable(const CreateTableMsg& msg, std::string* out);
Status DecodeCreateTable(std::string_view in, CreateTableMsg* msg);

struct LoadMsg {
  std::string table;
  std::string column;
  uint64_t start_row = 0;
  std::vector<uint64_t> values;
};
inline constexpr size_t kMaxLoadValues = 65536;
void EncodeLoad(const LoadMsg& msg, std::string* out);
Status DecodeLoad(std::string_view in, LoadMsg* msg);

struct BuildIndexMsg {
  std::string table;
  std::string key_column;
};
void EncodeBuildIndex(const BuildIndexMsg& msg, std::string* out);
Status DecodeBuildIndex(std::string_view in, BuildIndexMsg* msg);

/// Dictionary entries for a kDict32 column, appended in order (the code
/// of each string is its position at insert time; re-sent strings keep
/// their existing code). Group-by packing sizes its key domain from the
/// dictionary, so remote loaders must define entries before grouping on
/// a column they filled with raw codes.
struct DictDefineMsg {
  std::string table;
  std::string column;
  std::vector<std::string> values;
};
void EncodeDictDefine(const DictDefineMsg& msg, std::string* out);
Status DecodeDictDefine(std::string_view in, DictDefineMsg* msg);

struct TableInfo {
  std::string name;
  uint64_t num_rows = 0;
  std::vector<storage::ColumnDef> schema;
  bool has_primary_index = false;
};
void EncodeTables(const std::vector<TableInfo>& tables, std::string* out);
Status DecodeTables(std::string_view in, std::vector<TableInfo>* tables);

/// ---- replication messages (v3) -------------------------------------------
/// The subscription handshake, checkpoint transfer and record stream for
/// WAL shipping. All of these decoders face a network peer — a hostile
/// or corrupt frame must come back as InvalidArgument, never abort.

/// kReplicateHello: turns the connection into a log-stream subscription.
struct ReplicateHelloMsg {
  std::string replica_id;   ///< Stable name for logs and the ack registry.
  uint64_t start_lsn = 1;   ///< First LSN the subscriber still needs.
  bool sync_ack = false;    ///< Gate primary commit acks on this replica.
};
void EncodeReplicateHello(const ReplicateHelloMsg& msg, std::string* out);
Status DecodeReplicateHello(std::string_view in, ReplicateHelloMsg* msg);

/// kReplicaStatus: as a request on a streaming connection it is the
/// replica's ack (both watermarks); as a plain session request it probes
/// a node's role and staleness (fields ignored).
struct ReplicaStatusMsg {
  uint64_t durable_lsn = 0;  ///< Highest LSN fsynced into the local mirror.
  uint64_t applied_lsn = 0;  ///< Highest LSN visible to reads.
};
void EncodeReplicaStatus(const ReplicaStatusMsg& msg, std::string* out);
Status DecodeReplicaStatus(std::string_view in, ReplicaStatusMsg* msg);

/// kLogStream: one batch of shipped records. `primary_durable_lsn` lets
/// an empty batch double as a heartbeat that still advances the
/// replica's view of how far behind it is.
struct StreamRecord {
  uint64_t lsn = 0;
  std::string payload;
};
inline constexpr uint32_t kMaxLogStreamRecords = 4096;
void EncodeLogStream(uint64_t primary_durable_lsn,
                     const std::vector<StreamRecord>& records,
                     std::string* out);
/// Rejects lying counts, oversized payloads, zero or non-increasing
/// LSNs — any of which would otherwise poison the replica's apply loop.
Status DecodeLogStream(std::string_view in, uint64_t* primary_durable_lsn,
                       std::vector<StreamRecord>* records);

/// kCkptChunk: one slice of one checkpoint file, in path order. `file`
/// is a relative path under the data directory (e.g. "ckpt-12/MANIFEST"
/// or "CURRENT"); the decoder rejects absolute paths and ".." traversal
/// so a hostile primary cannot write outside the replica's data_dir.
struct CkptChunkMsg {
  std::string file;
  uint64_t offset = 0;
  bool last = false;  ///< Final chunk of this file.
  std::string data;
};
inline constexpr uint32_t kMaxCkptChunkBytes = 1u << 20;
void EncodeCkptChunk(const CkptChunkMsg& msg, std::string* out);
Status DecodeCkptChunk(std::string_view in, CkptChunkMsg* msg);

/// kCkptDone: ends a FETCH_CHECKPOINT transfer.
void EncodeCkptDone(uint32_t file_count, std::string* out);
Status DecodeCkptDone(std::string_view in, uint32_t* file_count);

/// kWaitLsn: block (bounded) until the replica has applied `lsn` — the
/// read-your-writes barrier, using the LSN from a COMMIT_OK ack.
struct WaitLsnMsg {
  uint64_t lsn = 0;
  uint32_t timeout_millis = 0;
};
void EncodeWaitLsn(const WaitLsnMsg& msg, std::string* out);
Status DecodeWaitLsn(std::string_view in, WaitLsnMsg* msg);

/// kCommitOk: success ack for COMMIT / EXEC_TXN carrying the commit
/// record's WAL LSN (0 when the transaction wrote nothing or durability
/// is off).
void EncodeCommitOk(uint64_t lsn, std::string* out);
Status DecodeCommitOk(std::string_view in, uint64_t* lsn);

enum class NodeRole : uint8_t {
  kPrimary = 0,
  kReplica = 1,
  kPromoted = 2,  ///< Was a replica; now writable after PROMOTE.
};

/// kReplicaStatusOk: the probe response.
struct ReplicaStatusOkMsg {
  NodeRole role = NodeRole::kPrimary;
  bool stream_connected = false;     ///< Replica only: stream currently up.
  uint64_t applied_lsn = 0;
  uint64_t durable_lsn = 0;
  uint64_t staleness_millis = 0;     ///< Time since last stream progress.
  std::string primary_addr;          ///< Replica only: upstream host:port.
  /// Prepared-but-undecided cross-shard transactions staged on this node
  /// (v5). The 2PC drill asserts this drains to zero after recovery.
  uint64_t pending_intents = 0;
};
void EncodeReplicaStatusOk(const ReplicaStatusOkMsg& msg, std::string* out);
Status DecodeReplicaStatusOk(std::string_view in, ReplicaStatusOkMsg* msg);

/// kDigestOk: Database::ContentDigest over all visible data.
void EncodeDigestOk(uint64_t digest, std::string* out);
Status DecodeDigestOk(std::string_view in, uint64_t* digest);

/// ---- sharding messages (v4) ----------------------------------------------

/// kDecommissionReplica: operator action on a primary — erase a
/// permanently-departed replica from the retention registry so the WAL
/// retention floor stops protecting its resume point. Refused while the
/// replica is still connected.
struct DecommissionReplicaMsg {
  std::string replica_id;
};
void EncodeDecommissionReplica(const DecommissionReplicaMsg& msg,
                               std::string* out);
Status DecodeDecommissionReplica(std::string_view in,
                                 DecommissionReplicaMsg* msg);

/// kRouterStatusOk: a shard router's routing counters and topology
/// health. A plain engine server refuses kRouterStatus with
/// kNotSupported — the probe doubles as "is this endpoint a router".
struct RouterStatusOkMsg {
  uint32_t shard_count = 0;
  uint32_t healthy_shards = 0;
  uint32_t shard_map_version = 0;
  uint64_t shard_map_digest = 0;
  bool allow_partial = false;
  /// Single-shard EXEC_TXN/BEGIN-session ops forwarded verbatim (1 RTT
  /// through the router — the pass-through fast path).
  uint64_t passthrough_txns = 0;
  /// QUERYs executed by scatter-gather + merge.
  uint64_t scatter_queries = 0;
  /// QUERYs satisfied by a single shard (replicated-only plans).
  uint64_t single_shard_queries = 0;
  /// DDL/load ops fanned out to every shard.
  uint64_t fanout_ops = 0;
  /// Cross-shard EXEC_TXNs committed through the 2PC path (v5).
  uint64_t twopc_txns = 0;
  /// Reader-driven intent resolutions the router performed (v5).
  uint64_t intent_resolutions = 0;
};
void EncodeRouterStatusOk(const RouterStatusOkMsg& msg, std::string* out);
Status DecodeRouterStatusOk(std::string_view in, RouterStatusOkMsg* msg);

/// ---- cross-shard 2PC messages (v5) ---------------------------------------
/// The router is the coordinator; shards only ever see these four ops.
/// `gtid` is the router-issued global transaction id — unique per
/// attempt, never reused after a decision.

/// kPrepareTxn: stage `writes` as intents on this shard (phase one). The
/// ack (kPreparedOk) is only sent after the kPrepare WAL record is
/// durable — the router commits on the strength of it.
struct PrepareTxnMsg {
  uint64_t gtid = 0;
  /// Shard index whose engine decides (and remembers) the outcome.
  uint32_t primary_shard = 0;
  std::vector<PointWrite> writes;
};
void EncodePrepareTxn(const PrepareTxnMsg& msg, std::string* out);
Status DecodePrepareTxn(std::string_view in, PrepareTxnMsg* msg);

/// kPreparedOk: phase-one ack.
struct PreparedOkMsg {
  uint64_t prepare_ts = 0;  ///< Shard-local prepare stamp (HLC input).
  uint64_t lsn = 0;         ///< Durable kPrepare record LSN.
};
void EncodePreparedOk(const PreparedOkMsg& msg, std::string* out);
Status DecodePreparedOk(std::string_view in, PreparedOkMsg* msg);

/// kCommitPrepared: materialize the staged writes (phase two). Answered
/// with kCommitOk carrying the kCommitPrepared record's LSN (0 on an
/// idempotent duplicate).
struct CommitPreparedMsg {
  uint64_t gtid = 0;
  uint64_t commit_ts = 0;  ///< Router HLC stamp (> every prepare_ts).
};
void EncodeCommitPrepared(const CommitPreparedMsg& msg, std::string* out);
Status DecodeCommitPrepared(std::string_view in, CommitPreparedMsg* msg);

/// kAbortPrepared: discard the staged writes (phase two). Answered with
/// kOk; aborting an unknown gtid fences it (durable tombstone).
struct AbortPreparedMsg {
  uint64_t gtid = 0;
};
void EncodeAbortPrepared(const AbortPreparedMsg& msg, std::string* out);
Status DecodeAbortPrepared(std::string_view in, AbortPreparedMsg* msg);

/// kResolveIntent: outcome query at the primary shard. `abort_pending`
/// escalates a still-undecided transaction to a durable abort — the
/// caller is a reader whose coordinating router died.
struct ResolveIntentMsg {
  uint64_t gtid = 0;
  bool abort_pending = false;
};
void EncodeResolveIntent(const ResolveIntentMsg& msg, std::string* out);
Status DecodeResolveIntent(std::string_view in, ResolveIntentMsg* msg);

/// kResolvedOk: the primary's answer (mvcc::TxnOutcome on the wire).
struct ResolvedOkMsg {
  uint8_t outcome = 0;      ///< 0 = pending, 1 = committed, 2 = aborted.
  uint64_t commit_ts = 0;   ///< Committed only: the router's HLC stamp.
};
void EncodeResolvedOk(const ResolvedOkMsg& msg, std::string* out);
Status DecodeResolvedOk(std::string_view in, ResolvedOkMsg* msg);

/// kIntentPending: a READ hit an unresolved intent whose prepare stamp
/// is at or below the reader's snapshot. The caller resolves via the
/// primary shard and retries.
struct IntentPendingMsg {
  uint64_t gtid = 0;
  uint32_t primary_shard = 0;
};
void EncodeIntentPending(const IntentPendingMsg& msg, std::string* out);
Status DecodeIntentPending(std::string_view in, IntentPendingMsg* msg);

}  // namespace anker::server

#endif  // ANKER_SERVER_PROTOCOL_H_
