#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace anker::server {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ClientOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(ErrnoMessage("connect"));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.io_timeout_millis > 0) {
    timeval tv{};
    tv.tv_sec = options.io_timeout_millis / 1000;
    tv.tv_usec = (options.io_timeout_millis % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }

  std::unique_ptr<Client> client(new Client());
  client->fd_ = fd;
  client->options_ = options;

  HelloMsg hello;
  hello.auth_token = options.auth_token;
  std::string payload;
  EncodeHello(hello, &payload);
  ANKER_RETURN_IF_ERROR(client->SendFrame(payload));
  std::string response;
  ANKER_RETURN_IF_ERROR(client->ReceiveFrame(&response));
  if (response.empty()) {
    return Status::IoError("empty HELLO response");
  }
  if (static_cast<Op>(response[0]) == Op::kErr) {
    ErrMsg err;
    ANKER_RETURN_IF_ERROR(
        DecodeErr(std::string_view(response).substr(1), &err));
    return StatusFromWire(err.code, err.message);
  }
  if (static_cast<Op>(response[0]) != Op::kHelloOk) {
    return Status::IoError("unexpected HELLO response opcode");
  }
  HelloOkMsg ok;
  ANKER_RETURN_IF_ERROR(
      DecodeHelloOk(std::string_view(response).substr(1), &ok));
  if (ok.version != kProtocolVersion) {
    return Status::NotSupported("server speaks protocol version " +
                                std::to_string(ok.version));
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendFrame(const std::string& payload) {
  ANKER_RETURN_IF_ERROR(poisoned_);
  std::string frame;
  EncodeFrame(payload, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      poisoned_ = Status::IoError(ErrnoMessage("send"));
      return poisoned_;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::ReceiveFrame(std::string* payload) {
  ANKER_RETURN_IF_ERROR(poisoned_);
  char chunk[65536];
  while (true) {
    std::string_view view;
    size_t consumed = 0;
    const FrameStatus status = DecodeFrame(inbox_, &view, &consumed);
    if (status == FrameStatus::kOk) {
      payload->assign(view);
      inbox_.erase(0, consumed);
      return Status::OK();
    }
    if (status == FrameStatus::kCorrupt) {
      poisoned_ = Status::IoError("corrupt frame from server");
      return poisoned_;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      poisoned_ = Status::IoError("server closed the connection");
      return poisoned_;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      poisoned_ = Status::IoError(ErrnoMessage("recv"));
      return poisoned_;
    }
    inbox_.append(chunk, static_cast<size_t>(n));
  }
}

Status Client::StatusResponse(const std::string& payload) {
  if (payload.empty()) {
    poisoned_ = Status::IoError("empty response payload");
    return poisoned_;
  }
  switch (static_cast<Op>(payload[0])) {
    case Op::kOk:
      return Status::OK();
    case Op::kErr:
    case Op::kBusy: {
      ErrMsg err;
      const Status decoded =
          DecodeErr(std::string_view(payload).substr(1), &err);
      if (!decoded.ok()) {
        poisoned_ = decoded;
        return poisoned_;
      }
      return StatusFromWire(err.code, err.message);
    }
    default:
      poisoned_ = Status::IoError("unexpected response opcode");
      return poisoned_;
  }
}

Result<std::string> Client::RoundTrip(const std::string& request_payload) {
  int backoff = std::max(1, options_.busy_backoff_initial_millis);
  for (int attempt = 0;; ++attempt) {
    ANKER_RETURN_IF_ERROR(SendFrame(request_payload));
    std::string response;
    ANKER_RETURN_IF_ERROR(ReceiveFrame(&response));
    if (attempt >= options_.busy_retry_budget || response.empty() ||
        static_cast<Op>(response[0]) != Op::kBusy) {
      return response;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min(backoff * 2, options_.busy_backoff_max_millis);
  }
}

Status Client::SendOnly(const std::string& request_payload) {
  return SendFrame(request_payload);
}

Result<std::string> Client::ReceiveOne() {
  std::string response;
  ANKER_RETURN_IF_ERROR(ReceiveFrame(&response));
  return response;
}

Status Client::Ping() {
  std::string payload;
  payload.push_back(static_cast<char>(Op::kPing));
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  if (response.value().empty() ||
      static_cast<Op>(response.value()[0]) != Op::kPong) {
    return StatusResponse(response.value());
  }
  return Status::OK();
}

namespace {

std::string OpOnly(Op op) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  return payload;
}

}  // namespace

Status Client::Begin() {
  auto response = RoundTrip(OpOnly(Op::kBegin));
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::CommitResponse(const std::string& payload) {
  if (!payload.empty() && static_cast<Op>(payload[0]) == Op::kCommitOk) {
    uint64_t lsn = 0;
    const Status decoded =
        DecodeCommitOk(std::string_view(payload).substr(1), &lsn);
    if (!decoded.ok()) {
      poisoned_ = decoded;
      return poisoned_;
    }
    last_commit_lsn_ = lsn;
    return Status::OK();
  }
  return StatusResponse(payload);
}

Status Client::Commit() {
  auto response = RoundTrip(OpOnly(Op::kCommit));
  if (!response.ok()) return response.status();
  return CommitResponse(response.value());
}

Status Client::Abort() {
  auto response = RoundTrip(OpOnly(Op::kAbort));
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Result<uint64_t> Client::Read(const std::string& table,
                              const std::string& column, uint64_t key,
                              bool by_key, IntentPendingMsg* intent) {
  PointReadMsg msg;
  msg.table = table;
  msg.column = column;
  msg.key = key;
  msg.by_key = by_key;
  std::string payload;
  EncodePointRead(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kReadOk) {
    uint64_t raw = 0;
    ANKER_RETURN_IF_ERROR(
        DecodeReadOk(std::string_view(response.value()).substr(1), &raw));
    return raw;
  }
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kIntentPending) {
    IntentPendingMsg pending;
    ANKER_RETURN_IF_ERROR(DecodeIntentPending(
        std::string_view(response.value()).substr(1), &pending));
    if (intent != nullptr) *intent = pending;
    return Status::ResourceBusy("read blocked by unresolved write intent");
  }
  return StatusResponse(response.value());
}

Status Client::Write(const std::string& table, const std::string& column,
                     uint64_t key, uint64_t raw, bool by_key) {
  PointWrite write;
  write.table = table;
  write.column = column;
  write.key = key;
  write.raw = raw;
  write.by_key = by_key;
  std::string payload;
  EncodeWrite(write, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::WriteBatch(const std::vector<PointWrite>& writes) {
  std::string payload;
  EncodeWriteBatch(Op::kWriteBatch, writes, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::ExecTxn(const std::vector<PointWrite>& writes) {
  std::string payload;
  EncodeWriteBatch(Op::kExecTxn, writes, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return CommitResponse(response.value());
}

Result<query::QueryResult> Client::Query(const query::WireQuery& query,
                                         const query::Params& params) {
  QueryMsg msg;
  msg.query = query;
  msg.params = params;
  std::string payload;
  ANKER_RETURN_IF_ERROR(EncodeQuery(msg, &payload));
  ANKER_RETURN_IF_ERROR(SendFrame(payload));

  query::QueryResult result;
  while (true) {
    std::string response;
    ANKER_RETURN_IF_ERROR(ReceiveFrame(&response));
    if (response.empty()) {
      poisoned_ = Status::IoError("empty response payload");
      return poisoned_;
    }
    const Op op = static_cast<Op>(response[0]);
    const std::string_view body = std::string_view(response).substr(1);
    if (op == Op::kQueryBatch) {
      const Status decoded = DecodeQueryBatch(body, &result);
      if (!decoded.ok()) {
        poisoned_ = decoded;
        return poisoned_;
      }
      continue;
    }
    if (op == Op::kQueryDone) {
      const Status decoded = DecodeQueryDone(body, &result);
      if (!decoded.ok()) {
        poisoned_ = decoded;
        return poisoned_;
      }
      return result;
    }
    return StatusResponse(response);
  }
}

Status Client::CreateTable(const std::string& name, uint64_t num_rows,
                           const std::vector<storage::ColumnDef>& schema) {
  CreateTableMsg msg;
  msg.name = name;
  msg.num_rows = num_rows;
  msg.schema = schema;
  std::string payload;
  EncodeCreateTable(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::Load(const std::string& table, const std::string& column,
                    uint64_t start_row, const std::vector<uint64_t>& values) {
  // Large loads split into protocol-sized slices transparently.
  size_t offset = 0;
  while (offset < values.size() || values.empty()) {
    LoadMsg msg;
    msg.table = table;
    msg.column = column;
    msg.start_row = start_row + offset;
    const size_t n = std::min(values.size() - offset, kMaxLoadValues);
    msg.values.assign(values.begin() + static_cast<ptrdiff_t>(offset),
                      values.begin() + static_cast<ptrdiff_t>(offset + n));
    std::string payload;
    EncodeLoad(msg, &payload);
    auto response = RoundTrip(payload);
    if (!response.ok()) return response.status();
    ANKER_RETURN_IF_ERROR(StatusResponse(response.value()));
    offset += n;
    if (values.empty()) break;
  }
  return Status::OK();
}

Status Client::BuildIndex(const std::string& table,
                          const std::string& key_column) {
  BuildIndexMsg msg;
  msg.table = table;
  msg.key_column = key_column;
  std::string payload;
  EncodeBuildIndex(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::DefineDict(const std::string& table,
                          const std::string& column,
                          const std::vector<std::string>& values) {
  DictDefineMsg msg;
  msg.table = table;
  msg.column = column;
  msg.values = values;
  std::string payload;
  EncodeDictDefine(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::WaitLsn(uint64_t lsn, uint32_t timeout_millis) {
  WaitLsnMsg msg;
  msg.lsn = lsn;
  msg.timeout_millis = timeout_millis;
  std::string payload;
  EncodeWaitLsn(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Result<ReplicaStatusOkMsg> Client::ReplicaStatus() {
  auto response = RoundTrip(OpOnly(Op::kReplicaStatus));
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kReplicaStatusOk) {
    ReplicaStatusOkMsg status;
    ANKER_RETURN_IF_ERROR(DecodeReplicaStatusOk(
        std::string_view(response.value()).substr(1), &status));
    return status;
  }
  return StatusResponse(response.value());
}

Status Client::PrepareTxn(uint64_t gtid, uint32_t primary_shard,
                          const std::vector<PointWrite>& writes,
                          uint64_t* prepare_ts, uint64_t* lsn) {
  PrepareTxnMsg msg;
  msg.gtid = gtid;
  msg.primary_shard = primary_shard;
  msg.writes = writes;
  std::string payload;
  EncodePrepareTxn(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kPreparedOk) {
    PreparedOkMsg ok;
    ANKER_RETURN_IF_ERROR(
        DecodePreparedOk(std::string_view(response.value()).substr(1), &ok));
    if (prepare_ts != nullptr) *prepare_ts = ok.prepare_ts;
    if (lsn != nullptr) *lsn = ok.lsn;
    return Status::OK();
  }
  return StatusResponse(response.value());
}

Status Client::CommitPrepared(uint64_t gtid, uint64_t commit_ts,
                              uint64_t* lsn) {
  CommitPreparedMsg msg;
  msg.gtid = gtid;
  msg.commit_ts = commit_ts;
  std::string payload;
  EncodeCommitPrepared(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kCommitOk) {
    uint64_t commit_lsn = 0;
    ANKER_RETURN_IF_ERROR(DecodeCommitOk(
        std::string_view(response.value()).substr(1), &commit_lsn));
    if (lsn != nullptr) *lsn = commit_lsn;
    // Idempotent duplicates ack with lsn 0 — don't regress the
    // read-your-writes token with that.
    if (commit_lsn != 0) last_commit_lsn_ = commit_lsn;
    return Status::OK();
  }
  return StatusResponse(response.value());
}

Status Client::AbortPrepared(uint64_t gtid) {
  AbortPreparedMsg msg;
  msg.gtid = gtid;
  std::string payload;
  EncodeAbortPrepared(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::ResolveIntent(uint64_t gtid, bool abort_pending,
                             uint8_t* outcome, uint64_t* commit_ts) {
  ResolveIntentMsg msg;
  msg.gtid = gtid;
  msg.abort_pending = abort_pending;
  std::string payload;
  EncodeResolveIntent(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kResolvedOk) {
    ResolvedOkMsg ok;
    ANKER_RETURN_IF_ERROR(
        DecodeResolvedOk(std::string_view(response.value()).substr(1), &ok));
    if (outcome != nullptr) *outcome = ok.outcome;
    if (commit_ts != nullptr) *commit_ts = ok.commit_ts;
    return Status::OK();
  }
  return StatusResponse(response.value());
}

Status Client::Promote() {
  auto response = RoundTrip(OpOnly(Op::kPromote));
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Status Client::CheckpointNow() {
  auto response = RoundTrip(OpOnly(Op::kCheckpointNow));
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Result<uint64_t> Client::Digest() {
  auto response = RoundTrip(OpOnly(Op::kDigest));
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kDigestOk) {
    uint64_t digest = 0;
    ANKER_RETURN_IF_ERROR(
        DecodeDigestOk(std::string_view(response.value()).substr(1), &digest));
    return digest;
  }
  return StatusResponse(response.value());
}

Status Client::DecommissionReplica(const std::string& replica_id) {
  DecommissionReplicaMsg msg;
  msg.replica_id = replica_id;
  std::string payload;
  EncodeDecommissionReplica(msg, &payload);
  auto response = RoundTrip(payload);
  if (!response.ok()) return response.status();
  return StatusResponse(response.value());
}

Result<RouterStatusOkMsg> Client::RouterStatus() {
  auto response = RoundTrip(OpOnly(Op::kRouterStatus));
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kRouterStatusOk) {
    RouterStatusOkMsg status;
    ANKER_RETURN_IF_ERROR(DecodeRouterStatusOk(
        std::string_view(response.value()).substr(1), &status));
    return status;
  }
  return StatusResponse(response.value());
}

void Client::ShutdownSocket() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<std::vector<TableInfo>> Client::ListTables() {
  auto response = RoundTrip(OpOnly(Op::kListTables));
  if (!response.ok()) return response.status();
  if (!response.value().empty() &&
      static_cast<Op>(response.value()[0]) == Op::kTables) {
    std::vector<TableInfo> tables;
    ANKER_RETURN_IF_ERROR(
        DecodeTables(std::string_view(response.value()).substr(1), &tables));
    return tables;
  }
  return StatusResponse(response.value());
}

}  // namespace anker::server
