#ifndef ANKER_SERVER_REPLICATION_H_
#define ANKER_SERVER_REPLICATION_H_

// WAL-shipping replication over the anker wire protocol (v3).
//
// Primary side — ReplicationMaster: the Server hands it a connection
// that sent REPLICATE_HELLO; the master detaches the socket from the
// epoll loop onto a dedicated streamer thread that tails the live WAL
// (wal::WalTailer), ships durable records as LOG_STREAM frames, emits
// empty LOG_STREAM heartbeats while idle, and drains REPLICA_STATUS
// acks coming the other way. Acked LSNs feed two mechanisms:
//  - the retention floor (LogWriter::SetRetainLsn): checkpoint
//    truncation never deletes a segment the slowest replica still
//    needs;
//  - the optional sync-ack commit gate (Database::SetReplicationWaiter):
//    when a subscriber asked for sync_ack, local commits withhold their
//    ack until that replica confirmed the commit's LSN durable — or a
//    bounded wait expires with a "commit uncertain" ResourceBusy (the
//    record IS durable locally either way).
//
// Replica side — ReplicaController: runs next to a read-only Server
// over the same Database. A fetch thread connects to the primary,
// streams the tail from applied_lsn()+1, applies records through
// Database::ApplyReplicated (memory first, then the local WAL mirror),
// and acks its own durable/applied watermarks. Reconnects use capped
// exponential backoff and resume from the applied watermark; a primary
// that stops heartbeating is detected by the receive timeout and the
// replica degrades to serving stale reads (staleness is reported via
// REPLICA_STATUS) until the stream heals or an operator promotes it.
//
// Bootstrap: FetchCheckpointInto copies the primary's newest checkpoint
// (forced fresh with CHECKPOINT_NOW, so non-WAL-logged bulk loads are
// captured) into an empty data_dir; Database::Open then recovers from
// it exactly as if it were local.
//
// docs/OPERATIONS.md carries the runbook: topology, knobs, staleness
// bounds, promotion and the split-brain caveats.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "engine/database.h"
#include "server/client.h"
#include "server/protocol.h"

namespace anker::server {

struct ReplicationMasterConfig {
  /// Idle streamer connections send an empty LOG_STREAM this often, so
  /// replicas can tell "caught up" from "primary dead".
  int heartbeat_millis = 500;
  /// Sync-ack commit gate: how long a commit waits for a sync replica's
  /// durable ack before reporting "commit uncertain" (ResourceBusy).
  int ack_wait_millis = 2000;
  /// Per-frame batching budget for shipped records.
  size_t max_batch_bytes = 1u << 20;
};

/// Primary-side subscriber registry + streamer threads. Thread-safe.
class ReplicationMaster {
 public:
  ReplicationMaster(engine::Database* db, ReplicationMasterConfig config);
  ~ReplicationMaster();
  ANKER_DISALLOW_COPY_AND_MOVE(ReplicationMaster);

  /// Takes ownership of `fd` (a connected, HELLO-completed socket whose
  /// last request was REPLICATE_HELLO) and starts streaming on a
  /// dedicated thread. `residual_inbox` is any bytes already read off
  /// the socket beyond that request (early acks). Fails (and leaves the
  /// fd to the caller) when the database has durability off.
  Status Subscribe(int fd, std::string residual_inbox,
                   const ReplicateHelloMsg& hello);

  /// Stops every streamer and joins the threads. Idempotent.
  void Stop();

  /// Operator action (DECOMMISSION_REPLICA): erases a permanently-
  /// departed replica from the registry so the WAL retention floor stops
  /// protecting its resume point — without a primary restart. NotFound
  /// for an unknown id; InvalidArgument while the replica is still
  /// connected (shut its stream first — a live subscriber must keep its
  /// retention guarantee). When the last subscriber goes, the floor
  /// resets to "no replicas — truncate freely".
  Status Decommission(const std::string& replica_id);

  size_t connected_subscribers() const;

  /// Primary's answer to a REPLICA_STATUS probe.
  ReplicaStatusOkMsg PrimaryStatus() const;

 private:
  struct Subscriber {
    uint64_t acked_durable = 0;
    uint64_t acked_applied = 0;
    bool sync_ack = false;
    bool connected = false;
    int fd = -1;  ///< Live socket while connected (for Stop()).
  };

  void StreamLoop(int fd, std::string inbox, ReplicateHelloMsg hello);
  /// Parses acks buffered in `inbox`; false on a protocol violation.
  bool DrainAcks(const std::string& id, std::string* inbox);
  void RecordAck(const std::string& id, const ReplicaStatusMsg& ack);
  /// Recomputes the WAL retention floor from all acked watermarks.
  /// Caller holds mutex_.
  void UpdateRetainLocked();
  /// The sync-ack commit gate installed as the Database's replication
  /// waiter while any sync subscriber is registered.
  Status WaitSyncAck(uint64_t lsn);
  void MarkDisconnected(const std::string& id);

  engine::Database* db_;
  const ReplicationMasterConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable ack_cv_;
  /// Keyed by replica_id; an entry persists across reconnects so the
  /// retention floor keeps protecting a briefly-offline replica. A
  /// permanently dead replica pins the WAL until an operator issues
  /// DECOMMISSION_REPLICA (see docs/OPERATIONS.md).
  std::map<std::string, Subscriber> subscribers_;
  size_t sync_subscribers_ = 0;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
};

struct ReplicaConfig {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  std::string auth_token;
  /// Stable identity in the primary's registry (retention floor, logs).
  std::string replica_id = "replica";
  /// Ask the primary to gate its commit acks on this replica's acks.
  bool sync_ack = false;
  /// No frame (record or heartbeat) for this long = primary presumed
  /// dead; drop the connection and re-dial with backoff.
  int stream_timeout_millis = 3000;
  /// Local-mirror fsync + ack cadence while records are flowing.
  int ack_interval_millis = 200;
  int backoff_initial_millis = 100;
  int backoff_max_millis = 5000;
};

/// Replica-side stream consumer. Owns one background fetch thread.
class ReplicaController {
 public:
  ReplicaController(engine::Database* db, ReplicaConfig config);
  ~ReplicaController();
  ANKER_DISALLOW_COPY_AND_MOVE(ReplicaController);

  /// One-shot bootstrap for an empty data_dir: asks the primary for a
  /// fresh checkpoint (CHECKPOINT_NOW + FETCH_CHECKPOINT) and installs
  /// it locally. Call before Database::Open. A data_dir that already
  /// has state recovers locally instead — do not call this on it.
  static Status Bootstrap(const ReplicaConfig& config,
                          const std::string& data_dir);

  void Start();
  void Stop();

  /// Controlled failover: stops the stream, makes the local mirror
  /// durable, and flips this node writable. Irreversible. The caller
  /// must ensure the old primary is actually dead or fenced — two
  /// writable heads fork history (docs/OPERATIONS.md, split brain).
  Status Promote();

  /// True until promoted: the serving layer refuses write-class ops.
  bool read_only() const { return !promoted_.load(); }

  ReplicaStatusOkMsg Status_() const;

 private:
  void FetchLoop();
  /// One connect -> subscribe -> apply session; returns when the stream
  /// breaks or stop/promote is requested.
  void RunSession();
  /// Fsync the local mirror and send a REPLICA_STATUS ack.
  Status SendAck(Client* client);

  engine::Database* db_;
  const ReplicaConfig config_;

  std::thread fetcher_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<bool> connected_{false};
  std::atomic<bool> needs_rebootstrap_{false};

  mutable std::mutex mutex_;
  Client* live_client_ = nullptr;  ///< For Stop() to cut a blocked recv.
  std::chrono::steady_clock::time_point last_progress_ =
      std::chrono::steady_clock::now();
};

/// Client side of FETCH_CHECKPOINT: sends the request on `client` and
/// writes the streamed files under `data_dir`, publishing CURRENT last
/// (atomically, after everything else is fsynced) so a crash mid-fetch
/// never leaves a data_dir pointing at a half-written checkpoint.
Status FetchCheckpointInto(Client* client, const std::string& data_dir);

/// Server side of FETCH_CHECKPOINT: appends the newest checkpoint's
/// files as CKPT_CHUNK frames plus the trailing CKPT_DONE to `out`.
/// NotFound when the data_dir has no checkpoint yet (the caller should
/// suggest CHECKPOINT_NOW); IoError when a file vanishes mid-read (the
/// checkpoint was pruned by a newer one — the fetcher simply retries).
Status EncodeCheckpointStream(const std::string& data_dir, std::string* out);

}  // namespace anker::server

#endif  // ANKER_SERVER_REPLICATION_H_
