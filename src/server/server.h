#ifndef ANKER_SERVER_SERVER_H_
#define ANKER_SERVER_SERVER_H_

// anker_serve's session server: an epoll-based asynchronous TCP front-end
// over one engine::Database. One event-loop thread owns every socket;
// engine work that can block (commits waiting on group-commit fsyncs,
// OLAP queries, schema/load operations) is dispatched onto the engine's
// worker pool, so a slow fsync or a long scan never stalls the other
// sessions. See docs/SERVER.md for the protocol and docs/OPERATIONS.md
// for deployment guidance.
//
// Concurrency model per session: strictly one request at a time. Incoming
// frames queue (bounded) behind an in-flight dispatched operation and
// responses always leave in request order, so clients may pipeline up to
// the advertised window. Concurrent OLAP queries from different sessions
// naturally share snapshot epochs: Database::Run pins the *newest* epoch,
// which the engine only advances every snapshot_interval_commits — the
// server never forces per-request snapshot creation.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "engine/database.h"
#include "mvcc/intent_table.h"
#include "server/protocol.h"

namespace anker::server {

class ReplicationMaster;
class ReplicaController;

struct ServerConfig {
  /// Listen address. Defaults stay loopback-only: exposing the engine
  /// beyond the host is an explicit operator decision (docs/OPERATIONS.md).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (tests, benches) — read the
  /// chosen one back with Server::port().
  uint16_t port = 0;
  /// Shared-secret session auth. Empty = no authentication; otherwise the
  /// HELLO token must match byte-for-byte.
  std::string auth_token;
  /// Accepted connections beyond this are refused at accept time.
  size_t max_sessions = 1024;
  /// Admission control: dispatched operations (commits, queries, schema /
  /// load work) running on the worker pool at once, across all sessions.
  /// Requests arriving beyond the limit are answered with BUSY — explicit
  /// backpressure instead of an unbounded queue. 0 rejects every
  /// dispatched op (used by tests to pin the BUSY path).
  size_t max_inflight = 64;
  /// Frames a session may pipeline behind an in-flight operation before
  /// the server treats it as a protocol violation and closes it.
  size_t max_pipeline = 64;
  /// Sessions idle longer than this are closed; 0 disables the timeout.
  int idle_timeout_millis = 0;
  /// Replication (v3). The heartbeat/ack knobs shape the streamer threads
  /// this server spawns for subscribed replicas (no-ops when durability
  /// is off — REPLICATE_HELLO is then refused).
  int repl_heartbeat_millis = 500;
  int repl_ack_wait_millis = 2000;
  /// Set when this server fronts a replica: write-class requests are
  /// refused with kReadOnlyReplica until promotion, REPLICA_STATUS and
  /// WAIT_LSN consult the controller. Not owned; must outlive the server.
  ReplicaController* replica = nullptr;
};

/// Monotonic counters, readable while the server runs.
struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_closed = 0;
  uint64_t frames_received = 0;
  uint64_t busy_rejections = 0;
  uint64_t protocol_errors = 0;
  uint64_t commits_acked = 0;
  uint64_t queries_served = 0;
};

class Server {
 public:
  /// The database must outlive the server. The server never calls
  /// Database::Stop/Checkpoint itself — shutdown orchestration (drain ->
  /// checkpoint -> exit) belongs to the binary (tools/anker_serve.cc).
  Server(engine::Database* db, ServerConfig config);
  ~Server();
  ANKER_DISALLOW_COPY_AND_MOVE(Server);

  /// Binds, listens and spawns the event-loop thread. IoError when the
  /// address is unavailable.
  Status Start();

  /// Graceful shutdown: stop accepting, let every in-flight operation
  /// finish and its response flush, close all sessions, join the loop
  /// thread. Idempotent; also run by the destructor.
  void Shutdown();

  /// The bound port (after Start); useful with config.port = 0.
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Session;

  void EventLoop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Session>& session);
  void FlushOutbox(const std::shared_ptr<Session>& session);
  /// Decodes complete frames from the inbox into the pending queue.
  void IngestFrames(const std::shared_ptr<Session>& session);
  /// Executes queued requests until empty, a dispatched op starts, or the
  /// session closes.
  void PumpSession(const std::shared_ptr<Session>& session);
  void CloseSession(const std::shared_ptr<Session>& session);
  /// Appends a response frame to the session outbox (loop thread only).
  void Respond(const std::shared_ptr<Session>& session,
               std::string_view payload);
  void RespondError(const std::shared_ptr<Session>& session, Op op,
                    WireError code, const std::string& message);
  void RespondStatus(const std::shared_ptr<Session>& session,
                     const Status& status);

  /// One request, loop-thread side. Returns true when the request was
  /// handled inline (response already queued); false when it was
  /// dispatched to the worker pool (session now busy).
  bool ExecuteRequest(const std::shared_ptr<Session>& session,
                      const std::string& payload);
  /// Worker-pool side of a dispatched request: runs the engine work,
  /// builds the response frames, then hands the session back to the loop.
  void RunDispatched(std::shared_ptr<Session> session, std::string payload);

  /// Engine helpers (worker or loop thread; engine objects are
  /// thread-safe).
  Status DoWrite(txn::Transaction* txn, const PointWrite& write);
  /// `blocking_intent` (optional) is filled when the read is refused
  /// because an unresolved 2PC write intent covers the slot below the
  /// reader's snapshot; the caller bounces the client to the primary.
  Result<uint64_t> DoRead(Session* session, const PointReadMsg& msg,
                          mvcc::IntentInfo* blocking_intent = nullptr);
  /// Appends the response frames for one dispatched request to `out`.
  void DispatchedResponse(Session* session, const std::string& payload,
                          std::string* out);

  void WakeLoop();

  engine::Database* db_;
  ServerConfig config_;

  /// Primary-side WAL shipping (created by Start when the database has a
  /// WAL and this server is not fronting a replica).
  std::unique_ptr<ReplicationMaster> replication_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::unordered_map<int, std::shared_ptr<Session>> sessions_;

  /// Sessions whose dispatched op finished; drained by the loop thread.
  std::mutex completed_mutex_;
  std::vector<std::shared_ptr<Session>> completed_;

  std::atomic<size_t> inflight_{0};

  /// Serializes BUILD_INDEX ops (worker threads): the exists-check and
  /// the eventual AdoptPrimaryIndex publish must be one atomic step.
  std::mutex build_index_mutex_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace anker::server

#endif  // ANKER_SERVER_SERVER_H_
