#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "server/replication.h"

namespace anker::server {

namespace {

using Clock = std::chrono::steady_clock;

/// One epoll_wait tick: bounds how stale idle-timeout and shutdown checks
/// can get when no IO arrives.
constexpr int kTickMillis = 100;

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

struct Server::Session {
  int fd = -1;
  enum class State { kAwaitHello, kReady } state = State::kAwaitHello;

  /// Raw bytes read off the socket, not yet framed.
  std::string inbox;
  /// Encoded response frames awaiting write. Loop thread only.
  std::string outbox;
  bool want_write = false;  ///< EPOLLOUT currently registered.

  /// Decoded request payloads awaiting execution (pipelining window).
  std::deque<std::string> pending;
  /// A dispatched operation is running on the worker pool; the pump stops
  /// until it completes so responses keep request order.
  bool busy = false;
  /// Response frames built by the worker; handed to the loop thread
  /// through Server::completed_ (the mutex orders the memory).
  std::string dispatched_response;

  bool close_after_flush = false;
  bool closed = false;

  /// The session's open OLTP transaction (at most one). Touched by the
  /// loop thread and by the worker running this session's dispatched op,
  /// never concurrently: `busy` serializes them.
  std::unique_ptr<txn::Transaction> txn;

  Clock::time_point last_active = Clock::now();
};

Server::Server(engine::Database* db, ServerConfig config)
    : db_(db), config_(std::move(config)) {
  ANKER_CHECK(db_ != nullptr);
  if (config_.max_pipeline == 0) config_.max_pipeline = 1;
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  ANKER_CHECK_MSG(!running_.load(), "Server::Start called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IoError(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError(ErrnoMessage("bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status = Status::IoError(ErrnoMessage("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status status = Status::IoError(ErrnoMessage("epoll/eventfd"));
    Shutdown();
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (db_->log_writer() != nullptr && config_.replica == nullptr) {
    ReplicationMasterConfig repl;
    repl.heartbeat_millis = config_.repl_heartbeat_millis;
    repl.ack_wait_millis = config_.repl_ack_wait_millis;
    replication_ = std::make_unique<ReplicationMaster>(db_, repl);
  }

  running_.store(true);
  stopping_.store(false);
  loop_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (running_.load()) {
    stopping_.store(true);
    WakeLoop();
    if (loop_.joinable()) loop_.join();
    running_.store(false);
  }
  // Streamer threads own their (detached) sockets; stop them before the
  // fds below go away. Safe when never created (replica / no WAL).
  if (replication_ != nullptr) replication_->Stop();
  // A dispatched worker's last act is decrementing inflight_ (after its
  // completion push); only then is it safe to tear down the fds and let
  // the Server die.
  while (inflight_.load() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> guard(stats_mutex_);
  return stats_;
}

void Server::WakeLoop() {
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::EventLoop() {
  std::vector<epoll_event> events(64);
  bool listener_open = true;
  Clock::time_point stopping_since{};
  while (true) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), kTickMillis);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      std::shared_ptr<Session> session = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseSession(session);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushOutbox(session);
      if ((events[i].events & EPOLLIN) != 0 && !session->closed) {
        HandleReadable(session);
      }
    }

    // Dispatched-op completions: restore the session to the loop.
    std::vector<std::shared_ptr<Session>> completed;
    {
      std::lock_guard<std::mutex> guard(completed_mutex_);
      completed.swap(completed_);
    }
    for (const std::shared_ptr<Session>& session : completed) {
      session->busy = false;
      if (session->closed) {
        // The peer vanished while its op ran. CloseSession could not
        // abort the transaction then (the worker owned it); do it now or
        // the registry entry pins the GC watermark forever.
        if (session->txn != nullptr) {
          db_->Abort(session->txn.get());
          session->txn.reset();
        }
        continue;
      }
      session->outbox.append(session->dispatched_response);
      session->dispatched_response.clear();
      FlushOutbox(session);
      if (!session->closed) PumpSession(session);
    }

    // Idle-timeout sweep.
    if (config_.idle_timeout_millis > 0) {
      const auto deadline =
          Clock::now() - std::chrono::milliseconds(config_.idle_timeout_millis);
      std::vector<std::shared_ptr<Session>> idle;
      for (const auto& [sfd, session] : sessions_) {
        if (!session->busy && session->last_active < deadline) {
          idle.push_back(session);
        }
      }
      for (const std::shared_ptr<Session>& session : idle) {
        CloseSession(session);
      }
    }

    // Graceful shutdown: stop accepting, drain in-flight work, let every
    // queued response reach its socket (a durable COMMIT's ack must not
    // be discarded by the shutdown that raced it), leave when every
    // session is gone. A peer that stops reading cannot hold the server
    // hostage: after a drain deadline its session is cut regardless.
    if (stopping_.load()) {
      if (listener_open) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        listener_open = false;
        stopping_since = Clock::now();
      }
      const bool force =
          Clock::now() - stopping_since > std::chrono::seconds(5);
      std::vector<std::shared_ptr<Session>> drainable;
      for (const auto& [sfd, session] : sessions_) {
        if (!session->busy) drainable.push_back(session);
      }
      for (const std::shared_ptr<Session>& session : drainable) {
        FlushOutbox(session);
        if (session->closed) continue;
        if (session->outbox.empty() || force) {
          CloseSession(session);
        } else {
          session->close_after_flush = true;  // EPOLLOUT finishes the job.
        }
      }
      if (sessions_.empty() && inflight_.load() == 0) break;
    }
  }
}

void Server::HandleAccept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (stopping_.load() || sessions_.size() >= config_.max_sessions) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>();
    session->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    sessions_[fd] = std::move(session);
    std::lock_guard<std::mutex> guard(stats_mutex_);
    ++stats_.sessions_accepted;
  }
}

void Server::HandleReadable(const std::shared_ptr<Session>& session) {
  char chunk[65536];
  while (true) {
    const ssize_t n = ::read(session->fd, chunk, sizeof(chunk));
    if (n > 0) {
      session->inbox.append(chunk, static_cast<size_t>(n));
      session->last_active = Clock::now();
      continue;
    }
    if (n == 0) {  // Peer closed.
      CloseSession(session);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseSession(session);
    return;
  }
  IngestFrames(session);
  if (!session->closed) PumpSession(session);
  if (!session->closed) FlushOutbox(session);
}

void Server::IngestFrames(const std::shared_ptr<Session>& session) {
  size_t offset = 0;
  while (true) {
    std::string_view rest(session->inbox.data() + offset,
                          session->inbox.size() - offset);
    std::string_view payload;
    size_t consumed = 0;
    const FrameStatus status = DecodeFrame(rest, &payload, &consumed);
    if (status == FrameStatus::kNeedMore) break;
    if (status == FrameStatus::kCorrupt) {
      // The byte stream is no longer trustworthy; nothing can be framed,
      // so nothing can be answered. Close.
      {
        std::lock_guard<std::mutex> guard(stats_mutex_);
        ++stats_.protocol_errors;
      }
      CloseSession(session);
      return;
    }
    {
      std::lock_guard<std::mutex> guard(stats_mutex_);
      ++stats_.frames_received;
    }
    if (session->pending.size() >= config_.max_pipeline) {
      RespondError(session, Op::kErr, WireError::kProtocolError,
                   "pipeline window exceeded");
      session->close_after_flush = true;
      {
        std::lock_guard<std::mutex> guard(stats_mutex_);
        ++stats_.protocol_errors;
      }
      break;
    }
    session->pending.emplace_back(payload);
    offset += consumed;
  }
  session->inbox.erase(0, offset);
}

void Server::PumpSession(const std::shared_ptr<Session>& session) {
  while (!session->busy && !session->closed && !session->close_after_flush &&
         !session->pending.empty()) {
    const std::string payload = std::move(session->pending.front());
    session->pending.pop_front();
    session->last_active = Clock::now();
    ExecuteRequest(session, payload);
  }
  if (!session->closed) FlushOutbox(session);
}

void Server::Respond(const std::shared_ptr<Session>& session,
                     std::string_view payload) {
  EncodeFrame(payload, &session->outbox);
}

void Server::RespondError(const std::shared_ptr<Session>& session, Op op,
                          WireError code, const std::string& message) {
  std::string payload;
  EncodeErr(op, {code, message}, &payload);
  Respond(session, payload);
}

void Server::RespondStatus(const std::shared_ptr<Session>& session,
                           const Status& status) {
  if (status.ok()) {
    std::string payload;
    payload.push_back(static_cast<char>(Op::kOk));
    Respond(session, payload);
  } else {
    RespondError(session, Op::kErr, WireErrorFor(status), status.message());
  }
}

void Server::FlushOutbox(const std::shared_ptr<Session>& session) {
  while (!session->outbox.empty()) {
    const ssize_t n = ::send(session->fd, session->outbox.data(),
                             session->outbox.size(), MSG_NOSIGNAL);
    if (n > 0) {
      session->outbox.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!session->want_write) {
        session->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = session->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd, &ev);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseSession(session);
    return;
  }
  if (session->want_write) {
    session->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = session->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd, &ev);
  }
  if (session->close_after_flush) CloseSession(session);
}

void Server::CloseSession(const std::shared_ptr<Session>& session) {
  if (session->closed) return;
  session->closed = true;
  if (session->txn != nullptr) {
    // A dropped connection aborts its open transaction — local writes are
    // simply discarded, nothing was visible to anyone.
    if (!session->busy) {
      db_->Abort(session->txn.get());
      session->txn.reset();
    }
    // If busy, the worker owns the transaction right now; the completion
    // handler sees closed == true and aborts it then — it must not leak,
    // or its registry entry would pin the GC watermark for good.
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, session->fd, nullptr);
  ::close(session->fd);
  sessions_.erase(session->fd);
  std::lock_guard<std::mutex> guard(stats_mutex_);
  ++stats_.sessions_closed;
}

bool Server::ExecuteRequest(const std::shared_ptr<Session>& session,
                            const std::string& payload) {
  if (payload.empty() || !IsRequestOp(static_cast<uint8_t>(payload[0]))) {
    RespondError(session, Op::kErr, WireError::kNotSupported,
                 "unknown or non-request opcode");
    return true;
  }
  const Op op = static_cast<Op>(payload[0]);
  const std::string_view body(payload.data() + 1, payload.size() - 1);

  // ---- handshake gate ----------------------------------------------------
  if (session->state == Session::State::kAwaitHello) {
    if (op != Op::kHello) {
      RespondError(session, Op::kErr, WireError::kProtocolError,
                   "first frame must be HELLO");
      session->close_after_flush = true;
      std::lock_guard<std::mutex> guard(stats_mutex_);
      ++stats_.protocol_errors;
      return true;
    }
    HelloMsg hello;
    const Status decoded = DecodeHello(body, &hello);
    if (!decoded.ok() || hello.version != kProtocolVersion ||
        hello.auth_token != config_.auth_token) {
      const char* why = !decoded.ok() ? "malformed HELLO"
                        : hello.version != kProtocolVersion
                            ? "unsupported protocol version"
                            : "authentication failed";
      RespondError(session, Op::kErr, WireError::kBadHandshake, why);
      session->close_after_flush = true;
      std::lock_guard<std::mutex> guard(stats_mutex_);
      ++stats_.protocol_errors;
      return true;
    }
    HelloOkMsg ok;
    ok.server_info = std::string("anker ") +
                     txn::ProcessingModeName(db_->config().mode);
    std::string response;
    EncodeHelloOk(ok, &response);
    Respond(session, response);
    session->state = Session::State::kReady;
    return true;
  }

  // ---- read-only replica gate --------------------------------------------
  // Writes belong on the primary; the wire error is recoverable (maps to
  // kResourceBusy client-side) so callers can fail over rather than die.
  // Reads, BEGIN/COMMIT of read-only transactions and the ops surface
  // stay available — that is the point of a read replica.
  if (config_.replica != nullptr && config_.replica->read_only() &&
      (op == Op::kWrite || op == Op::kWriteBatch || op == Op::kExecTxn ||
       op == Op::kCreateTable || op == Op::kLoad || op == Op::kBuildIndex ||
       op == Op::kDictDefine || op == Op::kPrepareTxn ||
       op == Op::kCommitPrepared || op == Op::kAbortPrepared ||
       op == Op::kResolveIntent)) {
    RespondError(session, Op::kErr, WireError::kReadOnlyReplica,
                 "writes go to the primary (or PROMOTE this node)");
    return true;
  }

  switch (op) {
    case Op::kHello: {
      RespondError(session, Op::kErr, WireError::kProtocolError,
                   "HELLO must be the first frame, exactly once");
      session->close_after_flush = true;
      std::lock_guard<std::mutex> guard(stats_mutex_);
      ++stats_.protocol_errors;
      return true;
    }
    case Op::kPing: {
      std::string response;
      response.push_back(static_cast<char>(Op::kPong));
      Respond(session, response);
      return true;
    }
    case Op::kBegin: {
      if (session->txn != nullptr) {
        RespondError(session, Op::kErr, WireError::kInvalidArgument,
                     "transaction already open (no nesting)");
        return true;
      }
      session->txn = db_->BeginOltp();
      RespondStatus(session, Status::OK());
      return true;
    }
    case Op::kAbort: {
      if (session->txn == nullptr) {
        RespondError(session, Op::kErr, WireError::kInvalidArgument,
                     "no open transaction");
        return true;
      }
      db_->Abort(session->txn.get());
      session->txn.reset();
      RespondStatus(session, Status::OK());
      return true;
    }
    case Op::kRead: {
      PointReadMsg msg;
      const Status decoded = DecodePointRead(body, &msg);
      if (!decoded.ok()) break;  // Malformed body: protocol error below.
      mvcc::IntentInfo intent;
      auto value = DoRead(session.get(), msg, &intent);
      if (!value.ok() && intent.gtid != 0) {
        // The slot carries an unresolved write intent below the reader's
        // snapshot: the outcome is not decidable here. Bounce the reader
        // to the primary shard instead of guessing.
        IntentPendingMsg pending;
        pending.gtid = intent.gtid;
        pending.primary_shard = intent.primary_shard;
        std::string response;
        EncodeIntentPending(pending, &response);
        Respond(session, response);
      } else if (!value.ok()) {
        RespondStatus(session, value.status());
      } else {
        std::string response;
        EncodeReadOk(value.value(), &response);
        Respond(session, response);
      }
      return true;
    }
    case Op::kWrite: {
      PointWrite write;
      const Status decoded = DecodeWrite(body, &write);
      if (!decoded.ok()) break;
      if (session->txn == nullptr) {
        RespondError(session, Op::kErr, WireError::kInvalidArgument,
                     "no open transaction (BEGIN first)");
        return true;
      }
      RespondStatus(session, DoWrite(session->txn.get(), write));
      return true;
    }
    case Op::kWriteBatch: {
      std::vector<PointWrite> writes;
      const Status decoded = DecodeWriteBatch(body, &writes);
      if (!decoded.ok()) break;
      if (session->txn == nullptr) {
        RespondError(session, Op::kErr, WireError::kInvalidArgument,
                     "no open transaction (BEGIN first)");
        return true;
      }
      Status applied = Status::OK();
      for (const PointWrite& write : writes) {
        applied = DoWrite(session->txn.get(), write);
        if (!applied.ok()) break;
      }
      RespondStatus(session, applied);
      return true;
    }
    case Op::kListTables: {
      std::vector<TableInfo> infos;
      for (storage::Table* table : db_->catalog().AllTables()) {
        TableInfo info;
        info.name = table->name();
        info.num_rows = table->num_rows();
        info.schema = table->schema();
        info.has_primary_index = table->primary_index() != nullptr;
        infos.push_back(std::move(info));
      }
      std::string response;
      EncodeTables(infos, &response);
      Respond(session, response);
      return true;
    }
    case Op::kReplicaStatus: {
      if (!body.empty()) break;  // Acks only belong on stream connections.
      ReplicaStatusOkMsg status;  // Durability off: all-zero primary.
      if (config_.replica != nullptr) {
        status = config_.replica->Status_();
      } else if (replication_ != nullptr) {
        status = replication_->PrimaryStatus();
      }
      status.pending_intents = db_->txn_manager().intents().PendingCount();
      std::string response;
      EncodeReplicaStatusOk(status, &response);
      Respond(session, response);
      return true;
    }
    case Op::kReplicateHello: {
      ReplicateHelloMsg hello;
      const Status decoded = DecodeReplicateHello(body, &hello);
      if (!decoded.ok()) break;
      if (replication_ == nullptr) {
        RespondError(session, Op::kErr, WireError::kNotSupported,
                     config_.replica != nullptr
                         ? "replicas do not serve the stream; subscribe to "
                           "the primary"
                         : "durability is off: no WAL to ship");
        session->close_after_flush = true;
        return true;
      }
      if (session->txn != nullptr) {
        db_->Abort(session->txn.get());
        session->txn.reset();
      }
      // Hand the socket to a dedicated streamer thread: detach it from
      // the epoll loop, make it blocking, flush anything still queued,
      // subscribe. Frames the replica pipelined behind the subscription
      // (early acks) travel along, re-framed.
      const int fd = session->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
      bool flushed = true;
      while (!session->outbox.empty()) {
        const ssize_t n = ::send(fd, session->outbox.data(),
                                 session->outbox.size(), MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          flushed = false;
          break;
        }
        session->outbox.erase(0, static_cast<size_t>(n));
      }
      std::string residual;
      for (const std::string& queued : session->pending) {
        EncodeFrame(queued, &residual);
      }
      session->pending.clear();
      residual.append(session->inbox);
      session->inbox.clear();
      const Status subscribed =
          flushed ? replication_->Subscribe(fd, std::move(residual), hello)
                  : Status::IoError("peer went away before the stream");
      if (!subscribed.ok()) {
        std::string errbody, frame;
        EncodeErr(Op::kErr,
                  {WireErrorFor(subscribed), subscribed.message()}, &errbody);
        EncodeFrame(errbody, &frame);
        [[maybe_unused]] ssize_t n =
            ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
        ::close(fd);
      }
      // Either way the loop no longer owns this fd.
      sessions_.erase(fd);
      session->closed = true;
      session->fd = -1;
      std::lock_guard<std::mutex> guard(stats_mutex_);
      ++stats_.sessions_closed;
      return true;
    }
    case Op::kRouterStatus: {
      // Answered (negatively) so a client can probe whether an endpoint
      // is a router or a plain engine server.
      RespondError(session, Op::kErr, WireError::kNotSupported,
                   "not a shard router");
      return true;
    }
    case Op::kDecommissionReplica: {
      DecommissionReplicaMsg msg;
      const Status decoded = DecodeDecommissionReplica(body, &msg);
      if (!decoded.ok()) break;  // Malformed body: protocol error below.
      RespondStatus(
          session,
          replication_ != nullptr
              ? replication_->Decommission(msg.replica_id)
              : Status::NotSupported(
                    config_.replica != nullptr
                        ? "replicas hold no retention registry; "
                          "decommission on the primary"
                        : "durability is off: no replication state"));
      return true;
    }
    case Op::kCommit: {
      if (session->txn == nullptr) {
        RespondError(session, Op::kErr, WireError::kInvalidArgument,
                     "no open transaction");
        return true;
      }
      break;  // Dispatched below.
    }
    case Op::kExecTxn:
    case Op::kQuery:
    case Op::kCreateTable:
    case Op::kLoad:
    case Op::kBuildIndex:
    case Op::kDictDefine:
    case Op::kFetchCheckpoint:
    case Op::kWaitLsn:
    case Op::kPromote:
    case Op::kCheckpointNow:
    case Op::kDigest:
    case Op::kPrepareTxn:
    case Op::kCommitPrepared:
    case Op::kAbortPrepared:
    case Op::kResolveIntent:
      break;  // Dispatched below.
    default:
      break;
  }

  if (op == Op::kCommit || op == Op::kExecTxn || op == Op::kQuery ||
      op == Op::kCreateTable || op == Op::kLoad || op == Op::kBuildIndex ||
      op == Op::kDictDefine || op == Op::kFetchCheckpoint ||
      op == Op::kWaitLsn || op == Op::kPromote || op == Op::kCheckpointNow ||
      op == Op::kDigest || op == Op::kPrepareTxn ||
      op == Op::kCommitPrepared || op == Op::kAbortPrepared ||
      op == Op::kResolveIntent) {
    // Admission control: these run on the worker pool (they may fsync or
    // scan for a while). Beyond the inflight budget the client gets an
    // explicit BUSY instead of an unbounded queue.
    if (config_.max_inflight == 0 ||
        inflight_.load() >= config_.max_inflight) {
      RespondError(session, Op::kBusy, WireError::kResourceBusy,
                   "server at max_inflight; retry");
      std::lock_guard<std::mutex> guard(stats_mutex_);
      ++stats_.busy_rejections;
      return true;
    }
    inflight_.fetch_add(1);
    session->busy = true;
    db_->worker_pool().Submit(
        [this, session, payload]() mutable {
          RunDispatched(session, payload);
        });
    return false;
  }

  // Reaching here means a known request had a malformed body.
  RespondError(session, Op::kErr, WireError::kProtocolError,
               "malformed request body");
  session->close_after_flush = true;
  std::lock_guard<std::mutex> guard(stats_mutex_);
  ++stats_.protocol_errors;
  return true;
}

void Server::RunDispatched(std::shared_ptr<Session> session,
                           std::string payload) {
  session->dispatched_response.clear();
  DispatchedResponse(session.get(), payload, &session->dispatched_response);
  {
    std::lock_guard<std::mutex> guard(completed_mutex_);
    completed_.push_back(std::move(session));
  }
  WakeLoop();
  // Last touch of `this`: Shutdown() spins on inflight_ before tearing
  // the server down, so everything above stays valid.
  inflight_.fetch_sub(1);
}

namespace {
Result<storage::Column*> ResolveColumn(engine::Database* db,
                                       const std::string& table_name,
                                       const std::string& column_name,
                                       storage::Table** table_out);
Result<uint64_t> ResolveRow(storage::Table* table, bool by_key, uint64_t key);
}  // namespace

void Server::DispatchedResponse(Session* session, const std::string& payload,
                                std::string* out) {
  const Op op = static_cast<Op>(payload[0]);
  const std::string_view body(payload.data() + 1, payload.size() - 1);
  std::string response;

  auto respond_status = [&](const Status& status) {
    response.clear();
    if (status.ok()) {
      response.push_back(static_cast<char>(Op::kOk));
    } else {
      EncodeErr(Op::kErr, {WireErrorFor(status), status.message()}, &response);
    }
    EncodeFrame(response, out);
  };

  switch (op) {
    case Op::kCommit: {
      const Status committed = db_->Commit(session->txn.get());
      // The commit's WAL LSN is the read-your-writes token: a client can
      // hand it to a replica's WAIT_LSN before reading there.
      const uint64_t lsn = session->txn->durable_lsn();
      session->txn.reset();
      if (committed.ok()) {
        {
          std::lock_guard<std::mutex> guard(stats_mutex_);
          ++stats_.commits_acked;
        }
        EncodeCommitOk(lsn, &response);
        EncodeFrame(response, out);
        return;
      }
      respond_status(committed);
      return;
    }
    case Op::kExecTxn: {
      std::vector<PointWrite> writes;
      Status status = DecodeWriteBatch(body, &writes);
      if (status.ok() && session->txn != nullptr) {
        status = Status::InvalidArgument(
            "EXEC_TXN is auto-commit; a transaction is open on this session");
      }
      if (status.ok()) {
        auto txn = db_->BeginOltp();
        for (const PointWrite& write : writes) {
          status = DoWrite(txn.get(), write);
          if (!status.ok()) break;
        }
        if (status.ok()) {
          status = db_->Commit(txn.get());
          if (status.ok()) {
            {
              std::lock_guard<std::mutex> guard(stats_mutex_);
              ++stats_.commits_acked;
            }
            EncodeCommitOk(txn->durable_lsn(), &response);
            EncodeFrame(response, out);
            return;
          }
        } else {
          db_->Abort(txn.get());
        }
      }
      respond_status(status);
      return;
    }
    case Op::kQuery: {
      QueryMsg msg;
      Status status = DecodeQuery(body, &msg);
      if (!status.ok()) {
        respond_status(status);
        return;
      }
      auto compiled = query::CompileWireQuery(msg.query, db_->catalog());
      if (!compiled.ok()) {
        respond_status(compiled.status());
        return;
      }
      auto result = db_->Run(compiled.value(), msg.params);
      if (!result.ok()) {
        respond_status(result.status());
        return;
      }
      const query::QueryResult& r = result.value();
      for (size_t begin = 0; begin < r.rows.size();
           begin += kQueryBatchRows) {
        const size_t end = std::min(begin + kQueryBatchRows, r.rows.size());
        response.clear();
        EncodeQueryBatch(r, begin, end, &response);
        EncodeFrame(response, out);
      }
      response.clear();
      EncodeQueryDone(r, &response);
      EncodeFrame(response, out);
      std::lock_guard<std::mutex> guard(stats_mutex_);
      ++stats_.queries_served;
      return;
    }
    case Op::kCreateTable: {
      CreateTableMsg msg;
      Status status = DecodeCreateTable(body, &msg);
      if (status.ok()) {
        auto created = db_->CreateTable(msg.name, msg.schema,
                                        static_cast<size_t>(msg.num_rows));
        status = created.ok() ? Status::OK() : created.status();
      }
      respond_status(status);
      return;
    }
    case Op::kLoad: {
      LoadMsg msg;
      Status status = DecodeLoad(body, &msg);
      if (status.ok()) {
        if (!db_->catalog().HasTable(msg.table)) {
          status = Status::NotFound("unknown table: " + msg.table);
        } else {
          storage::Table* table = db_->catalog().GetTable(msg.table);
          // Overflow-safe bounds check: start_row + n must not wrap (a
          // hostile start_row near UINT64_MAX would otherwise slip past
          // and abort the process inside Column::LoadValue's CHECK).
          if (!table->HasColumn(msg.column)) {
            status = Status::NotFound("unknown column: " + msg.column);
          } else if (msg.start_row > table->num_rows() ||
                     msg.values.size() >
                         table->num_rows() - msg.start_row) {
            status = Status::OutOfRange("load exceeds table row count");
          } else {
            storage::Column* column = table->GetColumn(msg.column);
            for (size_t i = 0; i < msg.values.size(); ++i) {
              column->LoadValue(msg.start_row + i, msg.values[i]);
            }
          }
        }
      }
      respond_status(status);
      return;
    }
    case Op::kBuildIndex: {
      BuildIndexMsg msg;
      Status status = DecodeBuildIndex(body, &msg);
      if (status.ok()) {
        // One build at a time (two sessions racing the exists-check would
        // otherwise both construct); concurrent *readers* are safe
        // because the index is built privately and only published —
        // complete — via AdoptPrimaryIndex's release store.
        std::lock_guard<std::mutex> guard(build_index_mutex_);
        if (!db_->catalog().HasTable(msg.table)) {
          status = Status::NotFound("unknown table: " + msg.table);
        } else {
          storage::Table* table = db_->catalog().GetTable(msg.table);
          if (!table->HasColumn(msg.key_column)) {
            status = Status::NotFound("unknown column: " + msg.key_column);
          } else if (table->primary_index() != nullptr) {
            status = Status::AlreadyExists("primary index already built");
          } else {
            storage::Column* column = table->GetColumn(msg.key_column);
            auto index =
                std::make_unique<storage::HashIndex>(table->num_rows());
            for (size_t row = 0; row < table->num_rows() && status.ok();
                 ++row) {
              status = index->Insert(column->ReadLatestRaw(row), row);
            }
            if (status.ok()) table->AdoptPrimaryIndex(std::move(index));
          }
        }
      }
      respond_status(status);
      return;
    }
    case Op::kDictDefine: {
      DictDefineMsg msg;
      Status status = DecodeDictDefine(body, &msg);
      if (status.ok()) {
        if (!db_->catalog().HasTable(msg.table)) {
          status = Status::NotFound("unknown table: " + msg.table);
        } else {
          storage::Table* table = db_->catalog().GetTable(msg.table);
          if (!table->HasColumn(msg.column) ||
              table->GetColumn(msg.column)->type() !=
                  storage::ValueType::kDict32) {
            status = Status::InvalidArgument("'" + msg.column +
                                             "' is not a dict32 column");
          } else {
            storage::Dictionary* dict = table->GetDictionary(msg.column);
            for (const std::string& value : msg.values) {
              dict->GetOrAdd(value);
            }
          }
        }
      }
      respond_status(status);
      return;
    }
    case Op::kFetchCheckpoint: {
      // Frames (CKPT_CHUNK* + CKPT_DONE) append directly; on failure
      // nothing was appended and the error travels instead.
      const Status streamed =
          EncodeCheckpointStream(db_->config().data_dir, out);
      if (!streamed.ok()) respond_status(streamed);
      return;
    }
    case Op::kWaitLsn: {
      WaitLsnMsg msg;
      Status status = DecodeWaitLsn(body, &msg);
      if (status.ok()) {
        wal::LogWriter* log = db_->log_writer();
        uint64_t high = db_->applied_lsn();
        if (log != nullptr) high = std::max(high, log->appended_lsn());
        if (msg.lsn <= high) {
          // Applied (replica) or allocated locally (primary / promoted).
        } else if (config_.replica != nullptr &&
                   config_.replica->read_only()) {
          status = db_->WaitAppliedLsn(msg.lsn, msg.timeout_millis);
        } else {
          status = Status::OutOfRange("LSN not allocated on this node");
        }
      }
      respond_status(status);
      return;
    }
    case Op::kPromote: {
      respond_status(config_.replica != nullptr
                         ? config_.replica->Promote()
                         : Status::InvalidArgument("not a replica"));
      return;
    }
    case Op::kCheckpointNow: {
      auto ckpt = db_->Checkpoint();
      respond_status(ckpt.ok() ? Status::OK() : ckpt.status());
      return;
    }
    case Op::kDigest: {
      EncodeDigestOk(db_->ContentDigest(), &response);
      EncodeFrame(response, out);
      return;
    }
    case Op::kPrepareTxn: {
      PrepareTxnMsg msg;
      Status status = DecodePrepareTxn(body, &msg);
      std::vector<txn::Transaction::LocalWrite> writes;
      if (status.ok()) {
        writes.reserve(msg.writes.size());
        for (const PointWrite& write : msg.writes) {
          storage::Table* table = nullptr;
          auto column = ResolveColumn(db_, write.table, write.column, &table);
          if (!column.ok()) {
            status = column.status();
            break;
          }
          auto row = ResolveRow(table, write.by_key, write.key);
          if (!row.ok()) {
            status = row.status();
            break;
          }
          writes.push_back({column.value(), row.value(), write.raw});
        }
      }
      mvcc::Timestamp prepare_ts = 0;
      uint64_t lsn = 0;
      if (status.ok()) {
        status = db_->txn_manager().PrepareDistributed(
            msg.gtid, msg.primary_shard, writes, &prepare_ts, &lsn);
      }
      if (status.ok()) {
        PreparedOkMsg ok;
        ok.prepare_ts = prepare_ts;
        ok.lsn = lsn;
        EncodePreparedOk(ok, &response);
        EncodeFrame(response, out);
        return;
      }
      respond_status(status);
      return;
    }
    case Op::kCommitPrepared: {
      CommitPreparedMsg msg;
      Status status = DecodeCommitPrepared(body, &msg);
      uint64_t lsn = 0;
      if (status.ok()) {
        status = db_->txn_manager().CommitPrepared(msg.gtid, msg.commit_ts,
                                                   &lsn);
      }
      if (status.ok()) {
        {
          std::lock_guard<std::mutex> guard(stats_mutex_);
          ++stats_.commits_acked;
        }
        EncodeCommitOk(lsn, &response);
        EncodeFrame(response, out);
        return;
      }
      respond_status(status);
      return;
    }
    case Op::kAbortPrepared: {
      AbortPreparedMsg msg;
      Status status = DecodeAbortPrepared(body, &msg);
      uint64_t lsn = 0;
      if (status.ok()) {
        status = db_->txn_manager().AbortPrepared(msg.gtid, &lsn);
      }
      respond_status(status);
      return;
    }
    case Op::kResolveIntent: {
      ResolveIntentMsg msg;
      Status status = DecodeResolveIntent(body, &msg);
      mvcc::TxnOutcome outcome = mvcc::TxnOutcome::kPending;
      mvcc::Timestamp commit_ts = 0;
      if (status.ok()) {
        status = db_->txn_manager().ResolveOutcome(msg.gtid, msg.abort_pending,
                                                   &outcome, &commit_ts);
      }
      if (status.ok()) {
        ResolvedOkMsg ok;
        ok.outcome = static_cast<uint8_t>(outcome);
        ok.commit_ts = commit_ts;
        EncodeResolvedOk(ok, &response);
        EncodeFrame(response, out);
        return;
      }
      respond_status(status);
      return;
    }
    default:
      respond_status(Status::Internal("non-dispatchable op dispatched"));
      return;
  }
}

namespace {

Result<storage::Column*> ResolveColumn(engine::Database* db,
                                       const std::string& table_name,
                                       const std::string& column_name,
                                       storage::Table** table_out) {
  if (!db->catalog().HasTable(table_name)) {
    return Status::NotFound("unknown table: " + table_name);
  }
  storage::Table* table = db->catalog().GetTable(table_name);
  if (!table->HasColumn(column_name)) {
    return Status::NotFound("unknown column: " + column_name);
  }
  if (table_out != nullptr) *table_out = table;
  return table->GetColumn(column_name);
}

Result<uint64_t> ResolveRow(storage::Table* table, bool by_key,
                            uint64_t key) {
  if (by_key) {
    storage::HashIndex* index = table->primary_index();
    if (index == nullptr) {
      return Status::InvalidArgument("table '" + table->name() +
                                     "' has no primary index");
    }
    return index->Lookup(key);
  }
  if (key >= table->num_rows()) {
    return Status::OutOfRange("row id out of range");
  }
  return key;
}

}  // namespace

Status Server::DoWrite(txn::Transaction* txn, const PointWrite& write) {
  storage::Table* table = nullptr;
  auto column = ResolveColumn(db_, write.table, write.column, &table);
  if (!column.ok()) return column.status();
  auto row = ResolveRow(table, write.by_key, write.key);
  if (!row.ok()) return row.status();
  txn->Write(column.value(), row.value(), write.raw);
  return Status::OK();
}

Result<uint64_t> Server::DoRead(Session* session, const PointReadMsg& msg,
                                mvcc::IntentInfo* blocking_intent) {
  storage::Table* table = nullptr;
  auto column = ResolveColumn(db_, msg.table, msg.column, &table);
  if (!column.ok()) return column.status();
  auto row = ResolveRow(table, msg.by_key, msg.key);
  if (!row.ok()) return row.status();
  // A prepared-but-undecided write intent makes the slot's latest value
  // unknowable: if the transaction committed at its primary, sister
  // shards may already serve the new state, so answering with the old
  // version here would tear the cross-shard snapshot (money disappears
  // from a transfer mid-resolution). Auto-commit reads therefore bounce
  // on ANY pending intent — the caller resolves through the primary and
  // retries. An explicit transaction whose snapshot predates the
  // prepare is the one safe exception: the intent's outcome can only
  // materialize above prepare_ts, provably outside that snapshot.
  auto blocked_by_intent = [&](const txn::Transaction* txn) {
    if (blocking_intent == nullptr) return false;
    mvcc::IntentInfo info;
    if (!db_->txn_manager().intents().Lookup(column.value(), row.value(),
                                             &info)) {
      return false;
    }
    if (txn != nullptr && txn->start_ts() < info.prepare_ts) return false;
    *blocking_intent = info;
    return true;
  };
  if (session->txn != nullptr) {
    if (blocked_by_intent(session->txn.get())) {
      return Status::ResourceBusy("read blocked by unresolved write intent");
    }
    return session->txn->Read(column.value(), row.value());
  }
  if (blocked_by_intent(nullptr)) {
    return Status::ResourceBusy("read blocked by unresolved write intent");
  }
  // Auto-commit read: a throwaway transaction gives a consistent
  // committed view (the visibility watermark), unlike a raw slot load
  // that could observe a half-materialized concurrent commit.
  auto txn = db_->BeginOltp();
  const uint64_t value = txn->Read(column.value(), row.value());
  const Status committed = db_->Commit(txn.get());
  if (!committed.ok()) return committed;
  return value;
}

}  // namespace anker::server
