#ifndef ANKER_ENGINE_SNAPSHOT_MANAGER_H_
#define ANKER_ENGINE_SNAPSHOT_MANAGER_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/active_txn_registry.h"
#include "mvcc/timestamp_oracle.h"
#include "storage/column.h"

namespace anker::engine {

class SnapshotManager;

/// One snapshot epoch: the logical snapshot timestamp logged at trigger
/// time plus the lazily materialized per-column snapshots (paper
/// Section 2.2.2: columns that are never touched are never materialized).
class SnapshotEpoch {
 public:
  explicit SnapshotEpoch(mvcc::Timestamp epoch_ts) : epoch_ts_(epoch_ts) {}
  ANKER_DISALLOW_COPY_AND_MOVE(SnapshotEpoch);

  mvcc::Timestamp epoch_ts() const { return epoch_ts_; }

  /// Materialized snapshot of `column`, or nullptr if not yet taken.
  const storage::ColumnSnapshot* Find(const storage::Column* column) const;

  size_t materialized_count() const { return columns_.size(); }

 private:
  friend class SnapshotManager;

  mvcc::Timestamp epoch_ts_;
  std::map<const storage::Column*, storage::ColumnSnapshot> columns_;
  int refcount_ = 0;
};

/// RAII reference to a snapshot epoch held by one OLAP transaction. While
/// alive, the epoch's column snapshots (and their version chains) stay
/// valid. Releasing the last reference to an obsolete epoch drops it — and
/// with it all its version chains, the paper's implicit garbage
/// collection (Fig. 1, step 8).
class SnapshotHandle {
 public:
  ~SnapshotHandle();
  ANKER_DISALLOW_COPY_AND_MOVE(SnapshotHandle);

  mvcc::Timestamp epoch_ts() const { return epoch_->epoch_ts(); }

  /// Snapshot of `column`; CHECK-fails if the column was not part of the
  /// Acquire call. This is the internal-invariant path: engine code that
  /// *inferred* the column set (Database::Run) calls it. Callers handing
  /// in user-provided column sets should use Find and surface a Status
  /// (see OlapContext::TryReader).
  const storage::ColumnSnapshot& GetColumn(
      const storage::Column* column) const;

  /// Snapshot of `column`, or nullptr when the column was not part of the
  /// Acquire call — the recoverable sibling of GetColumn.
  const storage::ColumnSnapshot* Find(const storage::Column* column) const {
    return epoch_->Find(column);
  }

 private:
  friend class SnapshotManager;
  SnapshotHandle(SnapshotManager* manager, SnapshotEpoch* epoch)
      : manager_(manager), epoch_(epoch) {}

  SnapshotManager* manager_;
  SnapshotEpoch* epoch_;
};

/// Coordinates snapshot epochs for the heterogeneous processing model:
///  - the transaction manager's commit hook calls TriggerEpoch every n
///    commits, which only *logs* a snapshot timestamp (lazy approach);
///  - an arriving OLAP transaction calls Acquire with the set of columns
///    it touches; missing column snapshots are materialized on the spot
///    using the column's virtual-snapshot buffer;
///  - epochs are retired as soon as they are unreferenced and a newer
///    epoch exists.
class SnapshotManager {
 public:
  SnapshotManager(mvcc::TimestampOracle* oracle,
                  mvcc::ActiveTxnRegistry* registry);
  ~SnapshotManager();
  ANKER_DISALLOW_COPY_AND_MOVE(SnapshotManager);

  /// Logs a new snapshot timestamp (no materialization happens here).
  void TriggerEpoch();

  /// Returns a handle on the newest epoch with all `columns` materialized.
  /// Creates the first epoch on demand if none was ever triggered.
  Result<std::unique_ptr<SnapshotHandle>> Acquire(
      const std::vector<storage::Column*>& columns);

  /// Number of live (non-retired) epochs (for tests/benches).
  size_t LiveEpochCount() const;

  /// Total column snapshots materialized over the manager's lifetime.
  size_t total_materializations() const { return total_materializations_; }

 private:
  friend class SnapshotHandle;

  void Release(SnapshotEpoch* epoch);
  void RetireUnreferencedLocked();

  mvcc::TimestampOracle* oracle_;
  mvcc::ActiveTxnRegistry* registry_;

  mutable std::mutex mutex_;
  mvcc::Timestamp pending_epoch_ts_ = 0;  ///< Logged trigger, 0 = none.
  std::deque<std::unique_ptr<SnapshotEpoch>> epochs_;  ///< Oldest first.
  size_t total_materializations_ = 0;
};

}  // namespace anker::engine

#endif  // ANKER_ENGINE_SNAPSHOT_MANAGER_H_
