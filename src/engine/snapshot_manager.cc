#include "engine/snapshot_manager.h"

namespace anker::engine {

const storage::ColumnSnapshot* SnapshotEpoch::Find(
    const storage::Column* column) const {
  auto it = columns_.find(column);
  return it == columns_.end() ? nullptr : &it->second;
}

SnapshotHandle::~SnapshotHandle() { manager_->Release(epoch_); }

const storage::ColumnSnapshot& SnapshotHandle::GetColumn(
    const storage::Column* column) const {
  const storage::ColumnSnapshot* snap = epoch_->Find(column);
  ANKER_CHECK_MSG(snap != nullptr,
                  "column not materialized in acquired epoch");
  return *snap;
}

SnapshotManager::SnapshotManager(mvcc::TimestampOracle* oracle,
                                 mvcc::ActiveTxnRegistry* registry)
    : oracle_(oracle), registry_(registry) {}

SnapshotManager::~SnapshotManager() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (const auto& epoch : epochs_) {
    ANKER_CHECK_MSG(epoch->refcount_ == 0,
                    "SnapshotManager destroyed with live handles");
  }
}

void SnapshotManager::TriggerEpoch() {
  const mvcc::Timestamp ts = oracle_->Next();
  std::lock_guard<std::mutex> guard(mutex_);
  pending_epoch_ts_ = ts;
}

Result<std::unique_ptr<SnapshotHandle>> SnapshotManager::Acquire(
    const std::vector<storage::Column*>& columns) {
  std::lock_guard<std::mutex> guard(mutex_);

  // Advance to the pending epoch if a newer one was triggered; create the
  // very first epoch on demand. Advancing makes older unreferenced epochs
  // obsolete — drop them immediately (paper Fig. 1 step 8) so their views
  // stop costing copy-on-write work on every later flush.
  if (epochs_.empty() ||
      (pending_epoch_ts_ != 0 &&
       epochs_.back()->epoch_ts() < pending_epoch_ts_)) {
    const mvcc::Timestamp ts =
        pending_epoch_ts_ != 0 ? pending_epoch_ts_ : oracle_->Next();
    epochs_.push_back(std::make_unique<SnapshotEpoch>(ts));
    RetireUnreferencedLocked();
  }
  SnapshotEpoch* epoch = epochs_.back().get();

  // Lazily materialize whatever the transaction needs and is missing.
  for (storage::Column* column : columns) {
    if (epoch->Find(column) != nullptr) continue;
    const mvcc::Timestamp seal_ts = oracle_->Next();
    const mvcc::Timestamp min_active =
        registry_->MinStartTs(/*fallback=*/seal_ts);
    auto snap =
        column->MaterializeSnapshot(epoch->epoch_ts(), seal_ts, min_active);
    if (!snap.ok()) return snap.status();
    epoch->columns_.emplace(column, snap.TakeValue());
    ++total_materializations_;
  }

  ++epoch->refcount_;
  return std::unique_ptr<SnapshotHandle>(new SnapshotHandle(this, epoch));
}

void SnapshotManager::Release(SnapshotEpoch* epoch) {
  std::lock_guard<std::mutex> guard(mutex_);
  ANKER_CHECK(epoch->refcount_ > 0);
  --epoch->refcount_;
  RetireUnreferencedLocked();
}

void SnapshotManager::RetireUnreferencedLocked() {
  // Drop unreferenced epochs from the front as long as a newer epoch
  // exists (the newest is kept warm for the next OLAP arrival). Dropping
  // the ColumnSnapshots releases the snapshot views and, through the
  // shared_ptr, the handed-over version chains.
  while (epochs_.size() > 1 && epochs_.front()->refcount_ == 0) {
    epochs_.pop_front();
  }
}

size_t SnapshotManager::LiveEpochCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return epochs_.size();
}

}  // namespace anker::engine
