#include "engine/database.h"

#include <thread>

#include "wal/io_util.h"

namespace anker::engine {

DatabaseConfig DatabaseConfig::ForMode(txn::ProcessingMode mode) {
  DatabaseConfig config;
  config.mode = mode;
  config.backend = config.heterogeneous()
                       ? snapshot::BufferBackend::kVmSnapshot
                       : snapshot::BufferBackend::kPlain;
  return config;
}

Status DatabaseConfig::Validate() const {
  if (heterogeneous()) {
    if (backend == snapshot::BufferBackend::kPlain) {
      return Status::InvalidArgument(
          "heterogeneous mode needs a snapshot-capable backend, got plain");
    }
  } else if (backend != snapshot::BufferBackend::kPlain) {
    return Status::InvalidArgument(
        std::string("homogeneous modes never snapshot; backend ") +
        snapshot::BufferBackendName(backend) +
        " would only add copy-on-write cost (use plain)");
  }
  if (durability != wal::DurabilityMode::kOff && data_dir.empty()) {
    return Status::InvalidArgument(
        std::string("durability=") + wal::DurabilityModeName(durability) +
        " needs a data_dir for the write-ahead log");
  }
  if (checkpoint_interval_commits > 0 && data_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_interval_commits needs a data_dir to checkpoint into");
  }
  if (cold_budget_bytes > 0 && data_dir.empty()) {
    return Status::InvalidArgument(
        "cold_budget_bytes needs a data_dir for the extent store");
  }
  if (cold_segment_rows < 1024 ||
      (cold_segment_rows & (cold_segment_rows - 1)) != 0 ||
      cold_segment_rows > storage::kMaxExtentRows) {
    return Status::InvalidArgument(
        "cold_segment_rows must be a power of two in [1024, 2^24]");
  }
  if (!data_dir.empty()) {
    // Probe (and mkdir -p) the data directory up front: a config pointing
    // at an uncreatable path (say /var/lib/anker without root) must come
    // back as a recoverable error here, not as an IO failure deep inside
    // Database::Open after half the engine is constructed.
    const Status created = wal::EnsureDir(data_dir);
    if (!created.ok()) {
      return Status::InvalidArgument("data_dir '" + data_dir +
                                     "' cannot be created: " +
                                     created.message());
    }
  }
  return Status::OK();
}

ColumnReader OlapContext::Reader(const storage::Column* column) const {
  if (handle_ != nullptr) {
    return ColumnReader::ForSnapshot(handle_->GetColumn(column),
                                     column->num_rows());
  }
  return ColumnReader::ForLive(column, read_ts_);
}

Result<ColumnReader> OlapContext::TryReader(
    const storage::Column* column) const {
  if (handle_ != nullptr) {
    const storage::ColumnSnapshot* snap = handle_->Find(column);
    if (snap == nullptr) {
      return Status::InvalidArgument("column '" + column->name() +
                                     "' is not part of this OLAP "
                                     "transaction's column set");
    }
    return ColumnReader::ForSnapshot(*snap, column->num_rows());
  }
  return ColumnReader::ForLive(column, read_ts_);
}

Result<std::unique_ptr<Database>> Database::Create(DatabaseConfig config) {
  ANKER_RETURN_IF_ERROR(config.Validate());
  // Environmental failures must come back as Status here, not as the
  // plain constructor's CHECK-abort: configs (and data_dirs) reaching
  // Create are user input.
  std::unique_ptr<Database> db(new Database(std::move(config), OpenTag{}));
  if (db->config_.durability != wal::DurabilityMode::kOff) {
    if (wal::PathExists(db->config_.data_dir + "/CURRENT") ||
        wal::PathExists(db->wal_dir())) {
      return Status::AlreadyExists(
          "data_dir already holds durable state; reopen it with "
          "Database::Open");
    }
    ANKER_RETURN_IF_ERROR(db->StartWal(1));
  }
  return db;
}

Database::Database(DatabaseConfig config)
    : Database(std::move(config), OpenTag{}) {
  if (config_.durability != wal::DurabilityMode::kOff) {
    // A plain constructor means "fresh database". Existing durable state
    // must go through Open(), which replays it — silently truncating an
    // old log here would be data loss.
    ANKER_CHECK_MSG(
        !wal::PathExists(config_.data_dir + "/CURRENT") &&
            !wal::PathExists(wal_dir()),
        "data_dir already holds durable state; reopen it with Database::Open");
    const Status started = StartWal(1);
    ANKER_CHECK_MSG(started.ok(), started.message().c_str());
  }
}

Database::Database(DatabaseConfig config, OpenTag)
    : config_(std::move(config)), txn_manager_(config_.mode) {
  const Status valid = config_.Validate();
  ANKER_CHECK_MSG(valid.ok(), valid.message().c_str());
  if (config_.cold_budget_bytes > 0) {
    // Validate() already probed data_dir creation; a failure here means
    // the extents subdirectory itself is unusable.
    const Status cold = EnsureExtentStore();
    ANKER_CHECK_MSG(cold.ok(), cold.message().c_str());
  }
  if (config_.heterogeneous()) {
    snapshot_manager_ = std::make_unique<SnapshotManager>(
        &txn_manager_.oracle(), &txn_manager_.registry());
  } else {
    gc_ = std::make_unique<mvcc::GarbageCollector>(
        [this] {
          std::vector<mvcc::VersionStore*> stores;
          for (storage::Column* column : catalog_.AllColumns()) {
            stores.push_back(column->versions());
          }
          return stores;
        },
        &txn_manager_.registry(), &txn_manager_.oracle(),
        config_.gc_interval_millis);
  }
  const uint64_t snap_interval =
      config_.heterogeneous() ? config_.snapshot_interval_commits : 0;
  const uint64_t ckpt_interval = config_.checkpoint_interval_commits;
  if (snap_interval > 0 || ckpt_interval > 0) {
    SnapshotManager* manager = snapshot_manager_.get();
    txn_manager_.SetCommitHook(
        [this, manager, snap_interval, ckpt_interval](uint64_t commits) {
          if (snap_interval > 0 && manager != nullptr &&
              commits % snap_interval == 0) {
            manager->TriggerEpoch();
          }
          if (ckpt_interval > 0 && commits % ckpt_interval == 0) {
            ScheduleCheckpoint();
          }
        });
  }
}

Database::~Database() { Stop(); }

void Database::Start() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (started_) return;
  started_ = true;
  if (gc_ != nullptr) gc_->Start();
}

void Database::Stop() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (!started_) return;
  started_ = false;
  if (gc_ != nullptr) gc_->Stop();
}

ThreadPool& Database::worker_pool() {
  std::lock_guard<std::mutex> guard(pool_mutex_);
  if (pool_ == nullptr) {
    size_t threads = config_.worker_threads;
    if (threads == 0) {
      threads = std::max<size_t>(std::thread::hardware_concurrency(), 1);
    }
    threads = std::max(threads, config_.scan_threads);
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return *pool_;
}

Result<storage::Table*> Database::PublishTable(
    std::unique_ptr<storage::Table> table) {
  storage::Table* raw = table.get();
  // Stable ids must be in place before AddTable publishes the table: a
  // concurrent thread may obtain it through the catalog and commit
  // immediately, and the redo sink reads these ids lock-free.
  const uint32_t table_id = static_cast<uint32_t>(tables_by_id_.size());
  for (size_t j = 0; j < raw->num_columns(); ++j) {
    raw->GetColumnAt(j)->SetStableId(table_id, static_cast<uint32_t>(j));
    // Tiering attaches before the table is visible to any other thread;
    // columns of an engine without a budget stay untiered (all fast
    // paths byte-identical to the pre-tiering engine).
    if (config_.cold_budget_bytes > 0) {
      raw->GetColumnAt(j)->EnableTiering(extent_store_.get(),
                                         config_.cold_segment_rows);
    }
  }
  ANKER_RETURN_IF_ERROR(catalog_.AddTable(std::move(table)));
  tables_by_id_.push_back(raw);
  return raw;
}

Result<storage::Table*> Database::CreateTableInternal(
    const std::string& name, const std::vector<storage::ColumnDef>& schema,
    size_t num_rows) {
  auto table = storage::Table::Create(name, schema, num_rows,
                                      config_.backend);
  if (!table.ok()) return table.status();
  return PublishTable(table.TakeValue());
}

Result<storage::Table*> Database::CreateTable(
    const std::string& name, const std::vector<storage::ColumnDef>& schema,
    size_t num_rows) {
  std::lock_guard<std::mutex> guard(create_table_mutex_);
  if (log_ == nullptr) return CreateTableInternal(name, schema, num_rows);

  // Durable path: the schema record must be in the log *before* the
  // table becomes reachable through the catalog — a concurrent thread
  // may obtain the table and commit immediately, and recovery refuses a
  // log where a commit record precedes its table's kCreateTable record.
  // The name is checked first (under this mutex, the only table-adding
  // path besides single-threaded recovery) so a duplicate name cannot
  // leave a stray schema record. The one remaining stray-record window is
  // a failed group-commit WaitDurable below: the record may reach the
  // disk although the create returns an error — acceptable, because a
  // poisoned log fails every subsequent commit anyway and replaying the
  // record after a restart merely creates an empty table with the schema
  // the caller asked for.
  if (catalog_.HasTable(name)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = storage::Table::Create(name, schema, num_rows,
                                      config_.backend);
  if (!table.ok()) return table.status();

  // Log the schema so a table created after the last checkpoint exists
  // again before its commits replay. Note the bulk-load path
  // (Column::LoadValue) is NOT logged: loaded data becomes durable with
  // the first Checkpoint() — see docs/DURABILITY.md.
  //
  // The record is stamped with a fresh oracle tick: checkpoint truncation
  // deletes segments whose newest timestamp the checkpoint covers, and an
  // unstamped record could be the only durable trace of a table the
  // in-flight checkpoint does not contain. Checkpoint() captures its
  // table set under create_table_mutex_ *including* the snapshot pin, so
  // a create that misses the capture draws its tick after ckpt_ts and the
  // record (plus all the table's commits) outlives the truncation.
  std::string payload;
  wal::EncodeCreateTable(static_cast<uint32_t>(tables_by_id_.size()), name,
                         num_rows, schema, &payload);
  if (payload.size() > wal::kMaxRecordBytes) {
    return Status::InvalidArgument(
        "table schema exceeds the WAL record size limit");
  }
  const mvcc::Timestamp stamp = txn_manager_.oracle().Next();
  const uint64_t lsn = log_->Append(payload, stamp);
  if (config_.durability == wal::DurabilityMode::kGroupCommit) {
    ANKER_RETURN_IF_ERROR(log_->WaitDurable(lsn));
  }
  return PublishTable(table.TakeValue());
}

Result<std::unique_ptr<OlapContext>> Database::BeginOlap(
    const std::vector<storage::Column*>& columns) {
  std::unique_ptr<OlapContext> ctx(new OlapContext());
  ctx->txn_ = txn_manager_.Begin(txn::TxnType::kOlap);
  ctx->scan_threads_ = std::max<size_t>(1, config_.scan_threads);
  if (ctx->scan_threads_ > 1) ctx->scan_pool_ = &worker_pool();
  if (config_.heterogeneous()) {
    auto handle = snapshot_manager_->Acquire(columns);
    if (!handle.ok()) {
      txn_manager_.Abort(ctx->txn_.get());
      return handle.status();
    }
    ctx->handle_ = handle.TakeValue();
    // OLAP transactions read at the epoch timestamp: every column resolves
    // to the same logical point in time even though materialization is
    // lazy and per column (paper Section 2.2.2).
    ctx->read_ts_ = ctx->handle_->epoch_ts();
  } else {
    ctx->read_ts_ = ctx->txn_->start_ts();
    // Live scans hand out raw buffer pointers; with tiering on, every
    // column in the set must be resident (and stay pinned) for the
    // transaction's lifetime. Heterogeneous mode pins per snapshot
    // instead (inside MaterializeSnapshot).
    for (storage::Column* column : columns) {
      if (column->segments() == nullptr) continue;
      auto lease = column->PinResident();
      if (!lease.ok()) {
        txn_manager_.Abort(ctx->txn_.get());
        return lease.status();
      }
      ctx->residency_leases_.push_back(lease.TakeValue());
    }
  }
  return ctx;
}

Status Database::FinishOlap(std::unique_ptr<OlapContext> ctx) {
  ANKER_CHECK(ctx != nullptr);
  // Release the snapshot handle before finishing the transaction so epoch
  // retirement sees up-to-date refcounts.
  ctx->handle_.reset();
  ctx->residency_leases_.clear();
  const Status committed = txn_manager_.Commit(ctx->txn_.get());
  // Residency just dropped; opportunistically push the tier back under
  // its budget (non-blocking — a busy cold mutex means someone else is
  // already spilling or pruning).
  if (config_.cold_budget_bytes > 0) EnforceColdBudget();
  return committed;
}

}  // namespace anker::engine
