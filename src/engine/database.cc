#include "engine/database.h"

#include <thread>

namespace anker::engine {

DatabaseConfig DatabaseConfig::ForMode(txn::ProcessingMode mode) {
  DatabaseConfig config;
  config.mode = mode;
  config.backend = config.heterogeneous()
                       ? snapshot::BufferBackend::kVmSnapshot
                       : snapshot::BufferBackend::kPlain;
  return config;
}

Status DatabaseConfig::Validate() const {
  if (heterogeneous()) {
    if (backend == snapshot::BufferBackend::kPlain) {
      return Status::InvalidArgument(
          "heterogeneous mode needs a snapshot-capable backend, got plain");
    }
  } else if (backend != snapshot::BufferBackend::kPlain) {
    return Status::InvalidArgument(
        std::string("homogeneous modes never snapshot; backend ") +
        snapshot::BufferBackendName(backend) +
        " would only add copy-on-write cost (use plain)");
  }
  return Status::OK();
}

ColumnReader OlapContext::Reader(const storage::Column* column) const {
  if (handle_ != nullptr) {
    return ColumnReader::ForSnapshot(handle_->GetColumn(column),
                                     column->num_rows());
  }
  return ColumnReader::ForLive(column, read_ts_);
}

Result<ColumnReader> OlapContext::TryReader(
    const storage::Column* column) const {
  if (handle_ != nullptr) {
    const storage::ColumnSnapshot* snap = handle_->Find(column);
    if (snap == nullptr) {
      return Status::InvalidArgument("column '" + column->name() +
                                     "' is not part of this OLAP "
                                     "transaction's column set");
    }
    return ColumnReader::ForSnapshot(*snap, column->num_rows());
  }
  return ColumnReader::ForLive(column, read_ts_);
}

Result<std::unique_ptr<Database>> Database::Create(DatabaseConfig config) {
  ANKER_RETURN_IF_ERROR(config.Validate());
  return std::make_unique<Database>(config);
}

Database::Database(DatabaseConfig config)
    : config_(config), txn_manager_(config.mode) {
  const Status valid = config_.Validate();
  ANKER_CHECK_MSG(valid.ok(), valid.message().c_str());
  if (config_.heterogeneous()) {
    snapshot_manager_ = std::make_unique<SnapshotManager>(
        &txn_manager_.oracle(), &txn_manager_.registry());
    const uint64_t interval = config_.snapshot_interval_commits;
    SnapshotManager* manager = snapshot_manager_.get();
    txn_manager_.SetCommitHook([manager, interval](uint64_t commits) {
      if (interval > 0 && commits % interval == 0) manager->TriggerEpoch();
    });
  } else {
    gc_ = std::make_unique<mvcc::GarbageCollector>(
        [this] {
          std::vector<mvcc::VersionStore*> stores;
          for (storage::Column* column : catalog_.AllColumns()) {
            stores.push_back(column->versions());
          }
          return stores;
        },
        &txn_manager_.registry(), &txn_manager_.oracle(),
        config_.gc_interval_millis);
  }
}

Database::~Database() { Stop(); }

void Database::Start() {
  if (started_) return;
  started_ = true;
  if (gc_ != nullptr) gc_->Start();
}

void Database::Stop() {
  if (!started_) return;
  started_ = false;
  if (gc_ != nullptr) gc_->Stop();
}

ThreadPool& Database::worker_pool() {
  std::lock_guard<std::mutex> guard(pool_mutex_);
  if (pool_ == nullptr) {
    size_t threads = config_.worker_threads;
    if (threads == 0) {
      threads = std::max<size_t>(std::thread::hardware_concurrency(), 1);
    }
    threads = std::max(threads, config_.scan_threads);
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return *pool_;
}

Result<storage::Table*> Database::CreateTable(
    const std::string& name, const std::vector<storage::ColumnDef>& schema,
    size_t num_rows) {
  auto table = storage::Table::Create(name, schema, num_rows,
                                      config_.backend);
  if (!table.ok()) return table.status();
  storage::Table* raw = table.value().get();
  ANKER_RETURN_IF_ERROR(catalog_.AddTable(table.TakeValue()));
  return raw;
}

Result<std::unique_ptr<OlapContext>> Database::BeginOlap(
    const std::vector<storage::Column*>& columns) {
  std::unique_ptr<OlapContext> ctx(new OlapContext());
  ctx->txn_ = txn_manager_.Begin(txn::TxnType::kOlap);
  ctx->scan_threads_ = std::max<size_t>(1, config_.scan_threads);
  if (ctx->scan_threads_ > 1) ctx->scan_pool_ = &worker_pool();
  if (config_.heterogeneous()) {
    auto handle = snapshot_manager_->Acquire(columns);
    if (!handle.ok()) {
      txn_manager_.Abort(ctx->txn_.get());
      return handle.status();
    }
    ctx->handle_ = handle.TakeValue();
    // OLAP transactions read at the epoch timestamp: every column resolves
    // to the same logical point in time even though materialization is
    // lazy and per column (paper Section 2.2.2).
    ctx->read_ts_ = ctx->handle_->epoch_ts();
  } else {
    ctx->read_ts_ = ctx->txn_->start_ts();
  }
  return ctx;
}

Status Database::FinishOlap(std::unique_ptr<OlapContext> ctx) {
  ANKER_CHECK(ctx != nullptr);
  // Release the snapshot handle before finishing the transaction so epoch
  // retirement sees up-to-date refcounts.
  ctx->handle_.reset();
  return txn_manager_.Commit(ctx->txn_.get());
}

}  // namespace anker::engine
