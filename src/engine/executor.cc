#include "engine/executor.h"

#include "storage/value.h"

namespace anker::engine {

ColumnReader ColumnReader::ForSnapshot(const storage::ColumnSnapshot& snap,
                                       size_t num_rows) {
  return ColumnReader(snap.view->data(), snap.chains.get(), snap.epoch_ts,
                      num_rows, /*allows_ts_skip=*/true);
}

ColumnReader ColumnReader::ForLive(const storage::Column* column,
                                   mvcc::Timestamp read_ts) {
  return ColumnReader(column->raw_data(),
                      column->versions()->current_raw(), read_ts,
                      column->num_rows(), /*allows_ts_skip=*/false);
}

uint64_t ColumnReader::ResolveChain(size_t row, uint64_t slot) const {
  uint64_t candidate = slot;
  const mvcc::ChainDirectory* dir = dir_;
  while (dir != nullptr) {
    // Node payloads are read through the TSAN-annotated accessors: a
    // commit may recycle-and-rewrite a node this walk still holds (see
    // StoreNodePayload in ChainDirectory::AddVersion); the caller's
    // seqlock validation rejects the block if that happened.
    for (const mvcc::VersionNode* node = dir->Head(row); node != nullptr;
         node = mvcc::LoadNext(node)) {
      if (mvcc::LoadNodeTs(node) <= read_ts_) return candidate;
      candidate = mvcc::LoadNodeValue(node);
    }
    if (read_ts_ >= dir->prev_seal_ts()) return candidate;
    const mvcc::ChainDirectory* prev = dir->prev_raw();
    if (prev == nullptr) return candidate;
    dir = prev;
  }
  return candidate;
}

ScanDriver::ScanDriver(std::vector<const ColumnReader*> readers)
    : readers_(std::move(readers)) {
  ANKER_CHECK(!readers_.empty());
  num_rows_ = readers_[0]->num_rows();
  raw_bases_.reserve(readers_.size());
  for (const ColumnReader* reader : readers_) {
    ANKER_CHECK(reader->num_rows() == num_rows_);
    raw_bases_.push_back(reader->raw_base());
  }
  // A reader older than the previous epoch's seal may need versions from
  // older chain segments, which the per-block metadata of the current
  // segment knows nothing about: such readers must resolve every row.
  needs_prev_.resize(readers_.size());
  for (size_t i = 0; i < readers_.size(); ++i) {
    const ColumnReader& reader = *readers_[i];
    needs_prev_[i] = reader.versioned() &&
                     reader.read_ts() < reader.dir()->prev_seal_ts();
  }
}

ScanDriver::Classification ScanDriver::ClassifyBlock(
    size_t block, BlockScratch* scratch) const {
  const size_t begin = block * mvcc::kRowsPerBlock;
  bool any_relevant = false;
  bool write_in_progress = false;
  bool any_needs_prev = false;
  size_t range_first = SIZE_MAX;
  size_t range_last = 0;
  for (size_t i = 0; i < readers_.size(); ++i) {
    const ColumnReader& reader = *readers_[i];
    if (!reader.versioned()) {
      scratch->seqs[i] = 0;
      scratch->hint_first[i] = SIZE_MAX;
      scratch->hint_last[i] = 0;
      continue;
    }
    if (needs_prev_[i]) any_needs_prev = true;
    const mvcc::BlockInfo info = reader.dir()->GetBlockInfo(block);
    scratch->seqs[i] = info.seq;
    if ((info.seq & 1) != 0) write_in_progress = true;
    // Snapshot readers may prove a block version-free from its newest
    // version timestamp (the common case: handed-over chains predate the
    // epoch) and scan it tight; live readers must check per row inside the
    // versioned range, like the homogeneous baseline the paper measures.
    const bool relevant =
        info.has_versions &&
        (!reader.allows_ts_skip() || info.max_ts > reader.read_ts());
    if (relevant) {
      any_relevant = true;
      scratch->hint_first[i] = begin + info.first_versioned;
      scratch->hint_last[i] = begin + info.last_versioned;
      range_first = std::min(range_first, scratch->hint_first[i]);
      range_last = std::max(range_last, scratch->hint_last[i]);
    } else {
      scratch->hint_first[i] = SIZE_MAX;
      scratch->hint_last[i] = 0;
    }
  }
  if (write_in_progress || any_needs_prev) {
    return Classification{BlockMode::kSafe, 0, 0};
  }
  if (!any_relevant) return Classification{BlockMode::kTight, 0, 0};
  return Classification{BlockMode::kHinted, range_first, range_last};
}

bool ScanDriver::BlockStable(size_t block,
                             const std::vector<uint64_t>& seqs) const {
  for (size_t i = 0; i < readers_.size(); ++i) {
    const ColumnReader& reader = *readers_[i];
    if (!reader.versioned()) continue;
    if (reader.dir()->GetBlockInfo(block).seq != seqs[i]) return false;
  }
  return true;
}

const uint64_t* ScanDriver::StageHinted(size_t i, size_t begin, size_t end,
                                        const BlockScratch& scratch,
                                        uint64_t* stage) const {
  const size_t first = scratch.hint_first[i];
  const size_t last = scratch.hint_last[i];
  const uint64_t* raw = raw_bases_[i];
  if (first == SIZE_MAX) {
#ifdef ANKER_TSAN
    // Kernels read spans with plain loads; stage via relaxed atomics.
    for (size_t r = begin; r < end; ++r) {
      stage[r - begin] = RawSlotLoad(raw + r);
    }
    return stage;
#else
    // No relevant versions in this block for this reader: expose the raw
    // span directly, no copy.
    return raw + begin;
#endif
  }
  const ColumnReader& reader = *readers_[i];
  const size_t resolve_begin = std::max(begin, first);
  const size_t resolve_end = std::min(end, last + 1);
  for (size_t r = begin; r < resolve_begin; ++r) {
    stage[r - begin] = RawSlotLoad(raw + r);
  }
  for (size_t r = resolve_begin; r < resolve_end; ++r) {
    stage[r - begin] = reader.Get(r);
  }
  for (size_t r = resolve_end; r < end; ++r) {
    stage[r - begin] = RawSlotLoad(raw + r);
  }
  return stage;
}

const uint64_t* ScanDriver::StageSafe(size_t i, size_t begin, size_t end,
                                      uint64_t* stage) const {
  const ColumnReader& reader = *readers_[i];
  for (size_t r = begin; r < end; ++r) stage[r - begin] = reader.Get(r);
  return stage;
}

double ScanColumnSum(const ColumnReader& reader, bool as_double,
                     ScanStats* stats, const ScanOptions& options) {
  ScanDriver driver({&reader});
  double total = 0.0;
  driver.Fold<double>(
      &total,
      [as_double](double& acc, const auto& row) {
        const uint64_t raw = row.Col(0);
        acc += as_double ? storage::DecodeDouble(raw)
                         : static_cast<double>(storage::DecodeInt64(raw));
      },
      [](double& total_acc, double&& local) { total_acc += local; }, stats,
      options);
  return total;
}

}  // namespace anker::engine
