#ifndef ANKER_ENGINE_EXECUTOR_H_
#define ANKER_ENGINE_EXECUTOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "engine/snapshot_manager.h"
#include "mvcc/version_store.h"
#include "storage/column.h"

namespace anker::engine {

/// Read-path handle on one column: a raw slot array plus (optionally) the
/// version chains and read timestamp needed to resolve versioned rows.
/// Two flavors exist:
///  - snapshot readers: `base` points into a SnapshotView; `dir` is the
///    handed-over chain segment (nullptr when the snapshot is clean);
///    `read_ts` is the epoch timestamp;
///  - live readers: `base` is the column's up-to-date buffer; `dir` is the
///    current chain segment; `read_ts` the transaction's start timestamp.
class ColumnReader {
 public:
  ColumnReader() = default;

  /// Reader over a materialized snapshot (heterogeneous OLAP path).
  static ColumnReader ForSnapshot(const storage::ColumnSnapshot& snap,
                                  size_t num_rows);

  /// Reader over the live column (homogeneous OLAP / OLTP-side scans).
  static ColumnReader ForLive(const storage::Column* column,
                              mvcc::Timestamp read_ts);

  /// Value of `row` visible at the reader's timestamp. Always safe against
  /// concurrent committers (slot is loaded before the chain head; the
  /// committer publishes the chain node before overwriting the slot).
  inline uint64_t Get(size_t row) const {
    const uint64_t slot = __atomic_load_n(
        reinterpret_cast<const uint64_t*>(base_) + row, __ATOMIC_ACQUIRE);
    if (dir_ == nullptr) return slot;
    return ResolveChain(row, slot);
  }

  /// Raw slot value without any version checks. Only correct when the
  /// caller proved the row cannot carry a relevant version (tight loops).
  inline uint64_t GetRaw(size_t row) const {
    return reinterpret_cast<const uint64_t*>(base_)[row];
  }

  const mvcc::ChainDirectory* dir() const { return dir_; }
  mvcc::Timestamp read_ts() const { return read_ts_; }
  size_t num_rows() const { return num_rows_; }
  bool versioned() const { return dir_ != nullptr; }

  /// Whether a whole block may be proven version-free by comparing the
  /// block's newest version timestamp against read_ts. True for snapshot
  /// readers: the paper's snapshots are older than the transactions that
  /// run on them, which is exactly why OLAP "can simply scan the column in
  /// a tight loop without considering the version chains" (Fig. 1 step 5).
  /// False for live readers: the homogeneous baseline the paper evaluates
  /// checks timestamps per record inside versioned ranges (Section 5.5) —
  /// that per-row cost is the effect Figures 7 and 9 measure.
  bool allows_ts_skip() const { return allows_ts_skip_; }

 private:
  ColumnReader(const uint8_t* base, const mvcc::ChainDirectory* dir,
               mvcc::Timestamp read_ts, size_t num_rows, bool allows_ts_skip)
      : base_(base),
        dir_(dir),
        read_ts_(read_ts),
        num_rows_(num_rows),
        allows_ts_skip_(allows_ts_skip) {}

  uint64_t ResolveChain(size_t row, uint64_t slot) const;

  const uint8_t* base_ = nullptr;
  const mvcc::ChainDirectory* dir_ = nullptr;
  mvcc::Timestamp read_ts_ = 0;
  size_t num_rows_ = 0;
  bool allows_ts_skip_ = false;
};

/// Scan statistics: how much of a scan ran in tight loops vs. resolving
/// version chains (benches report these to explain Figure 7/9 shapes).
struct ScanStats {
  size_t tight_rows = 0;
  size_t hinted_rows = 0;    ///< Versioned block, raw read outside range.
  size_t resolved_rows = 0;  ///< Full per-row chain resolution.
  size_t seqlock_retries = 0;
};

/// Multi-column scan driver implementing the paper's tight-loop strategy
/// (Section 5.5, adopted from HyPer): per 1024-row block it consults the
/// first/last-versioned-row metadata of every involved column and
///  - scans blocks with no versions anywhere in a tight loop of raw loads,
///  - uses the versioned-range hint to read raw outside [first, last] and
///    resolve inside,
///  - falls back to fully safe per-row resolution when a concurrent commit
///    touched the block mid-scan (detected with a per-block seqlock).
///
/// The accumulator type Acc must be default-constructible; per-block
/// partial results are folded into the total only after the seqlock
/// verifies the block was stable, which makes retries side-effect free.
class ScanDriver {
 public:
  /// All readers must cover the same row count.
  explicit ScanDriver(std::vector<const ColumnReader*> readers);

  size_t num_rows() const { return num_rows_; }

  /// Row accessor handed to the scan callback.
  class RowView {
   public:
    /// Value of column `i` (index into the readers vector) at this row.
    inline uint64_t Col(size_t i) const {
      const ColumnReader& reader = *driver_->readers_[i];
      switch (mode_) {
        case Mode::kTight:
          return reader.GetRaw(row_);
        case Mode::kHinted:
          if (row_ < driver_->hint_first_[i] || row_ > driver_->hint_last_[i])
            return reader.GetRaw(row_);
          return reader.Get(row_);
        case Mode::kSafe:
          return reader.Get(row_);
      }
      return 0;
    }

    size_t row() const { return row_; }

   private:
    friend class ScanDriver;
    enum class Mode { kTight, kHinted, kSafe };
    const ScanDriver* driver_;
    size_t row_;
    Mode mode_;
  };

  /// Folds `row_fn(Acc&, RowView)` over every row; merges block-local
  /// accumulators into `total` with `merge(Acc&, Acc&&)`.
  template <typename Acc, typename RowFn, typename MergeFn>
  void Fold(Acc* total, RowFn&& row_fn, MergeFn&& merge,
            ScanStats* stats = nullptr) const {
    const size_t num_blocks =
        (num_rows_ + mvcc::kRowsPerBlock - 1) / mvcc::kRowsPerBlock;
    std::vector<uint64_t> seqs(readers_.size());
    for (size_t block = 0; block < num_blocks; ++block) {
      const size_t begin = block * mvcc::kRowsPerBlock;
      const size_t end = std::min(begin + mvcc::kRowsPerBlock, num_rows_);

      const BlockMode mode = ClassifyBlock(block, &seqs);
      RowView view;
      view.driver_ = this;

      if (mode != BlockMode::kSafe) {
        Acc local{};
        view.mode_ = mode == BlockMode::kTight ? RowView::Mode::kTight
                                               : RowView::Mode::kHinted;
        for (size_t row = begin; row < end; ++row) {
          view.row_ = row;
          row_fn(local, view);
        }
        if (BlockStable(block, seqs)) {
          merge(*total, std::move(local));
          if (stats != nullptr) {
            if (mode == BlockMode::kTight) {
              stats->tight_rows += end - begin;
            } else {
              stats->hinted_rows += end - begin;
            }
          }
          continue;
        }
        if (stats != nullptr) ++stats->seqlock_retries;
        // Discard `local`, redo the block through the safe path.
      }

      Acc local{};
      view.mode_ = RowView::Mode::kSafe;
      for (size_t row = begin; row < end; ++row) {
        view.row_ = row;
        row_fn(local, view);
      }
      merge(*total, std::move(local));
      if (stats != nullptr) stats->resolved_rows += end - begin;
    }
  }

 private:
  enum class BlockMode { kTight, kHinted, kSafe };

  /// Reads every reader's block metadata; returns kTight when no reader
  /// has versions in the block, kHinted when hints apply, kSafe when a
  /// write is in progress right now. Records seqlock counters in `seqs`.
  BlockMode ClassifyBlock(size_t block, std::vector<uint64_t>* seqs) const;

  /// True iff no reader's block seqlock moved since ClassifyBlock.
  bool BlockStable(size_t block, const std::vector<uint64_t>& seqs) const;

  std::vector<const ColumnReader*> readers_;
  size_t num_rows_ = 0;
  /// Per-reader versioned-range hints for the block being scanned
  /// (absolute row ids; maintained by ClassifyBlock).
  mutable std::vector<size_t> hint_first_;
  mutable std::vector<size_t> hint_last_;
  /// Per-reader: may need chain segments older than reader.dir().
  std::vector<bool> needs_prev_;
};

/// Convenience: sum of a single column (typed as double when `as_double`),
/// used by the full-table-scan transactions and Figure 9.
double ScanColumnSum(const ColumnReader& reader, bool as_double,
                     ScanStats* stats = nullptr);

}  // namespace anker::engine

#endif  // ANKER_ENGINE_EXECUTOR_H_
