#ifndef ANKER_ENGINE_EXECUTOR_H_
#define ANKER_ENGINE_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "engine/snapshot_manager.h"
#include "mvcc/version_store.h"
#include "storage/column.h"

namespace anker::engine {

/// Raw slot read of the tight/hinted scan kernels. Normally a plain load:
/// intentionally racy against in-place committers and validated after the
/// fact by the per-block seqlock (a block that raced a commit is
/// discarded and redone through the safe kernel) — the paper's tight-loop
/// contract. Under ThreadSanitizer the same read becomes a relaxed atomic
/// load: identical bytes and codegen cost in the sanitized build only,
/// and TSan stops flagging the one race the engine is designed to
/// tolerate, so anything it still reports is a real ordering bug.
inline uint64_t RawSlotLoad(const uint64_t* slot) {
#ifdef ANKER_TSAN
  return __atomic_load_n(slot, __ATOMIC_RELAXED);
#else
  return *slot;
#endif
}

/// Read-path handle on one column: a raw slot array plus (optionally) the
/// version chains and read timestamp needed to resolve versioned rows.
/// Two flavors exist:
///  - snapshot readers: `base` points into a SnapshotView; `dir` is the
///    handed-over chain segment (nullptr when the snapshot is clean);
///    `read_ts` is the epoch timestamp;
///  - live readers: `base` is the column's up-to-date buffer; `dir` is the
///    current chain segment; `read_ts` the transaction's start timestamp.
class ColumnReader {
 public:
  ColumnReader() = default;

  /// Reader over a materialized snapshot (heterogeneous OLAP path).
  static ColumnReader ForSnapshot(const storage::ColumnSnapshot& snap,
                                  size_t num_rows);

  /// Reader over the live column (homogeneous OLAP / OLTP-side scans).
  static ColumnReader ForLive(const storage::Column* column,
                              mvcc::Timestamp read_ts);

  /// Value of `row` visible at the reader's timestamp. Always safe against
  /// concurrent committers (slot is loaded before the chain head; the
  /// committer publishes the chain node before overwriting the slot).
  inline uint64_t Get(size_t row) const {
    const uint64_t slot = __atomic_load_n(
        reinterpret_cast<const uint64_t*>(base_) + row, __ATOMIC_ACQUIRE);
    if (dir_ == nullptr) return slot;
    return ResolveChain(row, slot);
  }

  /// Raw slot value without any version checks. Only correct when the
  /// caller proved the row cannot carry a relevant version (tight loops).
  inline uint64_t GetRaw(size_t row) const {
    return RawSlotLoad(reinterpret_cast<const uint64_t*>(base_) + row);
  }

  /// Raw slot array for specialized block kernels (see ScanDriver): valid
  /// only for rows the caller proved version-free.
  const uint64_t* raw_base() const {
    return reinterpret_cast<const uint64_t*>(base_);
  }

  const mvcc::ChainDirectory* dir() const { return dir_; }
  mvcc::Timestamp read_ts() const { return read_ts_; }
  size_t num_rows() const { return num_rows_; }
  bool versioned() const { return dir_ != nullptr; }

  /// Whether a whole block may be proven version-free by comparing the
  /// block's newest version timestamp against read_ts. True for snapshot
  /// readers: the paper's snapshots are older than the transactions that
  /// run on them, which is exactly why OLAP "can simply scan the column in
  /// a tight loop without considering the version chains" (Fig. 1 step 5).
  /// False for live readers: the homogeneous baseline the paper evaluates
  /// checks timestamps per record inside versioned ranges (Section 5.5) —
  /// that per-row cost is the effect Figures 7 and 9 measure.
  bool allows_ts_skip() const { return allows_ts_skip_; }

 private:
  ColumnReader(const uint8_t* base, const mvcc::ChainDirectory* dir,
               mvcc::Timestamp read_ts, size_t num_rows, bool allows_ts_skip)
      : base_(base),
        dir_(dir),
        read_ts_(read_ts),
        num_rows_(num_rows),
        allows_ts_skip_(allows_ts_skip) {}

  uint64_t ResolveChain(size_t row, uint64_t slot) const;

  const uint8_t* base_ = nullptr;
  const mvcc::ChainDirectory* dir_ = nullptr;
  mvcc::Timestamp read_ts_ = 0;
  size_t num_rows_ = 0;
  bool allows_ts_skip_ = false;
};

/// Scan statistics: how much of a scan ran in tight loops vs. resolving
/// version chains (benches report these to explain Figure 7/9 shapes).
struct ScanStats {
  size_t tight_rows = 0;
  size_t hinted_rows = 0;    ///< Versioned block, raw read outside range.
  size_t resolved_rows = 0;  ///< Full per-row chain resolution.
  size_t seqlock_retries = 0;

  void Merge(const ScanStats& other) {
    tight_rows += other.tight_rows;
    hinted_rows += other.hinted_rows;
    resolved_rows += other.resolved_rows;
    seqlock_retries += other.seqlock_retries;
  }
};

/// One block handed to ScanDriver::FoldBlockwise: contiguous per-column
/// value spans for rows [begin, begin + rows). cols[i] points either
/// directly into reader i's raw slot array (version-free blocks) or into
/// per-participant scratch holding fully resolved values (versioned
/// blocks) — the callback indexes cols[i][0 .. rows) and never sees
/// version logic. Because versioned blocks are materialized up front, a
/// blockwise consumer runs the *same* arithmetic over every block kind,
/// which keeps results bit-identical across processing modes.
struct ScanBlock {
  const uint64_t* const* cols;
  size_t begin = 0;
  size_t rows = 0;
};

/// Per-scan execution knobs. Default-constructed options run the scan
/// serially on the calling thread.
struct ScanOptions {
  /// Worker pool morsels fan out into; nullptr = serial scan.
  ThreadPool* pool = nullptr;
  /// Max participants (calling thread + pool helpers) for this scan.
  size_t max_threads = 1;
  /// Morsel size in 1024-row blocks: 32 blocks x 8 bytes = 256 KiB per
  /// column per morsel — large enough to amortize claim overhead, small
  /// enough to load-balance and stay cache-resident.
  size_t morsel_blocks = 32;
  /// Test-only hook, called after a block was classified and before its
  /// rows are folded: lets tests inject a commit between ClassifyBlock and
  /// BlockStable to deterministically exercise the seqlock retry path.
  std::function<void(size_t block)> on_block_classified;
};

/// Multi-column scan driver implementing the paper's tight-loop strategy
/// (Section 5.5, adopted from HyPer) with per-block kernel specialization:
/// per 1024-row block it consults the first/last-versioned-row metadata of
/// every involved column and picks one of three kernels:
///  - *tight*: no reader has relevant versions in the block — a branchless
///    loop over the raw slot arrays (auto-vectorizable);
///  - *hinted*: versioned rows exist — the block splits into a raw prefix,
///    a resolve range (union of the readers' [first, last] hints) and a
///    raw suffix; only the middle consults chains, per column;
///  - *safe*: a write is in progress right now (or the reader predates the
///    current chain segment) — fully safe per-row resolution.
/// A per-block seqlock validates tight/hinted results after the fact;
/// blocks that raced a commit are redone with the safe kernel.
///
/// Fold runs serially by default; given ScanOptions with a pool it becomes
/// a morsel-driven parallel scan (Leis et al.): participants claim
/// contiguous block ranges from a shared counter, fold into per-worker
/// accumulators, and merge into the total under a lock at the end. The
/// accumulator type Acc must be default-constructible; `merge` must be
/// associative over accumulators. Per-block partial results are folded
/// into a participant's accumulator only after the seqlock verified the
/// block was stable, which makes retries side-effect free.
///
/// Row callbacks receive one of three row-accessor types (TightRow,
/// HintedRow, SafeRow), all exposing `Col(i)` and `row()` — write them as
/// generic lambdas: `[](Acc& acc, const auto& row) { ... }`. The
/// specialization is what removes the per-row mode switch from the hot
/// loop: each kernel instantiates the callback against its accessor.
class ScanDriver {
 public:
  /// All readers must cover the same row count.
  explicit ScanDriver(std::vector<const ColumnReader*> readers);

  size_t num_rows() const { return num_rows_; }

  /// Row accessor of the tight kernel: raw slot loads, no branching, no
  /// reader indirection.
  class TightRow {
   public:
    inline uint64_t Col(size_t i) const {
      return RawSlotLoad(cols_[i] + row_);
    }
    size_t row() const { return row_; }

   private:
    friend class ScanDriver;
    const uint64_t* const* cols_;
    size_t row_;
  };

  /// Row accessor of the hinted kernel's resolve range: raw outside the
  /// column's own [first, last] versioned range, chain resolution inside.
  class HintedRow {
   public:
    inline uint64_t Col(size_t i) const {
      if (row_ < hint_first_[i] || row_ > hint_last_[i]) {
        return RawSlotLoad(cols_[i] + row_);
      }
      return readers_[i]->Get(row_);
    }
    size_t row() const { return row_; }

   private:
    friend class ScanDriver;
    const uint64_t* const* cols_;
    const size_t* hint_first_;
    const size_t* hint_last_;
    const ColumnReader* const* readers_;
    size_t row_;
  };

  /// Row accessor of the safe fallback: full per-row chain resolution.
  class SafeRow {
   public:
    inline uint64_t Col(size_t i) const { return readers_[i]->Get(row_); }
    size_t row() const { return row_; }

   private:
    friend class ScanDriver;
    const ColumnReader* const* readers_;
    size_t row_;
  };

  /// Folds `row_fn(Acc&, row)` over every row; merges block-local (and,
  /// under a parallel scan, per-worker) accumulators into `total` with
  /// `merge(Acc&, Acc&&)`. Thread-safe: concurrent Folds on one driver
  /// share no mutable state.
  template <typename Acc, typename RowFn, typename MergeFn>
  void Fold(Acc* total, RowFn&& row_fn, MergeFn&& merge,
            ScanStats* stats = nullptr,
            const ScanOptions& options = ScanOptions()) const {
    const size_t num_blocks =
        (num_rows_ + mvcc::kRowsPerBlock - 1) / mvcc::kRowsPerBlock;
    const size_t morsel_blocks = std::max<size_t>(1, options.morsel_blocks);
    const size_t num_morsels =
        (num_blocks + morsel_blocks - 1) / morsel_blocks;
    size_t parallelism =
        options.pool != nullptr ? std::max<size_t>(1, options.max_threads) : 1;
    // No more participants than morsels: excess helpers would only pay
    // enqueue/wakeup overhead to find the claim counter exhausted.
    parallelism = std::min(parallelism, num_morsels);

    if (parallelism <= 1) {
      BlockScratch scratch(readers_.size());
      FoldBlocks(0, num_blocks, total, row_fn, merge, stats, &scratch,
                 options);
      return;
    }

    std::atomic<size_t> next_morsel{0};
    std::mutex merge_mutex;
    options.pool->ParallelRun(parallelism, [&](size_t /*slot*/) {
      Acc local{};
      ScanStats local_stats;
      BlockScratch scratch(readers_.size());
      bool worked = false;
      for (;;) {
        const size_t morsel =
            next_morsel.fetch_add(1, std::memory_order_relaxed);
        const size_t block_begin = morsel * morsel_blocks;
        if (block_begin >= num_blocks) break;
        FoldBlocks(block_begin,
                   std::min(block_begin + morsel_blocks, num_blocks), &local,
                   row_fn, merge, &local_stats, &scratch, options);
        worked = true;
      }
      if (!worked) return;
      std::lock_guard<std::mutex> guard(merge_mutex);
      merge(*total, std::move(local));
      if (stats != nullptr) stats->Merge(local_stats);
    });
  }

  /// Blockwise sibling of Fold: `block_fn(Acc&, const ScanBlock&)` runs
  /// once per 1024-row block over plain value arrays. Version handling is
  /// inverted relative to Fold: instead of specializing the *row accessor*
  /// per block kind, versioned blocks are resolved into per-participant
  /// scratch before the callback runs, so the callback can use tight
  /// (vectorizable) column-at-a-time loops unconditionally. This is the
  /// substrate of the query layer's compiled kernels (src/query/). The
  /// same seqlock protocol applies: a block that raced a commit is redone
  /// from fully resolved data and the callback's partial Acc is discarded,
  /// so block_fn must be side-effect free apart from its Acc.
  template <typename Acc, typename BlockFn, typename MergeFn>
  void FoldBlockwise(Acc* total, BlockFn&& block_fn, MergeFn&& merge,
                     ScanStats* stats = nullptr,
                     const ScanOptions& options = ScanOptions()) const {
    const size_t num_blocks =
        (num_rows_ + mvcc::kRowsPerBlock - 1) / mvcc::kRowsPerBlock;
    const size_t morsel_blocks = std::max<size_t>(1, options.morsel_blocks);
    const size_t num_morsels =
        (num_blocks + morsel_blocks - 1) / morsel_blocks;
    size_t parallelism =
        options.pool != nullptr ? std::max<size_t>(1, options.max_threads) : 1;
    parallelism = std::min(parallelism, num_morsels);

    if (parallelism <= 1) {
      BlockScratch scratch(readers_.size());
      FoldBlocksStaged(0, num_blocks, total, block_fn, merge, stats,
                       &scratch, options);
      return;
    }

    std::atomic<size_t> next_morsel{0};
    std::mutex merge_mutex;
    options.pool->ParallelRun(parallelism, [&](size_t /*slot*/) {
      Acc local{};
      ScanStats local_stats;
      BlockScratch scratch(readers_.size());
      bool worked = false;
      for (;;) {
        const size_t morsel =
            next_morsel.fetch_add(1, std::memory_order_relaxed);
        const size_t block_begin = morsel * morsel_blocks;
        if (block_begin >= num_blocks) break;
        FoldBlocksStaged(block_begin,
                         std::min(block_begin + morsel_blocks, num_blocks),
                         &local, block_fn, merge, &local_stats, &scratch,
                         options);
        worked = true;
      }
      if (!worked) return;
      std::lock_guard<std::mutex> guard(merge_mutex);
      merge(*total, std::move(local));
      if (stats != nullptr) stats->Merge(local_stats);
    });
  }

 private:
  enum class BlockMode { kTight, kHinted, kSafe };

  /// Per-participant classification scratch: seqlock counters and hint
  /// ranges for the block being scanned (absolute row ids). Stack-local to
  /// each Fold participant, so concurrent scans never share state. The
  /// stage buffer (FoldBlockwise only) holds resolved values of versioned
  /// blocks, one kRowsPerBlock span per reader, and is allocated lazily —
  /// scans that only meet version-free blocks never touch it.
  struct BlockScratch {
    explicit BlockScratch(size_t num_readers)
        : seqs(num_readers),
          hint_first(num_readers),
          hint_last(num_readers) {}
    std::vector<uint64_t> seqs;
    std::vector<size_t> hint_first;
    std::vector<size_t> hint_last;
    std::vector<uint64_t> stage;
    std::vector<const uint64_t*> block_cols;
  };

  struct Classification {
    BlockMode mode;
    /// Union of the relevant readers' versioned ranges (absolute rows);
    /// only meaningful for kHinted.
    size_t range_first;
    size_t range_last;
  };

  /// Reads every reader's block metadata; picks kTight when no reader has
  /// relevant versions in the block, kHinted when hints apply, kSafe when
  /// a write is in progress right now. Records seqlock counters and hint
  /// ranges in `scratch`.
  Classification ClassifyBlock(size_t block, BlockScratch* scratch) const;

  /// True iff no reader's block seqlock moved since ClassifyBlock.
  bool BlockStable(size_t block, const std::vector<uint64_t>& seqs) const;

  template <typename Acc, typename RowFn>
  inline void FoldTight(size_t begin, size_t end, Acc* acc,
                        RowFn& row_fn) const {
    TightRow row;
    row.cols_ = raw_bases_.data();
    for (size_t r = begin; r < end; ++r) {
      row.row_ = r;
      row_fn(*acc, row);
    }
  }

  template <typename Acc, typename RowFn>
  inline void FoldHinted(size_t begin, size_t end, Acc* acc, RowFn& row_fn,
                         const BlockScratch& scratch) const {
    HintedRow row;
    row.cols_ = raw_bases_.data();
    row.hint_first_ = scratch.hint_first.data();
    row.hint_last_ = scratch.hint_last.data();
    row.readers_ = readers_.data();
    for (size_t r = begin; r < end; ++r) {
      row.row_ = r;
      row_fn(*acc, row);
    }
  }

  template <typename Acc, typename RowFn>
  inline void FoldSafe(size_t begin, size_t end, Acc* acc,
                       RowFn& row_fn) const {
    SafeRow row;
    row.readers_ = readers_.data();
    for (size_t r = begin; r < end; ++r) {
      row.row_ = r;
      row_fn(*acc, row);
    }
  }

  /// Folds a contiguous block range into `*acc`: classify each block, run
  /// the specialized kernel, validate via seqlock, fall back to the safe
  /// kernel on instability.
  template <typename Acc, typename RowFn, typename MergeFn>
  void FoldBlocks(size_t block_begin, size_t block_end, Acc* acc,
                  RowFn& row_fn, MergeFn& merge, ScanStats* stats,
                  BlockScratch* scratch, const ScanOptions& options) const {
    for (size_t block = block_begin; block < block_end; ++block) {
      const size_t begin = block * mvcc::kRowsPerBlock;
      const size_t end = std::min(begin + mvcc::kRowsPerBlock, num_rows_);
      const Classification cls = ClassifyBlock(block, scratch);
      if (options.on_block_classified) options.on_block_classified(block);

      if (cls.mode != BlockMode::kSafe) {
        Acc local{};
        if (cls.mode == BlockMode::kTight) {
          FoldTight(begin, end, &local, row_fn);
        } else {
          // Raw prefix / resolve range / raw suffix: only the union of the
          // readers' versioned ranges pays for per-row hint checks.
          const size_t resolve_begin = std::max(begin, cls.range_first);
          const size_t resolve_end = std::min(end, cls.range_last + 1);
          FoldTight(begin, resolve_begin, &local, row_fn);
          FoldHinted(resolve_begin, resolve_end, &local, row_fn, *scratch);
          FoldTight(resolve_end, end, &local, row_fn);
        }
        if (BlockStable(block, scratch->seqs)) {
          merge(*acc, std::move(local));
          if (stats != nullptr) {
            if (cls.mode == BlockMode::kTight) {
              stats->tight_rows += end - begin;
            } else {
              stats->hinted_rows += end - begin;
            }
          }
          continue;
        }
        if (stats != nullptr) ++stats->seqlock_retries;
        // Discard `local`, redo the block through the safe kernel.
      }

      Acc local{};
      FoldSafe(begin, end, &local, row_fn);
      merge(*acc, std::move(local));
      if (stats != nullptr) stats->resolved_rows += end - begin;
    }
  }

  /// Resolves reader `i`'s rows [begin, end) into stage memory for a
  /// hinted block: raw copies outside the reader's versioned range, chain
  /// resolution inside. Returns the span the ScanBlock should expose.
  const uint64_t* StageHinted(size_t i, size_t begin, size_t end,
                              const BlockScratch& scratch,
                              uint64_t* stage) const;

  /// Resolves reader `i`'s rows [begin, end) into stage memory through the
  /// always-correct per-row path (safe blocks).
  const uint64_t* StageSafe(size_t i, size_t begin, size_t end,
                            uint64_t* stage) const;

  /// Blockwise analogue of FoldBlocks: classify, expose raw spans for
  /// version-free blocks and staged (resolved) spans otherwise, validate
  /// via seqlock, redo from safe staging on instability.
  template <typename Acc, typename BlockFn, typename MergeFn>
  void FoldBlocksStaged(size_t block_begin, size_t block_end, Acc* acc,
                        BlockFn& block_fn, MergeFn& merge, ScanStats* stats,
                        BlockScratch* scratch,
                        const ScanOptions& options) const {
    const size_t num_readers = readers_.size();
    scratch->block_cols.resize(num_readers);
    for (size_t block = block_begin; block < block_end; ++block) {
      const size_t begin = block * mvcc::kRowsPerBlock;
      const size_t end = std::min(begin + mvcc::kRowsPerBlock, num_rows_);
      const Classification cls = ClassifyBlock(block, scratch);
      if (options.on_block_classified) options.on_block_classified(block);

      if (cls.mode != BlockMode::kSafe) {
        if (cls.mode == BlockMode::kTight) {
#ifdef ANKER_TSAN
          // Downstream block kernels read the exposed spans with plain
          // loads; under TSan, stage them through relaxed atomic copies
          // instead of pointing into the live slot arrays.
          EnsureStage(scratch);
          for (size_t i = 0; i < num_readers; ++i) {
            uint64_t* stage =
                scratch->stage.data() + i * mvcc::kRowsPerBlock;
            for (size_t r = begin; r < end; ++r) {
              stage[r - begin] = RawSlotLoad(raw_bases_[i] + r);
            }
            scratch->block_cols[i] = stage;
          }
#else
          for (size_t i = 0; i < num_readers; ++i) {
            scratch->block_cols[i] = raw_bases_[i] + begin;
          }
#endif
        } else {
          EnsureStage(scratch);
          for (size_t i = 0; i < num_readers; ++i) {
            scratch->block_cols[i] = StageHinted(
                i, begin, end, *scratch,
                scratch->stage.data() + i * mvcc::kRowsPerBlock);
          }
        }
        Acc local{};
        block_fn(local,
                 ScanBlock{scratch->block_cols.data(), begin, end - begin});
        if (BlockStable(block, scratch->seqs)) {
          merge(*acc, std::move(local));
          if (stats != nullptr) {
            if (cls.mode == BlockMode::kTight) {
              stats->tight_rows += end - begin;
            } else {
              stats->hinted_rows += end - begin;
            }
          }
          continue;
        }
        if (stats != nullptr) ++stats->seqlock_retries;
        // Discard `local`, redo the block from fully resolved staging.
      }

      EnsureStage(scratch);
      for (size_t i = 0; i < num_readers; ++i) {
        scratch->block_cols[i] = StageSafe(
            i, begin, end, scratch->stage.data() + i * mvcc::kRowsPerBlock);
      }
      Acc local{};
      block_fn(local,
               ScanBlock{scratch->block_cols.data(), begin, end - begin});
      merge(*acc, std::move(local));
      if (stats != nullptr) stats->resolved_rows += end - begin;
    }
  }

  void EnsureStage(BlockScratch* scratch) const {
    if (scratch->stage.empty()) {
      scratch->stage.resize(readers_.size() * mvcc::kRowsPerBlock);
    }
  }

  std::vector<const ColumnReader*> readers_;
  size_t num_rows_ = 0;
  /// Cached raw slot arrays, one per reader (tight/hinted kernels).
  std::vector<const uint64_t*> raw_bases_;
  /// Per-reader: may need chain segments older than reader.dir().
  std::vector<bool> needs_prev_;
};

/// Convenience: sum of a single column (typed as double when `as_double`),
/// used by the full-table-scan transactions and Figure 9.
double ScanColumnSum(const ColumnReader& reader, bool as_double,
                     ScanStats* stats = nullptr,
                     const ScanOptions& options = ScanOptions());

}  // namespace anker::engine

#endif  // ANKER_ENGINE_EXECUTOR_H_
