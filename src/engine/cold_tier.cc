// Cold-tier orchestration of the engine: extent-store lifecycle, the
// coldest-first spill policy (DatabaseConfig::cold_budget_bytes) and the
// aggregate residency stats. The per-segment mechanics live in
// src/storage/segment_storage.cc; this file merges candidates across
// columns and drives them under the engine's cold mutex.
#include <algorithm>

#include "engine/database.h"
#include "storage/extent.h"

namespace anker::engine {

namespace {

/// One spillable segment, tagged with its column.
struct Candidate {
  storage::SegmentStorage* segments = nullptr;
  storage::SegmentStorage::SpillCandidate c;
};

}  // namespace

Status Database::EnsureExtentStore() {
  if (extent_store_ != nullptr) return Status::OK();
  if (config_.data_dir.empty()) {
    return Status::InvalidArgument(
        "the extent store needs config.data_dir");
  }
  auto store = storage::ExtentStore::Open(config_.data_dir + "/extents");
  if (!store.ok()) return store.status();
  extent_store_ = store.TakeValue();
  return Status::OK();
}

Status Database::SpillToBudget(uint64_t budget_bytes) {
  if (extent_store_ == nullptr) return Status::OK();
  std::lock_guard<std::mutex> guard(cold_mutex_);
  return SpillToBudgetLocked(budget_bytes);
}

Status Database::SpillToBudgetLocked(uint64_t budget_bytes) {
  // One coarse LRU tick per pass: every segment touched since the last
  // pass reads as "this tick", everything older keeps its stamp.
  extent_store_->AdvanceClock();

  // Passes repeat while progress is made: spilling the coldest candidates
  // first, stopping as soon as residency fits the budget. A pass with no
  // progress means everything left is pinned, versioned, or racing a
  // writer — give up quietly (best effort by contract).
  for (;;) {
    std::vector<Candidate> candidates;
    uint64_t resident = 0;
    for (storage::Column* column : catalog_.AllColumns()) {
      storage::SegmentStorage* segments = column->segments();
      if (segments == nullptr) continue;
      resident += segments->resident_bytes();
      std::vector<storage::SegmentStorage::SpillCandidate> local;
      segments->CollectSpillCandidates(&local);
      for (const auto& c : local) candidates.push_back({segments, c});
    }
    if (resident <= budget_bytes) return Status::OK();
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.c.last_access < b.c.last_access;
              });
    bool progress = false;
    for (const Candidate& cand : candidates) {
      if (resident <= budget_bytes) break;
      auto spilled = cand.segments->TrySpill(cand.c.segment);
      if (!spilled.ok()) return spilled.status();
      if (spilled.value()) {
        progress = true;
        resident -= std::min<uint64_t>(resident, cand.c.bytes);
      }
    }
    if (resident <= budget_bytes || !progress) return Status::OK();
  }
}

void Database::EnforceColdBudget() {
  if (extent_store_ == nullptr) return;
  // Cheap pre-check outside the mutex: the common case (under budget)
  // must not serialize OLAP finishes against each other.
  uint64_t resident = 0;
  for (storage::Column* column : catalog_.AllColumns()) {
    if (column->segments() != nullptr) {
      resident += column->segments()->resident_bytes();
    }
  }
  if (resident <= config_.cold_budget_bytes) return;
  std::unique_lock<std::mutex> guard(cold_mutex_, std::try_to_lock);
  if (!guard.owns_lock()) return;  // Someone is already spilling/pruning.
  const Status s = SpillToBudgetLocked(config_.cold_budget_bytes);
  (void)s;  // Best effort: enforcement retries on the next release.
}

ColdTierStats Database::cold_stats() const {
  ColdTierStats stats;
  if (extent_store_ == nullptr) return stats;
  for (storage::Column* column : catalog_.AllColumns()) {
    const storage::SegmentStorage* segments = column->segments();
    if (segments == nullptr) continue;
    stats.resident_bytes += segments->resident_bytes();
    stats.cold_bytes += segments->cold_bytes();
  }
  stats.counters = extent_store_->counters();
  return stats;
}

}  // namespace anker::engine
