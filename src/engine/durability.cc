// Durability orchestration of the engine: Database::Open (recovery),
// Database::Checkpoint (snapshot-consistent image + log truncation) and
// the commit-side WAL plumbing. The byte-level machinery lives in
// src/wal/; this file connects it to the catalog, the snapshot manager
// and the transaction manager. Protocols: docs/DURABILITY.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_set>

#include "engine/database.h"
#include "wal/checkpoint.h"
#include "wal/io_util.h"
#include "wal/log_reader.h"

namespace anker::engine {

namespace {

/// FNV-1a, the digest tests and the crash harness compare states with.
struct Fnv {
  uint64_t h = 1469598103934665603ULL;
  void MixBytes(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h = (h ^ p[i]) * 1099511628211ULL;
    }
  }
  void MixU64(uint64_t v) { MixBytes(&v, sizeof(v)); }
  void MixString(const std::string& s) {
    MixU64(s.size());
    MixBytes(s.data(), s.size());
  }
};

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(DatabaseConfig config) {
  ANKER_RETURN_IF_ERROR(config.Validate());
  if (config.data_dir.empty()) {
    return Status::InvalidArgument("Database::Open needs config.data_dir");
  }
  std::unique_ptr<Database> db(new Database(std::move(config), OpenTag{}));
  ANKER_RETURN_IF_ERROR(db->Recover());
  return db;
}

Status Database::Recover() {
  // Phase 1: the checkpoint base image (if one was ever published).
  mvcc::Timestamp ckpt_ts = 0;
  uint64_t ckpt_wal_lsn = 0;
  std::string ckpt_path;
  auto manifest = wal::CheckpointReader::ReadManifest(config_.data_dir,
                                                      &ckpt_path);
  if (manifest.ok()) {
    const wal::CheckpointManifest& m = manifest.value();
    ckpt_ts = m.checkpoint_ts;
    ckpt_wal_lsn = m.wal_lsn;
    // Cold-tier bootstrap: when the manifest references extents the store
    // must exist before any column loads — even with cold_budget_bytes
    // now 0, an extent-backed checkpoint still resolves through it (the
    // columns come up fully resident and the next checkpoint is full).
    // Pruning to the manifest's reference set first removes extents a
    // crashed publish or an unflipped checkpoint left behind.
    if (!m.extents.empty() || m.next_extent_id > 1) {
      ANKER_RETURN_IF_ERROR(EnsureExtentStore());
    }
    if (extent_store_ != nullptr) {
      extent_store_->NoteNextId(m.next_extent_id);
      const std::unordered_set<uint64_t> keep(m.extents.begin(),
                                              m.extents.end());
      ANKER_RETURN_IF_ERROR(extent_store_->Prune(keep));
    }
    std::vector<storage::SegmentExtentRef> refs;
    for (uint32_t table_id = 0; table_id < m.tables.size(); ++table_id) {
      const wal::CheckpointTableMeta& meta = m.tables[table_id];
      auto table_r =
          CreateTableInternal(meta.name, meta.schema, meta.num_rows);
      if (!table_r.ok()) return table_r.status();
      storage::Table* table = table_r.value();
      for (const auto& [column, entries] : meta.dictionaries) {
        table->GetDictionary(column)->Preload(entries);
      }
      for (uint32_t j = 0; j < table->num_columns(); ++j) {
        storage::Column* column = table->GetColumnAt(j);
        ANKER_RETURN_IF_ERROR(wal::CheckpointReader::LoadColumn(
            ckpt_path, table_id, j, column, extent_store_.get(), &refs));
        if (column->segments() != nullptr) {
          // The loaded rows are exactly the extent bytes: re-seed the
          // published-extent bookkeeping so the next checkpoint reuses
          // them (WAL replay below re-dirties whatever it touches).
          for (const storage::SegmentExtentRef& ref : refs) {
            column->segments()->NoteRecoveredExtent(ref);
          }
        }
      }
      if (meta.has_primary_index) {
        table->CreatePrimaryIndex(meta.index_entries);
        ANKER_RETURN_IF_ERROR(wal::CheckpointReader::LoadIndex(
            ckpt_path, table_id, meta.index_entries,
            table->primary_index()));
      }
    }
    txn_manager_.oracle().AdvanceTo(ckpt_ts);
    txn_manager_.RestoreDurableState(m.commit_count, m.next_txn_id);
    // 2PC state: the outcome ledger first (so a WAL-tail zombie prepare
    // of an already-decided transaction is fenced), then the pending
    // intents — re-staged through the replay path, which also advances
    // the oracle past every restored prepare timestamp.
    for (const wal::CheckpointTxnOutcome& o : m.outcomes) {
      if (o.outcome > static_cast<uint8_t>(mvcc::TxnOutcome::kAborted)) {
        return Status::IoError("checkpoint manifest: bad txn outcome");
      }
      txn_manager_.intents().RecordOutcome(
          o.gtid, static_cast<mvcc::TxnOutcome>(o.outcome), o.commit_ts);
    }
    for (const wal::CheckpointPreparedTxn& p : m.prepared) {
      mvcc::PreparedTxn txn;
      txn.gtid = p.gtid;
      txn.primary_shard = p.primary_shard;
      txn.start_ts = p.start_ts;
      txn.prepare_ts = p.prepare_ts;
      txn.writes.reserve(p.writes.size());
      for (const wal::RedoWrite& w : p.writes) {
        if (w.table_id >= tables_by_id_.size()) {
          return Status::IoError("checkpoint intent references unknown table");
        }
        storage::Table* table = tables_by_id_[w.table_id];
        if (w.column_id >= table->num_columns() ||
            w.row >= table->num_rows()) {
          return Status::IoError("checkpoint intent out of bounds for table " +
                                 table->name());
        }
        txn.writes.push_back(mvcc::IntentWrite{table->GetColumnAt(w.column_id),
                                               w.row, w.value});
      }
      txn_manager_.ReplayPrepare(std::move(txn));
    }
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  }

  // Phase 2: replay the WAL tail through the normal apply path. Records
  // at or below the checkpoint timestamp are already part of the base
  // image and skipped; replay stops cleanly at a torn tail (repaired so
  // later scans cannot mistake it for mid-log corruption).
  auto scan = wal::LogReader::Scan(
      wal_dir(),
      [&](uint64_t /*lsn*/, const wal::WalRecord& record) -> Status {
        return ApplyWalRecord(record, ckpt_ts);
      },
      /*repair=*/config_.durability != wal::DurabilityMode::kOff);
  if (!scan.ok()) return scan.status();

  // Phase 3: resume logging after everything that survived; the writer
  // adopts the old segments so later checkpoints can truncate them. The
  // first LSN must clear both the surviving log (scan) and the
  // checkpoint's watermark (a fully truncated log leaves no frames to
  // scan, but the manifest remembers how far LSNs ever got).
  if (config_.durability != wal::DurabilityMode::kOff) {
    const uint64_t first_lsn =
        std::max(scan.value().max_lsn, ckpt_wal_lsn) + 1;
    return StartWal(scan.value().next_segment_seq, scan.value().segments,
                    first_lsn);
  }
  return Status::OK();
}

Status Database::ResolveRedoWrites(
    const std::vector<wal::RedoWrite>& redo,
    std::vector<txn::Transaction::LocalWrite>* writes) {
  writes->clear();
  writes->reserve(redo.size());
  for (const wal::RedoWrite& w : redo) {
    if (w.table_id >= tables_by_id_.size()) {
      return Status::IoError("WAL redo references unknown table");
    }
    storage::Table* table = tables_by_id_[w.table_id];
    if (w.column_id >= table->num_columns() || w.row >= table->num_rows()) {
      return Status::IoError("WAL redo out of bounds for table " +
                             table->name());
    }
    writes->push_back(txn::Transaction::LocalWrite{
        table->GetColumnAt(w.column_id), w.row, w.value});
  }
  return Status::OK();
}

Status Database::ApplyWalRecord(const wal::WalRecord& record,
                                mvcc::Timestamp skip_ts) {
  std::vector<txn::Transaction::LocalWrite> writes;
  switch (record.type) {
    case wal::RecordType::kCreateTable: {
      if (record.table_id < tables_by_id_.size()) {
        return Status::OK();  // Already present via the checkpoint.
      }
      if (record.table_id != tables_by_id_.size()) {
        return Status::IoError("WAL table-id gap: saw " +
                               std::to_string(record.table_id));
      }
      return CreateTableInternal(record.table_name, record.schema,
                                 record.num_rows)
          .status();
    }
    case wal::RecordType::kCommit: {
      if (record.commit_ts <= skip_ts) return Status::OK();
      ANKER_RETURN_IF_ERROR(ResolveRedoWrites(record.writes, &writes));
      txn_manager_.ReplayCommitted(writes, record.commit_ts);
      return Status::OK();
    }
    case wal::RecordType::kPrepare: {
      // At or below the checkpoint the manifest is authoritative: the
      // transaction is either in its pending section (restored already)
      // or decided in its ledger — re-staging from a stale record could
      // re-lock rows whose outcome fell out of the evicting ledger.
      if (record.prepare_ts <= skip_ts) return Status::OK();
      ANKER_RETURN_IF_ERROR(ResolveRedoWrites(record.writes, &writes));
      mvcc::PreparedTxn txn;
      txn.gtid = record.gtid;
      txn.primary_shard = record.primary_shard;
      txn.start_ts = record.start_ts;
      txn.prepare_ts = record.prepare_ts;
      txn.writes.reserve(writes.size());
      for (const txn::Transaction::LocalWrite& w : writes) {
        txn.writes.push_back(mvcc::IntentWrite{w.column, w.row, w.new_raw});
      }
      txn_manager_.ReplayPrepare(std::move(txn));
      return Status::OK();
    }
    case wal::RecordType::kCommitPrepared: {
      // The record is self-contained (it carries the write set), so this
      // never depends on the matching kPrepare having survived. Below the
      // checkpoint only the outcome matters — the image already holds the
      // writes; the call still unstages a manifest-restored intent twin.
      const bool apply = record.apply_ts > skip_ts;
      if (apply) {
        ANKER_RETURN_IF_ERROR(ResolveRedoWrites(record.writes, &writes));
      }
      txn_manager_.ReplayCommitPrepared(record.gtid, record.commit_ts,
                                        record.apply_ts, writes, apply);
      return Status::OK();
    }
    case wal::RecordType::kAbortPrepared: {
      txn_manager_.ReplayAbortPrepared(record.gtid, record.apply_ts);
      return Status::OK();
    }
  }
  return Status::IoError("WAL record with unknown type");
}

Status Database::StartWal(uint64_t first_segment_seq,
                          const std::vector<wal::PriorSegment>& existing,
                          uint64_t first_lsn) {
  wal::LogWriterOptions options;
  options.mode = config_.durability;
  options.segment_bytes = config_.wal_segment_bytes;
  options.flush_interval_millis = config_.wal_flush_interval_millis;
  log_ = std::make_unique<wal::LogWriter>(wal_dir(), options);
  ANKER_RETURN_IF_ERROR(log_->Open(first_segment_seq, existing, first_lsn));
  // Replica apply resumes exactly where the local log ends.
  applied_lsn_.store(first_lsn - 1, std::memory_order_release);

  txn::TransactionManager::DurabilityWait wait;
  if (config_.durability == wal::DurabilityMode::kGroupCommit) {
    wait = [this](uint64_t lsn) {
      ANKER_RETURN_IF_ERROR(log_->WaitDurable(lsn));
      // Synchronous-ack replication composes after the local fsync: the
      // record is durable here either way; a waiter error only withholds
      // the acknowledgement ("commit uncertain").
      std::shared_ptr<const ReplicationWaiter> waiter;
      {
        std::lock_guard<std::mutex> guard(repl_waiter_mutex_);
        waiter = replication_waiter_;
      }
      if (waiter != nullptr) return (*waiter)(lsn);
      return Status::OK();
    };
  }
  // Per-write payload: table_id + column_id (4+4) + row + value (8+8);
  // the 13-byte record head and a safety margin are folded into the
  // constant.
  const size_t max_writes = (wal::kMaxRecordBytes - 64) / 24;
  txn_manager_.SetDurabilityHooks(
      [this](mvcc::Timestamp commit_ts,
             const std::vector<txn::Transaction::LocalWrite>& writes) {
        return AppendCommitRecord(commit_ts, writes);
      },
      std::move(wait), max_writes);
  txn_manager_.SetDistributedHooks(
      [this](const mvcc::PreparedTxn& txn) {
        return AppendPrepareRecord(txn);
      },
      [this](uint64_t gtid, mvcc::Timestamp commit_ts,
             mvcc::Timestamp apply_ts,
             const std::vector<mvcc::IntentWrite>& writes) {
        return AppendCommitPreparedRecord(gtid, commit_ts, apply_ts, writes);
      },
      [this](uint64_t gtid, mvcc::Timestamp abort_ts) {
        static thread_local std::string buf;
        buf.clear();
        wal::EncodeAbortPrepared(gtid, abort_ts, &buf);
        return log_->Append(buf, abort_ts);
      });
  return Status::OK();
}

Status Database::ApplyReplicated(uint64_t lsn, std::string_view payload) {
  if (log_ == nullptr) {
    return Status::InvalidArgument(
        "ApplyReplicated needs durability enabled (the replica mirrors "
        "the primary's log)");
  }
  if (lsn <= applied_lsn()) return Status::OK();  // Re-delivered; ignore.
  if (lsn != applied_lsn() + 1) {
    return Status::IoError("replication stream gap: expected LSN " +
                           std::to_string(applied_lsn() + 1) + ", got " +
                           std::to_string(lsn));
  }
  wal::WalRecord record;
  ANKER_RETURN_IF_ERROR(wal::DecodeRecord(payload, &record));

  // Apply to memory *before* mirroring into the local log: the local
  // checkpoint samples appended_lsn() as its manifest wal_lsn, so every
  // record the log admits to must already be visible to the snapshot pin
  // that follows the sample. (A crash between the two loses the record
  // from both memory and log; the stream re-ships it from applied+1.)
  mvcc::Timestamp max_ts = 0;
  if (record.type == wal::RecordType::kCreateTable) {
    // Same mutex discipline as CreateTable: the checkpoint captures its
    // table set and draws its pin under this lock, so the record's fresh
    // stamp outlives any truncation by a checkpoint that missed the
    // table.
    std::lock_guard<std::mutex> guard(create_table_mutex_);
    ANKER_RETURN_IF_ERROR(ApplyWalRecord(record, /*skip_ts=*/0));
    max_ts = txn_manager_.oracle().Next();
    log_->AppendReplicated(payload, max_ts, lsn);
  } else {
    ANKER_RETURN_IF_ERROR(ApplyWalRecord(record, /*skip_ts=*/0));
    // The truncation watermark must cover the record's own stamp: the
    // local prepare/apply timestamp for 2PC records, commit_ts otherwise.
    switch (record.type) {
      case wal::RecordType::kPrepare:
        max_ts = record.prepare_ts;
        break;
      case wal::RecordType::kCommitPrepared:
      case wal::RecordType::kAbortPrepared:
        max_ts = record.apply_ts;
        break;
      default:
        max_ts = record.commit_ts;
        break;
    }
    log_->AppendReplicated(payload, max_ts, lsn);
  }

  {
    std::lock_guard<std::mutex> guard(applied_mutex_);
    applied_lsn_.store(lsn, std::memory_order_release);
  }
  applied_cv_.notify_all();
  return Status::OK();
}

Status Database::WaitAppliedLsn(uint64_t lsn, int timeout_millis) {
  if (applied_lsn() >= lsn) return Status::OK();
  std::unique_lock<std::mutex> lock(applied_mutex_);
  const bool reached = applied_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_millis),
      [&] { return applied_lsn() >= lsn; });
  if (reached) return Status::OK();
  return Status::ResourceBusy(
      "replica has not applied LSN " + std::to_string(lsn) + " yet (at " +
      std::to_string(applied_lsn()) + "); retry or read stale");
}

void Database::SetReplicationWaiter(ReplicationWaiter waiter) {
  std::lock_guard<std::mutex> guard(repl_waiter_mutex_);
  if (waiter) {
    replication_waiter_ =
        std::make_shared<const ReplicationWaiter>(std::move(waiter));
  } else {
    replication_waiter_.reset();
  }
}

uint64_t Database::AppendCommitRecord(
    mvcc::Timestamp commit_ts,
    const std::vector<txn::Transaction::LocalWrite>& writes) {
  // Runs inside the commit critical section, which bounds the engine's
  // aggregate commit rate — every nanosecond here taxes all commits.
  // thread_local buffers keep the encode allocation-free once warm, and
  // the column's stable id makes the addressing lookup-free.
  static thread_local std::string buf;
  static thread_local std::vector<wal::RedoWrite> redo;
  buf.clear();
  redo.clear();
  for (const txn::Transaction::LocalWrite& w : writes) {
    redo.push_back(wal::RedoWrite{w.column->stable_table_id(),
                                  w.column->stable_column_id(), w.row,
                                  w.new_raw});
  }
  wal::EncodeCommit(commit_ts, redo, &buf);
  return log_->Append(buf, commit_ts);
}

uint64_t Database::AppendPrepareRecord(const mvcc::PreparedTxn& txn) {
  static thread_local std::string buf;
  static thread_local std::vector<wal::RedoWrite> redo;
  buf.clear();
  redo.clear();
  for (const mvcc::IntentWrite& w : txn.writes) {
    redo.push_back(wal::RedoWrite{w.column->stable_table_id(),
                                  w.column->stable_column_id(), w.row,
                                  w.new_raw});
  }
  wal::EncodePrepare(txn.gtid, txn.primary_shard, txn.start_ts,
                     txn.prepare_ts, redo, &buf);
  return log_->Append(buf, txn.prepare_ts);
}

uint64_t Database::AppendCommitPreparedRecord(
    uint64_t gtid, mvcc::Timestamp commit_ts, mvcc::Timestamp apply_ts,
    const std::vector<mvcc::IntentWrite>& writes) {
  static thread_local std::string buf;
  static thread_local std::vector<wal::RedoWrite> redo;
  buf.clear();
  redo.clear();
  for (const mvcc::IntentWrite& w : writes) {
    redo.push_back(wal::RedoWrite{w.column->stable_table_id(),
                                  w.column->stable_column_id(), w.row,
                                  w.new_raw});
  }
  wal::EncodeCommitPrepared(gtid, commit_ts, apply_ts, redo, &buf);
  // Truncation keys off the *local* apply stamp, exactly like a commit.
  return log_->Append(buf, apply_ts);
}

void Database::ScheduleCheckpoint() {
  if (checkpoint_pending_.exchange(true, std::memory_order_acq_rel)) return;
  worker_pool().Submit([this] {
    const auto result = Checkpoint();
    if (!result.ok()) {
      std::fprintf(stderr, "anker: background checkpoint failed: %s\n",
                   result.status().ToString().c_str());
    }
    checkpoint_pending_.store(false, std::memory_order_release);
  });
}

Result<CheckpointResult> Database::Checkpoint() {
  if (config_.data_dir.empty()) {
    return Status::InvalidArgument(
        "Checkpoint() needs config.data_dir to write into");
  }
  std::lock_guard<std::mutex> guard(checkpoint_mutex_);

  // Capture the table set and pin the read point atomically with respect
  // to CreateTable (same mutex): every table either completes creation
  // before the pin — and is then part of this checkpoint — or draws its
  // schema-record timestamp after ckpt_ts, so the log truncation below
  // can never delete the only durable trace of it.
  std::vector<storage::Table*> tables;
  std::unique_ptr<OlapContext> ctx;
  uint64_t manifest_wal_lsn = 0;
  {
    std::lock_guard<std::mutex> create_guard(create_table_mutex_);
    tables = tables_by_id_;
    // The replication watermark, sampled *before* the epoch trigger:
    // every commit record with lsn <= the sample appended (and therefore
    // stored its visible_ts) before the trigger, so the pin below covers
    // it; every create-table record at or below the sample belongs to a
    // completed create under this same mutex, so its table is in
    // `tables`. Anything the image might miss has lsn > the sample.
    if (log_ != nullptr) manifest_wal_lsn = log_->appended_lsn();
    // A fresh epoch makes the checkpoint as current as possible; OLAP
    // queries arriving meanwhile simply share it.
    if (snapshot_manager_ != nullptr) snapshot_manager_->TriggerEpoch();
    std::vector<storage::Column*> columns;
    for (storage::Table* table : tables) {
      for (size_t j = 0; j < table->num_columns(); ++j) {
        columns.push_back(table->GetColumnAt(j));
      }
    }
    auto ctx_r = BeginOlap(columns);
    if (!ctx_r.ok()) return ctx_r.status();
    ctx = ctx_r.TakeValue();
  }
  const mvcc::Timestamp ckpt_ts = ctx->read_ts();

  // No shortcut for a repeated ckpt_ts: bulk loads and creates change
  // state without advancing commit timestamps (homogeneous modes pin
  // read_ts from the commit watermark), so "same timestamp" does not
  // mean "same state" — the image is always rewritten.
  wal::CheckpointWriter writer(config_.data_dir);
  Status s = writer.Begin(ckpt_ts);

  wal::CheckpointManifest manifest;
  manifest.checkpoint_ts = ckpt_ts;
  // Sampled as close to the pin as possible; commits racing the sample
  // can skew these by a handful, which only nudges stats and the
  // epoch/checkpoint cadence after a recovery, never correctness —
  // replay derives actual state from ckpt_ts, not from these counters.
  manifest.commit_count = txn_manager_.committed_count();
  manifest.next_txn_id = txn_manager_.next_txn_id();
  manifest.wal_lsn = manifest_wal_lsn;

  // 2PC state: pending intents are invisible to the column image by
  // construction, so the manifest carries them (plus the outcome ledger
  // that fences zombies). Snapshotted after the pin — a transaction
  // decided since then replays from its self-contained kCommitPrepared /
  // kAbortPrepared record, whose local stamp is above ckpt_ts and thus
  // survives the truncation below.
  for (const mvcc::PreparedTxn& txn : txn_manager_.intents().SnapshotPending()) {
    wal::CheckpointPreparedTxn p;
    p.gtid = txn.gtid;
    p.primary_shard = txn.primary_shard;
    p.start_ts = txn.start_ts;
    p.prepare_ts = txn.prepare_ts;
    p.writes.reserve(txn.writes.size());
    for (const mvcc::IntentWrite& w : txn.writes) {
      p.writes.push_back(wal::RedoWrite{w.column->stable_table_id(),
                                        w.column->stable_column_id(), w.row,
                                        w.new_raw});
    }
    manifest.prepared.push_back(std::move(p));
  }
  for (const mvcc::IntentTable::OutcomeEntry& e :
       txn_manager_.intents().SnapshotOutcomes()) {
    manifest.outcomes.push_back(wal::CheckpointTxnOutcome{
        e.gtid, static_cast<uint8_t>(e.outcome), e.commit_ts});
  }

  uint64_t data_bytes_written = 0;
  uint64_t extent_bytes_reused = 0;
  std::vector<uint64_t> extent_ids;
  for (uint32_t table_id = 0; s.ok() && table_id < tables.size();
       ++table_id) {
    storage::Table* table = tables[table_id];
    wal::CheckpointTableMeta meta;
    meta.name = table->name();
    meta.num_rows = table->num_rows();
    meta.schema = table->schema();
    for (const std::string& column : table->DictionaryNames()) {
      meta.dictionaries.emplace_back(column,
                                     table->GetDictionary(column)->Snapshot());
    }
    for (uint32_t j = 0; s.ok() && j < table->num_columns(); ++j) {
      const storage::Column* column = table->GetColumnAt(j);
      const ColumnReader reader = ctx->Reader(column);
      storage::SegmentStorage* segments = column->segments();
      const storage::ColumnSnapshot* snap =
          ctx->handle_ != nullptr ? ctx->handle_->Find(column) : nullptr;
      if (segments != nullptr && snap != nullptr && !reader.versioned()) {
        // Incremental path (tiered column, clean snapshot): one extent
        // ref per segment, captured from the snapshot image itself.
        // Segments whose published extent already matches the image are
        // referenced by id — no bytes rewritten.
        auto refs = segments->CollectCheckpointRefs(
            reinterpret_cast<const uint64_t*>(snap->view->data()),
            snap->segment_gens);
        if (!refs.ok()) {
          s = refs.status();
        } else {
          s = writer.WriteColumnExtents(table_id, j, refs.value());
          for (const storage::SegmentExtentRef& ref : refs.value()) {
            extent_ids.push_back(ref.extent_id);
            (ref.reused ? extent_bytes_reused : data_bytes_written) +=
                ref.file_bytes;
          }
        }
      } else if (!reader.versioned()) {
        // Clean snapshot image: the view itself is the consistent state.
        s = writer.WriteColumnRaw(table_id, j, reader.raw_base(),
                                  table->num_rows());
        data_bytes_written += table->num_rows() * sizeof(uint64_t);
      } else {
        // Resolve through the version chains at the checkpoint timestamp
        // (live MVCC reads under the homogeneous modes, snapshot + chains
        // under heterogeneous when the epoch carried versions).
        s = writer.WriteColumnResolved(
            table_id, j, table->num_rows(),
            [&reader](size_t row) { return reader.Get(row); });
        data_bytes_written += table->num_rows() * sizeof(uint64_t);
      }
    }
    if (s.ok() && table->primary_index() != nullptr) {
      meta.has_primary_index = true;
      meta.index_entries = table->primary_index()->size();
      s = writer.WriteIndex(table_id, *table->primary_index());
    }
    manifest.tables.push_back(std::move(meta));
  }

  if (s.ok()) {
    std::sort(extent_ids.begin(), extent_ids.end());
    extent_ids.erase(std::unique(extent_ids.begin(), extent_ids.end()),
                     extent_ids.end());
    manifest.extents = extent_ids;
    manifest.next_extent_id =
        extent_store_ != nullptr ? extent_store_->next_id() : 1;
    s = writer.Finish(manifest);
  }
  if (!s.ok()) {
    writer.Abort();
    FinishOlap(std::move(ctx));
    return s;
  }

  // The image is live: everything at or below ckpt_ts is redundant in the
  // log now. The pinned transaction must end on every path — a leaked
  // registry entry would freeze MinStartTs and with it all GC/trimming.
  Status truncate = Status::OK();
  if (log_ != nullptr) truncate = log_->TruncateThrough(ckpt_ts);
  const Status finish = FinishOlap(std::move(ctx));
  ANKER_RETURN_IF_ERROR(truncate);
  ANKER_RETURN_IF_ERROR(finish);

  if (extent_store_ != nullptr) {
    // Garbage-collect extents no prior checkpoint can reference anymore:
    // keep what the new manifest cites plus everything a live segment still
    // points at (columns created after capture included — the catalog walk,
    // not the captured table list, is authoritative). Best effort: a failed
    // prune only delays reclamation until the next checkpoint.
    std::lock_guard<std::mutex> cold_guard(cold_mutex_);
    std::unordered_set<uint64_t> keep(manifest.extents.begin(),
                                      manifest.extents.end());
    for (storage::Column* column : catalog_.AllColumns()) {
      if (column->segments() != nullptr) {
        column->segments()->AppendLiveExtents(&keep);
      }
    }
    const Status pruned = extent_store_->Prune(keep);
    if (!pruned.ok()) {
      std::fprintf(stderr, "anker: extent prune skipped: %s\n",
                   pruned.message().c_str());
    }
  }
  return CheckpointResult{ckpt_ts, config_.data_dir + "/" + writer.dir_name(),
                          data_bytes_written, extent_bytes_reused};
}

uint64_t Database::ContentDigest() const {
  std::vector<storage::Table*> tables = catalog_.AllTables();
  std::sort(tables.begin(), tables.end(),
            [](const storage::Table* a, const storage::Table* b) {
              return a->name() < b->name();
            });
  Fnv fnv;
  fnv.MixU64(tables.size());
  for (const storage::Table* table : tables) {
    fnv.MixString(table->name());
    fnv.MixU64(table->num_rows());
    for (size_t j = 0; j < table->num_columns(); ++j) {
      const storage::Column* column = table->GetColumnAt(j);
      fnv.MixString(column->name());
      fnv.MixU64(static_cast<uint64_t>(column->type()));
      for (size_t row = 0; row < column->num_rows(); ++row) {
        fnv.MixU64(column->ReadLatestRaw(row));
      }
    }
    for (const std::string& column : table->DictionaryNames()) {
      fnv.MixString(column);
      for (const std::string& entry :
           table->GetDictionary(column)->Snapshot()) {
        fnv.MixString(entry);
      }
    }
  }
  return fnv.h;
}

}  // namespace anker::engine
