#ifndef ANKER_ENGINE_DATABASE_H_
#define ANKER_ENGINE_DATABASE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/snapshot_manager.h"
#include "mvcc/garbage_collector.h"
#include "storage/catalog.h"
#include "txn/transaction_manager.h"

namespace anker::query {
class Query;
class SemiJoinQuery;
class Params;
struct QueryResult;
}  // namespace anker::query

namespace anker::engine {

/// Engine configuration (paper Section 5.1's three setups plus knobs).
struct DatabaseConfig {
  txn::ProcessingMode mode =
      txn::ProcessingMode::kHeterogeneousSerializable;
  /// Buffer backend for column memory. Heterogeneous mode needs a
  /// snapshot-capable backend (vm_snapshot by default); homogeneous modes
  /// default to plain memory.
  snapshot::BufferBackend backend = snapshot::BufferBackend::kVmSnapshot;
  /// A snapshot epoch is triggered every this many commits (paper: 10,000).
  uint64_t snapshot_interval_commits = 10000;
  /// Homogeneous-mode GC pass interval (paper: every second).
  int gc_interval_millis = 1000;
  /// Max participants of one OLAP scan (morsel-driven intra-query
  /// parallelism); 1 = serial scans.
  size_t scan_threads = 1;
  /// Size of the process-wide worker pool (stream fan-out + scan morsels);
  /// 0 = max(hardware concurrency, scan_threads). The pool is created
  /// lazily on first use and grows on demand, never shrinks.
  size_t worker_threads = 0;

  bool heterogeneous() const {
    return mode == txn::ProcessingMode::kHeterogeneousSerializable;
  }

  /// Canonical configuration for a processing mode.
  static DatabaseConfig ForMode(txn::ProcessingMode mode);

  /// Rejects mode/backend combinations that would silently misbehave:
  /// heterogeneous processing requires a snapshot-capable backend, and the
  /// homogeneous baselines never snapshot, so a copy-on-write backend
  /// would only add fault-handling cost that the paper's baselines do not
  /// pay (skewing every comparison against them). Checked by the Database
  /// constructor; use Database::Create for a recoverable error.
  Status Validate() const;
};

/// Read context of one OLAP transaction: under heterogeneous processing it
/// pins a snapshot epoch and reads at the epoch timestamp; under
/// homogeneous processing it reads the live, versioned representation at
/// the transaction's start timestamp. Queries obtain ColumnReaders from it
/// and never care which world they run in.
class OlapContext {
 public:
  ~OlapContext() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(OlapContext);

  /// Reader for a column that was declared in BeginOlap's column set.
  /// CHECK-fails on out-of-set columns under heterogeneous processing —
  /// the internal-invariant path for callers whose column set was
  /// *inferred* (Database::Run derives it from the query plan, so a miss
  /// is an engine bug, not bad input). Callers that assembled the column
  /// set by hand should use TryReader.
  ColumnReader Reader(const storage::Column* column) const;

  /// Recoverable sibling of Reader: returns InvalidArgument when `column`
  /// was not part of the BeginOlap column set (heterogeneous mode; the
  /// homogeneous modes read live data and can serve any column).
  Result<ColumnReader> TryReader(const storage::Column* column) const;

  /// Scan execution options for this transaction's Folds: carries the
  /// engine's worker pool and scan_threads setting, so queries inherit
  /// intra-query parallelism without caring where they run.
  ScanOptions scan_options() const {
    ScanOptions options;
    options.pool = scan_pool_;
    options.max_threads = scan_threads_;
    return options;
  }

  mvcc::Timestamp read_ts() const { return read_ts_; }
  txn::Transaction* txn() const { return txn_.get(); }
  bool on_snapshot() const { return handle_ != nullptr; }

 private:
  friend class Database;
  OlapContext() = default;

  std::unique_ptr<txn::Transaction> txn_;
  std::unique_ptr<SnapshotHandle> handle_;  ///< nullptr in homogeneous mode.
  mvcc::Timestamp read_ts_ = 0;
  ThreadPool* scan_pool_ = nullptr;  ///< nullptr = serial scans.
  size_t scan_threads_ = 1;
};

/// The AnKerDB engine: a column-oriented main-memory MVCC store with a
/// configurable processing model. Heterogeneous mode outsources OLAP
/// transactions onto fine-granular virtual snapshots; homogeneous modes
/// execute everything on the up-to-date representation (snapshots
/// disabled), matching the paper's evaluation baselines.
class Database {
 public:
  /// CHECK-fails on an invalid configuration (see DatabaseConfig::
  /// Validate); use Create when the configuration comes from user input.
  explicit Database(DatabaseConfig config);
  ~Database();
  ANKER_DISALLOW_COPY_AND_MOVE(Database);

  /// Validating factory: returns InvalidArgument instead of aborting on a
  /// rejected mode/backend combination.
  static Result<std::unique_ptr<Database>> Create(DatabaseConfig config);

  const DatabaseConfig& config() const { return config_; }

  /// Creates an empty table; columns use the configured buffer backend.
  Result<storage::Table*> CreateTable(
      const std::string& name, const std::vector<storage::ColumnDef>& schema,
      size_t num_rows);

  storage::Catalog& catalog() { return catalog_; }
  txn::TransactionManager& txn_manager() { return txn_manager_; }
  SnapshotManager* snapshot_manager() { return snapshot_manager_.get(); }
  mvcc::GarbageCollector* garbage_collector() { return gc_.get(); }

  /// The process-wide worker pool: executes workload stream tasks and scan
  /// morsels (one pool for everything — see common/thread_pool.h). Created
  /// lazily so engines that never fan out never spawn threads.
  ThreadPool& worker_pool();

  /// OLTP entry points (thin wrappers over the transaction manager).
  std::unique_ptr<txn::Transaction> BeginOltp() {
    return txn_manager_.Begin(txn::TxnType::kOltp);
  }
  Status Commit(txn::Transaction* txn) { return txn_manager_.Commit(txn); }
  void Abort(txn::Transaction* txn) { txn_manager_.Abort(txn); }

  /// Begins an OLAP transaction over the given column set. Heterogeneous:
  /// acquires (and lazily materializes) the newest snapshot epoch.
  /// Homogeneous: reads the live data.
  ///
  /// Query-shaped callers should prefer Run: a query::Query already knows
  /// every column it touches, so hand-maintaining the raw column vector
  /// only invites drift between the set and the query body. BeginOlap
  /// remains the entry point for free-form scans (and for Run itself).
  Result<std::unique_ptr<OlapContext>> BeginOlap(
      const std::vector<storage::Column*>& columns);

  /// Finishes an OLAP transaction (read-only commit; never aborts).
  Status FinishOlap(std::unique_ptr<OlapContext> ctx);

  /// Runs a declarative query as one OLAP transaction: infers the column
  /// set from the plan, pins the snapshot (heterogeneous) or live context
  /// (homogeneous), executes with the engine's ScanOptions and returns the
  /// typed result. Defined in src/query/run.cc.
  Result<query::QueryResult> Run(const query::Query& query,
                                 const query::Params& params);

  /// Same for the two-pass aggregated semi join (one transaction covering
  /// the build and both probe passes).
  Result<query::QueryResult> Run(const query::SemiJoinQuery& query,
                                 const query::Params& params);

  /// Starts background machinery (GC thread in homogeneous modes).
  void Start();
  /// Stops background machinery (idempotent; also run by the destructor).
  void Stop();

 private:
  DatabaseConfig config_;
  storage::Catalog catalog_;
  txn::TransactionManager txn_manager_;
  std::unique_ptr<SnapshotManager> snapshot_manager_;
  std::unique_ptr<mvcc::GarbageCollector> gc_;
  std::mutex pool_mutex_;
  /// Declared last: its destructor joins the workers before any engine
  /// state they might still touch is torn down.
  std::unique_ptr<ThreadPool> pool_;
  bool started_ = false;
};

}  // namespace anker::engine

#endif  // ANKER_ENGINE_DATABASE_H_
