#ifndef ANKER_ENGINE_DATABASE_H_
#define ANKER_ENGINE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/snapshot_manager.h"
#include "mvcc/garbage_collector.h"
#include "storage/catalog.h"
#include "txn/transaction_manager.h"
#include "wal/log_writer.h"
#include "wal/wal_format.h"

namespace anker::query {
class Query;
class Params;
struct ExecOptions;
struct QueryResult;
}  // namespace anker::query

namespace anker::engine {

/// Engine configuration (paper Section 5.1's three setups plus knobs).
struct DatabaseConfig {
  txn::ProcessingMode mode =
      txn::ProcessingMode::kHeterogeneousSerializable;
  /// Buffer backend for column memory. Heterogeneous mode needs a
  /// snapshot-capable backend (vm_snapshot by default); homogeneous modes
  /// default to plain memory.
  snapshot::BufferBackend backend = snapshot::BufferBackend::kVmSnapshot;
  /// A snapshot epoch is triggered every this many commits (paper: 10,000).
  uint64_t snapshot_interval_commits = 10000;
  /// Homogeneous-mode GC pass interval (paper: every second).
  int gc_interval_millis = 1000;
  /// Max participants of one OLAP scan (morsel-driven intra-query
  /// parallelism); 1 = serial scans.
  size_t scan_threads = 1;
  /// Size of the process-wide worker pool (stream fan-out + scan morsels);
  /// 0 = max(hardware concurrency, scan_threads). The pool is created
  /// lazily on first use and grows on demand, never shrinks.
  size_t worker_threads = 0;

  /// Durability policy (see wal::DurabilityMode). Anything other than kOff
  /// requires `data_dir` and turns every non-read-only commit into a redo
  /// record in <data_dir>/wal/.
  wal::DurabilityMode durability = wal::DurabilityMode::kOff;
  /// Directory holding the WAL and checkpoints. With durability off it may
  /// still be set to enable explicit Checkpoint() calls (backup-style
  /// durability without a log).
  std::string data_dir;
  /// WAL segments rotate at this size.
  size_t wal_segment_bytes = 8u << 20;
  /// Lazy durability: background flush cadence in milliseconds.
  int wal_flush_interval_millis = 5;
  /// Automatic checkpoint cadence: every this many commits the engine
  /// schedules a Checkpoint() on the worker pool (0 = manual only).
  /// Requires data_dir.
  uint64_t checkpoint_interval_commits = 0;

  /// Cold-tier budget: when > 0, every column becomes spillable and the
  /// engine evicts the coldest version-free segments to on-disk extents
  /// (<data_dir>/extents) until resident column bytes fit the budget.
  /// 0 disables tiering entirely — byte-for-byte today's behavior.
  /// Requires data_dir.
  uint64_t cold_budget_bytes = 0;
  /// Rows per spillable segment (the tiering granule). Must be a power of
  /// two >= 1024; smaller values spill finer at more metadata cost.
  size_t cold_segment_rows = 65536;

  bool heterogeneous() const {
    return mode == txn::ProcessingMode::kHeterogeneousSerializable;
  }

  /// Canonical configuration for a processing mode.
  static DatabaseConfig ForMode(txn::ProcessingMode mode);

  /// Rejects mode/backend combinations that would silently misbehave:
  /// heterogeneous processing requires a snapshot-capable backend, and the
  /// homogeneous baselines never snapshot, so a copy-on-write backend
  /// would only add fault-handling cost that the paper's baselines do not
  /// pay (skewing every comparison against them). Also probes data_dir
  /// when set (mkdir -p): an uncreatable directory is reported here as a
  /// recoverable InvalidArgument instead of surfacing as an IO error deep
  /// inside Open/Checkpoint. Checked by the Database constructor; use
  /// Database::Create / Database::Open for a recoverable error.
  Status Validate() const;
};

/// Read context of one OLAP transaction: under heterogeneous processing it
/// pins a snapshot epoch and reads at the epoch timestamp; under
/// homogeneous processing it reads the live, versioned representation at
/// the transaction's start timestamp. Queries obtain ColumnReaders from it
/// and never care which world they run in.
class OlapContext {
 public:
  ~OlapContext() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(OlapContext);

  /// Reader for a column that was declared in BeginOlap's column set.
  /// CHECK-fails on out-of-set columns under heterogeneous processing —
  /// the internal-invariant path for callers whose column set was
  /// *inferred* (Database::Run derives it from the query plan, so a miss
  /// is an engine bug, not bad input). Callers that assembled the column
  /// set by hand should use TryReader.
  ColumnReader Reader(const storage::Column* column) const;

  /// Recoverable sibling of Reader: returns InvalidArgument when `column`
  /// was not part of the BeginOlap column set (heterogeneous mode; the
  /// homogeneous modes read live data and can serve any column).
  Result<ColumnReader> TryReader(const storage::Column* column) const;

  /// Scan execution options for this transaction's Folds: carries the
  /// engine's worker pool and scan_threads setting, so queries inherit
  /// intra-query parallelism without caring where they run.
  ScanOptions scan_options() const {
    ScanOptions options;
    options.pool = scan_pool_;
    options.max_threads = scan_threads_;
    return options;
  }

  mvcc::Timestamp read_ts() const { return read_ts_; }
  txn::Transaction* txn() const { return txn_.get(); }
  bool on_snapshot() const { return handle_ != nullptr; }

 private:
  friend class Database;
  OlapContext() = default;

  std::unique_ptr<txn::Transaction> txn_;
  std::unique_ptr<SnapshotHandle> handle_;  ///< nullptr in homogeneous mode.
  /// Homogeneous mode with tiering: live scans read raw buffer pointers,
  /// so BeginOlap faults every cold segment in and holds these leases for
  /// the transaction's lifetime (heterogeneous snapshots carry their own
  /// lease inside each ColumnSnapshot).
  std::vector<std::shared_ptr<void>> residency_leases_;
  mvcc::Timestamp read_ts_ = 0;
  ThreadPool* scan_pool_ = nullptr;  ///< nullptr = serial scans.
  size_t scan_threads_ = 1;
};

/// Result of one Checkpoint() call.
struct CheckpointResult {
  mvcc::Timestamp checkpoint_ts = 0;
  std::string directory;  ///< Published checkpoint directory.
  /// Column-data bytes this checkpoint actually wrote (full column blobs
  /// plus freshly published extents) vs. bytes it re-referenced from
  /// already published extents. reused > 0 marks an incremental
  /// checkpoint; written / (written + reused) is its effective ratio.
  uint64_t data_bytes_written = 0;
  uint64_t extent_bytes_reused = 0;
};

/// Aggregate cold-tier observability across all tiered columns.
struct ColdTierStats {
  uint64_t resident_bytes = 0;  ///< Slot bytes currently in RAM.
  uint64_t cold_bytes = 0;      ///< Slot bytes evicted to extents.
  storage::ExtentTierCounters counters;
};

/// The AnKerDB engine: a column-oriented main-memory MVCC store with a
/// configurable processing model. Heterogeneous mode outsources OLAP
/// transactions onto fine-granular virtual snapshots; homogeneous modes
/// execute everything on the up-to-date representation (snapshots
/// disabled), matching the paper's evaluation baselines.
///
/// Durability (src/wal/): with DatabaseConfig::durability enabled, every
/// commit emits a redo record into a segmented write-ahead log, and
/// Checkpoint() streams a snapshot-consistent image of all tables next to
/// it. Database::Open() reverses the process after a crash: load the last
/// checkpoint, replay the WAL tail, continue. See docs/DURABILITY.md.
class Database {
 public:
  /// CHECK-fails on an invalid configuration (see DatabaseConfig::
  /// Validate); use Create when the configuration comes from user input.
  /// Creates a *fresh* database: with durability enabled, data_dir must
  /// not already contain one (reopen existing state with Open).
  explicit Database(DatabaseConfig config);
  ~Database();
  ANKER_DISALLOW_COPY_AND_MOVE(Database);

  /// Validating factory: returns InvalidArgument instead of aborting on a
  /// rejected mode/backend combination.
  static Result<std::unique_ptr<Database>> Create(DatabaseConfig config);

  /// Recovers a database from config.data_dir: loads the checkpoint that
  /// CURRENT points at (if any), replays every WAL record with
  /// commit_ts > checkpoint_ts through the normal transaction-manager
  /// apply path, restores the timestamp oracle and visibility watermark,
  /// truncates a torn log tail, and resumes logging into a fresh segment.
  /// An empty directory yields an empty database — Open is the universal
  /// entry point for durable instances.
  static Result<std::unique_ptr<Database>> Open(DatabaseConfig config);

  /// Writes a snapshot-consistent checkpoint of every table to data_dir
  /// and truncates the WAL through its timestamp. OLTP never stalls: the
  /// image is read off a virtual snapshot (heterogeneous) or through MVCC
  /// reads at the transaction's start timestamp (homogeneous modes).
  /// Serialized against itself; concurrent commits proceed. Always
  /// rewrites the image — bulk loads and creates change state without
  /// advancing commit timestamps, so there is no safe "nothing changed"
  /// shortcut.
  Result<CheckpointResult> Checkpoint();

  /// FNV-1a digest over the committed state of every table (schema, latest
  /// values, dictionary contents), tables in name order. Only meaningful
  /// on a quiesced engine; tests and the crash harness use it to compare
  /// recovered state against an in-memory reference run.
  uint64_t ContentDigest() const;

  // --- Cold tier (spillable column extents) ------------------------------

  /// Blocking spill pass: evicts coldest version-free segments until
  /// resident column bytes fit `budget_bytes`. Segments that are pinned,
  /// carry versions, or race a writer are skipped (best effort — the pass
  /// stops when no further segment can move). No-op without tiering.
  Status SpillToBudget(uint64_t budget_bytes);

  /// SpillToBudget(0): force everything spillable cold. Tests and the
  /// crash driver use it to make every subsequent scan cross the tier.
  Status SpillColdData() { return SpillToBudget(0); }

  /// Aggregate residency + extent-store counters (zeros without tiering).
  ColdTierStats cold_stats() const;

  /// The extent store, or nullptr when tiering never started.
  storage::ExtentStore* extent_store() const { return extent_store_.get(); }

  /// The redo log writer, or nullptr with durability off (observability:
  /// benches report fsync batching, tests force syncs).
  wal::LogWriter* log_writer() { return log_.get(); }

  const DatabaseConfig& config() const { return config_; }

  /// Directory the WAL segments live in; the replication service points
  /// its per-subscriber WalTailers here.
  std::string wal_dir() const { return config_.data_dir + "/wal"; }

  // --- Replication (WAL shipping) ---------------------------------------
  //
  // A replica applies records shipped from its primary through
  // ApplyReplicated, which both replays them through the normal commit
  // machinery and mirrors them into the local log under the primary's
  // LSNs — so a replica restart is just Database::Open plus resuming the
  // stream at applied_lsn() + 1, and promotion needs no renumbering.

  /// Applies one shipped WAL record (raw payload, primary's LSN). Must be
  /// called in LSN order from a single applier thread; records at or
  /// below applied_lsn() are ignored (re-delivery after reconnect).
  /// Requires durability to be on. Decode failures and table-id gaps are
  /// recoverable IoErrors — hostile stream bytes must never abort the
  /// process.
  Status ApplyReplicated(uint64_t lsn, std::string_view payload);

  /// Highest LSN fully applied to this engine (memory + local log
  /// buffer). On a primary this tracks the log's own appends implicitly
  /// and is not maintained; it is meaningful on replicas only.
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }

  /// Blocks until applied_lsn() >= lsn or the timeout elapses
  /// (ResourceBusy — retryable, the stream may just be behind).
  /// Read-your-writes on a replica: the client hands over the LSN token
  /// its commit ack carried.
  Status WaitAppliedLsn(uint64_t lsn, int timeout_millis);

  /// Synchronous-acknowledgement hook: when set, every group-commit
  /// durability wait additionally runs this after the local fsync — the
  /// server installs a "wait until a replica acked lsn" function here.
  /// An error return means the commit is durable locally but its
  /// replication state is unknown ("commit uncertain"); the commit call
  /// surfaces that error without acknowledging. Pass nullptr to clear.
  using ReplicationWaiter = std::function<Status(uint64_t lsn)>;
  void SetReplicationWaiter(ReplicationWaiter waiter);

  /// Creates an empty table; columns use the configured buffer backend.
  Result<storage::Table*> CreateTable(
      const std::string& name, const std::vector<storage::ColumnDef>& schema,
      size_t num_rows);

  storage::Catalog& catalog() { return catalog_; }
  txn::TransactionManager& txn_manager() { return txn_manager_; }
  SnapshotManager* snapshot_manager() { return snapshot_manager_.get(); }
  mvcc::GarbageCollector* garbage_collector() { return gc_.get(); }

  /// The process-wide worker pool: executes workload stream tasks and scan
  /// morsels (one pool for everything — see common/thread_pool.h). Created
  /// lazily so engines that never fan out never spawn threads.
  ThreadPool& worker_pool();

  /// OLTP entry points (thin wrappers over the transaction manager).
  std::unique_ptr<txn::Transaction> BeginOltp() {
    return txn_manager_.Begin(txn::TxnType::kOltp);
  }
  Status Commit(txn::Transaction* txn) { return txn_manager_.Commit(txn); }
  void Abort(txn::Transaction* txn) { txn_manager_.Abort(txn); }

  /// Begins an OLAP transaction over the given column set. Heterogeneous:
  /// acquires (and lazily materializes) the newest snapshot epoch.
  /// Homogeneous: reads the live data.
  ///
  /// Query-shaped callers should prefer Run: a query::Query already knows
  /// every column it touches, so hand-maintaining the raw column vector
  /// only invites drift between the set and the query body. BeginOlap
  /// remains the entry point for free-form scans (and for Run itself).
  Result<std::unique_ptr<OlapContext>> BeginOlap(
      const std::vector<storage::Column*>& columns);

  /// Finishes an OLAP transaction (read-only commit; never aborts).
  Status FinishOlap(std::unique_ptr<OlapContext> ctx);

  /// Runs a declarative query as one OLAP transaction: infers the column
  /// set from the plan, pins the snapshot (heterogeneous) or live context
  /// (homogeneous), executes with the engine's ScanOptions and returns the
  /// typed result. Defined in src/query/run.cc.
  Result<query::QueryResult> Run(const query::Query& query,
                                 const query::Params& params);

  /// Same with per-execution knobs (force_dag, spill budget, scan option
  /// overrides; see query::ExecOptions).
  Result<query::QueryResult> Run(const query::Query& query,
                                 const query::Params& params,
                                 const query::ExecOptions& options);

  /// Starts background machinery (GC thread in homogeneous modes).
  void Start();
  /// Stops background machinery (idempotent; also run by the destructor).
  void Stop();

 private:
  /// Tag for the deferred-WAL constructor Open() uses: recovery must load
  /// the checkpoint and replay the log before the writer may touch the
  /// segment files.
  struct OpenTag {};
  Database(DatabaseConfig config, OpenTag);

  /// Assigns stable WAL ids and publishes a built table (catalog +
  /// tables_by_id_). Shared tail of the runtime and recovery create
  /// paths; caller holds create_table_mutex_ (or is single-threaded
  /// recovery).
  Result<storage::Table*> PublishTable(std::unique_ptr<storage::Table> table);

  /// Creates the table and registers it for WAL addressing, without
  /// logging a kCreateTable record (recovery re-creates tables from the
  /// manifest/log and must not re-log them).
  Result<storage::Table*> CreateTableInternal(
      const std::string& name, const std::vector<storage::ColumnDef>& schema,
      size_t num_rows);

  /// Loads checkpoint + WAL from data_dir (Open's second phase).
  Status Recover();

  /// Opens the log writer at `first_segment_seq` and installs the
  /// transaction manager's durability hooks. Recovery hands over the
  /// surviving pre-crash segments so checkpoint truncation owns them,
  /// and `first_lsn` one past the highest LSN ever issued so LSNs stay
  /// strictly increasing across restarts.
  Status StartWal(uint64_t first_segment_seq,
                  const std::vector<wal::PriorSegment>& existing = {},
                  uint64_t first_lsn = 1);

  /// Applies one decoded WAL record: creates the table (recovery/replica
  /// schema replay, with the table-id gap and bounds checks) or replays
  /// the commit through the transaction manager. Records with
  /// commit_ts <= skip_ts are already part of the checkpoint base image.
  /// Caller serializes against CreateTable (create_table_mutex_, or
  /// single-threaded recovery).
  Status ApplyWalRecord(const wal::WalRecord& record,
                        mvcc::Timestamp skip_ts);

  /// Maps one record's redo writes back to live column pointers with the
  /// bounds checks hostile bytes require (recovery and replica apply).
  Status ResolveRedoWrites(const std::vector<wal::RedoWrite>& redo,
                           std::vector<txn::Transaction::LocalWrite>* writes);

  /// Serializes one commit's write set as a redo record and appends it
  /// (called from the commit critical section via the durability sink).
  uint64_t AppendCommitRecord(
      mvcc::Timestamp commit_ts,
      const std::vector<txn::Transaction::LocalWrite>& writes);

  /// 2PC siblings of AppendCommitRecord (the distributed sinks).
  uint64_t AppendPrepareRecord(const mvcc::PreparedTxn& txn);
  uint64_t AppendCommitPreparedRecord(
      uint64_t gtid, mvcc::Timestamp commit_ts, mvcc::Timestamp apply_ts,
      const std::vector<mvcc::IntentWrite>& writes);

  /// Commit-hook half of auto-checkpointing: schedules a Checkpoint() on
  /// the worker pool unless one is already pending.
  void ScheduleCheckpoint();

  /// Opens <data_dir>/extents (idempotent). Recovery calls it whenever
  /// the manifest references extents — even at cold_budget_bytes = 0, so
  /// an instance reopened with tiering off can still load its data.
  Status EnsureExtentStore();

  /// Non-blocking budget enforcement (skipped when another spill or a
  /// checkpoint prune holds the cold mutex); runs after OLAP releases.
  void EnforceColdBudget();

  /// Spill pass body; caller holds cold_mutex_.
  Status SpillToBudgetLocked(uint64_t budget_bytes);

  DatabaseConfig config_;
  storage::Catalog catalog_;
  txn::TransactionManager txn_manager_;
  std::unique_ptr<SnapshotManager> snapshot_manager_;
  std::unique_ptr<mvcc::GarbageCollector> gc_;

  // Durability state. tables_by_id_ fixes the WAL/checkpoint addressing
  // (table_id = creation order, column_id = schema position; the reverse
  // direction lives in each Column's stable id, readable lock-free on the
  // commit path). Guarded by create_table_mutex_ against concurrent
  // creates; Checkpoint() copies it under the same mutex.
  std::unique_ptr<wal::LogWriter> log_;
  std::vector<storage::Table*> tables_by_id_;
  std::mutex create_table_mutex_;
  std::mutex checkpoint_mutex_;
  std::atomic<bool> checkpoint_pending_{false};

  // Cold tier. cold_mutex_ serializes every extent Publish/Prune that is
  // not already covered by checkpoint_mutex_: spill passes hold it for
  // their publishes, the post-checkpoint prune holds it while computing
  // the keep-set, so a prune can never observe (and delete) an extent a
  // concurrent spill just referenced.
  std::unique_ptr<storage::ExtentStore> extent_store_;
  std::mutex cold_mutex_;

  // Replication state. applied_lsn_ is the replica apply watermark (set
  // to the recovery high-water mark by StartWal so a resumed stream
  // starts exactly where the local log ends); the waiter is the server's
  // sync-ack hook, swapped under its mutex and invoked outside any
  // engine lock.
  std::atomic<uint64_t> applied_lsn_{0};
  std::mutex applied_mutex_;
  std::condition_variable applied_cv_;
  std::mutex repl_waiter_mutex_;
  std::shared_ptr<const ReplicationWaiter> replication_waiter_;

  /// Serializes Start/Stop (the server and its signal-driven shutdown
  /// path may race them; both are idempotent under the lock).
  std::mutex lifecycle_mutex_;

  std::mutex pool_mutex_;
  /// Declared last: its destructor joins the workers (including pending
  /// checkpoint tasks) before any engine state they might still touch is
  /// torn down.
  std::unique_ptr<ThreadPool> pool_;
  bool started_ = false;
};

}  // namespace anker::engine

#endif  // ANKER_ENGINE_DATABASE_H_
