#ifndef ANKER_MVCC_GARBAGE_COLLECTOR_H_
#define ANKER_MVCC_GARBAGE_COLLECTOR_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "mvcc/active_txn_registry.h"
#include "mvcc/timestamp_oracle.h"
#include "mvcc/version_store.h"

namespace anker::mvcc {

/// Background version-chain garbage collector used by the *homogeneous*
/// configurations (paper Section 5.1): a separate thread makes a pass over
/// all present chains every second and deletes all versions that are older
/// than the oldest transaction in the system. The heterogeneous
/// configuration does not need it — dropping a snapshot drops its chains.
///
/// Unlinked suffixes are not recycled immediately: readers may still be
/// traversing them, and the nodes stay valid because their segment's arena
/// owns the memory. They are parked on a retire list and handed back to
/// the arena's free list once every transaction that was active at unlink
/// time has finished.
class GarbageCollector {
 public:
  /// `stores` returns the version stores to collect (the engine's columns).
  GarbageCollector(std::function<std::vector<VersionStore*>()> stores,
                   ActiveTxnRegistry* registry, TimestampOracle* oracle,
                   int interval_millis = 1000);
  ~GarbageCollector();
  ANKER_DISALLOW_COPY_AND_MOVE(GarbageCollector);

  /// Starts the background thread.
  void Start();

  /// Stops the background thread and drains the retire list.
  void Stop();

  /// One synchronous collection pass (also used by tests). Returns the
  /// number of version nodes unlinked in this pass.
  size_t CollectOnce();

  /// Nodes unlinked over the collector's lifetime.
  size_t total_unlinked() const {
    return total_unlinked_.load(std::memory_order_relaxed);
  }

  /// Nodes actually recycled back to their arena so far.
  size_t total_freed() const {
    return total_freed_.load(std::memory_order_relaxed);
  }

  /// Entries still parked on the retire list (for tests).
  size_t retired_pending() const;

 private:
  struct Retired {
    RetiredChain chain;
    uint64_t boundary_serial;  ///< Recycle once MinActiveSerial() > this.
  };

  void Loop();
  void DrainRetired(bool force);

  std::function<std::vector<VersionStore*>()> stores_;
  ActiveTxnRegistry* registry_;
  TimestampOracle* oracle_;
  int interval_millis_;

  mutable std::mutex retired_mutex_;
  std::vector<Retired> retired_;

  std::atomic<size_t> total_unlinked_{0};
  std::atomic<size_t> total_freed_{0};

  std::mutex thread_mutex_;
  std::condition_variable wakeup_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace anker::mvcc

#endif  // ANKER_MVCC_GARBAGE_COLLECTOR_H_
