#include "mvcc/intent_table.h"

namespace anker::mvcc {

Status IntentTable::Place(PreparedTxn txn) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto decided = outcomes_.find(txn.gtid);
  if (decided != outcomes_.end()) {
    // The transaction was already resolved — a zombie prepare (its router
    // died, a reader resolved it as aborted, and a stale retry arrives
    // late) must not re-lock the rows.
    if (decided->second.outcome == TxnOutcome::kAborted) {
      return Status::Aborted("transaction was already resolved as aborted");
    }
    return Status::InvalidArgument(
        "transaction was already resolved as committed");
  }
  if (pending_.count(txn.gtid) != 0) {
    return Status::OK();  // Duplicate prepare: already staged, idempotent.
  }
  for (const IntentWrite& write : txn.writes) {
    auto slot = slots_.find(SlotKey{write.column, write.row});
    if (slot != slots_.end() && slot->second != txn.gtid) {
      return Status::ResourceBusy(
          "write intent pending on a slot in the write set");
    }
  }
  for (const IntentWrite& write : txn.writes) {
    slots_[SlotKey{write.column, write.row}] = txn.gtid;
  }
  intent_count_.fetch_add(txn.writes.size(), std::memory_order_release);
  pending_.emplace(txn.gtid, std::move(txn));
  return Status::OK();
}

bool IntentTable::Lookup(const storage::Column* column, uint64_t row,
                         IntentInfo* info) const {
  if (intent_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> guard(mutex_);
  auto slot = slots_.find(SlotKey{column, row});
  if (slot == slots_.end()) return false;
  auto pending = pending_.find(slot->second);
  if (pending == pending_.end()) return false;  // Unreachable by invariant.
  info->gtid = pending->second.gtid;
  info->primary_shard = pending->second.primary_shard;
  info->prepare_ts = pending->second.prepare_ts;
  return true;
}

bool IntentTable::Get(uint64_t gtid, PreparedTxn* out) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = pending_.find(gtid);
  if (it == pending_.end()) return false;
  *out = it->second;
  return true;
}

bool IntentTable::Remove(uint64_t gtid, PreparedTxn* out) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = pending_.find(gtid);
  if (it == pending_.end()) return false;
  for (const IntentWrite& write : it->second.writes) {
    slots_.erase(SlotKey{write.column, write.row});
  }
  intent_count_.fetch_sub(it->second.writes.size(),
                          std::memory_order_release);
  *out = std::move(it->second);
  pending_.erase(it);
  return true;
}

void IntentTable::RecordOutcomeLocked(uint64_t gtid, TxnOutcome outcome,
                                      Timestamp commit_ts) {
  if (outcomes_.count(gtid) != 0) return;  // First decision wins.
  outcomes_.emplace(gtid, Outcome{outcome, commit_ts});
  outcome_fifo_.push_back(gtid);
  while (outcome_fifo_.size() > kMaxOutcomes) {
    outcomes_.erase(outcome_fifo_.front());
    outcome_fifo_.pop_front();
  }
}

void IntentTable::RecordOutcome(uint64_t gtid, TxnOutcome outcome,
                                Timestamp commit_ts) {
  std::lock_guard<std::mutex> guard(mutex_);
  RecordOutcomeLocked(gtid, outcome, commit_ts);
}

TxnOutcome IntentTable::OutcomeOf(uint64_t gtid, Timestamp* commit_ts) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = outcomes_.find(gtid);
  if (it == outcomes_.end()) return TxnOutcome::kPending;
  if (commit_ts != nullptr) *commit_ts = it->second.commit_ts;
  return it->second.outcome;
}

size_t IntentTable::PendingCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return pending_.size();
}

std::vector<PreparedTxn> IntentTable::SnapshotPending() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<PreparedTxn> out;
  out.reserve(pending_.size());
  for (const auto& [gtid, txn] : pending_) out.push_back(txn);
  return out;
}

std::vector<IntentTable::OutcomeEntry> IntentTable::SnapshotOutcomes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<OutcomeEntry> out;
  out.reserve(outcome_fifo_.size());
  // FIFO order so a restore rebuilds the same eviction sequence.
  for (uint64_t gtid : outcome_fifo_) {
    auto it = outcomes_.find(gtid);
    if (it != outcomes_.end()) {
      out.push_back(OutcomeEntry{gtid, it->second.outcome,
                                 it->second.commit_ts});
    }
  }
  return out;
}

}  // namespace anker::mvcc
