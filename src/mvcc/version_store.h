#ifndef ANKER_MVCC_VERSION_STORE_H_
#define ANKER_MVCC_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "mvcc/timestamp_oracle.h"

namespace anker::mvcc {

/// Rows per metadata block. The paper adopts HyPer's optimization of
/// keeping, for every 1024 rows, the position of the first and the last
/// versioned row so scans can run in tight loops between versioned records
/// (Section 5.5).
inline constexpr size_t kRowsPerBlock = 1024;

/// One superseded value in a version chain. Chains are ordered newest to
/// oldest (paper Section 2.1). `ts` is the commit timestamp of the
/// transaction that *overwrote* this value: the value was visible until
/// `ts`. A reader at start time s takes the value of the oldest node with
/// ts > s, or the in-place column value if there is none.
struct VersionNode {
  uint64_t value;
  Timestamp ts;
  VersionNode* next;  ///< Older node, or nullptr.
};

/// Next-pointer access for chain walks that may race the homogeneous
/// GC's suffix unlink (TruncateOlderThan stores nullptr into an interior
/// `next` while readers traverse). Benign by design: the reader either
/// continues into the retired suffix — valid, arena-owned memory until
/// the retire list drains — or stops at the new chain end; both yield
/// correct visibility. Plain accesses in normal builds; relaxed atomics
/// under ThreadSanitizer (ANKER_TSAN) so only unintended races are
/// reported.
inline const VersionNode* LoadNext(const VersionNode* node) {
#ifdef ANKER_TSAN
  const VersionNode* next;
  __atomic_load(&node->next, const_cast<VersionNode**>(&next),
                __ATOMIC_RELAXED);
  return next;
#else
  return node->next;
#endif
}
inline VersionNode* LoadNextMutable(VersionNode* node) {
#ifdef ANKER_TSAN
  VersionNode* next;
  __atomic_load(&node->next, &next, __ATOMIC_RELAXED);
  return next;
#else
  return node->next;
#endif
}
inline void StoreNext(VersionNode* node, VersionNode* next) {
#ifdef ANKER_TSAN
  __atomic_store(&node->next, &next, __ATOMIC_RELAXED);
#else
  node->next = next;
#endif
}

/// value/ts access for the same reason, one hazard further: the arena
/// *recycles* retired nodes (Treiber free list), so a reader that raced
/// past a chain's unlink can traverse a node while AddVersion rewrites
/// its payload for a new row. The surrounding seqlock (Block::seq,
/// validated by the scan fold before any value is used) makes the torn
/// read harmless — the block retries — but the access itself is racy by
/// design, so under TSan it must be a relaxed atomic like next above.
inline uint64_t LoadNodeValue(const VersionNode* node) {
#ifdef ANKER_TSAN
  uint64_t value;
  __atomic_load(&node->value, &value, __ATOMIC_RELAXED);
  return value;
#else
  return node->value;
#endif
}
inline Timestamp LoadNodeTs(const VersionNode* node) {
#ifdef ANKER_TSAN
  Timestamp ts;
  __atomic_load(&node->ts, &ts, __ATOMIC_RELAXED);
  return ts;
#else
  return node->ts;
#endif
}
inline void StoreNodePayload(VersionNode* node, uint64_t value,
                             Timestamp ts) {
#ifdef ANKER_TSAN
  __atomic_store(&node->value, &value, __ATOMIC_RELAXED);
  __atomic_store(&node->ts, &ts, __ATOMIC_RELAXED);
#else
  node->value = value;
  node->ts = ts;
#endif
}

/// Bump allocator for VersionNodes, owned by one ChainDirectory segment.
/// Nodes are carved out of chunk-sized slabs, so AddVersion never hits the
/// global heap on the commit critical path, and dropping the segment
/// returns all of its chains in a handful of chunk deallocations — the
/// paper's "implicit GC by snapshot drop" becomes (almost) literally one
/// free. Node addresses are stable for the arena's lifetime.
///
/// A Treiber free-list lets the homogeneous GC hand truncated chain
/// suffixes back for reuse (the long-lived current segment would otherwise
/// grow without bound): Recycle may be called from any thread, Allocate
/// only by the single committing writer. A recycled node is overwritten on
/// reuse, so callers must guarantee no reader still traverses the chain —
/// the GC's retire list provides exactly that drain barrier.
class VersionArena {
 public:
  VersionArena() = default;
  ~VersionArena();
  ANKER_DISALLOW_COPY_AND_MOVE(VersionArena);

  /// Pops a recycled node if available, else bumps the current chunk.
  /// Single-consumer: only the committing writer allocates.
  VersionNode* Allocate();

  /// Returns a whole chain (following next pointers) to the free list.
  /// Thread-safe against the allocating writer and other recyclers.
  void Recycle(VersionNode* head);

  /// Chunk count (each kNodesPerChunk nodes) — observability for tests.
  size_t allocated_chunks() const {
    return chunk_count_.load(std::memory_order_relaxed);
  }
  /// Allocations served from the free list instead of a chunk bump.
  size_t reused_nodes() const {
    return reused_.load(std::memory_order_relaxed);
  }

  static constexpr size_t kNodesPerChunk = 2048;

 private:
  struct Chunk {
    Chunk* next;
    VersionNode nodes[kNodesPerChunk];
  };

  Chunk* chunks_ = nullptr;  ///< Newest chunk first; writer-owned.
  size_t used_in_chunk_ = kNodesPerChunk;
  std::atomic<VersionNode*> free_list_{nullptr};
  std::atomic<size_t> chunk_count_{0};
  std::atomic<size_t> reused_{0};
};

/// Per-block chain metadata (first/last versioned row, seqlock counter,
/// newest version timestamp).
struct BlockInfo {
  uint32_t first_versioned;  ///< Row offset within block, kRowsPerBlock if none.
  uint32_t last_versioned;
  uint64_t seq;              ///< Seqlock counter; odd = write in progress.
  Timestamp max_ts;          ///< Newest version ts in the block (0 if none).
  bool has_versions;
};

/// Version chains for one column over one snapshot epoch. When the engine
/// takes a snapshot, the whole directory is *handed over* to the snapshot
/// (paper Section 2.2.1, Step 4): the column starts a fresh directory and
/// the sealed one stays reachable through `prev` for transactions that
/// started before the epoch. Dropping the snapshot drops the directory and
/// with it all its chains — the paper's implicit garbage collection.
///
/// Thread model: a single writer at a time (the engine's commit section);
/// any number of concurrent readers. Readers must read the column slot
/// *before* resolving the chain (see ResolveVisible).
class ChainDirectory {
 public:
  ChainDirectory(size_t num_rows, std::shared_ptr<ChainDirectory> prev);
  ~ChainDirectory();
  ANKER_DISALLOW_COPY_AND_MOVE(ChainDirectory);

  /// Pushes `old_value` (overwritten at `commit_ts`) onto row's chain.
  /// Single-writer only.
  void AddVersion(size_t row, uint64_t old_value, Timestamp commit_ts);

  /// Newest chain node of `row` in this segment, or nullptr.
  const VersionNode* Head(size_t row) const;

  BlockInfo GetBlockInfo(size_t block) const;
  size_t num_blocks() const { return blocks_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Total number of version nodes currently linked in this segment.
  size_t TotalVersions() const {
    return total_versions_.load(std::memory_order_relaxed);
  }

  /// Marks the directory immutable as of `seal_ts`: every node in this or
  /// any older segment has ts <= seal_ts. Atomic because latch-free
  /// readers (OLTP point reads) consult seal_ts while descending.
  void Seal(Timestamp seal_ts) {
    seal_ts_.store(seal_ts, std::memory_order_release);
  }
  Timestamp seal_ts() const {
    return seal_ts_.load(std::memory_order_acquire);
  }

  const std::shared_ptr<ChainDirectory>& prev() const { return prev_; }
  /// Raw previous-segment pointer for latch-free readers: `prev_` (the
  /// owning shared_ptr) may be reset by DropPrev under the column's
  /// exclusive latch while a reader descends, and shared_ptr loads are
  /// not atomic. The raw mirror is published with release/acquire;
  /// lifetime is covered by the DropPrev precondition (no in-flight
  /// reader is old enough to still need the dropped segment).
  const ChainDirectory* prev_raw() const {
    return prev_raw_.load(std::memory_order_acquire);
  }
  /// Seal timestamp of the previous segment, cached here at construction
  /// (segments are sealed before the successor is created). Readers use
  /// this to decide whether to descend *without touching prev at all* —
  /// the previous segment may already be dropped and freed, and even a
  /// read of its seal_ts field would be a use-after-free. 0 when the
  /// directory has no predecessor, which reads as "nothing older can be
  /// relevant".
  Timestamp prev_seal_ts() const { return prev_seal_ts_; }
  /// Drops the link to the previous segment (when the previous epoch's
  /// snapshot is retired and no reader can need it anymore).
  void DropPrev() {
    prev_raw_.store(nullptr, std::memory_order_release);
    prev_.reset();
  }

  /// Homogeneous-mode GC: unlinks every node with ts <= `min_active` from
  /// every chain. Unlinked suffixes are handed to `retired`; they stay
  /// valid, readable memory (the arena owns them) until RecycleChain hands
  /// them back once concurrent readers drain. Returns the number of
  /// unlinked nodes.
  size_t TruncateOlderThan(Timestamp min_active,
                           std::vector<VersionNode*>* retired);

  /// Returns a drained retire-list chain to this segment's arena for
  /// reuse. Caller must guarantee no reader still traverses it. Returns
  /// the number of nodes recycled.
  size_t RecycleChain(VersionNode* head);

  const VersionArena& arena() const { return arena_; }

 private:
  struct Block {
    std::vector<std::atomic<VersionNode*>> heads;
    std::atomic<uint32_t> first_versioned{UINT32_MAX};
    std::atomic<uint32_t> last_versioned{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<Timestamp> max_ts{0};
    std::atomic<bool> has_versions{false};
    Block() : heads(kRowsPerBlock) {
      for (auto& h : heads) h.store(nullptr, std::memory_order_relaxed);
    }
  };

  Block* GetOrCreateBlock(size_t block);

  size_t num_rows_;
  std::vector<std::atomic<Block*>> blocks_;
  std::shared_ptr<ChainDirectory> prev_;
  std::atomic<ChainDirectory*> prev_raw_{nullptr};
  Timestamp prev_seal_ts_ = kLoadTimestamp;  ///< Immutable after ctor.
  std::atomic<Timestamp> seal_ts_{kInfiniteTimestamp};
  std::atomic<size_t> total_versions_{0};
  VersionArena arena_;  ///< Owns every VersionNode linked in this segment.
};

/// A chain suffix unlinked by GC, still owned by `owner`'s arena. The
/// shared_ptr keeps the arena (and with it the nodes) alive even if the
/// segment is sealed and dropped while the suffix sits on a retire list.
struct RetiredChain {
  VersionNode* head;
  std::shared_ptr<ChainDirectory> owner;
};

/// Per-column façade over the chain of epoch segments. All methods must be
/// called while holding the column's latch (shared for reads/updates,
/// exclusive for SealEpoch) — the engine enforces this.
class VersionStore {
 public:
  explicit VersionStore(size_t num_rows);
  ANKER_DISALLOW_COPY_AND_MOVE(VersionStore);

  /// Records that `row`'s previous value `old_value` was overwritten at
  /// `commit_ts` (called from the commit critical section).
  void AddVersion(size_t row, uint64_t old_value, Timestamp commit_ts);

  /// Resolves the value of `row` visible at `start_ts`, given the in-place
  /// slot value `slot_value` that the caller read *before* calling (read
  /// slot, then chain: the publication order in the committer guarantees a
  /// reader that saw a too-new slot value also sees the chain node carrying
  /// the old one).
  uint64_t ResolveVisible(size_t row, Timestamp start_ts,
                          uint64_t slot_value) const;

  /// Commit timestamp of the most recent overwrite of `row`, or
  /// kLoadTimestamp if the row was never overwritten. `since` bounds the
  /// search: segments entirely older than `since` are skipped (used for
  /// first-committer-wins conflict checks against a transaction's
  /// start_ts).
  Timestamp LastWriteTs(size_t row, Timestamp since) const;

  /// True iff some chain (any segment with nodes newer than start_ts)
  /// may hold a version of `row` relevant to `start_ts`.
  bool HasRelevantVersion(size_t row, Timestamp start_ts) const;

  /// True iff any segment (current or a sealed predecessor still linked
  /// through prev) holds a version node for a row in [row_begin, row_end).
  /// Conservative per-block check via has_versions + first/last versioned
  /// offsets; used by the cold tier, which only spills version-free
  /// segments. Caller holds the column latch (exclusive for spill).
  bool HasVersionsInRange(size_t row_begin, size_t row_end) const;

  /// Seals the current segment at `seal_ts` and installs a fresh one whose
  /// prev is the sealed segment. Returns the sealed segment (the snapshot
  /// takes ownership of this reference). Caller holds the column latch
  /// exclusively.
  std::shared_ptr<ChainDirectory> SealEpoch(Timestamp seal_ts);

  /// Current (unsealed) segment, e.g. for scan block metadata. Writer-side
  /// accessor: callers hold the column latch (commit path, GC,
  /// materialization), which excludes the SealEpoch swap.
  const std::shared_ptr<ChainDirectory>& current() const { return current_; }

  /// Latch-free sibling of current() for readers (OLTP point reads, live
  /// ColumnReaders): published with release by SealEpoch only after the
  /// fresh directory is fully constructed, so an acquire load never
  /// observes a half-built segment. The swapped-out segment stays
  /// reachable (and alive) through the fresh one's prev chain.
  const ChainDirectory* current_raw() const {
    return current_raw_.load(std::memory_order_acquire);
  }

  size_t num_rows() const { return num_rows_; }

  /// Homogeneous-mode GC entry point; see ChainDirectory::TruncateOlderThan.
  /// Retired chains carry a reference to their owning segment so the
  /// backing arena outlives the retire list.
  size_t TruncateOlderThan(Timestamp min_active,
                           std::vector<RetiredChain>* retired) {
    std::vector<VersionNode*> heads;
    const size_t unlinked = current_->TruncateOlderThan(min_active, &heads);
    for (VersionNode* head : heads) {
      retired->push_back(RetiredChain{head, current_});
    }
    return unlinked;
  }

 private:
  size_t num_rows_;
  std::shared_ptr<ChainDirectory> current_;
  std::atomic<ChainDirectory*> current_raw_{nullptr};
};

}  // namespace anker::mvcc

#endif  // ANKER_MVCC_VERSION_STORE_H_
