#ifndef ANKER_MVCC_VERSION_STORE_H_
#define ANKER_MVCC_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "mvcc/timestamp_oracle.h"

namespace anker::mvcc {

/// Rows per metadata block. The paper adopts HyPer's optimization of
/// keeping, for every 1024 rows, the position of the first and the last
/// versioned row so scans can run in tight loops between versioned records
/// (Section 5.5).
inline constexpr size_t kRowsPerBlock = 1024;

/// One superseded value in a version chain. Chains are ordered newest to
/// oldest (paper Section 2.1). `ts` is the commit timestamp of the
/// transaction that *overwrote* this value: the value was visible until
/// `ts`. A reader at start time s takes the value of the oldest node with
/// ts > s, or the in-place column value if there is none.
struct VersionNode {
  uint64_t value;
  Timestamp ts;
  VersionNode* next;  ///< Older node, or nullptr.
};

/// Per-block chain metadata (first/last versioned row, seqlock counter,
/// newest version timestamp).
struct BlockInfo {
  uint32_t first_versioned;  ///< Row offset within block, kRowsPerBlock if none.
  uint32_t last_versioned;
  uint64_t seq;              ///< Seqlock counter; odd = write in progress.
  Timestamp max_ts;          ///< Newest version ts in the block (0 if none).
  bool has_versions;
};

/// Version chains for one column over one snapshot epoch. When the engine
/// takes a snapshot, the whole directory is *handed over* to the snapshot
/// (paper Section 2.2.1, Step 4): the column starts a fresh directory and
/// the sealed one stays reachable through `prev` for transactions that
/// started before the epoch. Dropping the snapshot drops the directory and
/// with it all its chains — the paper's implicit garbage collection.
///
/// Thread model: a single writer at a time (the engine's commit section);
/// any number of concurrent readers. Readers must read the column slot
/// *before* resolving the chain (see ResolveVisible).
class ChainDirectory {
 public:
  ChainDirectory(size_t num_rows, std::shared_ptr<ChainDirectory> prev);
  ~ChainDirectory();
  ANKER_DISALLOW_COPY_AND_MOVE(ChainDirectory);

  /// Pushes `old_value` (overwritten at `commit_ts`) onto row's chain.
  /// Single-writer only.
  void AddVersion(size_t row, uint64_t old_value, Timestamp commit_ts);

  /// Newest chain node of `row` in this segment, or nullptr.
  const VersionNode* Head(size_t row) const;

  BlockInfo GetBlockInfo(size_t block) const;
  size_t num_blocks() const { return blocks_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Total number of version nodes currently linked in this segment.
  size_t TotalVersions() const {
    return total_versions_.load(std::memory_order_relaxed);
  }

  /// Marks the directory immutable as of `seal_ts`: every node in this or
  /// any older segment has ts <= seal_ts.
  void Seal(Timestamp seal_ts) { seal_ts_ = seal_ts; }
  Timestamp seal_ts() const { return seal_ts_; }

  const std::shared_ptr<ChainDirectory>& prev() const { return prev_; }
  /// Drops the link to the previous segment (when the previous epoch's
  /// snapshot is retired and no reader can need it anymore).
  void DropPrev() { prev_.reset(); }

  /// Homogeneous-mode GC: unlinks every node with ts <= `min_active` from
  /// every chain. Unlinked suffixes are handed to `retired` (freed later,
  /// after concurrent readers drain). Returns the number of unlinked nodes.
  size_t TruncateOlderThan(Timestamp min_active,
                           std::vector<VersionNode*>* retired);

 private:
  struct Block {
    std::vector<std::atomic<VersionNode*>> heads;
    std::atomic<uint32_t> first_versioned{UINT32_MAX};
    std::atomic<uint32_t> last_versioned{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<Timestamp> max_ts{0};
    std::atomic<bool> has_versions{false};
    Block() : heads(kRowsPerBlock) {
      for (auto& h : heads) h.store(nullptr, std::memory_order_relaxed);
    }
  };

  Block* GetOrCreateBlock(size_t block);

  size_t num_rows_;
  std::vector<std::atomic<Block*>> blocks_;
  std::shared_ptr<ChainDirectory> prev_;
  Timestamp seal_ts_ = kInfiniteTimestamp;
  std::atomic<size_t> total_versions_{0};
};

/// Per-column façade over the chain of epoch segments. All methods must be
/// called while holding the column's latch (shared for reads/updates,
/// exclusive for SealEpoch) — the engine enforces this.
class VersionStore {
 public:
  explicit VersionStore(size_t num_rows);
  ANKER_DISALLOW_COPY_AND_MOVE(VersionStore);

  /// Records that `row`'s previous value `old_value` was overwritten at
  /// `commit_ts` (called from the commit critical section).
  void AddVersion(size_t row, uint64_t old_value, Timestamp commit_ts);

  /// Resolves the value of `row` visible at `start_ts`, given the in-place
  /// slot value `slot_value` that the caller read *before* calling (read
  /// slot, then chain: the publication order in the committer guarantees a
  /// reader that saw a too-new slot value also sees the chain node carrying
  /// the old one).
  uint64_t ResolveVisible(size_t row, Timestamp start_ts,
                          uint64_t slot_value) const;

  /// Commit timestamp of the most recent overwrite of `row`, or
  /// kLoadTimestamp if the row was never overwritten. `since` bounds the
  /// search: segments entirely older than `since` are skipped (used for
  /// first-committer-wins conflict checks against a transaction's
  /// start_ts).
  Timestamp LastWriteTs(size_t row, Timestamp since) const;

  /// True iff some chain (any segment with nodes newer than start_ts)
  /// may hold a version of `row` relevant to `start_ts`.
  bool HasRelevantVersion(size_t row, Timestamp start_ts) const;

  /// Seals the current segment at `seal_ts` and installs a fresh one whose
  /// prev is the sealed segment. Returns the sealed segment (the snapshot
  /// takes ownership of this reference). Caller holds the column latch
  /// exclusively.
  std::shared_ptr<ChainDirectory> SealEpoch(Timestamp seal_ts);

  /// Current (unsealed) segment, e.g. for scan block metadata.
  const std::shared_ptr<ChainDirectory>& current() const { return current_; }

  size_t num_rows() const { return num_rows_; }

  /// Homogeneous-mode GC entry point; see ChainDirectory::TruncateOlderThan.
  size_t TruncateOlderThan(Timestamp min_active,
                           std::vector<VersionNode*>* retired) {
    return current_->TruncateOlderThan(min_active, retired);
  }

 private:
  size_t num_rows_;
  std::shared_ptr<ChainDirectory> current_;
};

/// Frees a chain of nodes (follows next pointers).
void FreeNodeChain(VersionNode* head);

}  // namespace anker::mvcc

#endif  // ANKER_MVCC_VERSION_STORE_H_
