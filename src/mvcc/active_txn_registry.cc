#include "mvcc/active_txn_registry.h"

#include <algorithm>

namespace anker::mvcc {

uint64_t ActiveTxnRegistry::Begin(Timestamp start_ts) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint64_t serial = next_serial_++;
  active_.emplace(serial, start_ts);
  return serial;
}

void ActiveTxnRegistry::End(uint64_t serial) {
  std::lock_guard<std::mutex> guard(mutex_);
  const size_t erased = active_.erase(serial);
  ANKER_CHECK_MSG(erased == 1, "End() for unknown transaction serial");
}

Timestamp ActiveTxnRegistry::MinStartTs(Timestamp fallback) const {
  std::lock_guard<std::mutex> guard(mutex_);
  if (active_.empty()) return fallback;
  Timestamp min_ts = kInfiniteTimestamp;
  for (const auto& [serial, ts] : active_) min_ts = std::min(min_ts, ts);
  return min_ts;
}

uint64_t ActiveTxnRegistry::MinActiveSerial() const {
  std::lock_guard<std::mutex> guard(mutex_);
  if (active_.empty()) return UINT64_MAX;
  return active_.begin()->first;  // std::map is ordered by serial.
}

uint64_t ActiveTxnRegistry::CurrentSerial() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return next_serial_ - 1;
}

size_t ActiveTxnRegistry::ActiveCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return active_.size();
}

}  // namespace anker::mvcc
