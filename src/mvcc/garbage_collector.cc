#include "mvcc/garbage_collector.h"

#include <chrono>

namespace anker::mvcc {

GarbageCollector::GarbageCollector(
    std::function<std::vector<VersionStore*>()> stores,
    ActiveTxnRegistry* registry, TimestampOracle* oracle, int interval_millis)
    : stores_(std::move(stores)),
      registry_(registry),
      oracle_(oracle),
      interval_millis_(interval_millis) {}

GarbageCollector::~GarbageCollector() { Stop(); }

void GarbageCollector::Start() {
  std::lock_guard<std::mutex> guard(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void GarbageCollector::Stop() {
  {
    std::lock_guard<std::mutex> guard(thread_mutex_);
    if (!running_) {
      DrainRetired(/*force=*/true);
      return;
    }
    stop_requested_ = true;
  }
  wakeup_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> guard(thread_mutex_);
    running_ = false;
  }
  DrainRetired(/*force=*/true);
}

void GarbageCollector::Loop() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    lock.unlock();
    CollectOnce();
    lock.lock();
    wakeup_.wait_for(lock, std::chrono::milliseconds(interval_millis_),
                     [this] { return stop_requested_; });
  }
}

size_t GarbageCollector::CollectOnce() {
  // Versions older than the oldest transaction in the system are invisible
  // to every current and future reader.
  const Timestamp min_active =
      registry_->MinStartTs(/*fallback=*/oracle_->Current());

  std::vector<RetiredChain> unlinked_chains;
  size_t unlinked = 0;
  for (VersionStore* store : stores_()) {
    unlinked += store->TruncateOlderThan(min_active, &unlinked_chains);
  }
  // The drain boundary must be captured *after* the unlink: a reader that
  // begins while the truncation runs can still walk into a suffix right
  // before it is cut loose, and recycling may only happen once that
  // reader has ended too. Readers beginning after this point start from
  // the already-truncated heads and can never reach the retired nodes.
  // (Capturing the serial before the unlink let such a reader slip past
  // the `min_serial > boundary` drain check — a use-after-recycle found
  // by the ThreadSanitizer CI job.)
  const uint64_t boundary = registry_->CurrentSerial();
  if (!unlinked_chains.empty()) {
    std::lock_guard<std::mutex> guard(retired_mutex_);
    for (RetiredChain& chain : unlinked_chains) {
      retired_.push_back(Retired{std::move(chain), boundary});
    }
  }
  total_unlinked_.fetch_add(unlinked, std::memory_order_relaxed);
  DrainRetired(/*force=*/false);
  return unlinked;
}

void GarbageCollector::DrainRetired(bool force) {
  const uint64_t min_serial = registry_->MinActiveSerial();
  std::lock_guard<std::mutex> guard(retired_mutex_);
  size_t kept = 0;
  for (Retired& entry : retired_) {
    if (force || min_serial > entry.boundary_serial) {
      // Every reader active at unlink time has drained: hand the chain
      // back to its segment's arena for reuse (nodes are arena-owned and
      // cannot be deleted individually).
      const size_t freed = entry.chain.owner->RecycleChain(entry.chain.head);
      total_freed_.fetch_add(freed, std::memory_order_relaxed);
    } else {
      retired_[kept++] = std::move(entry);
    }
  }
  retired_.resize(kept);
}

size_t GarbageCollector::retired_pending() const {
  std::lock_guard<std::mutex> guard(retired_mutex_);
  return retired_.size();
}

}  // namespace anker::mvcc
