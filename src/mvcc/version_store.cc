#include "mvcc/version_store.h"

namespace anker::mvcc {

VersionArena::~VersionArena() {
  Chunk* chunk = chunks_;
  while (chunk != nullptr) {
    Chunk* next = chunk->next;
    delete chunk;
    chunk = next;
  }
}

VersionNode* VersionArena::Allocate() {
  // Free-list pop (Treiber stack). Safe against concurrent Recycle pushes:
  // there is exactly one popper (the committing writer), so the loaded
  // head cannot be popped out from under us — a failed CAS only means a
  // push happened, and we retry.
  VersionNode* head = free_list_.load(std::memory_order_acquire);
  while (head != nullptr) {
    if (free_list_.compare_exchange_weak(head, head->next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      reused_.fetch_add(1, std::memory_order_relaxed);
      return head;
    }
  }
  if (used_in_chunk_ == kNodesPerChunk) {
    Chunk* fresh = new Chunk;
    fresh->next = chunks_;
    chunks_ = fresh;
    used_in_chunk_ = 0;
    chunk_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return &chunks_->nodes[used_in_chunk_++];
}

void VersionArena::Recycle(VersionNode* head) {
  if (head == nullptr) return;
  VersionNode* tail = head;
  while (tail->next != nullptr) tail = tail->next;
  VersionNode* old_head = free_list_.load(std::memory_order_relaxed);
  do {
    tail->next = old_head;
  } while (!free_list_.compare_exchange_weak(old_head, head,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
}

ChainDirectory::ChainDirectory(size_t num_rows,
                               std::shared_ptr<ChainDirectory> prev)
    : num_rows_(num_rows),
      blocks_((num_rows + kRowsPerBlock - 1) / kRowsPerBlock),
      prev_(std::move(prev)) {
  prev_raw_.store(prev_.get(), std::memory_order_relaxed);
  if (prev_ != nullptr) prev_seal_ts_ = prev_->seal_ts();
  for (auto& block : blocks_) block.store(nullptr, std::memory_order_relaxed);
}

ChainDirectory::~ChainDirectory() {
  // Chains need no walking: every node lives in arena_, whose destructor
  // drops all chunks at once (the paper's implicit GC — releasing a
  // snapshot's segment frees its entire version history in O(chunks)).
  for (auto& slot : blocks_) {
    Block* block = slot.load(std::memory_order_relaxed);
    if (block != nullptr) delete block;
  }
}

ChainDirectory::Block* ChainDirectory::GetOrCreateBlock(size_t block_idx) {
  Block* block = blocks_[block_idx].load(std::memory_order_acquire);
  if (block != nullptr) return block;
  // Single-writer contract: no CAS needed, but keep it anyway so misuse
  // fails safe rather than leaking.
  Block* fresh = new Block();
  Block* expected = nullptr;
  if (blocks_[block_idx].compare_exchange_strong(expected, fresh,
                                                 std::memory_order_release)) {
    return fresh;
  }
  delete fresh;
  return expected;
}

void ChainDirectory::AddVersion(size_t row, uint64_t old_value,
                                Timestamp commit_ts) {
  ANKER_CHECK(row < num_rows_);
  const size_t block_idx = row / kRowsPerBlock;
  const uint32_t in_block = static_cast<uint32_t>(row % kRowsPerBlock);
  Block* block = GetOrCreateBlock(block_idx);

  // Seqlock write section: readers running a tight-loop block scan retry
  // when they observe the counter change.
  block->seq.fetch_add(1, std::memory_order_acq_rel);

  // Publish block metadata before the node so a reader that takes the
  // per-row path knows this row may be versioned.
  uint32_t first = block->first_versioned.load(std::memory_order_relaxed);
  while (in_block < first &&
         !block->first_versioned.compare_exchange_weak(
             first, in_block, std::memory_order_release)) {
  }
  uint32_t last = block->last_versioned.load(std::memory_order_relaxed);
  while (in_block > last && !block->last_versioned.compare_exchange_weak(
                                last, in_block, std::memory_order_release)) {
  }
  block->has_versions.store(true, std::memory_order_release);
  // Timestamps are drawn monotonically and there is a single writer, so a
  // plain max update suffices. Scans use max_ts to prove that none of the
  // block's versions are relevant at their read timestamp and go tight —
  // this is what makes scans on fresh snapshots chain-free even though the
  // handed-over chains travel with them (paper Fig. 1, step 5).
  if (commit_ts > block->max_ts.load(std::memory_order_relaxed)) {
    block->max_ts.store(commit_ts, std::memory_order_release);
  }

  // Arena bump (or free-list reuse) instead of a heap allocation: this
  // runs inside the commit critical section, where a malloc would
  // serialize every committer behind the allocator.
  VersionNode* node = arena_.Allocate();
  // The node may be free-list recycled while a snapshot scan that raced
  // past the old chain's unlink still traverses it; the scan's seqlock
  // validation (Block::seq below) discards whatever it read. Payload
  // stores go through the TSAN-annotated helper so only unintended races
  // are reported.
  StoreNodePayload(node, old_value, commit_ts);
  StoreNext(node, block->heads[in_block].load(std::memory_order_relaxed));
  block->heads[in_block].store(node, std::memory_order_release);
  total_versions_.fetch_add(1, std::memory_order_relaxed);

  block->seq.fetch_add(1, std::memory_order_release);
}

const VersionNode* ChainDirectory::Head(size_t row) const {
  ANKER_CHECK(row < num_rows_);
  const Block* block =
      blocks_[row / kRowsPerBlock].load(std::memory_order_acquire);
  if (block == nullptr) return nullptr;
  return block->heads[row % kRowsPerBlock].load(std::memory_order_acquire);
}

BlockInfo ChainDirectory::GetBlockInfo(size_t block_idx) const {
  ANKER_CHECK(block_idx < blocks_.size());
  const Block* block = blocks_[block_idx].load(std::memory_order_acquire);
  if (block == nullptr) {
    return BlockInfo{static_cast<uint32_t>(kRowsPerBlock), 0, 0, 0, false};
  }
  BlockInfo info;
  info.seq = block->seq.load(std::memory_order_acquire);
  info.has_versions = block->has_versions.load(std::memory_order_acquire);
  info.first_versioned =
      block->first_versioned.load(std::memory_order_acquire);
  info.last_versioned = block->last_versioned.load(std::memory_order_acquire);
  info.max_ts = block->max_ts.load(std::memory_order_acquire);
  if (!info.has_versions) {
    info.first_versioned = static_cast<uint32_t>(kRowsPerBlock);
    info.last_versioned = 0;
  }
  return info;
}

size_t ChainDirectory::TruncateOlderThan(Timestamp min_active,
                                         std::vector<VersionNode*>* retired) {
  size_t unlinked = 0;
  for (auto& slot : blocks_) {
    Block* block = slot.load(std::memory_order_acquire);
    if (block == nullptr) continue;
    for (auto& head_slot : block->heads) {
      VersionNode* head = head_slot.load(std::memory_order_acquire);
      if (head == nullptr) continue;
      // A node with ts <= min_active can never be "the oldest node with
      // ts > s" for any live or future reader (s >= min_active), so the
      // suffix starting at the first such node is dead.
      if (head->ts <= min_active) {
        // The whole chain is dead: unlink from the head slot.
        if (head_slot.compare_exchange_strong(head, nullptr,
                                              std::memory_order_acq_rel)) {
          retired->push_back(head);
          for (const VersionNode* n = head; n != nullptr; n = LoadNext(n)) {
            ++unlinked;
          }
        }
        continue;
      }
      VersionNode* keep = head;  // Last node with ts > min_active.
      while (LoadNextMutable(keep) != nullptr &&
             LoadNextMutable(keep)->ts > min_active) {
        keep = LoadNextMutable(keep);
      }
      VersionNode* dead = LoadNextMutable(keep);
      if (dead != nullptr) {
        // Single GC thread + append-only writers (writers only ever push a
        // new head; they never touch interior next pointers), so only the
        // racing readers need the LoadNext annotation. Readers already
        // past `keep` continue into the retired suffix, which stays
        // allocated until they drain.
        StoreNext(keep, nullptr);
        retired->push_back(dead);
        for (const VersionNode* n = dead; n != nullptr; n = LoadNext(n)) {
          ++unlinked;
        }
      }
    }
  }
  total_versions_.fetch_sub(unlinked, std::memory_order_relaxed);
  return unlinked;
}

size_t ChainDirectory::RecycleChain(VersionNode* head) {
  size_t count = 0;
  for (const VersionNode* node = head; node != nullptr; node = node->next) {
    ++count;
  }
  arena_.Recycle(head);
  return count;
}

VersionStore::VersionStore(size_t num_rows)
    : num_rows_(num_rows),
      current_(std::make_shared<ChainDirectory>(num_rows, nullptr)) {
  current_raw_.store(current_.get(), std::memory_order_release);
}

void VersionStore::AddVersion(size_t row, uint64_t old_value,
                              Timestamp commit_ts) {
  current_->AddVersion(row, old_value, commit_ts);
}

uint64_t VersionStore::ResolveVisible(size_t row, Timestamp start_ts,
                                      uint64_t slot_value) const {
  uint64_t candidate = slot_value;
  const ChainDirectory* dir = current_raw();
  while (dir != nullptr) {
    for (const VersionNode* node = dir->Head(row); node != nullptr;
         node = LoadNext(node)) {
      if (node->ts <= start_ts) return candidate;
      candidate = node->value;
    }
    // Segments older than start_ts cannot carry nodes with ts > start_ts.
    // The cached seal timestamp decides without dereferencing prev (which
    // may already be dropped); descending readers are guaranteed alive
    // targets by the DropPrev precondition.
    if (start_ts >= dir->prev_seal_ts()) return candidate;
    const ChainDirectory* prev = dir->prev_raw();
    if (prev == nullptr) return candidate;
    dir = prev;
  }
  return candidate;
}

Timestamp VersionStore::LastWriteTs(size_t row, Timestamp since) const {
  const ChainDirectory* dir = current_raw();
  while (dir != nullptr) {
    const VersionNode* head = dir->Head(row);
    if (head != nullptr) return head->ts;
    if (since >= dir->prev_seal_ts()) return kLoadTimestamp;
    const ChainDirectory* prev = dir->prev_raw();
    if (prev == nullptr) return kLoadTimestamp;
    dir = prev;
  }
  return kLoadTimestamp;
}

bool VersionStore::HasRelevantVersion(size_t row, Timestamp start_ts) const {
  return LastWriteTs(row, start_ts) > start_ts;
}

bool VersionStore::HasVersionsInRange(size_t row_begin,
                                      size_t row_end) const {
  ANKER_CHECK(row_begin <= row_end && row_end <= num_rows_);
  if (row_begin == row_end) return false;
  const size_t first_block = row_begin / kRowsPerBlock;
  const size_t last_block = (row_end - 1) / kRowsPerBlock;
  for (const ChainDirectory* dir = current_.get(); dir != nullptr;
       dir = dir->prev().get()) {
    const size_t blocks = dir->num_blocks();
    for (size_t b = first_block; b <= last_block && b < blocks; ++b) {
      const BlockInfo info = dir->GetBlockInfo(b);
      if (!info.has_versions) continue;
      const size_t first = b * kRowsPerBlock + info.first_versioned;
      const size_t last = b * kRowsPerBlock + info.last_versioned;
      if (first < row_end && last >= row_begin) return true;
    }
  }
  return false;
}

std::shared_ptr<ChainDirectory> VersionStore::SealEpoch(Timestamp seal_ts) {
  std::shared_ptr<ChainDirectory> sealed = current_;
  sealed->Seal(seal_ts);
  current_ = std::make_shared<ChainDirectory>(num_rows_, sealed);
  // Publish only after the fresh directory is fully constructed: latch-
  // free readers take this pointer without holding the column latch.
  current_raw_.store(current_.get(), std::memory_order_release);
  return sealed;
}

}  // namespace anker::mvcc
