#ifndef ANKER_MVCC_TIMESTAMP_ORACLE_H_
#define ANKER_MVCC_TIMESTAMP_ORACLE_H_

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace anker::mvcc {

/// Logical timestamps. 0 is reserved for "initial load"; every transaction
/// start and every commit draws a fresh, strictly increasing value.
using Timestamp = uint64_t;

inline constexpr Timestamp kLoadTimestamp = 0;
inline constexpr Timestamp kInfiniteTimestamp = ~0ULL;

/// Global monotonic timestamp dispenser shared by all transactions.
class TimestampOracle {
 public:
  TimestampOracle() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(TimestampOracle);

  /// Draws the next timestamp (strictly greater than all previous ones).
  Timestamp Next() { return counter_.fetch_add(1, std::memory_order_acq_rel); }

  /// Most recently drawn timestamp (snapshot of the counter).
  Timestamp Current() const {
    return counter_.load(std::memory_order_acquire) - 1;
  }

  /// Moves the dispenser forward so every future Next() is strictly
  /// greater than `ts`. Never moves it backward. Used by recovery to
  /// restore the pre-crash timeline: replayed commits keep their logged
  /// timestamps, and new transactions must start above all of them.
  void AdvanceTo(Timestamp ts) {
    Timestamp cur = counter_.load(std::memory_order_relaxed);
    while (cur < ts + 1 && !counter_.compare_exchange_weak(
                               cur, ts + 1, std::memory_order_acq_rel,
                               std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Timestamp> counter_{1};
};

}  // namespace anker::mvcc

#endif  // ANKER_MVCC_TIMESTAMP_ORACLE_H_
