#ifndef ANKER_MVCC_INTENT_TABLE_H_
#define ANKER_MVCC_INTENT_TABLE_H_

// Write intents for cross-shard two-phase commit (ROADMAP item 2, the
// Percolator-style lock/intent/committed split). A prepared distributed
// transaction stages its write set here — locked and INVISIBLE — instead
// of in the version chains: chains keep holding committed data only, so
// every scan/GC/checkpoint invariant of the single-node engine survives
// unchanged. An intent pins its slots until the transaction's outcome
// (decided at the primary shard) commits or aborts it; readers that hit a
// foreign intent are bounced to the primary for resolution instead of
// guessing (docs/SERVER.md, "2PC surface").
//
// A bounded outcome ledger remembers decided gtids so that (a) a
// duplicate COMMIT_PREPARED / ABORT_PREPARED is idempotent and (b) a
// zombie PREPARE_TXN arriving after its transaction was resolved-as-
// aborted is fenced off instead of re-locking rows forever.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/timestamp_oracle.h"

namespace anker::storage {
class Column;
}  // namespace anker::storage

namespace anker::mvcc {

/// Outcome of a distributed transaction as this shard knows it.
enum class TxnOutcome : uint8_t {
  kPending = 0,
  kCommitted = 1,
  kAborted = 2,
};

/// One staged slot write of a prepared transaction.
struct IntentWrite {
  storage::Column* column = nullptr;
  uint64_t row = 0;
  uint64_t new_raw = 0;
};

/// What a reader learns when it hits an intent: whose it is and where the
/// outcome will be decided.
struct IntentInfo {
  uint64_t gtid = 0;
  uint32_t primary_shard = 0;
  Timestamp prepare_ts = 0;
};

/// A prepared (phase-one complete, outcome unknown) transaction.
struct PreparedTxn {
  uint64_t gtid = 0;
  uint32_t primary_shard = 0;
  Timestamp start_ts = 0;
  Timestamp prepare_ts = 0;
  std::vector<IntentWrite> writes;
};

class IntentTable {
 public:
  IntentTable() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(IntentTable);

  /// Stages `txn`'s writes as intents. kResourceBusy if any slot already
  /// carries an intent of a DIFFERENT transaction; kAborted if the gtid
  /// was already resolved as aborted (zombie prepare after a reader-
  /// driven abort); kInvalidArgument if already committed. Re-preparing a
  /// still-pending gtid is idempotent (returns OK without re-staging).
  Status Place(PreparedTxn txn);

  /// Intent covering (column, row), if any. Lock-free when no distributed
  /// transaction is in flight — the common case for every point read.
  bool Lookup(const storage::Column* column, uint64_t row,
              IntentInfo* info) const;

  /// Pending transaction by gtid (copies the staged write set).
  bool Get(uint64_t gtid, PreparedTxn* out) const;

  /// Unstages a pending transaction, handing back its write set. False if
  /// the gtid has no pending entry.
  bool Remove(uint64_t gtid, PreparedTxn* out);

  /// Records a decided outcome (idempotent; first decision wins). The
  /// ledger is FIFO-bounded — old entries eventually fall out, by which
  /// time no zombie of that transaction can still be wandering.
  void RecordOutcome(uint64_t gtid, TxnOutcome outcome, Timestamp commit_ts);

  /// Ledger lookup: kPending when the gtid is unknown or still staged.
  TxnOutcome OutcomeOf(uint64_t gtid, Timestamp* commit_ts) const;

  /// Number of prepared-but-undecided transactions.
  size_t PendingCount() const;

  /// Checkpoint support: consistent copies of both maps.
  std::vector<PreparedTxn> SnapshotPending() const;
  struct OutcomeEntry {
    uint64_t gtid;
    TxnOutcome outcome;
    Timestamp commit_ts;
  };
  std::vector<OutcomeEntry> SnapshotOutcomes() const;

  /// Ledger capacity before FIFO eviction (large enough that a decided
  /// gtid outlives any plausible zombie or duplicate of itself).
  static constexpr size_t kMaxOutcomes = 65536;

 private:
  struct SlotKey {
    const void* column;
    uint64_t row;
    bool operator==(const SlotKey& other) const {
      return column == other.column && row == other.row;
    }
  };
  struct SlotKeyHash {
    size_t operator()(const SlotKey& key) const {
      return std::hash<const void*>()(key.column) ^
             std::hash<uint64_t>()(key.row * 0x9E3779B97F4A7C15ULL);
    }
  };
  struct Outcome {
    TxnOutcome outcome;
    Timestamp commit_ts;
  };

  void RecordOutcomeLocked(uint64_t gtid, TxnOutcome outcome,
                           Timestamp commit_ts);

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, PreparedTxn> pending_;
  std::unordered_map<SlotKey, uint64_t, SlotKeyHash> slots_;  ///< slot->gtid
  std::unordered_map<uint64_t, Outcome> outcomes_;
  std::deque<uint64_t> outcome_fifo_;

  /// Fast path for readers: staged slot count. Zero (the steady state of
  /// a shard with no 2PC in flight) lets Lookup return without touching
  /// the mutex.
  std::atomic<size_t> intent_count_{0};
};

}  // namespace anker::mvcc

#endif  // ANKER_MVCC_INTENT_TABLE_H_
