#ifndef ANKER_MVCC_ACTIVE_TXN_REGISTRY_H_
#define ANKER_MVCC_ACTIVE_TXN_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "common/macros.h"
#include "mvcc/timestamp_oracle.h"

namespace anker::mvcc {

/// Tracks the set of in-flight transactions. The garbage collector (and
/// the snapshot manager when deciding whether an old snapshot may be
/// dropped) needs two facts: the minimum start timestamp of any active
/// transaction, and whether every transaction active at some earlier point
/// has finished (grace periods for deferred frees).
class ActiveTxnRegistry {
 public:
  ActiveTxnRegistry() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(ActiveTxnRegistry);

  /// Registers a transaction begin; returns a process-unique serial.
  uint64_t Begin(Timestamp start_ts);

  /// Unregisters (commit or abort).
  void End(uint64_t serial);

  /// Minimum start_ts over active transactions, or `fallback` when idle.
  Timestamp MinStartTs(Timestamp fallback) const;

  /// Minimum serial over active transactions, or UINT64_MAX when idle.
  uint64_t MinActiveSerial() const;

  /// Last serial issued so far.
  uint64_t CurrentSerial() const;

  size_t ActiveCount() const;

 private:
  mutable std::mutex mutex_;
  std::map<uint64_t, Timestamp> active_;  ///< serial -> start_ts.
  uint64_t next_serial_ = 1;
};

}  // namespace anker::mvcc

#endif  // ANKER_MVCC_ACTIVE_TXN_REGISTRY_H_
