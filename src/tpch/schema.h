#ifndef ANKER_TPCH_SCHEMA_H_
#define ANKER_TPCH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace anker::tpch {

/// Table names used throughout the workload.
inline constexpr const char* kLineitem = "lineitem";
inline constexpr const char* kOrders = "orders";
inline constexpr const char* kPart = "part";
inline constexpr const char* kCustomer = "customer";
inline constexpr const char* kSupplier = "supplier";
inline constexpr const char* kPartsupp = "partsupp";
inline constexpr const char* kNation = "nation";
inline constexpr const char* kRegion = "region";

/// Dates are stored as days since 1992-01-01 (the TPC-H order-date epoch).
/// START/END span the generator's o_orderdate range; shipdate etc. extend
/// a bit past END.
inline constexpr int64_t kDateEpochDays = 0;          // 1992-01-01
inline constexpr int64_t kOrderDateMaxDays = 2405;    // ~1998-08-02
inline constexpr int64_t kShipDateMaxDays = 2526;     // ~1998-12-01

/// Schema of the LINEITEM subset (the columns the paper's workload
/// touches, Section 5.2, plus the surrogate columns the TPC-H 22 suite
/// derives from the free-text fields the subset does not store:
/// l_shipinstruct replaces the spec's string column with a dictionary,
/// l_shipyear pre-extracts year(l_shipdate) since the expression language
/// has no date-part functions).
const std::vector<storage::ColumnDef>& LineitemSchema();

/// Schema of the ORDERS subset. o_orderyear pre-extracts
/// year(o_orderdate); o_comment_class stands in for the spec's comment
/// LIKE-patterns (Q13) as a small integer class.
const std::vector<storage::ColumnDef>& OrdersSchema();

/// Schema of the PART subset. p_name_color stands in for the color word
/// inside p_name (Q9); p_is_promo pre-computes "p_type like 'PROMO%'"
/// (Q14).
const std::vector<storage::ColumnDef>& PartSchema();

/// Schema of the CUSTOMER subset. c_phone_cc is the phone country code
/// (Q22), derived from the nation key exactly like the spec's generator.
const std::vector<storage::ColumnDef>& CustomerSchema();

/// Schema of the SUPPLIER subset. s_is_complaint pre-computes the Q16
/// "comment like '%Customer%Complaints%'" predicate.
const std::vector<storage::ColumnDef>& SupplierSchema();

/// Schema of the PARTSUPP subset.
const std::vector<storage::ColumnDef>& PartsuppSchema();

/// Schema of NATION (25 fixed rows).
const std::vector<storage::ColumnDef>& NationSchema();

/// Schema of REGION (5 fixed rows).
const std::vector<storage::ColumnDef>& RegionSchema();

/// Composite primary key of a lineitem row: (l_orderkey, l_linenumber)
/// packed into one u64 (linenumber is 1..7).
inline uint64_t LineitemKey(int64_t orderkey, int64_t linenumber) {
  return static_cast<uint64_t>(orderkey) * 8 +
         static_cast<uint64_t>(linenumber);
}

}  // namespace anker::tpch

#endif  // ANKER_TPCH_SCHEMA_H_
