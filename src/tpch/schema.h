#ifndef ANKER_TPCH_SCHEMA_H_
#define ANKER_TPCH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace anker::tpch {

/// Table names used throughout the workload.
inline constexpr const char* kLineitem = "lineitem";
inline constexpr const char* kOrders = "orders";
inline constexpr const char* kPart = "part";

/// Dates are stored as days since 1992-01-01 (the TPC-H order-date epoch).
/// START/END span the generator's o_orderdate range; shipdate etc. extend
/// a bit past END.
inline constexpr int64_t kDateEpochDays = 0;          // 1992-01-01
inline constexpr int64_t kOrderDateMaxDays = 2405;    // ~1998-08-02
inline constexpr int64_t kShipDateMaxDays = 2526;     // ~1998-12-01

/// Schema of the LINEITEM subset (the columns the paper's workload
/// touches, Section 5.2).
const std::vector<storage::ColumnDef>& LineitemSchema();

/// Schema of the ORDERS subset.
const std::vector<storage::ColumnDef>& OrdersSchema();

/// Schema of the PART subset.
const std::vector<storage::ColumnDef>& PartSchema();

/// Composite primary key of a lineitem row: (l_orderkey, l_linenumber)
/// packed into one u64 (linenumber is 1..7).
inline uint64_t LineitemKey(int64_t orderkey, int64_t linenumber) {
  return static_cast<uint64_t>(orderkey) * 8 +
         static_cast<uint64_t>(linenumber);
}

}  // namespace anker::tpch

#endif  // ANKER_TPCH_SCHEMA_H_
