#include "tpch/schema.h"

namespace anker::tpch {

using storage::ColumnDef;
using storage::ValueType;

const std::vector<ColumnDef>& LineitemSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"l_orderkey", ValueType::kInt64},
      {"l_partkey", ValueType::kInt64},
      {"l_suppkey", ValueType::kInt64},
      {"l_linenumber", ValueType::kInt64},
      {"l_quantity", ValueType::kDouble},
      {"l_extendedprice", ValueType::kDouble},
      {"l_discount", ValueType::kDouble},
      {"l_tax", ValueType::kDouble},
      {"l_returnflag", ValueType::kDict32},
      {"l_linestatus", ValueType::kDict32},
      {"l_shipdate", ValueType::kDate},
      {"l_commitdate", ValueType::kDate},
      {"l_receiptdate", ValueType::kDate},
      {"l_shipmode", ValueType::kDict32},
      {"l_shipinstruct", ValueType::kDict32},
      {"l_shipyear", ValueType::kInt64},
  };
  return *schema;
}

const std::vector<ColumnDef>& OrdersSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"o_orderkey", ValueType::kInt64},
      {"o_custkey", ValueType::kInt64},
      {"o_orderstatus", ValueType::kDict32},
      {"o_totalprice", ValueType::kDouble},
      {"o_orderdate", ValueType::kDate},
      {"o_orderpriority", ValueType::kDict32},
      {"o_shippriority", ValueType::kInt64},
      {"o_orderyear", ValueType::kInt64},
      {"o_comment_class", ValueType::kInt64},
  };
  return *schema;
}

const std::vector<ColumnDef>& PartSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"p_partkey", ValueType::kInt64},
      {"p_brand", ValueType::kDict32},
      {"p_size", ValueType::kInt64},
      {"p_container", ValueType::kDict32},
      {"p_type", ValueType::kDict32},
      {"p_retailprice", ValueType::kDouble},
      {"p_name_color", ValueType::kDict32},
      {"p_is_promo", ValueType::kInt64},
  };
  return *schema;
}

const std::vector<ColumnDef>& CustomerSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"c_custkey", ValueType::kInt64},
      {"c_nationkey", ValueType::kInt64},
      {"c_mktsegment", ValueType::kDict32},
      {"c_acctbal", ValueType::kDouble},
      {"c_phone_cc", ValueType::kInt64},
  };
  return *schema;
}

const std::vector<ColumnDef>& SupplierSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"s_suppkey", ValueType::kInt64},
      {"s_nationkey", ValueType::kInt64},
      {"s_acctbal", ValueType::kDouble},
      {"s_is_complaint", ValueType::kInt64},
  };
  return *schema;
}

const std::vector<ColumnDef>& PartsuppSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"ps_partkey", ValueType::kInt64},
      {"ps_suppkey", ValueType::kInt64},
      {"ps_availqty", ValueType::kDouble},
      {"ps_supplycost", ValueType::kDouble},
  };
  return *schema;
}

const std::vector<ColumnDef>& NationSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"n_nationkey", ValueType::kInt64},
      {"n_name", ValueType::kDict32},
      {"n_regionkey", ValueType::kInt64},
  };
  return *schema;
}

const std::vector<ColumnDef>& RegionSchema() {
  static const std::vector<ColumnDef>* schema = new std::vector<ColumnDef>{
      {"r_regionkey", ValueType::kInt64},
      {"r_name", ValueType::kDict32},
  };
  return *schema;
}

}  // namespace anker::tpch
