#include "tpch/datagen.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "tpch/schema.h"

namespace anker::tpch {

namespace {

using storage::EncodeDate;
using storage::EncodeDict;
using storage::EncodeDouble;
using storage::EncodeInt64;

/// Builds the small string domains the OLTP transactions sample from.
struct Domains {
  std::vector<std::string> returnflags{"R", "A", "N"};
  std::vector<std::string> linestatuses{"O", "F"};
  std::vector<std::string> shipmodes{"AIR",  "RAIL", "SHIP", "TRUCK",
                                     "MAIL", "FOB",  "REG AIR"};
  std::vector<std::string> orderstatuses{"O", "F", "P"};
  std::vector<std::string> priorities{"1-URGENT", "2-HIGH", "3-MEDIUM",
                                      "4-NOT SPECIFIED", "5-LOW"};
  std::vector<std::string> brands;      // Brand#11 .. Brand#55
  std::vector<std::string> containers;  // e.g. "SM CASE"
  std::vector<std::string> types;       // e.g. "STANDARD ANODIZED TIN"
  std::vector<std::string> segments{"AUTOMOBILE", "BUILDING", "FURNITURE",
                                    "HOUSEHOLD", "MACHINERY"};
  std::vector<std::string> shipinstructs{"DELIVER IN PERSON", "COLLECT COD",
                                         "NONE", "TAKE BACK RETURN"};
  std::vector<std::string> colors{"almond", "azure",  "blue",   "chocolate",
                                  "forest", "green",  "ivory",  "lavender",
                                  "metal",  "peach",  "red",    "yellow"};
  std::vector<std::string> regions{"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                   "MIDDLE EAST"};
  std::vector<std::string> nations{
      "ALGERIA",       "ARGENTINA", "BRAZIL",  "CANADA",  "EGYPT",
      "ETHIOPIA",      "FRANCE",    "GERMANY", "INDIA",   "INDONESIA",
      "IRAN",          "IRAQ",      "JAPAN",   "JORDAN",  "KENYA",
      "MOROCCO",       "MOZAMBIQUE", "PERU",   "CHINA",   "ROMANIA",
      "SAUDI ARABIA",  "VIETNAM",   "RUSSIA",  "UNITED KINGDOM",
      "UNITED STATES"};

  Domains() {
    for (int m = 1; m <= 5; ++m) {
      for (int n = 1; n <= 5; ++n) {
        brands.push_back("Brand#" + std::to_string(m) + std::to_string(n));
      }
    }
    const char* sizes[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
    const char* kinds[] = {"CASE", "BOX", "BAG", "JAR",
                           "PKG",  "PACK", "CAN", "DRUM"};
    for (const char* s : sizes) {
      for (const char* k : kinds) {
        containers.push_back(std::string(s) + " " + k);
      }
    }
    const char* syl1[] = {"STANDARD", "SMALL", "MEDIUM",
                          "LARGE",    "ECONOMY", "PROMO"};
    const char* syl2[] = {"ANODIZED", "BURNISHED", "PLATED",
                          "POLISHED", "BRUSHED"};
    const char* syl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
    for (const char* a : syl1) {
      for (const char* b : syl2) {
        for (const char* c : syl3) {
          types.push_back(std::string(a) + " " + b + " " + c);
        }
      }
    }
  }
};

uint32_t Code(storage::Table* table, const char* column,
              const std::string& value) {
  return table->GetDictionary(column)->GetOrAdd(value);
}

}  // namespace

Result<TpchInstance> LoadTpch(engine::Database* db,
                              const TpchConfig& config) {
  Domains domains;
  Rng rng(config.seed);

  TpchInstance instance;
  instance.lineitem_rows = config.lineitem_rows;
  instance.orders_rows = config.OrdersRows();
  instance.part_rows = config.PartRows();

  // ---- PART -------------------------------------------------------------
  {
    auto table = db->CreateTable(kPart, PartSchema(), instance.part_rows);
    if (!table.ok()) return table.status();
    storage::Table* part = table.value();
    instance.part = part;
    part->CreatePrimaryIndex(instance.part_rows);

    storage::Column* partkey = part->GetColumn("p_partkey");
    storage::Column* brand = part->GetColumn("p_brand");
    storage::Column* size = part->GetColumn("p_size");
    storage::Column* container = part->GetColumn("p_container");
    storage::Column* type = part->GetColumn("p_type");
    storage::Column* retail = part->GetColumn("p_retailprice");

    for (size_t row = 0; row < instance.part_rows; ++row) {
      const int64_t key = static_cast<int64_t>(row) + 1;
      partkey->LoadValue(row, EncodeInt64(key));
      brand->LoadValue(
          row, EncodeDict(Code(part, "p_brand",
                               domains.brands[rng.NextBounded(
                                   domains.brands.size())])));
      size->LoadValue(row, EncodeInt64(rng.NextInRange(1, 50)));
      container->LoadValue(
          row, EncodeDict(Code(part, "p_container",
                               domains.containers[rng.NextBounded(
                                   domains.containers.size())])));
      type->LoadValue(row,
                      EncodeDict(Code(part, "p_type",
                                      domains.types[rng.NextBounded(
                                          domains.types.size())])));
      // TPC-H retail price formula shape: 900 + key-dependent component.
      retail->LoadValue(
          row, EncodeDouble(900.0 + (static_cast<double>(key % 1000) / 10.0) +
                            100.0 * static_cast<double>(key % 10)));
      ANKER_RETURN_IF_ERROR(part->primary_index()->Insert(
          static_cast<uint64_t>(key), row));
    }
  }

  // ---- ORDERS -----------------------------------------------------------
  std::vector<int64_t> order_dates(instance.orders_rows);
  {
    auto table = db->CreateTable(kOrders, OrdersSchema(),
                                 instance.orders_rows);
    if (!table.ok()) return table.status();
    storage::Table* orders = table.value();
    instance.orders = orders;
    orders->CreatePrimaryIndex(instance.orders_rows);

    storage::Column* orderkey = orders->GetColumn("o_orderkey");
    storage::Column* custkey = orders->GetColumn("o_custkey");
    storage::Column* status = orders->GetColumn("o_orderstatus");
    storage::Column* total = orders->GetColumn("o_totalprice");
    storage::Column* date = orders->GetColumn("o_orderdate");
    storage::Column* priority = orders->GetColumn("o_orderpriority");
    storage::Column* shipprio = orders->GetColumn("o_shippriority");

    for (size_t row = 0; row < instance.orders_rows; ++row) {
      const int64_t key = static_cast<int64_t>(row) + 1;
      const int64_t odate = rng.NextInRange(0, kOrderDateMaxDays);
      order_dates[row] = odate;
      orderkey->LoadValue(row, EncodeInt64(key));
      custkey->LoadValue(row, EncodeInt64(rng.NextInRange(
                                  1, std::max<int64_t>(
                                         1, instance.orders_rows / 10))));
      status->LoadValue(
          row, EncodeDict(Code(orders, "o_orderstatus",
                               domains.orderstatuses[rng.NextBounded(
                                   domains.orderstatuses.size())])));
      total->LoadValue(row,
                       EncodeDouble(rng.NextDoubleInRange(850.0, 450000.0)));
      date->LoadValue(row, EncodeDate(odate));
      priority->LoadValue(
          row, EncodeDict(Code(orders, "o_orderpriority",
                               domains.priorities[rng.NextBounded(
                                   domains.priorities.size())])));
      shipprio->LoadValue(row, EncodeInt64(0));
      ANKER_RETURN_IF_ERROR(orders->primary_index()->Insert(
          static_cast<uint64_t>(key), row));
    }
  }

  // ---- LINEITEM ---------------------------------------------------------
  {
    auto table = db->CreateTable(kLineitem, LineitemSchema(),
                                 instance.lineitem_rows);
    if (!table.ok()) return table.status();
    storage::Table* li = table.value();
    instance.lineitem = li;
    li->CreatePrimaryIndex(instance.lineitem_rows);

    storage::Column* orderkey = li->GetColumn("l_orderkey");
    storage::Column* partkey = li->GetColumn("l_partkey");
    storage::Column* suppkey = li->GetColumn("l_suppkey");
    storage::Column* linenumber = li->GetColumn("l_linenumber");
    storage::Column* quantity = li->GetColumn("l_quantity");
    storage::Column* extprice = li->GetColumn("l_extendedprice");
    storage::Column* discount = li->GetColumn("l_discount");
    storage::Column* tax = li->GetColumn("l_tax");
    storage::Column* retflag = li->GetColumn("l_returnflag");
    storage::Column* linestatus = li->GetColumn("l_linestatus");
    storage::Column* shipdate = li->GetColumn("l_shipdate");
    storage::Column* commitdate = li->GetColumn("l_commitdate");
    storage::Column* receiptdate = li->GetColumn("l_receiptdate");
    storage::Column* shipmode = li->GetColumn("l_shipmode");

    size_t row = 0;
    int64_t current_order = 0;
    while (row < instance.lineitem_rows) {
      ANKER_CHECK_MSG(current_order <
                          static_cast<int64_t>(instance.orders_rows),
                      "orders exhausted before lineitem filled");
      ++current_order;
      // Pick 1..7 lines per order (TPC-H), but never so few that the
      // remaining orders cannot cover the remaining lineitem rows: keys
      // must stay unique, so orders are never reused.
      const int64_t remaining_rows =
          static_cast<int64_t>(instance.lineitem_rows - row);
      const int64_t remaining_orders =
          static_cast<int64_t>(instance.orders_rows) - current_order + 1;
      const int64_t min_lines = std::min<int64_t>(
          7, (remaining_rows + remaining_orders - 1) / remaining_orders);
      const int64_t lines = rng.NextInRange(std::max<int64_t>(1, min_lines),
                                            7);
      const int64_t odate = order_dates[current_order - 1];
      for (int64_t line = 1;
           line <= lines && row < instance.lineitem_rows; ++line, ++row) {
        const int64_t pkey =
            rng.NextInRange(1, static_cast<int64_t>(instance.part_rows));
        const double qty = static_cast<double>(rng.NextInRange(1, 50));
        const double price_per_unit = rng.NextDoubleInRange(900.0, 2100.0);
        const int64_t sdate =
            std::min<int64_t>(odate + rng.NextInRange(1, 121),
                              kShipDateMaxDays);

        orderkey->LoadValue(row, EncodeInt64(current_order));
        partkey->LoadValue(row, EncodeInt64(pkey));
        suppkey->LoadValue(
            row, EncodeInt64(rng.NextInRange(
                     1, std::max<int64_t>(10, instance.part_rows / 20))));
        linenumber->LoadValue(row, EncodeInt64(line));
        quantity->LoadValue(row, EncodeDouble(qty));
        extprice->LoadValue(row, EncodeDouble(qty * price_per_unit));
        discount->LoadValue(
            row, EncodeDouble(static_cast<double>(rng.NextInRange(0, 10)) /
                              100.0));
        tax->LoadValue(row, EncodeDouble(
                                static_cast<double>(rng.NextInRange(0, 8)) /
                                100.0));
        // Return flag correlates with receipt date in TPC-H; approximate:
        // old shipments are R/A, recent ones N.
        const bool old_shipment = sdate < 1718;  // ~1996-09-15 cutoff
        const std::string& flag =
            old_shipment ? domains.returnflags[rng.NextBounded(2)]
                         : domains.returnflags[2];
        retflag->LoadValue(row,
                           EncodeDict(Code(li, "l_returnflag", flag)));
        const std::string& ls = old_shipment ? domains.linestatuses[1]
                                             : domains.linestatuses[0];
        linestatus->LoadValue(row,
                              EncodeDict(Code(li, "l_linestatus", ls)));
        shipdate->LoadValue(row, EncodeDate(sdate));
        commitdate->LoadValue(row,
                              EncodeDate(odate + rng.NextInRange(30, 90)));
        receiptdate->LoadValue(row,
                               EncodeDate(sdate + rng.NextInRange(1, 30)));
        shipmode->LoadValue(
            row, EncodeDict(Code(li, "l_shipmode",
                                 domains.shipmodes[rng.NextBounded(
                                     domains.shipmodes.size())])));
        ANKER_RETURN_IF_ERROR(li->primary_index()->Insert(
            LineitemKey(current_order, line), row));
      }
    }
  }

  // ---- pass 2: dimension tables + surrogate columns ----------------------
  // A second, independently seeded stream: the pass-1 draws above stay
  // byte-identical to earlier revisions of the generator.
  Rng rng2(config.seed ^ 0x9e3779b97f4a7c15ULL);
  instance.customer_rows = config.CustomerRows();
  instance.supplier_rows = config.SupplierRows();
  instance.partsupp_rows = config.PartsuppRows();
  const int64_t supplier_rows =
      static_cast<int64_t>(instance.supplier_rows);

  // Register the full string domains on every dictionary column (appended
  // after pass 1, so codes assigned there are unchanged): string-typed
  // query parameters must resolve for any spec value, not just the ones a
  // small instance happened to draw.
  auto define_all = [](storage::Table* table, const char* column,
                       const std::vector<std::string>& values) {
    for (const std::string& v : values) {
      table->GetDictionary(column)->GetOrAdd(v);
    }
  };
  define_all(instance.part, "p_brand", domains.brands);
  define_all(instance.part, "p_container", domains.containers);
  define_all(instance.part, "p_type", domains.types);
  define_all(instance.lineitem, "l_shipmode", domains.shipmodes);
  define_all(instance.lineitem, "l_returnflag", domains.returnflags);
  define_all(instance.lineitem, "l_linestatus", domains.linestatuses);
  define_all(instance.orders, "o_orderstatus", domains.orderstatuses);
  define_all(instance.orders, "o_orderpriority", domains.priorities);

  // ---- REGION / NATION (fixed rows) --------------------------------------
  {
    auto table = db->CreateTable(kRegion, RegionSchema(),
                                 domains.regions.size());
    if (!table.ok()) return table.status();
    instance.region = table.value();
    for (size_t row = 0; row < domains.regions.size(); ++row) {
      instance.region->GetColumn("r_regionkey")
          ->LoadValue(row, EncodeInt64(static_cast<int64_t>(row)));
      instance.region->GetColumn("r_name")
          ->LoadValue(row, EncodeDict(Code(instance.region, "r_name",
                                           domains.regions[row])));
    }
  }
  {
    auto table = db->CreateTable(kNation, NationSchema(),
                                 domains.nations.size());
    if (!table.ok()) return table.status();
    instance.nation = table.value();
    for (size_t row = 0; row < domains.nations.size(); ++row) {
      instance.nation->GetColumn("n_nationkey")
          ->LoadValue(row, EncodeInt64(static_cast<int64_t>(row)));
      instance.nation->GetColumn("n_name")
          ->LoadValue(row, EncodeDict(Code(instance.nation, "n_name",
                                           domains.nations[row])));
      instance.nation->GetColumn("n_regionkey")
          ->LoadValue(row, EncodeInt64(static_cast<int64_t>(row % 5)));
    }
  }

  // ---- SUPPLIER -----------------------------------------------------------
  {
    auto table = db->CreateTable(kSupplier, SupplierSchema(),
                                 instance.supplier_rows);
    if (!table.ok()) return table.status();
    storage::Table* supp = table.value();
    instance.supplier = supp;
    for (size_t row = 0; row < instance.supplier_rows; ++row) {
      supp->GetColumn("s_suppkey")
          ->LoadValue(row, EncodeInt64(static_cast<int64_t>(row) + 1));
      // Round-robin, not sampled: every nation holds suppliers even at
      // test scale, so nation-parameterized queries (Q8/Q20/Q21) always
      // have data to select.
      supp->GetColumn("s_nationkey")
          ->LoadValue(row, EncodeInt64(static_cast<int64_t>(row) % 25));
      supp->GetColumn("s_acctbal")
          ->LoadValue(row, EncodeDouble(
                               rng2.NextDoubleInRange(-999.99, 9999.99)));
      // ~10% of suppliers match the Q16 "Customer Complaints" pattern.
      supp->GetColumn("s_is_complaint")
          ->LoadValue(row, EncodeInt64(rng2.NextBounded(10) == 0 ? 1 : 0));
    }
  }

  // ---- CUSTOMER -----------------------------------------------------------
  {
    auto table = db->CreateTable(kCustomer, CustomerSchema(),
                                 instance.customer_rows);
    if (!table.ok()) return table.status();
    storage::Table* cust = table.value();
    instance.customer = cust;
    for (size_t row = 0; row < instance.customer_rows; ++row) {
      const int64_t nation = rng2.NextInRange(0, 24);
      cust->GetColumn("c_custkey")
          ->LoadValue(row, EncodeInt64(static_cast<int64_t>(row) + 1));
      cust->GetColumn("c_nationkey")->LoadValue(row, EncodeInt64(nation));
      cust->GetColumn("c_mktsegment")
          ->LoadValue(row, EncodeDict(Code(cust, "c_mktsegment",
                                           domains.segments[rng2.NextBounded(
                                               domains.segments.size())])));
      cust->GetColumn("c_acctbal")
          ->LoadValue(row, EncodeDouble(
                               rng2.NextDoubleInRange(-999.99, 9999.99)));
      // Phone country code = nationkey + 10, like dbgen.
      cust->GetColumn("c_phone_cc")->LoadValue(row,
                                               EncodeInt64(nation + 10));
    }
  }

  // ---- PARTSUPP: 4 distinct suppliers per part ---------------------------
  {
    auto table = db->CreateTable(kPartsupp, PartsuppSchema(),
                                 instance.partsupp_rows);
    if (!table.ok()) return table.status();
    storage::Table* ps = table.value();
    instance.partsupp = ps;
    size_t row = 0;
    for (size_t p = 0; p < instance.part_rows; ++p) {
      const int64_t partkey = static_cast<int64_t>(p) + 1;
      for (int64_t i = 0; i < 4; ++i, ++row) {
        ps->GetColumn("ps_partkey")->LoadValue(row, EncodeInt64(partkey));
        ps->GetColumn("ps_suppkey")
            ->LoadValue(row, EncodeInt64(PartsuppSupplier(partkey, i,
                                                          supplier_rows)));
        ps->GetColumn("ps_availqty")
            ->LoadValue(row, EncodeDouble(static_cast<double>(
                                 rng2.NextInRange(1, 9999))));
        ps->GetColumn("ps_supplycost")
            ->LoadValue(row,
                        EncodeDouble(rng2.NextDoubleInRange(1.0, 1000.0)));
      }
    }
  }

  // ---- surrogate columns on the pass-1 tables ----------------------------
  {
    storage::Table* part = instance.part;
    storage::Column* type = part->GetColumn("p_type");
    const storage::Dictionary* types = part->GetDictionary("p_type");
    for (size_t row = 0; row < instance.part_rows; ++row) {
      part->GetColumn("p_name_color")
          ->LoadValue(row, EncodeDict(Code(part, "p_name_color",
                                           domains.colors[rng2.NextBounded(
                                               domains.colors.size())])));
      const std::string type_name = types->Decode(static_cast<uint32_t>(
          storage::DecodeDict(type->ReadLatestRaw(row))));
      part->GetColumn("p_is_promo")
          ->LoadValue(row, EncodeInt64(
                               type_name.rfind("PROMO", 0) == 0 ? 1 : 0));
    }
  }
  {
    storage::Table* orders = instance.orders;
    storage::Column* date = orders->GetColumn("o_orderdate");
    for (size_t row = 0; row < instance.orders_rows; ++row) {
      const int64_t odate = storage::DecodeDate(date->ReadLatestRaw(row));
      orders->GetColumn("o_orderyear")
          ->LoadValue(row, EncodeInt64(1992 + odate / 365));
      orders->GetColumn("o_comment_class")
          ->LoadValue(row, EncodeInt64(rng2.NextInRange(0, 9)));
    }
  }
  {
    storage::Table* li = instance.lineitem;
    storage::Column* shipdate = li->GetColumn("l_shipdate");
    storage::Column* partkey = li->GetColumn("l_partkey");
    for (size_t row = 0; row < instance.lineitem_rows; ++row) {
      li->GetColumn("l_shipinstruct")
          ->LoadValue(row,
                      EncodeDict(Code(li, "l_shipinstruct",
                                      domains.shipinstructs[rng2.NextBounded(
                                          domains.shipinstructs.size())])));
      const int64_t sdate =
          storage::DecodeDate(shipdate->ReadLatestRaw(row));
      li->GetColumn("l_shipyear")
          ->LoadValue(row, EncodeInt64(1992 + sdate / 365));
      // Re-align l_suppkey to one of the part's four PARTSUPP suppliers so
      // the (l_partkey, l_suppkey) -> partsupp join has referential
      // integrity (Q9/Q20); pass 1's draw stays in the stream unused.
      const int64_t pkey =
          storage::DecodeInt64(partkey->ReadLatestRaw(row));
      li->GetColumn("l_suppkey")
          ->LoadValue(row, EncodeInt64(PartsuppSupplier(
                               pkey, rng2.NextInRange(0, 3),
                               supplier_rows)));
    }
  }

  return instance;
}

}  // namespace anker::tpch
