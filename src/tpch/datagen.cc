#include "tpch/datagen.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "tpch/schema.h"

namespace anker::tpch {

namespace {

using storage::EncodeDate;
using storage::EncodeDict;
using storage::EncodeDouble;
using storage::EncodeInt64;

/// Builds the small string domains the OLTP transactions sample from.
struct Domains {
  std::vector<std::string> returnflags{"R", "A", "N"};
  std::vector<std::string> linestatuses{"O", "F"};
  std::vector<std::string> shipmodes{"AIR",  "RAIL", "SHIP", "TRUCK",
                                     "MAIL", "FOB",  "REG AIR"};
  std::vector<std::string> orderstatuses{"O", "F", "P"};
  std::vector<std::string> priorities{"1-URGENT", "2-HIGH", "3-MEDIUM",
                                      "4-NOT SPECIFIED", "5-LOW"};
  std::vector<std::string> brands;      // Brand#11 .. Brand#55
  std::vector<std::string> containers;  // e.g. "SM CASE"
  std::vector<std::string> types;       // e.g. "STANDARD ANODIZED TIN"

  Domains() {
    for (int m = 1; m <= 5; ++m) {
      for (int n = 1; n <= 5; ++n) {
        brands.push_back("Brand#" + std::to_string(m) + std::to_string(n));
      }
    }
    const char* sizes[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
    const char* kinds[] = {"CASE", "BOX", "BAG", "JAR",
                           "PKG",  "PACK", "CAN", "DRUM"};
    for (const char* s : sizes) {
      for (const char* k : kinds) {
        containers.push_back(std::string(s) + " " + k);
      }
    }
    const char* syl1[] = {"STANDARD", "SMALL", "MEDIUM",
                          "LARGE",    "ECONOMY", "PROMO"};
    const char* syl2[] = {"ANODIZED", "BURNISHED", "PLATED",
                          "POLISHED", "BRUSHED"};
    const char* syl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
    for (const char* a : syl1) {
      for (const char* b : syl2) {
        for (const char* c : syl3) {
          types.push_back(std::string(a) + " " + b + " " + c);
        }
      }
    }
  }
};

uint32_t Code(storage::Table* table, const char* column,
              const std::string& value) {
  return table->GetDictionary(column)->GetOrAdd(value);
}

}  // namespace

Result<TpchInstance> LoadTpch(engine::Database* db,
                              const TpchConfig& config) {
  Domains domains;
  Rng rng(config.seed);

  TpchInstance instance;
  instance.lineitem_rows = config.lineitem_rows;
  instance.orders_rows = config.OrdersRows();
  instance.part_rows = config.PartRows();

  // ---- PART -------------------------------------------------------------
  {
    auto table = db->CreateTable(kPart, PartSchema(), instance.part_rows);
    if (!table.ok()) return table.status();
    storage::Table* part = table.value();
    instance.part = part;
    part->CreatePrimaryIndex(instance.part_rows);

    storage::Column* partkey = part->GetColumn("p_partkey");
    storage::Column* brand = part->GetColumn("p_brand");
    storage::Column* size = part->GetColumn("p_size");
    storage::Column* container = part->GetColumn("p_container");
    storage::Column* type = part->GetColumn("p_type");
    storage::Column* retail = part->GetColumn("p_retailprice");

    for (size_t row = 0; row < instance.part_rows; ++row) {
      const int64_t key = static_cast<int64_t>(row) + 1;
      partkey->LoadValue(row, EncodeInt64(key));
      brand->LoadValue(
          row, EncodeDict(Code(part, "p_brand",
                               domains.brands[rng.NextBounded(
                                   domains.brands.size())])));
      size->LoadValue(row, EncodeInt64(rng.NextInRange(1, 50)));
      container->LoadValue(
          row, EncodeDict(Code(part, "p_container",
                               domains.containers[rng.NextBounded(
                                   domains.containers.size())])));
      type->LoadValue(row,
                      EncodeDict(Code(part, "p_type",
                                      domains.types[rng.NextBounded(
                                          domains.types.size())])));
      // TPC-H retail price formula shape: 900 + key-dependent component.
      retail->LoadValue(
          row, EncodeDouble(900.0 + (static_cast<double>(key % 1000) / 10.0) +
                            100.0 * static_cast<double>(key % 10)));
      ANKER_RETURN_IF_ERROR(part->primary_index()->Insert(
          static_cast<uint64_t>(key), row));
    }
  }

  // ---- ORDERS -----------------------------------------------------------
  std::vector<int64_t> order_dates(instance.orders_rows);
  {
    auto table = db->CreateTable(kOrders, OrdersSchema(),
                                 instance.orders_rows);
    if (!table.ok()) return table.status();
    storage::Table* orders = table.value();
    instance.orders = orders;
    orders->CreatePrimaryIndex(instance.orders_rows);

    storage::Column* orderkey = orders->GetColumn("o_orderkey");
    storage::Column* custkey = orders->GetColumn("o_custkey");
    storage::Column* status = orders->GetColumn("o_orderstatus");
    storage::Column* total = orders->GetColumn("o_totalprice");
    storage::Column* date = orders->GetColumn("o_orderdate");
    storage::Column* priority = orders->GetColumn("o_orderpriority");
    storage::Column* shipprio = orders->GetColumn("o_shippriority");

    for (size_t row = 0; row < instance.orders_rows; ++row) {
      const int64_t key = static_cast<int64_t>(row) + 1;
      const int64_t odate = rng.NextInRange(0, kOrderDateMaxDays);
      order_dates[row] = odate;
      orderkey->LoadValue(row, EncodeInt64(key));
      custkey->LoadValue(row, EncodeInt64(rng.NextInRange(
                                  1, std::max<int64_t>(
                                         1, instance.orders_rows / 10))));
      status->LoadValue(
          row, EncodeDict(Code(orders, "o_orderstatus",
                               domains.orderstatuses[rng.NextBounded(
                                   domains.orderstatuses.size())])));
      total->LoadValue(row,
                       EncodeDouble(rng.NextDoubleInRange(850.0, 450000.0)));
      date->LoadValue(row, EncodeDate(odate));
      priority->LoadValue(
          row, EncodeDict(Code(orders, "o_orderpriority",
                               domains.priorities[rng.NextBounded(
                                   domains.priorities.size())])));
      shipprio->LoadValue(row, EncodeInt64(0));
      ANKER_RETURN_IF_ERROR(orders->primary_index()->Insert(
          static_cast<uint64_t>(key), row));
    }
  }

  // ---- LINEITEM ---------------------------------------------------------
  {
    auto table = db->CreateTable(kLineitem, LineitemSchema(),
                                 instance.lineitem_rows);
    if (!table.ok()) return table.status();
    storage::Table* li = table.value();
    instance.lineitem = li;
    li->CreatePrimaryIndex(instance.lineitem_rows);

    storage::Column* orderkey = li->GetColumn("l_orderkey");
    storage::Column* partkey = li->GetColumn("l_partkey");
    storage::Column* suppkey = li->GetColumn("l_suppkey");
    storage::Column* linenumber = li->GetColumn("l_linenumber");
    storage::Column* quantity = li->GetColumn("l_quantity");
    storage::Column* extprice = li->GetColumn("l_extendedprice");
    storage::Column* discount = li->GetColumn("l_discount");
    storage::Column* tax = li->GetColumn("l_tax");
    storage::Column* retflag = li->GetColumn("l_returnflag");
    storage::Column* linestatus = li->GetColumn("l_linestatus");
    storage::Column* shipdate = li->GetColumn("l_shipdate");
    storage::Column* commitdate = li->GetColumn("l_commitdate");
    storage::Column* receiptdate = li->GetColumn("l_receiptdate");
    storage::Column* shipmode = li->GetColumn("l_shipmode");

    size_t row = 0;
    int64_t current_order = 0;
    while (row < instance.lineitem_rows) {
      ANKER_CHECK_MSG(current_order <
                          static_cast<int64_t>(instance.orders_rows),
                      "orders exhausted before lineitem filled");
      ++current_order;
      // Pick 1..7 lines per order (TPC-H), but never so few that the
      // remaining orders cannot cover the remaining lineitem rows: keys
      // must stay unique, so orders are never reused.
      const int64_t remaining_rows =
          static_cast<int64_t>(instance.lineitem_rows - row);
      const int64_t remaining_orders =
          static_cast<int64_t>(instance.orders_rows) - current_order + 1;
      const int64_t min_lines = std::min<int64_t>(
          7, (remaining_rows + remaining_orders - 1) / remaining_orders);
      const int64_t lines = rng.NextInRange(std::max<int64_t>(1, min_lines),
                                            7);
      const int64_t odate = order_dates[current_order - 1];
      for (int64_t line = 1;
           line <= lines && row < instance.lineitem_rows; ++line, ++row) {
        const int64_t pkey =
            rng.NextInRange(1, static_cast<int64_t>(instance.part_rows));
        const double qty = static_cast<double>(rng.NextInRange(1, 50));
        const double price_per_unit = rng.NextDoubleInRange(900.0, 2100.0);
        const int64_t sdate =
            std::min<int64_t>(odate + rng.NextInRange(1, 121),
                              kShipDateMaxDays);

        orderkey->LoadValue(row, EncodeInt64(current_order));
        partkey->LoadValue(row, EncodeInt64(pkey));
        suppkey->LoadValue(
            row, EncodeInt64(rng.NextInRange(
                     1, std::max<int64_t>(10, instance.part_rows / 20))));
        linenumber->LoadValue(row, EncodeInt64(line));
        quantity->LoadValue(row, EncodeDouble(qty));
        extprice->LoadValue(row, EncodeDouble(qty * price_per_unit));
        discount->LoadValue(
            row, EncodeDouble(static_cast<double>(rng.NextInRange(0, 10)) /
                              100.0));
        tax->LoadValue(row, EncodeDouble(
                                static_cast<double>(rng.NextInRange(0, 8)) /
                                100.0));
        // Return flag correlates with receipt date in TPC-H; approximate:
        // old shipments are R/A, recent ones N.
        const bool old_shipment = sdate < 1718;  // ~1996-09-15 cutoff
        const std::string& flag =
            old_shipment ? domains.returnflags[rng.NextBounded(2)]
                         : domains.returnflags[2];
        retflag->LoadValue(row,
                           EncodeDict(Code(li, "l_returnflag", flag)));
        const std::string& ls = old_shipment ? domains.linestatuses[1]
                                             : domains.linestatuses[0];
        linestatus->LoadValue(row,
                              EncodeDict(Code(li, "l_linestatus", ls)));
        shipdate->LoadValue(row, EncodeDate(sdate));
        commitdate->LoadValue(row,
                              EncodeDate(odate + rng.NextInRange(30, 90)));
        receiptdate->LoadValue(row,
                               EncodeDate(sdate + rng.NextInRange(1, 30)));
        shipmode->LoadValue(
            row, EncodeDict(Code(li, "l_shipmode",
                                 domains.shipmodes[rng.NextBounded(
                                     domains.shipmodes.size())])));
        ANKER_RETURN_IF_ERROR(li->primary_index()->Insert(
            LineitemKey(current_order, line), row));
      }
    }
  }

  return instance;
}

}  // namespace anker::tpch
