#include "tpch/reference_kernels.h"

#include <unordered_map>
#include <unordered_set>

#include "tpch/schema.h"

namespace anker::tpch {

using engine::ColumnReader;
using engine::ScanDriver;
using storage::DecodeDate;
using storage::DecodeDict;
using storage::DecodeDouble;
using storage::DecodeInt64;

std::vector<storage::Column*> ReferenceKernels::ColumnsFor(OlapKind kind) const {
  storage::Table* li = instance_.lineitem;
  storage::Table* orders = instance_.orders;
  storage::Table* part = instance_.part;
  switch (kind) {
    case OlapKind::kQ1:
      return {li->GetColumn("l_shipdate"),     li->GetColumn("l_returnflag"),
              li->GetColumn("l_linestatus"),   li->GetColumn("l_quantity"),
              li->GetColumn("l_extendedprice"), li->GetColumn("l_discount"),
              li->GetColumn("l_tax")};
    case OlapKind::kQ4:
      return {orders->GetColumn("o_orderdate"),
              orders->GetColumn("o_orderpriority")};
    case OlapKind::kQ6:
      return {li->GetColumn("l_shipdate"), li->GetColumn("l_discount"),
              li->GetColumn("l_quantity"),
              li->GetColumn("l_extendedprice")};
    case OlapKind::kQ17:
      return {part->GetColumn("p_partkey"), part->GetColumn("p_brand"),
              part->GetColumn("p_container"), li->GetColumn("l_partkey"),
              li->GetColumn("l_quantity"),
              li->GetColumn("l_extendedprice")};
    case OlapKind::kScanLineitem:
      return {li->GetColumn("l_extendedprice")};
    case OlapKind::kScanOrders:
      return {orders->GetColumn("o_totalprice")};
    case OlapKind::kScanPart:
      return {part->GetColumn("p_retailprice")};
  }
  return {};
}

OlapResult ReferenceKernels::Run(OlapKind kind, const engine::OlapContext& ctx,
                            const OlapParams& params) const {
  switch (kind) {
    case OlapKind::kQ1:
      return RunQ1(ctx, params);
    case OlapKind::kQ4:
      return RunQ4(ctx, params);
    case OlapKind::kQ6:
      return RunQ6(ctx, params);
    case OlapKind::kQ17:
      return RunQ17(ctx, params);
    case OlapKind::kScanLineitem:
      return RunScan(ctx, instance_.lineitem, "l_extendedprice");
    case OlapKind::kScanOrders:
      return RunScan(ctx, instance_.orders, "o_totalprice");
    case OlapKind::kScanPart:
      return RunScan(ctx, instance_.part, "p_retailprice");
  }
  return OlapResult{};
}

// ---- Q1: pricing summary report ------------------------------------------
// select l_returnflag, l_linestatus, sum(qty), sum(extprice),
//        sum(extprice*(1-disc)), sum(extprice*(1-disc)*(1+tax)),
//        avg(qty), avg(extprice), avg(disc), count(*)
// from lineitem where l_shipdate <= '1998-12-01' - delta group by 1, 2.
OlapResult ReferenceKernels::RunQ1(const engine::OlapContext& ctx,
                              const OlapParams& params) const {
  storage::Table* li = instance_.lineitem;
  const ColumnReader shipdate = ctx.Reader(li->GetColumn("l_shipdate"));
  const ColumnReader retflag = ctx.Reader(li->GetColumn("l_returnflag"));
  const ColumnReader status = ctx.Reader(li->GetColumn("l_linestatus"));
  const ColumnReader quantity = ctx.Reader(li->GetColumn("l_quantity"));
  const ColumnReader extprice = ctx.Reader(li->GetColumn("l_extendedprice"));
  const ColumnReader discount = ctx.Reader(li->GetColumn("l_discount"));
  const ColumnReader tax = ctx.Reader(li->GetColumn("l_tax"));

  const int64_t cutoff = kShipDateMaxDays - params.q1_delta_days;

  // Group-by over (returnflag, linestatus): both domains are tiny dict
  // codes, so a fixed 8x8 accumulator array replaces a hash table.
  struct Group {
    double sum_qty = 0, sum_base = 0, sum_disc = 0, sum_charge = 0,
           sum_discount = 0;
    uint64_t count = 0;
  };
  struct Acc {
    Group groups[64];
    uint64_t rows = 0;
  };

  ScanDriver driver({&shipdate, &retflag, &status, &quantity, &extprice,
                     &discount, &tax});
  OlapResult result;
  Acc total{};
  driver.Fold<Acc>(
      &total,
      [&](Acc& acc, const auto& row) {
        ++acc.rows;
        if (DecodeDate(row.Col(0)) > cutoff) return;
        const uint32_t flag = DecodeDict(row.Col(1)) & 7;
        const uint32_t ls = DecodeDict(row.Col(2)) & 7;
        Group& g = acc.groups[flag * 8 + ls];
        const double qty = DecodeDouble(row.Col(3));
        const double price = DecodeDouble(row.Col(4));
        const double disc = DecodeDouble(row.Col(5));
        const double tx = DecodeDouble(row.Col(6));
        g.sum_qty += qty;
        g.sum_base += price;
        g.sum_disc += price * (1.0 - disc);
        g.sum_charge += price * (1.0 - disc) * (1.0 + tx);
        g.sum_discount += disc;
        ++g.count;
      },
      [](Acc& into, Acc&& from) {
        into.rows += from.rows;
        for (int i = 0; i < 64; ++i) {
          into.groups[i].sum_qty += from.groups[i].sum_qty;
          into.groups[i].sum_base += from.groups[i].sum_base;
          into.groups[i].sum_disc += from.groups[i].sum_disc;
          into.groups[i].sum_charge += from.groups[i].sum_charge;
          into.groups[i].sum_discount += from.groups[i].sum_discount;
          into.groups[i].count += from.groups[i].count;
        }
      },
      &result.scan, ctx.scan_options());

  result.rows_considered = total.rows;
  for (const Group& g : total.groups) {
    result.digest += g.sum_qty + g.sum_base + g.sum_disc + g.sum_charge +
                     static_cast<double>(g.count);
  }
  return result;
}

// ---- Q4 (single-table form, per the paper): order priority checking ------
// select o_orderpriority, count(*) from orders
// where o_orderdate in [d, d + 92 days) group by o_orderpriority.
OlapResult ReferenceKernels::RunQ4(const engine::OlapContext& ctx,
                              const OlapParams& params) const {
  storage::Table* orders = instance_.orders;
  const ColumnReader orderdate = ctx.Reader(orders->GetColumn("o_orderdate"));
  const ColumnReader priority =
      ctx.Reader(orders->GetColumn("o_orderpriority"));

  const int64_t lo = params.q4_start_day;
  const int64_t hi = params.q4_start_day + 92;

  struct Acc {
    uint64_t counts[16] = {0};
    uint64_t rows = 0;
  };
  ScanDriver driver({&orderdate, &priority});
  OlapResult result;
  Acc total{};
  driver.Fold<Acc>(
      &total,
      [&](Acc& acc, const auto& row) {
        ++acc.rows;
        const int64_t date = DecodeDate(row.Col(0));
        if (date < lo || date >= hi) return;
        ++acc.counts[DecodeDict(row.Col(1)) & 15];
      },
      [](Acc& into, Acc&& from) {
        into.rows += from.rows;
        for (int i = 0; i < 16; ++i) into.counts[i] += from.counts[i];
      },
      &result.scan, ctx.scan_options());

  result.rows_considered = total.rows;
  for (uint64_t count : total.counts) {
    result.digest += static_cast<double>(count);
  }
  return result;
}

// ---- Q6: forecasting revenue change ---------------------------------------
// select sum(l_extendedprice * l_discount) from lineitem
// where l_shipdate in [d, d+1y), l_discount in [x-0.01, x+0.01],
//       l_quantity < q.
OlapResult ReferenceKernels::RunQ6(const engine::OlapContext& ctx,
                              const OlapParams& params) const {
  storage::Table* li = instance_.lineitem;
  const ColumnReader shipdate = ctx.Reader(li->GetColumn("l_shipdate"));
  const ColumnReader discount = ctx.Reader(li->GetColumn("l_discount"));
  const ColumnReader quantity = ctx.Reader(li->GetColumn("l_quantity"));
  const ColumnReader extprice = ctx.Reader(li->GetColumn("l_extendedprice"));

  const int64_t lo = params.q6_start_day;
  const int64_t hi = params.q6_start_day + 365;
  const double disc_lo = params.q6_discount - 0.01001;
  const double disc_hi = params.q6_discount + 0.01001;

  struct Acc {
    double revenue = 0;
    uint64_t rows = 0;
  };
  ScanDriver driver({&shipdate, &discount, &quantity, &extprice});
  OlapResult result;
  Acc total{};
  driver.Fold<Acc>(
      &total,
      [&](Acc& acc, const auto& row) {
        ++acc.rows;
        const int64_t date = DecodeDate(row.Col(0));
        if (date < lo || date >= hi) return;
        const double disc = DecodeDouble(row.Col(1));
        if (disc < disc_lo || disc > disc_hi) return;
        if (DecodeDouble(row.Col(2)) >= params.q6_quantity) return;
        acc.revenue += DecodeDouble(row.Col(3)) * disc;
      },
      [](Acc& into, Acc&& from) {
        into.revenue += from.revenue;
        into.rows += from.rows;
      },
      &result.scan, ctx.scan_options());

  result.digest = total.revenue;
  result.rows_considered = total.rows;
  return result;
}

// ---- Q17: small-quantity-order revenue ------------------------------------
// select sum(l_extendedprice) / 7.0 from lineitem, part
// where p_partkey = l_partkey and p_brand = B and p_container = C
//   and l_quantity < 0.2 * avg(l_quantity over same part).
OlapResult ReferenceKernels::RunQ17(const engine::OlapContext& ctx,
                               const OlapParams& params) const {
  storage::Table* part = instance_.part;
  storage::Table* li = instance_.lineitem;
  const ColumnReader partkey = ctx.Reader(part->GetColumn("p_partkey"));
  const ColumnReader brand = ctx.Reader(part->GetColumn("p_brand"));
  const ColumnReader container = ctx.Reader(part->GetColumn("p_container"));
  const ColumnReader l_partkey = ctx.Reader(li->GetColumn("l_partkey"));
  const ColumnReader l_quantity = ctx.Reader(li->GetColumn("l_quantity"));
  const ColumnReader l_extprice =
      ctx.Reader(li->GetColumn("l_extendedprice"));

  // Build side: qualifying part keys.
  struct PartAcc {
    std::unordered_set<int64_t> keys;
  };
  ScanDriver part_driver({&partkey, &brand, &container});
  PartAcc qualifying{};
  part_driver.Fold<PartAcc>(
      &qualifying,
      [&](PartAcc& acc, const auto& row) {
        if (DecodeDict(row.Col(1)) != params.q17_brand_code) return;
        if (DecodeDict(row.Col(2)) != params.q17_container_code) return;
        acc.keys.insert(DecodeInt64(row.Col(0)));
      },
      [](PartAcc& into, PartAcc&& from) {
        into.keys.merge(from.keys);
      },
      nullptr, ctx.scan_options());

  // Probe pass 1: per-part quantity average over qualifying keys.
  struct QtyStats {
    double sum = 0;
    uint64_t count = 0;
  };
  struct Pass1Acc {
    std::unordered_map<int64_t, QtyStats> stats;
  };
  ScanDriver li_driver({&l_partkey, &l_quantity, &l_extprice});
  Pass1Acc per_part{};
  li_driver.Fold<Pass1Acc>(
      &per_part,
      [&](Pass1Acc& acc, const auto& row) {
        const int64_t key = DecodeInt64(row.Col(0));
        if (qualifying.keys.count(key) == 0) return;
        QtyStats& stats = acc.stats[key];
        stats.sum += DecodeDouble(row.Col(1));
        ++stats.count;
      },
      [](Pass1Acc& into, Pass1Acc&& from) {
        for (auto& [key, stats] : from.stats) {
          QtyStats& s = into.stats[key];
          s.sum += stats.sum;
          s.count += stats.count;
        }
      },
      nullptr, ctx.scan_options());

  // Probe pass 2: revenue of small-quantity lineitems.
  struct Pass2Acc {
    double revenue = 0;
    uint64_t rows = 0;
  };
  Pass2Acc total{};
  li_driver.Fold<Pass2Acc>(
      &total,
      [&](Pass2Acc& acc, const auto& row) {
        ++acc.rows;
        const int64_t key = DecodeInt64(row.Col(0));
        auto it = per_part.stats.find(key);
        if (it == per_part.stats.end() || it->second.count == 0) return;
        const double avg_qty =
            it->second.sum / static_cast<double>(it->second.count);
        if (DecodeDouble(row.Col(1)) < 0.2 * avg_qty) {
          acc.revenue += DecodeDouble(row.Col(2));
        }
      },
      [](Pass2Acc& into, Pass2Acc&& from) {
        into.revenue += from.revenue;
        into.rows += from.rows;
      },
      nullptr, ctx.scan_options());

  OlapResult result;
  result.digest = total.revenue / 7.0;
  result.rows_considered = total.rows;
  return result;
}

OlapResult ReferenceKernels::RunScan(const engine::OlapContext& ctx,
                                storage::Table* table,
                                const std::string& column_name) const {
  const ColumnReader reader = ctx.Reader(table->GetColumn(column_name));
  OlapResult result;
  result.digest = engine::ScanColumnSum(reader, /*as_double=*/true,
                                        &result.scan, ctx.scan_options());
  result.rows_considered = reader.num_rows();
  return result;
}

}  // namespace anker::tpch
