#include "tpch/queries.h"

#include <algorithm>

#include "tpch/schema.h"

namespace anker::tpch {

using query::Avg;
using query::Between;
using query::Col;
using query::Count;
using query::CountDistinct;
using query::Expr;
using query::ExprType;
using query::F64;
using query::I64;
using query::JoinType;
using query::Max;
using query::Min;
using query::Param;
using query::Str;
using query::Sum;
using query::WinAvg;
using query::WinMax;
using query::WinSum;
using query::WireJoin;
using query::WireQuery;

const char* OlapKindName(OlapKind kind) {
  switch (kind) {
    case OlapKind::kQ1:
      return "TPCH-Q1";
    case OlapKind::kQ4:
      return "TPCH-Q4";
    case OlapKind::kQ6:
      return "TPCH-Q6";
    case OlapKind::kQ17:
      return "TPCH-Q17";
    case OlapKind::kScanLineitem:
      return "LINEITEM-Scan";
    case OlapKind::kScanOrders:
      return "ORDERS-Scan";
    case OlapKind::kScanPart:
      return "PART-Scan";
  }
  return "unknown";
}

namespace {

query::Query MustBuild(Result<query::Query> built, const char* what) {
  ANKER_CHECK_MSG(built.ok(), (std::string(what) + ": " +
                               built.status().ToString()).c_str());
  return built.TakeValue();
}

/// Full-table sum over one column (the paper's table-scan transactions).
query::Query ScanQuery(storage::Table* table, const char* column) {
  return MustBuild(query::Query::On(table)
                       .Aggregate({Sum(Col(column)).As("sum")})
                       .Build(),
                   "table scan");
}

}  // namespace

TpchQueries::TpchQueries(engine::Database* db, const TpchInstance& instance)
    : db_(db), instance_(instance) {
  storage::Table* li = instance_.lineitem;
  storage::Table* orders = instance_.orders;
  storage::Table* part = instance_.part;

  // ---- Q1: pricing summary report --------------------------------------
  // select l_returnflag, l_linestatus, sum(qty), sum(extprice),
  //        sum(extprice*(1-disc)), sum(extprice*(1-disc)*(1+tax)),
  //        sum(disc), count(*)
  // from lineitem where l_shipdate <= '1998-12-01' - delta group by 1, 2.
  const Expr price = Col("l_extendedprice");
  const Expr disc = Col("l_discount");
  q1_ = MustBuild(
      query::Query::On(li)
          .Filter(Col("l_shipdate") <= Param("cutoff", ExprType::kDate))
          .Aggregate({Sum(Col("l_quantity")).As("sum_qty"),
                      Sum(price).As("sum_base"),
                      Sum(price * (F64(1.0) - disc)).As("sum_disc_price"),
                      Sum(price * (F64(1.0) - disc) * (F64(1.0) + Col("l_tax")))
                          .As("sum_charge"),
                      Sum(disc).As("sum_discount"), Count().As("count")})
          .GroupBy({"l_returnflag", "l_linestatus"})
          .Build(),
      "Q1");

  // ---- Q4 (single-table form, per the paper): order priority checking --
  // select o_orderpriority, count(*) from orders
  // where o_orderdate in [d, d + 92 days) group by o_orderpriority.
  q4_ = MustBuild(
      query::Query::On(orders)
          .Filter(Col("o_orderdate") >= Param("start", ExprType::kDate) &&
                  Col("o_orderdate") <
                      Param("start", ExprType::kDate) + I64(92))
          .Aggregate({Count().As("order_count")})
          .GroupBy({"o_orderpriority"})
          .Build(),
      "Q4");

  // ---- Q6: forecasting revenue change ----------------------------------
  // select sum(l_extendedprice * l_discount) from lineitem
  // where l_shipdate in [d, d+1y), l_discount in [x-0.01, x+0.01],
  //       l_quantity < q.
  q6_ = MustBuild(
      query::Query::On(li)
          .Filter(Col("l_shipdate") >= Param("start", ExprType::kDate) &&
                  Col("l_shipdate") <
                      Param("start", ExprType::kDate) + I64(365) &&
                  query::Between(Col("l_discount"),
                                 Param("disc_lo", ExprType::kDouble),
                                 Param("disc_hi", ExprType::kDouble)) &&
                  Col("l_quantity") < Param("quantity", ExprType::kDouble))
          .Aggregate({Sum(Col("l_extendedprice") * Col("l_discount"))
                          .As("revenue")})
          .Build(),
      "Q6");

  // ---- Q17: small-quantity-order revenue (operator DAG) ----------------
  // select sum(l_extendedprice) / 7.0 from lineitem, part
  // where p_partkey = l_partkey and p_brand = B and p_container = C
  //   and l_quantity < 0.2 * avg(l_quantity over same part).
  // Lowered as: lineitem SEMI JOIN filtered part, INNER JOIN a per-part
  // average sub-query with the quantity guard as the join residual. The
  // retired two-pass implementation survives as a test oracle in
  // tpch/reference_kernels.h (RunQ17).
  query::Query q17_avg = MustBuild(
      query::Query::On(li)
          .Aggregate({Avg(Col("l_quantity")).As("avg_qty")})
          .GroupBy({"l_partkey"})
          .Select({{"l_partkey", "q17_partkey"}, {"avg_qty", ""}})
          .Build(),
      "Q17 avg sub-query");
  q17_ = MustBuild(
      query::Query::On(li)
          .Join({part, Col("p_brand") == Param("brand", ExprType::kDict) &&
                           Col("p_container") ==
                               Param("container", ExprType::kDict)},
                query::JoinType::kLeftSemi, {"l_partkey"}, {"p_partkey"})
          .Join(q17_avg, query::JoinType::kInner, {"l_partkey"},
                {"q17_partkey"},
                Col("l_quantity") < F64(0.2) * Col("avg_qty"))
          .Aggregate({Sum(Col("l_extendedprice")).As("revenue")})
          .Build(),
      "Q17");

  // ---- full-table scans ------------------------------------------------
  scan_lineitem_ = ScanQuery(li, "l_extendedprice");
  scan_orders_ = ScanQuery(orders, "o_totalprice");
  scan_part_ = ScanQuery(part, "p_retailprice");

  // Collect the dictionary code domains Q17 samples from.
  const storage::Dictionary* brands = part->GetDictionary("p_brand");
  for (uint32_t code = 0; code < brands->size(); ++code) {
    brand_codes_.push_back(code);
  }
  const storage::Dictionary* containers = part->GetDictionary("p_container");
  for (uint32_t code = 0; code < containers->size(); ++code) {
    container_codes_.push_back(code);
  }
}

const query::Query& TpchQueries::QueryFor(OlapKind kind) const {
  switch (kind) {
    case OlapKind::kQ1:
      return q1_;
    case OlapKind::kQ4:
      return q4_;
    case OlapKind::kQ6:
      return q6_;
    case OlapKind::kScanLineitem:
      return scan_lineitem_;
    case OlapKind::kScanOrders:
      return scan_orders_;
    case OlapKind::kScanPart:
      return scan_part_;
    case OlapKind::kQ17:
      return q17_;
  }
  ANKER_CHECK_MSG(false, "unknown OlapKind");
  return q1_;
}

std::vector<storage::Column*> TpchQueries::ColumnsFor(OlapKind kind) const {
  return QueryFor(kind).columns();
}

OlapParams TpchQueries::RandomParams(OlapKind /*kind*/, Rng* rng) const {
  OlapParams params;
  params.q1_delta_days = rng->NextInRange(60, 120);
  params.q4_start_day = rng->NextInRange(0, kOrderDateMaxDays - 92);
  params.q6_start_day = rng->NextInRange(0, kOrderDateMaxDays - 365);
  params.q6_discount =
      static_cast<double>(rng->NextInRange(2, 9)) / 100.0;
  params.q6_quantity = static_cast<double>(rng->NextInRange(24, 25));
  params.q17_brand_code = static_cast<uint32_t>(
      brand_codes_[rng->NextBounded(brand_codes_.size())]);
  params.q17_container_code = static_cast<uint32_t>(
      container_codes_[rng->NextBounded(container_codes_.size())]);
  return params;
}

query::Params TpchQueries::BindParams(OlapKind kind,
                                      const OlapParams& params) const {
  query::Params bound;
  switch (kind) {
    case OlapKind::kQ1:
      bound.SetDate("cutoff", kShipDateMaxDays - params.q1_delta_days);
      break;
    case OlapKind::kQ4:
      bound.SetDate("start", params.q4_start_day);
      break;
    case OlapKind::kQ6:
      bound.SetDate("start", params.q6_start_day)
          .SetDouble("disc_lo", params.q6_discount - 0.01001)
          .SetDouble("disc_hi", params.q6_discount + 0.01001)
          .SetDouble("quantity", params.q6_quantity);
      break;
    case OlapKind::kQ17:
      bound.SetDictCode("brand", params.q17_brand_code)
          .SetDictCode("container", params.q17_container_code);
      break;
    default:
      break;
  }
  return bound;
}

OlapResult TpchQueries::ToOlapResult(OlapKind kind,
                                     const query::QueryResult& result) const {
  OlapResult out;
  out.rows_considered = result.rows_scanned;
  out.scan = result.scan;
  switch (kind) {
    case OlapKind::kQ1:
      // Checksum over the group rows: the four pricing sums plus the
      // count, exactly the reference kernel's digest.
      for (const query::QueryResult::Row& row : result.rows) {
        out.digest += row.values[0] + row.values[1] + row.values[2] +
                      row.values[3] + row.values[5];
      }
      break;
    case OlapKind::kQ4:
      for (const query::QueryResult::Row& row : result.rows) {
        out.digest += row.values[0];
      }
      break;
    case OlapKind::kQ17:
      // Empty when no lineitem row survives the joins (the DAG's
      // aggregation only materializes groups from actual input rows).
      out.digest =
          result.rows.empty() ? 0.0 : result.rows[0].values[0] / 7.0;
      break;
    default:
      out.digest = result.rows.empty() ? 0.0 : result.rows[0].values[0];
      break;
  }
  return out;
}

OlapResult TpchQueries::Run(OlapKind kind, const engine::OlapContext& ctx,
                            const OlapParams& params) const {
  query::QueryResult result;
  const Status status =
      query::Execute(QueryFor(kind), ctx, BindParams(kind, params), &result);
  ANKER_CHECK_MSG(status.ok(), status.ToString().c_str());
  return ToOlapResult(kind, result);
}

Result<OlapResult> TpchQueries::RunOnEngine(OlapKind kind,
                                            const OlapParams& params) const {
  Result<query::QueryResult> result =
      db_->Run(QueryFor(kind), BindParams(kind, params));
  if (!result.ok()) return result.status();
  return ToOlapResult(kind, result.value());
}

// ---------------------------------------------------------------------------
// Tpch22: the full query suite in wire form.
// ---------------------------------------------------------------------------

namespace {

/// A join against a named table, optionally pre-filtered.
WireJoin TJoin(const char* table, JoinType type,
               std::vector<std::string> probe_keys,
               std::vector<std::string> build_keys, Expr residual = Expr(),
               Expr build_filter = Expr()) {
  WireJoin join;
  join.input.table = table;
  join.input.filter = std::move(build_filter);
  join.type = type;
  join.probe_keys = std::move(probe_keys);
  join.build_keys = std::move(build_keys);
  join.residual = std::move(residual);
  return join;
}

/// A join against a nested sub-query build side.
WireJoin SJoin(WireQuery sub, JoinType type,
               std::vector<std::string> probe_keys,
               std::vector<std::string> build_keys, Expr residual = Expr()) {
  WireJoin join;
  join.input.sub = std::make_shared<WireQuery>(std::move(sub));
  join.type = type;
  join.probe_keys = std::move(probe_keys);
  join.build_keys = std::move(build_keys);
  join.residual = std::move(residual);
  return join;
}

Expr Revenue() {
  return Col("l_extendedprice") * (F64(1.0) - Col("l_discount"));
}

}  // namespace

Tpch22::Tpch22(engine::Database* db) : db_(db) {
  wire_.resize(kNumQueries);
  compiled_.resize(kNumQueries);
  const Expr revenue = Revenue();

  // ---- Q1: pricing summary report ---------------------------------------
  {
    WireQuery& q = wire_[0];
    q.table = kLineitem;
    q.filter = Col("l_shipdate") <= Param("q1_cutoff", ExprType::kDate);
    q.aggs = {Sum(Col("l_quantity")).As("sum_qty"),
              Sum(Col("l_extendedprice")).As("sum_base"),
              Sum(revenue).As("sum_disc_price"),
              Sum(revenue * (F64(1.0) + Col("l_tax"))).As("sum_charge"),
              Avg(Col("l_quantity")).As("avg_qty"),
              Count().As("count_order")};
    q.group_by = {"l_returnflag", "l_linestatus"};
  }

  // ---- Q2: minimum-cost supplier (min over the region's partsupp) -------
  {
    WireQuery costs;
    costs.table = kPartsupp;
    costs.joins = {
        TJoin(kSupplier, JoinType::kInner, {"ps_suppkey"}, {"s_suppkey"}),
        TJoin(kNation, JoinType::kInner, {"s_nationkey"}, {"n_nationkey"}),
        TJoin(kRegion, JoinType::kLeftSemi, {"n_regionkey"}, {"r_regionkey"},
              Expr(),
              Col("r_name") == Param("q2_region", ExprType::kDict))};
    costs.aggs = {Min(Col("ps_supplycost")).As("min_cost")};
    costs.group_by = {"ps_partkey"};
    costs.select = {{"ps_partkey", "mc_partkey"}, {"min_cost", ""}};

    WireQuery& q = wire_[1];
    q.table = kPart;
    // The spec also matches on p_type LIKE '%NICKEL'; the subset schema
    // keeps the size predicate (an exact type equality over the 150-value
    // domain would make the result empty at test scale).
    q.filter = Col("p_size") == Param("q2_size", ExprType::kInt64);
    q.joins = {SJoin(std::move(costs), JoinType::kInner, {"p_partkey"},
                     {"mc_partkey"})};
    q.aggs = {Sum(Col("min_cost")).As("total_min_cost"),
              Count().As("n_parts")};
  }

  // ---- Q3: shipping priority (join + top-k) -----------------------------
  {
    WireQuery& q = wire_[2];
    q.table = kLineitem;
    q.filter = Col("l_shipdate") > Param("q3_date", ExprType::kDate);
    q.joins = {
        TJoin(kOrders, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
              Expr(), Col("o_orderdate") < Param("q3_date", ExprType::kDate)),
        TJoin(kCustomer, JoinType::kLeftSemi, {"o_custkey"}, {"c_custkey"},
              Expr(),
              Col("c_mktsegment") == Param("q3_segment", ExprType::kDict))};
    q.aggs = {Sum(revenue).As("revenue")};
    q.group_by = {"l_orderkey"};
    q.order_by = {{"revenue", true}};
    q.limit = 10;
  }

  // ---- Q4: order priority checking (semi join with residual) ------------
  {
    WireQuery& q = wire_[3];
    q.table = kOrders;
    q.filter = Col("o_orderdate") >= Param("q4_start", ExprType::kDate) &&
               Col("o_orderdate") <
                   Param("q4_start", ExprType::kDate) + I64(92);
    q.joins = {TJoin(kLineitem, JoinType::kLeftSemi, {"o_orderkey"},
                     {"l_orderkey"},
                     Col("l_commitdate") < Col("l_receiptdate"))};
    q.aggs = {Count().As("order_count")};
    q.group_by = {"o_orderpriority"};
  }

  // ---- Q5: local supplier volume (5-way join) ---------------------------
  {
    WireQuery& q = wire_[4];
    q.table = kLineitem;
    q.joins = {
        TJoin(kOrders, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
              Expr(),
              Col("o_orderyear") == Param("q5_year", ExprType::kInt64)),
        TJoin(kCustomer, JoinType::kInner, {"o_custkey"}, {"c_custkey"}),
        TJoin(kSupplier, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"},
              Col("c_nationkey") == Col("s_nationkey")),
        TJoin(kNation, JoinType::kInner, {"s_nationkey"}, {"n_nationkey"}),
        TJoin(kRegion, JoinType::kLeftSemi, {"n_regionkey"}, {"r_regionkey"},
              Expr(),
              Col("r_name") == Param("q5_region", ExprType::kDict))};
    q.aggs = {Sum(revenue).As("revenue")};
    q.group_by = {"n_name"};
  }

  // ---- Q6: forecasting revenue change -----------------------------------
  {
    WireQuery& q = wire_[5];
    q.table = kLineitem;
    q.filter = Col("l_shipdate") >= Param("q6_start", ExprType::kDate) &&
               Col("l_shipdate") <
                   Param("q6_start", ExprType::kDate) + I64(365) &&
               Between(Col("l_discount"),
                       Param("q6_disc_lo", ExprType::kDouble),
                       Param("q6_disc_hi", ExprType::kDouble)) &&
               Col("l_quantity") < Param("q6_quantity", ExprType::kDouble);
    q.aggs = {Sum(Col("l_extendedprice") * Col("l_discount")).As("revenue")};
  }

  // ---- Q7: volume shipping between two nations --------------------------
  {
    WireQuery& q = wire_[6];
    q.table = kLineitem;
    q.filter = Between(Col("l_shipyear"), I64(1995), I64(1996));
    q.joins = {
        TJoin(kSupplier, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"}),
        TJoin(kOrders, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"}),
        TJoin(kCustomer, JoinType::kInner, {"o_custkey"}, {"c_custkey"},
              (Col("s_nationkey") == Param("q7_nation1", ExprType::kInt64) &&
               Col("c_nationkey") == Param("q7_nation2", ExprType::kInt64)) ||
                  (Col("s_nationkey") ==
                       Param("q7_nation2", ExprType::kInt64) &&
                   Col("c_nationkey") ==
                       Param("q7_nation1", ExprType::kInt64)))};
    q.aggs = {Sum(revenue).As("revenue")};
    q.group_by = {"s_nationkey", "c_nationkey", "l_shipyear"};
  }

  // ---- Q8: national market share (window over grouped volumes) ----------
  {
    WireQuery& q = wire_[7];
    q.table = kLineitem;
    q.joins = {
        // The spec filters on one of 150 p_type values; at test scale
        // that selects ~0 parts, so the type-class surrogate (PROMO vs
        // not) stands in for it.
        TJoin(kPart, JoinType::kLeftSemi, {"l_partkey"}, {"p_partkey"},
              Expr(),
              Col("p_is_promo") == Param("q8_promo", ExprType::kInt64)),
        TJoin(kOrders, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
              Expr(), Between(Col("o_orderyear"), I64(1995), I64(1996))),
        TJoin(kCustomer, JoinType::kInner, {"o_custkey"}, {"c_custkey"}),
        TJoin(kNation, JoinType::kInner, {"c_nationkey"}, {"n_nationkey"}),
        TJoin(kRegion, JoinType::kLeftSemi, {"n_regionkey"}, {"r_regionkey"},
              Expr(),
              Col("r_name") == Param("q8_region", ExprType::kDict)),
        TJoin(kSupplier, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"})};
    q.aggs = {Sum(revenue).As("volume")};
    q.group_by = {"o_orderyear", "s_nationkey"};
    q.has_window = true;
    q.win_funcs = {WinSum(Col("volume"), "total_volume")};
    q.win_partition = {"o_orderyear"};
    q.post_filter =
        Col("s_nationkey") == Param("q8_nation", ExprType::kInt64);
  }

  // ---- Q9: product-type profit (two-key partsupp join) ------------------
  {
    WireQuery& q = wire_[8];
    q.table = kLineitem;
    q.joins = {
        TJoin(kPart, JoinType::kLeftSemi, {"l_partkey"}, {"p_partkey"},
              Expr(),
              Col("p_name_color") == Param("q9_color", ExprType::kDict)),
        TJoin(kPartsupp, JoinType::kInner, {"l_partkey", "l_suppkey"},
              {"ps_partkey", "ps_suppkey"}),
        TJoin(kOrders, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"}),
        TJoin(kSupplier, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"})};
    q.aggs = {Sum(revenue - Col("ps_supplycost") * Col("l_quantity"))
                  .As("profit")};
    q.group_by = {"s_nationkey", "o_orderyear"};
  }

  // ---- Q10: returned-item reporting (top 20 customers) ------------------
  {
    WireQuery& q = wire_[9];
    q.table = kLineitem;
    q.filter = Col("l_returnflag") == Str("R");
    q.joins = {
        TJoin(kOrders, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"},
              Expr(),
              Col("o_orderdate") >= Param("q10_date", ExprType::kDate) &&
                  Col("o_orderdate") <
                      Param("q10_date", ExprType::kDate) + I64(90)),
        TJoin(kCustomer, JoinType::kLeftSemi, {"o_custkey"}, {"c_custkey"})};
    q.aggs = {Sum(revenue).As("revenue")};
    // o_custkey == c_custkey under the join; the build key column itself
    // is deduplicated out of the join output.
    q.group_by = {"o_custkey"};
    q.order_by = {{"revenue", true}};
    q.limit = 20;
  }

  // ---- Q11: important stock (global window + post filter) ---------------
  {
    WireQuery& q = wire_[10];
    q.table = kPartsupp;
    q.joins = {
        TJoin(kSupplier, JoinType::kInner, {"ps_suppkey"}, {"s_suppkey"}),
        TJoin(kNation, JoinType::kLeftSemi, {"s_nationkey"}, {"n_nationkey"},
              Expr(),
              Col("n_name") == Param("q11_nation", ExprType::kDict))};
    q.aggs =
        {Sum(Col("ps_supplycost") * Col("ps_availqty")).As("stock_value")};
    q.group_by = {"ps_partkey"};
    q.has_window = true;
    q.win_funcs = {WinSum(Col("stock_value"), "total_value")};
    q.post_filter =
        Col("stock_value") > F64(0.001) * Col("total_value");
  }

  // ---- Q12: shipping modes and order priority ---------------------------
  {
    WireQuery& q = wire_[11];
    q.table = kLineitem;
    q.filter =
        (Col("l_shipmode") == Param("q12_mode1", ExprType::kDict) ||
         Col("l_shipmode") == Param("q12_mode2", ExprType::kDict)) &&
        Col("l_commitdate") < Col("l_receiptdate") &&
        Col("l_shipdate") < Col("l_commitdate") &&
        Col("l_receiptdate") >= Param("q12_date", ExprType::kDate) &&
        Col("l_receiptdate") < Param("q12_date", ExprType::kDate) + I64(365);
    q.joins = {
        TJoin(kOrders, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})};
    q.aggs = {Count().As("line_count")};
    q.group_by = {"l_shipmode", "o_orderpriority"};
  }

  // ---- Q13: customer order-count distribution (outer join + regroup) ----
  {
    WireQuery per_customer;
    per_customer.table = kCustomer;
    per_customer.joins = {
        TJoin(kOrders, JoinType::kLeftOuter, {"c_custkey"}, {"o_custkey"},
              Expr(),
              Col("o_comment_class") !=
                  Param("q13_class", ExprType::kInt64))};
    per_customer.aggs = {Sum(Col("__matched")).As("c_count")};
    per_customer.group_by = {"c_custkey"};
    per_customer.select = {{"c_count", ""}};

    WireQuery& q = wire_[12];
    q.sub = std::make_shared<WireQuery>(std::move(per_customer));
    q.aggs = {Count().As("custdist")};
    q.group_by = {"c_count"};
  }

  // ---- Q14: promotion effect --------------------------------------------
  {
    WireQuery& q = wire_[13];
    q.table = kLineitem;
    q.filter = Col("l_shipdate") >= Param("q14_date", ExprType::kDate) &&
               Col("l_shipdate") <
                   Param("q14_date", ExprType::kDate) + I64(30);
    q.joins = {
        TJoin(kPart, JoinType::kInner, {"l_partkey"}, {"p_partkey"})};
    q.aggs = {Sum(revenue).As("revenue")};
    q.group_by = {"p_is_promo"};
  }

  // ---- Q15: top supplier (global max via window) ------------------------
  {
    WireQuery& q = wire_[14];
    q.table = kLineitem;
    q.filter = Col("l_shipdate") >= Param("q15_date", ExprType::kDate) &&
               Col("l_shipdate") <
                   Param("q15_date", ExprType::kDate) + I64(90);
    q.aggs = {Sum(revenue).As("total_revenue")};
    q.group_by = {"l_suppkey"};
    q.has_window = true;
    q.win_funcs = {WinMax(Col("total_revenue"), "max_revenue")};
    q.post_filter = Col("total_revenue") >= Col("max_revenue");
  }

  // ---- Q16: parts/supplier relationship (anti join + count distinct) ----
  {
    WireQuery& q = wire_[15];
    q.table = kPartsupp;
    q.joins = {
        TJoin(kPart, JoinType::kInner, {"ps_partkey"}, {"p_partkey"},
              Expr(),
              Col("p_brand") != Param("q16_brand", ExprType::kDict) &&
                  Between(Col("p_size"), I64(1), I64(15))),
        TJoin(kSupplier, JoinType::kLeftAnti, {"ps_suppkey"}, {"s_suppkey"},
              Expr(), Col("s_is_complaint") == I64(1))};
    q.aggs = {CountDistinct(Col("ps_suppkey")).As("supplier_cnt")};
    q.group_by = {"p_brand", "p_type", "p_size"};
    q.order_by = {{"supplier_cnt", true}};
  }

  // ---- Q17: small-quantity-order revenue --------------------------------
  {
    WireQuery avg_qty;
    avg_qty.table = kLineitem;
    avg_qty.aggs = {Avg(Col("l_quantity")).As("avg_qty")};
    avg_qty.group_by = {"l_partkey"};
    avg_qty.select = {{"l_partkey", "q17_partkey"}, {"avg_qty", ""}};

    WireQuery& q = wire_[16];
    q.table = kLineitem;
    q.joins = {
        // The spec intersects brand and container; the brand conjunct is
        // dropped at test scale (together they select < 1 part).
        TJoin(kPart, JoinType::kLeftSemi, {"l_partkey"}, {"p_partkey"},
              Expr(),
              Col("p_container") ==
                  Param("q17_container", ExprType::kDict)),
        SJoin(std::move(avg_qty), JoinType::kInner, {"l_partkey"},
              {"q17_partkey"},
              Col("l_quantity") < F64(0.2) * Col("avg_qty"))};
    q.aggs = {Sum(Col("l_extendedprice")).As("avg_yearly")};
  }

  // ---- Q18: large-volume customers (having sub + top 100) ---------------
  {
    WireQuery big;
    big.table = kLineitem;
    big.aggs = {Sum(Col("l_quantity")).As("sum_qty")};
    big.group_by = {"l_orderkey"};
    big.having = Col("sum_qty") > Param("q18_quantity", ExprType::kDouble);
    big.select = {{"l_orderkey", "big_orderkey"}, {"sum_qty", ""}};

    WireQuery& q = wire_[17];
    q.table = kOrders;
    q.joins = {SJoin(std::move(big), JoinType::kInner, {"o_orderkey"},
                     {"big_orderkey"})};
    q.select = {{"o_orderkey", ""}, {"o_totalprice", ""}, {"sum_qty", ""}};
    q.order_by = {{"o_totalprice", true}};
    q.limit = 100;
  }

  // ---- Q19: discounted revenue (disjunctive join residual) --------------
  {
    auto branch = [](const char* brand_param, double qty_lo, double qty_hi,
                     int64_t size_hi) {
      return Col("p_brand") == Param(brand_param, ExprType::kDict) &&
             Between(Col("l_quantity"), F64(qty_lo), F64(qty_hi)) &&
             Between(Col("p_size"), I64(1), I64(size_hi));
    };
    WireQuery& q = wire_[18];
    q.table = kLineitem;
    q.filter = (Col("l_shipmode") == Str("AIR") ||
                Col("l_shipmode") == Str("REG AIR")) &&
               Col("l_shipinstruct") == Str("DELIVER IN PERSON");
    q.joins = {TJoin(kPart, JoinType::kInner, {"l_partkey"}, {"p_partkey"},
                     branch("q19_brand1", 1.0, 11.0, 5) ||
                         branch("q19_brand2", 10.0, 20.0, 10) ||
                         branch("q19_brand3", 20.0, 30.0, 15))};
    q.aggs = {Sum(revenue).As("revenue")};
  }

  // ---- Q20: potential part promotion (nested sub join chain) ------------
  {
    WireQuery shipped;
    shipped.table = kLineitem;
    shipped.filter =
        Col("l_shipdate") >= Param("q20_date", ExprType::kDate) &&
        Col("l_shipdate") < Param("q20_date", ExprType::kDate) + I64(365);
    shipped.aggs = {Sum(Col("l_quantity")).As("sum_qty")};
    shipped.group_by = {"l_partkey", "l_suppkey"};
    shipped.select = {{"l_partkey", "sq_partkey"},
                      {"l_suppkey", "sq_suppkey"},
                      {"sum_qty", ""}};

    WireQuery excess;
    excess.table = kPartsupp;
    excess.joins = {
        TJoin(kPart, JoinType::kLeftSemi, {"ps_partkey"}, {"p_partkey"},
              Expr(),
              Col("p_name_color") == Param("q20_color", ExprType::kDict)),
        SJoin(std::move(shipped), JoinType::kInner,
              {"ps_partkey", "ps_suppkey"}, {"sq_partkey", "sq_suppkey"},
              Col("ps_availqty") > F64(0.5) * Col("sum_qty"))};
    excess.select = {{"ps_suppkey", "ex_suppkey"}};

    WireQuery& q = wire_[19];
    q.table = kSupplier;
    q.joins = {
        SJoin(std::move(excess), JoinType::kLeftSemi, {"s_suppkey"},
              {"ex_suppkey"}),
        TJoin(kNation, JoinType::kLeftSemi, {"s_nationkey"}, {"n_nationkey"},
              Expr(),
              Col("n_name") == Param("q20_nation", ExprType::kDict))};
    q.aggs = {Count().As("n_suppliers"), Sum(Col("s_acctbal")).As("bal")};
  }

  // ---- Q21: suppliers who kept orders waiting (semi + anti self joins) --
  {
    WireQuery other_supp;
    other_supp.table = kLineitem;
    other_supp.select = {{"l_orderkey", "l2_orderkey"},
                         {"l_suppkey", "l2_suppkey"}};

    WireQuery other_late;
    other_late.table = kLineitem;
    other_late.filter = Col("l_receiptdate") > Col("l_commitdate");
    other_late.select = {{"l_orderkey", "l3_orderkey"},
                         {"l_suppkey", "l3_suppkey"}};

    WireQuery& q = wire_[20];
    q.table = kLineitem;
    q.filter = Col("l_receiptdate") > Col("l_commitdate");
    q.joins = {
        TJoin(kSupplier, JoinType::kLeftSemi, {"l_suppkey"}, {"s_suppkey"},
              Expr(),
              Col("s_nationkey") == Param("q21_nation", ExprType::kInt64)),
        TJoin(kOrders, JoinType::kLeftSemi, {"l_orderkey"}, {"o_orderkey"},
              Expr(), Col("o_orderstatus") == Str("F")),
        SJoin(std::move(other_supp), JoinType::kLeftSemi, {"l_orderkey"},
              {"l2_orderkey"}, Col("l2_suppkey") != Col("l_suppkey")),
        SJoin(std::move(other_late), JoinType::kLeftAnti, {"l_orderkey"},
              {"l3_orderkey"}, Col("l3_suppkey") != Col("l_suppkey"))};
    q.aggs = {Count().As("numwait")};
    q.group_by = {"l_suppkey"};
    q.order_by = {{"numwait", true}};
    q.limit = 100;
  }

  // ---- Q22: global sales opportunity (anti join + window avg) -----------
  {
    WireQuery order_custs;
    order_custs.table = kOrders;
    order_custs.select = {{"o_custkey", "ord_custkey"}};

    WireQuery idle;
    idle.table = kCustomer;
    idle.filter =
        Col("c_acctbal") > F64(0.0) &&
        Between(Col("c_phone_cc"), Param("q22_cc_lo", ExprType::kInt64),
                Param("q22_cc_hi", ExprType::kInt64));
    idle.joins = {SJoin(std::move(order_custs), JoinType::kLeftAnti,
                        {"c_custkey"}, {"ord_custkey"})};
    idle.has_window = true;
    idle.win_funcs = {WinAvg(Col("c_acctbal"), "avg_bal")};
    idle.post_filter = Col("c_acctbal") > Col("avg_bal");
    idle.select = {{"c_phone_cc", ""}, {"c_acctbal", ""}};

    WireQuery& q = wire_[21];
    q.sub = std::make_shared<WireQuery>(std::move(idle));
    q.aggs = {Count().As("numcust"), Sum(Col("c_acctbal")).As("totacctbal")};
    q.group_by = {"c_phone_cc"};
  }

  for (int i = 0; i < kNumQueries; ++i) {
    auto compiled = query::CompileWireQuery(wire_[i], db_->catalog());
    ANKER_CHECK_MSG(compiled.ok(),
                    ("TPC-H Q" + std::to_string(i + 1) + ": " +
                     compiled.status().ToString())
                        .c_str());
    compiled_[i] = compiled.TakeValue();
  }
}

const WireQuery& Tpch22::Wire(int q) const {
  ANKER_CHECK(q >= 1 && q <= kNumQueries);
  return wire_[q - 1];
}

const query::Query& Tpch22::Compiled(int q) const {
  ANKER_CHECK(q >= 1 && q <= kNumQueries);
  return compiled_[q - 1];
}

bool Tpch22::Ordered(int q) const { return !Wire(q).order_by.empty(); }

query::Params Tpch22::ParamsFor(int q) const {
  query::Params p;
  switch (q) {
    case 1:
      p.SetDate("q1_cutoff", kShipDateMaxDays - 90);
      break;
    case 2:
      p.SetString("q2_region", "EUROPE").SetInt("q2_size", 15);
      break;
    case 3:
      p.SetString("q3_segment", "BUILDING").SetDate("q3_date", 1155);
      break;
    case 4:
      p.SetDate("q4_start", 800);
      break;
    case 5:
      p.SetInt("q5_year", 1994).SetString("q5_region", "ASIA");
      break;
    case 6:
      p.SetDate("q6_start", 400)
          .SetDouble("q6_disc_lo", 0.05 - 0.01001)
          .SetDouble("q6_disc_hi", 0.05 + 0.01001)
          .SetDouble("q6_quantity", 24.0);
      break;
    case 7:
      p.SetInt("q7_nation1", 6).SetInt("q7_nation2", 7);
      break;
    case 8:
      p.SetInt("q8_promo", 1)
          .SetString("q8_region", "AMERICA")
          .SetInt("q8_nation", 2);
      break;
    case 9:
      p.SetString("q9_color", "green");
      break;
    case 10:
      p.SetDate("q10_date", 800);
      break;
    case 11:
      p.SetString("q11_nation", "GERMANY");
      break;
    case 12:
      p.SetString("q12_mode1", "MAIL")
          .SetString("q12_mode2", "SHIP")
          .SetDate("q12_date", 730);
      break;
    case 13:
      p.SetInt("q13_class", 0);
      break;
    case 14:
      p.SetDate("q14_date", 1000);
      break;
    case 15:
      p.SetDate("q15_date", 1200);
      break;
    case 16:
      p.SetString("q16_brand", "Brand#45");
      break;
    case 17:
      p.SetString("q17_container", "MED BOX");
      break;
    case 18:
      // Spec value 300 assumes 7-line orders at full scale; 180 keeps the
      // same "largest orders" tail populated at test sizes.
      p.SetDouble("q18_quantity", 180.0);
      break;
    case 19:
      p.SetString("q19_brand1", "Brand#12")
          .SetString("q19_brand2", "Brand#23")
          .SetString("q19_brand3", "Brand#34");
      break;
    case 20:
      p.SetString("q20_color", "forest")
          .SetDate("q20_date", 730)
          .SetString("q20_nation", "CANADA");
      break;
    case 21:
      p.SetInt("q21_nation", 20);
      break;
    case 22:
      p.SetInt("q22_cc_lo", 13).SetInt("q22_cc_hi", 19);
      break;
    default:
      ANKER_CHECK_MSG(false, "bad query number");
  }
  return p;
}

uint64_t Tpch22::RawDigest(const query::QueryResult& result, bool ordered) {
  // One row = its key raws followed by its value raws (IEEE bits).
  std::vector<std::vector<uint64_t>> rows;
  rows.reserve(result.rows.size());
  for (const query::QueryResult::Row& row : result.rows) {
    std::vector<uint64_t> flat;
    flat.reserve(row.keys.size() + row.values.size());
    for (const uint64_t key : row.keys) flat.push_back(key);
    for (const double value : row.values) {
      flat.push_back(storage::EncodeDouble(value));
    }
    rows.push_back(std::move(flat));
  }
  if (!ordered) std::sort(rows.begin(), rows.end());
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](uint64_t raw) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (raw >> (b * 8)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  mix(rows.size());
  for (const std::vector<uint64_t>& row : rows) {
    mix(row.size());
    for (const uint64_t raw : row) mix(raw);
  }
  return hash;
}

}  // namespace anker::tpch
