#include "tpch/queries.h"

#include "tpch/schema.h"

namespace anker::tpch {

using query::Avg;
using query::Col;
using query::Count;
using query::Expr;
using query::ExprType;
using query::F64;
using query::I64;
using query::Param;
using query::Sum;

const char* OlapKindName(OlapKind kind) {
  switch (kind) {
    case OlapKind::kQ1:
      return "TPCH-Q1";
    case OlapKind::kQ4:
      return "TPCH-Q4";
    case OlapKind::kQ6:
      return "TPCH-Q6";
    case OlapKind::kQ17:
      return "TPCH-Q17";
    case OlapKind::kScanLineitem:
      return "LINEITEM-Scan";
    case OlapKind::kScanOrders:
      return "ORDERS-Scan";
    case OlapKind::kScanPart:
      return "PART-Scan";
  }
  return "unknown";
}

namespace {

query::Query MustBuild(Result<query::Query> built, const char* what) {
  ANKER_CHECK_MSG(built.ok(), (std::string(what) + ": " +
                               built.status().ToString()).c_str());
  return built.TakeValue();
}

/// Full-table sum over one column (the paper's table-scan transactions).
query::Query ScanQuery(storage::Table* table, const char* column) {
  return MustBuild(query::Query::On(table)
                       .Aggregate({Sum(Col(column)).As("sum")})
                       .Build(),
                   "table scan");
}

}  // namespace

TpchQueries::TpchQueries(engine::Database* db, const TpchInstance& instance)
    : db_(db), instance_(instance) {
  storage::Table* li = instance_.lineitem;
  storage::Table* orders = instance_.orders;
  storage::Table* part = instance_.part;

  // ---- Q1: pricing summary report --------------------------------------
  // select l_returnflag, l_linestatus, sum(qty), sum(extprice),
  //        sum(extprice*(1-disc)), sum(extprice*(1-disc)*(1+tax)),
  //        sum(disc), count(*)
  // from lineitem where l_shipdate <= '1998-12-01' - delta group by 1, 2.
  const Expr price = Col("l_extendedprice");
  const Expr disc = Col("l_discount");
  q1_ = MustBuild(
      query::Query::On(li)
          .Filter(Col("l_shipdate") <= Param("cutoff", ExprType::kDate))
          .Aggregate({Sum(Col("l_quantity")).As("sum_qty"),
                      Sum(price).As("sum_base"),
                      Sum(price * (F64(1.0) - disc)).As("sum_disc_price"),
                      Sum(price * (F64(1.0) - disc) * (F64(1.0) + Col("l_tax")))
                          .As("sum_charge"),
                      Sum(disc).As("sum_discount"), Count().As("count")})
          .GroupBy({"l_returnflag", "l_linestatus"})
          .Build(),
      "Q1");

  // ---- Q4 (single-table form, per the paper): order priority checking --
  // select o_orderpriority, count(*) from orders
  // where o_orderdate in [d, d + 92 days) group by o_orderpriority.
  q4_ = MustBuild(
      query::Query::On(orders)
          .Filter(Col("o_orderdate") >= Param("start", ExprType::kDate) &&
                  Col("o_orderdate") <
                      Param("start", ExprType::kDate) + I64(92))
          .Aggregate({Count().As("order_count")})
          .GroupBy({"o_orderpriority"})
          .Build(),
      "Q4");

  // ---- Q6: forecasting revenue change ----------------------------------
  // select sum(l_extendedprice * l_discount) from lineitem
  // where l_shipdate in [d, d+1y), l_discount in [x-0.01, x+0.01],
  //       l_quantity < q.
  q6_ = MustBuild(
      query::Query::On(li)
          .Filter(Col("l_shipdate") >= Param("start", ExprType::kDate) &&
                  Col("l_shipdate") <
                      Param("start", ExprType::kDate) + I64(365) &&
                  query::Between(Col("l_discount"),
                                 Param("disc_lo", ExprType::kDouble),
                                 Param("disc_hi", ExprType::kDouble)) &&
                  Col("l_quantity") < Param("quantity", ExprType::kDouble))
          .Aggregate({Sum(Col("l_extendedprice") * Col("l_discount"))
                          .As("revenue")})
          .Build(),
      "Q6");

  // ---- Q17: small-quantity-order revenue (two-pass semi join) ----------
  // select sum(l_extendedprice) / 7.0 from lineitem, part
  // where p_partkey = l_partkey and p_brand = B and p_container = C
  //   and l_quantity < 0.2 * avg(l_quantity over same part).
  query::SemiJoinSpec q17;
  q17.build_table = part;
  q17.build_filter =
      Col("p_brand") == Param("brand", ExprType::kDict) &&
      Col("p_container") == Param("container", ExprType::kDict);
  q17.build_key = "p_partkey";
  q17.probe_table = li;
  q17.probe_key = "l_partkey";
  q17.avg_value = Col("l_quantity");
  q17.guard_scale = F64(0.2);
  q17.agg_value = Col("l_extendedprice");
  q17.result_name = "revenue";
  auto built_q17 = query::SemiJoinQuery::Build(std::move(q17));
  ANKER_CHECK_MSG(built_q17.ok(), built_q17.status().ToString().c_str());
  q17_ = built_q17.TakeValue();

  // ---- full-table scans ------------------------------------------------
  scan_lineitem_ = ScanQuery(li, "l_extendedprice");
  scan_orders_ = ScanQuery(orders, "o_totalprice");
  scan_part_ = ScanQuery(part, "p_retailprice");

  // Collect the dictionary code domains Q17 samples from.
  const storage::Dictionary* brands = part->GetDictionary("p_brand");
  for (uint32_t code = 0; code < brands->size(); ++code) {
    brand_codes_.push_back(code);
  }
  const storage::Dictionary* containers = part->GetDictionary("p_container");
  for (uint32_t code = 0; code < containers->size(); ++code) {
    container_codes_.push_back(code);
  }
}

const query::Query& TpchQueries::QueryFor(OlapKind kind) const {
  switch (kind) {
    case OlapKind::kQ1:
      return q1_;
    case OlapKind::kQ4:
      return q4_;
    case OlapKind::kQ6:
      return q6_;
    case OlapKind::kScanLineitem:
      return scan_lineitem_;
    case OlapKind::kScanOrders:
      return scan_orders_;
    case OlapKind::kScanPart:
      return scan_part_;
    case OlapKind::kQ17:
      break;
  }
  ANKER_CHECK_MSG(false, "Q17 is a SemiJoinQuery, use Q17Query()");
  return q1_;
}

std::vector<storage::Column*> TpchQueries::ColumnsFor(OlapKind kind) const {
  if (kind == OlapKind::kQ17) return q17_.columns();
  return QueryFor(kind).columns();
}

OlapParams TpchQueries::RandomParams(OlapKind /*kind*/, Rng* rng) const {
  OlapParams params;
  params.q1_delta_days = rng->NextInRange(60, 120);
  params.q4_start_day = rng->NextInRange(0, kOrderDateMaxDays - 92);
  params.q6_start_day = rng->NextInRange(0, kOrderDateMaxDays - 365);
  params.q6_discount =
      static_cast<double>(rng->NextInRange(2, 9)) / 100.0;
  params.q6_quantity = static_cast<double>(rng->NextInRange(24, 25));
  params.q17_brand_code = static_cast<uint32_t>(
      brand_codes_[rng->NextBounded(brand_codes_.size())]);
  params.q17_container_code = static_cast<uint32_t>(
      container_codes_[rng->NextBounded(container_codes_.size())]);
  return params;
}

query::Params TpchQueries::BindParams(OlapKind kind,
                                      const OlapParams& params) const {
  query::Params bound;
  switch (kind) {
    case OlapKind::kQ1:
      bound.SetDate("cutoff", kShipDateMaxDays - params.q1_delta_days);
      break;
    case OlapKind::kQ4:
      bound.SetDate("start", params.q4_start_day);
      break;
    case OlapKind::kQ6:
      bound.SetDate("start", params.q6_start_day)
          .SetDouble("disc_lo", params.q6_discount - 0.01001)
          .SetDouble("disc_hi", params.q6_discount + 0.01001)
          .SetDouble("quantity", params.q6_quantity);
      break;
    case OlapKind::kQ17:
      bound.SetDictCode("brand", params.q17_brand_code)
          .SetDictCode("container", params.q17_container_code);
      break;
    default:
      break;
  }
  return bound;
}

OlapResult TpchQueries::ToOlapResult(OlapKind kind,
                                     const query::QueryResult& result) const {
  OlapResult out;
  out.rows_considered = result.rows_scanned;
  out.scan = result.scan;
  switch (kind) {
    case OlapKind::kQ1:
      // Checksum over the group rows: the four pricing sums plus the
      // count, exactly the reference kernel's digest.
      for (const query::QueryResult::Row& row : result.rows) {
        out.digest += row.values[0] + row.values[1] + row.values[2] +
                      row.values[3] + row.values[5];
      }
      break;
    case OlapKind::kQ4:
      for (const query::QueryResult::Row& row : result.rows) {
        out.digest += row.values[0];
      }
      break;
    case OlapKind::kQ17:
      out.digest = result.rows[0].values[0] / 7.0;
      break;
    default:
      out.digest = result.rows[0].values[0];
      break;
  }
  return out;
}

OlapResult TpchQueries::Run(OlapKind kind, const engine::OlapContext& ctx,
                            const OlapParams& params) const {
  query::QueryResult result;
  Status status;
  if (kind == OlapKind::kQ17) {
    status = query::Execute(q17_, ctx, BindParams(kind, params), &result);
  } else {
    status = query::Execute(QueryFor(kind), ctx, BindParams(kind, params),
                            &result);
  }
  ANKER_CHECK_MSG(status.ok(), status.ToString().c_str());
  return ToOlapResult(kind, result);
}

Result<OlapResult> TpchQueries::RunOnEngine(OlapKind kind,
                                            const OlapParams& params) const {
  Result<query::QueryResult> result =
      kind == OlapKind::kQ17
          ? db_->Run(q17_, BindParams(kind, params))
          : db_->Run(QueryFor(kind), BindParams(kind, params));
  if (!result.ok()) return result.status();
  return ToOlapResult(kind, result.value());
}

}  // namespace anker::tpch
