#include "tpch/oltp_transactions.h"

#include "storage/value.h"
#include "tpch/schema.h"

namespace anker::tpch {

using storage::DecodeDouble;
using storage::DecodeInt64;
using storage::EncodeDict;
using storage::EncodeDouble;
using storage::EncodeInt64;

const char* OltpKindName(OltpKind kind) {
  switch (kind) {
    case OltpKind::kQ1:
      return "OLTP-Q1";
    case OltpKind::kQ2:
      return "OLTP-Q2";
    case OltpKind::kQ3:
      return "OLTP-Q3";
    case OltpKind::kQ4:
      return "OLTP-Q4";
    case OltpKind::kQ5:
      return "OLTP-Q5";
    case OltpKind::kQ6:
      return "OLTP-Q6";
    case OltpKind::kQ7:
      return "OLTP-Q7";
    case OltpKind::kQ8:
      return "OLTP-Q8";
    case OltpKind::kQ9:
      return "OLTP-Q9";
  }
  return "unknown";
}

OltpTransactions::OltpTransactions(engine::Database* db,
                                   const TpchInstance& instance)
    : db_(db), instance_(instance) {
  storage::Table* li = instance_.lineitem;
  storage::Table* orders = instance_.orders;
  storage::Table* part = instance_.part;
  l_orderkey_ = li->GetColumn("l_orderkey");
  l_linenumber_ = li->GetColumn("l_linenumber");
  l_returnflag_ = li->GetColumn("l_returnflag");
  l_linestatus_ = li->GetColumn("l_linestatus");
  l_discount_ = li->GetColumn("l_discount");
  l_extendedprice_ = li->GetColumn("l_extendedprice");
  l_shipdate_ = li->GetColumn("l_shipdate");
  o_orderpriority_ = orders->GetColumn("o_orderpriority");
  o_orderstatus_ = orders->GetColumn("o_orderstatus");
  o_totalprice_ = orders->GetColumn("o_totalprice");
  p_brand_ = part->GetColumn("p_brand");
  p_retailprice_ = part->GetColumn("p_retailprice");
  returnflag_dict_ = li->GetDictionary("l_returnflag");
  linestatus_dict_ = li->GetDictionary("l_linestatus");
  orderpriority_dict_ = orders->GetDictionary("o_orderpriority");
  orderstatus_dict_ = orders->GetDictionary("o_orderstatus");
  brand_dict_ = part->GetDictionary("p_brand");
}

uint64_t OltpTransactions::RandomDictCode(const storage::Dictionary* dict,
                                          Rng* rng) const {
  return EncodeDict(
      static_cast<uint32_t>(rng->NextBounded(dict->size())));
}

uint64_t OltpTransactions::PerturbDouble(uint64_t raw, Rng* rng) const {
  // Increment the current value by +-x% with x in 1..10 (Section 5.2).
  const double current = DecodeDouble(raw);
  const double x = static_cast<double>(rng->NextInRange(1, 10)) / 100.0;
  const double sign = rng->NextBool(0.5) ? 1.0 : -1.0;
  return EncodeDouble(current * (1.0 + sign * x));
}

uint64_t OltpTransactions::PerturbDate(uint64_t raw, Rng* rng) const {
  // Increment the current value by +-x days with x in 1..10.
  const int64_t current = DecodeInt64(raw);
  const int64_t x = rng->NextInRange(1, 10);
  return EncodeInt64(current + (rng->NextBool(0.5) ? x : -x));
}

uint64_t OltpTransactions::RandomLineitemRow(txn::Transaction* /*txn*/,
                                             Rng* rng) const {
  // Pick a key by sampling a row's immutable key attributes, then resolve
  // it through the primary index — the same path a bound parameter takes.
  const uint64_t sample = rng->NextBounded(instance_.lineitem_rows);
  const int64_t orderkey = DecodeInt64(l_orderkey_->ReadLatestRaw(sample));
  const int64_t linenumber =
      DecodeInt64(l_linenumber_->ReadLatestRaw(sample));
  auto row = instance_.lineitem->primary_index()->Lookup(
      LineitemKey(orderkey, linenumber));
  ANKER_CHECK(row.ok());
  return row.value();
}

uint64_t OltpTransactions::RandomOrdersRow(txn::Transaction* /*txn*/,
                                           Rng* rng) const {
  const uint64_t key = rng->NextBounded(instance_.orders_rows) + 1;
  auto row = instance_.orders->primary_index()->Lookup(key);
  ANKER_CHECK(row.ok());
  return row.value();
}

uint64_t OltpTransactions::RandomPartRow(txn::Transaction* /*txn*/,
                                         Rng* rng) const {
  const uint64_t key = rng->NextBounded(instance_.part_rows) + 1;
  auto row = instance_.part->primary_index()->Lookup(key);
  ANKER_CHECK(row.ok());
  return row.value();
}

Status OltpTransactions::Run(OltpKind kind, Rng* rng) {
  auto txn = db_->BeginOltp();
  txn::Transaction* t = txn.get();

  switch (kind) {
    case OltpKind::kQ1: {
      const uint64_t row = RandomLineitemRow(t, rng);
      t->Write(l_returnflag_, row, RandomDictCode(returnflag_dict_, rng));
      break;
    }
    case OltpKind::kQ2: {
      const uint64_t row = RandomLineitemRow(t, rng);
      t->Write(l_linestatus_, row, RandomDictCode(linestatus_dict_, rng));
      t->Write(l_discount_, row,
               PerturbDouble(t->Read(l_discount_, row), rng));
      break;
    }
    case OltpKind::kQ3: {
      const uint64_t row = RandomLineitemRow(t, rng);
      t->Write(l_extendedprice_, row,
               PerturbDouble(t->Read(l_extendedprice_, row), rng));
      t->Write(l_shipdate_, row, PerturbDate(t->Read(l_shipdate_, row), rng));
      break;
    }
    case OltpKind::kQ4: {
      const uint64_t row = RandomOrdersRow(t, rng);
      t->Write(o_orderpriority_, row,
               RandomDictCode(orderpriority_dict_, rng));
      t->Write(o_orderstatus_, row, RandomDictCode(orderstatus_dict_, rng));
      break;
    }
    case OltpKind::kQ5: {
      const uint64_t row = RandomOrdersRow(t, rng);
      t->Write(o_orderpriority_, row,
               RandomDictCode(orderpriority_dict_, rng));
      break;
    }
    case OltpKind::kQ6: {
      const uint64_t row = RandomOrdersRow(t, rng);
      t->Write(o_totalprice_, row,
               PerturbDouble(t->Read(o_totalprice_, row), rng));
      break;
    }
    case OltpKind::kQ7: {
      const uint64_t li_row = RandomLineitemRow(t, rng);
      t->Write(l_extendedprice_, li_row,
               PerturbDouble(t->Read(l_extendedprice_, li_row), rng));
      const uint64_t o_row = RandomOrdersRow(t, rng);
      t->Write(o_orderstatus_, o_row,
               RandomDictCode(orderstatus_dict_, rng));
      break;
    }
    case OltpKind::kQ8: {
      const uint64_t row = RandomPartRow(t, rng);
      t->Write(p_brand_, row, RandomDictCode(brand_dict_, rng));
      t->Write(p_retailprice_, row,
               PerturbDouble(t->Read(p_retailprice_, row), rng));
      break;
    }
    case OltpKind::kQ9: {
      const uint64_t li_row = RandomLineitemRow(t, rng);
      t->Write(l_returnflag_, li_row, RandomDictCode(returnflag_dict_, rng));
      const uint64_t o_row = RandomOrdersRow(t, rng);
      t->Write(o_totalprice_, o_row,
               PerturbDouble(t->Read(o_totalprice_, o_row), rng));
      const uint64_t p_row = RandomPartRow(t, rng);
      t->Write(p_retailprice_, p_row,
               PerturbDouble(t->Read(p_retailprice_, p_row), rng));
      break;
    }
  }
  return db_->Commit(t);
}

Status OltpTransactions::RunRandom(Rng* rng) {
  const size_t n = sizeof(kAllOltpKinds) / sizeof(kAllOltpKinds[0]);
  return Run(kAllOltpKinds[rng->NextBounded(n)], rng);
}

}  // namespace anker::tpch
