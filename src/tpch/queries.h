#ifndef ANKER_TPCH_QUERIES_H_
#define ANKER_TPCH_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "query/query.h"
#include "query/serialize.h"
#include "tpch/datagen.h"

namespace anker::tpch {

/// The 7 OLAP transactions of the paper's workload (Section 5.2): TPC-H
/// Q1 and Q6 on LINEITEM, Q4 on ORDERS (the paper treats it as a
/// single-table query), Q17 joining LINEITEM and PART, plus one full-table
/// scan per table.
enum class OlapKind {
  kQ1,
  kQ4,
  kQ6,
  kQ17,
  kScanLineitem,
  kScanOrders,
  kScanPart,
};

inline constexpr OlapKind kAllOlapKinds[] = {
    OlapKind::kQ1,  OlapKind::kQ4,           OlapKind::kQ6,
    OlapKind::kQ17, OlapKind::kScanLineitem, OlapKind::kScanOrders,
    OlapKind::kScanPart,
};

const char* OlapKindName(OlapKind kind);

/// Randomized query parameters, drawn within the TPC-H specification's
/// bounds for every fired transaction (Section 5.2).
struct OlapParams {
  // Q1: shipdate <= kShipDateMaxDays - delta.
  int64_t q1_delta_days = 90;  // spec: [60, 120]
  // Q4: o_orderdate in [start, start + 92 days).
  int64_t q4_start_day = 1000;
  // Q6: shipdate in [start, start+365), discount in [d-0.01, d+0.01],
  // quantity < q.
  int64_t q6_start_day = 365;
  double q6_discount = 0.06;  // spec: [0.02, 0.09]
  double q6_quantity = 24.0;  // spec: 24 or 25
  // Q17: brand and container codes.
  uint32_t q17_brand_code = 0;
  uint32_t q17_container_code = 0;
};

/// Result digest: a scalar checksum of the query result (sum over all
/// aggregate outputs) plus row/scan statistics. The digest makes results
/// comparable across processing modes in tests.
struct OlapResult {
  double digest = 0.0;
  uint64_t rows_considered = 0;
  engine::ScanStats scan;
};

/// The paper's workload queries, expressed as query-layer definitions
/// (src/query/query.h): each is a declarative plan built once in the
/// constructor and executed with per-transaction parameters. The previous
/// hand-written fold kernels live on in tpch/reference_kernels.h for
/// digest-equivalence tests and old-vs-new benchmarking.
class TpchQueries {
 public:
  TpchQueries(engine::Database* db, const TpchInstance& instance);

  /// Columns a query touches; the engine materializes snapshots for
  /// exactly this set (fine-granular, per-column snapshotting). Inferred
  /// from the compiled plans — no hand-maintained column lists.
  std::vector<storage::Column*> ColumnsFor(OlapKind kind) const;

  /// Draws randomized parameters within the spec bounds.
  OlapParams RandomParams(OlapKind kind, Rng* rng) const;

  /// Maps OlapParams onto the plan's named parameters.
  query::Params BindParams(OlapKind kind, const OlapParams& params) const;

  /// Executes the query inside an existing OLAP context (used by tests
  /// that pin one snapshot across several executions).
  OlapResult Run(OlapKind kind, const engine::OlapContext& ctx,
                 const OlapParams& params) const;

  /// Executes the query as one engine-managed OLAP transaction via
  /// Database::Run — the normal path for workload drivers.
  Result<OlapResult> RunOnEngine(OlapKind kind,
                                 const OlapParams& params) const;

  /// The compiled plan of a workload query. Q17 compiles onto the
  /// operator DAG (semi join against the filtered PART scan, inner join
  /// against a per-part average sub-query); everything else stays on the
  /// single-table fast paths.
  const query::Query& QueryFor(OlapKind kind) const;
  /// The compiled Q17 plan (alias of QueryFor(kQ17)).
  const query::Query& Q17Query() const { return q17_; }

  const TpchInstance& instance() const { return instance_; }

 private:
  /// Digest per kind, matching the reference kernels' checksums.
  OlapResult ToOlapResult(OlapKind kind,
                          const query::QueryResult& result) const;

  engine::Database* db_;
  TpchInstance instance_;
  query::Query q1_, q4_, q6_, q17_, scan_lineitem_, scan_orders_, scan_part_;
  std::vector<uint32_t> brand_codes_;
  std::vector<uint32_t> container_codes_;
};

/// All 22 TPC-H queries, declared in wire form (query/serialize.h) and
/// compiled against the live catalog through CompileWireQuery — exactly
/// the path a networked client takes, so the same definition serves the
/// in-process and over-the-wire differential tests. Queries follow the
/// spec's join/aggregation structure over the subset schema; free-text
/// predicates (LIKE patterns, date-part extraction) ride on the surrogate
/// columns documented in tpch/schema.h, and substitution parameters are
/// fixed to one representative binding per query (ParamsFor).
class Tpch22 {
 public:
  static constexpr int kNumQueries = 22;

  /// Requires the full eight-table instance (LoadTpch) in `db`.
  explicit Tpch22(engine::Database* db);

  /// Wire-form definition of query `q` (1-based).
  const query::WireQuery& Wire(int q) const;
  /// The compiled plan (CompileWireQuery of Wire(q)).
  const query::Query& Compiled(int q) const;
  /// The fixed substitution-parameter binding of query `q`.
  query::Params ParamsFor(int q) const;
  /// True when query `q` declares an ORDER BY (its row order is part of
  /// the result; unordered queries compare as row multisets).
  bool Ordered(int q) const;

  /// FNV-1a digest over the result rows (keys + raw IEEE value bits).
  /// Unordered results are canonically sorted first, so the digest is
  /// bit-comparable across execution strategies and the wire.
  static uint64_t RawDigest(const query::QueryResult& result, bool ordered);

 private:
  engine::Database* db_;
  std::vector<query::WireQuery> wire_;
  std::vector<query::Query> compiled_;
};

}  // namespace anker::tpch

#endif  // ANKER_TPCH_QUERIES_H_
