#ifndef ANKER_TPCH_REFERENCE_KERNELS_H_
#define ANKER_TPCH_REFERENCE_KERNELS_H_

// The retired hand-written OLAP kernels, kept verbatim as the reference
// implementation the query layer is tested and benchmarked against:
//  - tests/tpch/query_equivalence_test.cc asserts digest equality between
//    these kernels and the query-layer definitions in every processing
//    mode and buffer backend;
//  - bench_fig7_olap_latency --query_api reports old-vs-new latency (CI
//    gates the builder path at within 10% for Q1/Q6).
// New workloads should NOT follow this pattern — write a query-layer
// definition (src/query/query.h) instead.

#include "engine/database.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace anker::tpch {

/// Hand-rolled fold kernels for the 7 paper workloads, executing inside a
/// caller-provided OLAP context.
class ReferenceKernels {
 public:
  explicit ReferenceKernels(const TpchInstance& instance)
      : instance_(instance) {}

  /// Columns each kernel touches (same sets the query layer infers).
  std::vector<storage::Column*> ColumnsFor(OlapKind kind) const;

  OlapResult Run(OlapKind kind, const engine::OlapContext& ctx,
                 const OlapParams& params) const;

 private:
  OlapResult RunQ1(const engine::OlapContext& ctx,
                   const OlapParams& params) const;
  OlapResult RunQ4(const engine::OlapContext& ctx,
                   const OlapParams& params) const;
  OlapResult RunQ6(const engine::OlapContext& ctx,
                   const OlapParams& params) const;
  OlapResult RunQ17(const engine::OlapContext& ctx,
                    const OlapParams& params) const;
  OlapResult RunScan(const engine::OlapContext& ctx, storage::Table* table,
                     const std::string& column_name) const;

  TpchInstance instance_;
};

}  // namespace anker::tpch

#endif  // ANKER_TPCH_REFERENCE_KERNELS_H_
