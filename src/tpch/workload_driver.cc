#include "tpch/workload_driver.h"

#include <atomic>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace anker::tpch {

WorkloadDriver::WorkloadDriver(engine::Database* db,
                               const TpchInstance& instance)
    : db_(db),
      instance_(instance),
      oltp_(db, instance),
      queries_(db, instance),
      reference_(instance) {}

Result<OlapResult> WorkloadDriver::RunOlapOnce(OlapKind kind,
                                               const OlapParams& params,
                                               OlapPath path) {
  if (path == OlapPath::kQueryLayer) {
    // The redesigned entry point: Database::Run infers the column set
    // from the plan and manages the OLAP transaction.
    return queries_.RunOnEngine(kind, params);
  }
  // Reference baseline: the pre-query-layer protocol with a hand-built
  // column vector.
  auto ctx = db_->BeginOlap(reference_.ColumnsFor(kind));
  if (!ctx.ok()) return ctx.status();
  OlapResult result = reference_.Run(kind, *ctx.value(), params);
  ANKER_RETURN_IF_ERROR(db_->FinishOlap(ctx.TakeValue()));
  return result;
}

Status WorkloadDriver::WarmupSnapshots() {
  if (!db_->config().heterogeneous()) return Status::OK();
  std::vector<storage::Column*> columns;
  for (OlapKind kind : kAllOlapKinds) {
    for (storage::Column* column : queries_.ColumnsFor(kind)) {
      columns.push_back(column);
    }
  }
  auto ctx = db_->BeginOlap(columns);
  if (!ctx.ok()) return ctx.status();
  return db_->FinishOlap(ctx.TakeValue());
}

WorkloadResult WorkloadDriver::RunMixed(const WorkloadConfig& config) {
  const size_t threads = std::max<size_t>(1, config.threads);
  const uint64_t per_thread = config.oltp_transactions / threads;
  const uint64_t remainder = config.oltp_transactions % threads;

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> olap_done{0};
  std::vector<Histogram> latencies(threads);

  constexpr size_t kNumOlapKinds =
      sizeof(kAllOlapKinds) / sizeof(kAllOlapKinds[0]);

  // Stream fan-out rides the engine's worker pool (one pool per process):
  // every stream is one coarse task; OLAP scans fired inside a stream fan
  // their morsels into the same pool, so keep scan_threads-1 workers free
  // for them beyond the stream tasks.
  ThreadPool& pool = db_->worker_pool();
  pool.EnsureThreads(threads +
                     std::max<size_t>(1, db_->config().scan_threads) - 1);
  WaitGroup wg;
  wg.Add(static_cast<int>(threads));

  Timer wall;
  for (size_t worker = 0; worker < threads; ++worker) {
    pool.Submit([&, worker] {
      Rng rng(config.seed * 7919 + worker);
      const uint64_t my_oltp = per_thread + (worker < remainder ? 1 : 0);
      // OLAP transactions are distributed round-robin over the workers and
      // fired at evenly spaced points of the local OLTP stream.
      uint64_t my_olap = config.olap_transactions / threads +
                         (worker < config.olap_transactions % threads ? 1
                                                                      : 0);
      const uint64_t olap_stride =
          my_olap > 0 ? std::max<uint64_t>(1, my_oltp / (my_olap + 1)) : 0;
      uint64_t next_olap_at = olap_stride;
      uint64_t olap_index = worker;  // vary kinds across workers

      for (uint64_t i = 0; i < my_oltp; ++i) {
        const Status status = oltp_.RunRandom(&rng);
        if (status.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
        if (my_olap > 0 && i + 1 == next_olap_at) {
          const OlapKind kind = kAllOlapKinds[olap_index % kNumOlapKinds];
          olap_index += threads;
          const OlapParams params = queries_.RandomParams(kind, &rng);
          Timer latency;
          auto result = RunOlapOnce(kind, params);
          ANKER_CHECK(result.ok());
          latencies[worker].Record(latency.ElapsedNanos());
          olap_done.fetch_add(1, std::memory_order_relaxed);
          --my_olap;
          next_olap_at += olap_stride;
        }
      }
      // Any OLAP transactions not fired inside the loop (rounding) run now.
      while (my_olap > 0) {
        const OlapKind kind = kAllOlapKinds[olap_index % kNumOlapKinds];
        olap_index += threads;
        const OlapParams params = queries_.RandomParams(kind, &rng);
        Timer latency;
        auto result = RunOlapOnce(kind, params);
        ANKER_CHECK(result.ok());
        latencies[worker].Record(latency.ElapsedNanos());
        olap_done.fetch_add(1, std::memory_order_relaxed);
        --my_olap;
      }
      wg.Done();
    });
  }
  wg.Wait();

  WorkloadResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  result.oltp_committed = committed.load();
  result.oltp_aborted = aborted.load();
  result.olap_completed = olap_done.load();
  for (const Histogram& h : latencies) result.olap_latency.Merge(h);
  result.throughput_tps =
      static_cast<double>(result.oltp_committed + result.oltp_aborted +
                          result.olap_completed) /
      result.wall_seconds;
  return result;
}

double WorkloadDriver::MeasureOlapLatency(OlapKind kind,
                                          const WorkloadConfig& config,
                                          int repetitions, OlapPath path,
                                          double* min_nanos) {
  const size_t pressure_threads =
      config.threads > 1 ? config.threads - 1 : 1;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> fired{0};

  // Pressure workers churn through the OLTP stream until the measurement
  // thread is done (bounded by the configured transaction count so the
  // run always terminates). They run as pool tasks; the pool keeps enough
  // workers free for the measured scan's own morsel helpers.
  ThreadPool& pool = db_->worker_pool();
  pool.EnsureThreads(pressure_threads +
                     std::max<size_t>(1, db_->config().scan_threads) - 1);
  WaitGroup wg;
  wg.Add(static_cast<int>(pressure_threads));
  for (size_t worker = 0; worker < pressure_threads; ++worker) {
    pool.Submit([&, worker] {
      Rng rng(config.seed * 104729 + worker);
      while (!stop.load(std::memory_order_relaxed) &&
             fired.fetch_add(1, std::memory_order_relaxed) <
                 config.oltp_transactions) {
        (void)oltp_.RunRandom(&rng);
      }
      wg.Done();
    });
  }

  Rng rng(config.seed);
  double total_nanos = 0;
  double best_nanos = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const OlapParams params = queries_.RandomParams(kind, &rng);
    Timer latency;
    auto result = RunOlapOnce(kind, params, path);
    ANKER_CHECK(result.ok());
    const double nanos = static_cast<double>(latency.ElapsedNanos());
    total_nanos += nanos;
    if (rep == 0 || nanos < best_nanos) best_nanos = nanos;
  }
  if (min_nanos != nullptr) *min_nanos = best_nanos;

  stop.store(true, std::memory_order_relaxed);
  wg.Wait();
  return total_nanos / repetitions;
}

}  // namespace anker::tpch
