#ifndef ANKER_TPCH_OLTP_TRANSACTIONS_H_
#define ANKER_TPCH_OLTP_TRANSACTIONS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "engine/database.h"
#include "tpch/datagen.h"

namespace anker::tpch {

/// The paper's 9 hand-tailored OLTP transactions (Figure 6). Each is a
/// short update transaction keyed by a primary key: three on LINEITEM,
/// three on ORDERS, one on PART, and two multi-table ones (Q7 touches
/// LINEITEM+ORDERS, Q9 touches LINEITEM+ORDERS+PART). Parameters follow
/// Section 5.2: VARCHAR attributes pick an existing dictionary value
/// uniformly at random; DOUBLE attributes are perturbed by +-x% and DATE
/// attributes by +-x days, x in 1..10.
enum class OltpKind {
  kQ1,  // lineitem: l_returnflag
  kQ2,  // lineitem: l_linestatus, l_discount
  kQ3,  // lineitem: l_extendedprice, l_shipdate
  kQ4,  // orders:   o_orderpriority, o_orderstatus
  kQ5,  // orders:   o_orderpriority
  kQ6,  // orders:   o_totalprice
  kQ7,  // lineitem: l_extendedprice; orders: o_orderstatus
  kQ8,  // part:     p_brand, p_retailprice
  kQ9,  // lineitem: l_returnflag; orders: o_totalprice; part: p_retailprice
};

inline constexpr OltpKind kAllOltpKinds[] = {
    OltpKind::kQ1, OltpKind::kQ2, OltpKind::kQ3, OltpKind::kQ4,
    OltpKind::kQ5, OltpKind::kQ6, OltpKind::kQ7, OltpKind::kQ8,
    OltpKind::kQ9,
};

const char* OltpKindName(OltpKind kind);

/// Executor for the OLTP transaction set. Thread-safe: each call builds
/// its own transaction; `rng` must be thread-local to the caller.
class OltpTransactions {
 public:
  OltpTransactions(engine::Database* db, const TpchInstance& instance);

  /// Runs one transaction of `kind` with random parameters. Returns the
  /// commit status (kAborted on conflict — the caller decides whether to
  /// retry or to fire the next transaction).
  Status Run(OltpKind kind, Rng* rng);

  /// Runs a uniformly random transaction from the set.
  Status RunRandom(Rng* rng);

 private:
  // Parameter helpers implementing the Section 5.2 update rules.
  uint64_t RandomDictCode(const storage::Dictionary* dict, Rng* rng) const;
  uint64_t PerturbDouble(uint64_t raw, Rng* rng) const;
  uint64_t PerturbDate(uint64_t raw, Rng* rng) const;

  /// Uniformly random row of each table (keys are derived from the row's
  /// immutable key columns and re-resolved through the primary index, so
  /// the executed path matches a real parameter binding).
  uint64_t RandomLineitemRow(txn::Transaction* txn, Rng* rng) const;
  uint64_t RandomOrdersRow(txn::Transaction* txn, Rng* rng) const;
  uint64_t RandomPartRow(txn::Transaction* txn, Rng* rng) const;

  engine::Database* db_;
  TpchInstance instance_;
  // Cached column handles.
  storage::Column* l_orderkey_;
  storage::Column* l_linenumber_;
  storage::Column* l_returnflag_;
  storage::Column* l_linestatus_;
  storage::Column* l_discount_;
  storage::Column* l_extendedprice_;
  storage::Column* l_shipdate_;
  storage::Column* o_orderpriority_;
  storage::Column* o_orderstatus_;
  storage::Column* o_totalprice_;
  storage::Column* p_brand_;
  storage::Column* p_retailprice_;
  const storage::Dictionary* returnflag_dict_;
  const storage::Dictionary* linestatus_dict_;
  const storage::Dictionary* orderpriority_dict_;
  const storage::Dictionary* orderstatus_dict_;
  const storage::Dictionary* brand_dict_;
};

}  // namespace anker::tpch

#endif  // ANKER_TPCH_OLTP_TRANSACTIONS_H_
