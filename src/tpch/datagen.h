#ifndef ANKER_TPCH_DATAGEN_H_
#define ANKER_TPCH_DATAGEN_H_

#include <cstdint>

#include "common/status.h"
#include "engine/database.h"

namespace anker::tpch {

/// Generator parameters. The data is synthetic but follows TPC-H's key
/// structure (dense order/part keys, 1..7 lineitems per order) and value
/// distributions (uniform quantities/discounts, date windows, the small
/// dictionary domains the paper's OLTP transactions draw from) closely
/// enough that selectivities of Q1/Q4/Q6/Q17 match the spec's shape.
/// Substitution note (docs/ARCHITECTURE.md §8): the paper uses dbgen;
/// we generate in-process to keep the repo self-contained.
struct TpchConfig {
  /// Number of LINEITEM rows; ORDERS ~ lineitem/4 (orders carry 1..7
  /// lines), PART = lineitem/30 like TPC-H's 6M/200k ratio. The dimension
  /// tables derive from those: CUSTOMER matches the o_custkey domain,
  /// SUPPLIER the l_suppkey domain, PARTSUPP carries 4 suppliers per part.
  size_t lineitem_rows = 60000;
  uint64_t seed = 42;

  size_t OrdersRows() const { return lineitem_rows / 4 + 1; }
  size_t PartRows() const { return lineitem_rows / 30 + 1; }
  /// o_custkey is drawn from [1, OrdersRows()/10]; the extra 50% tail of
  /// customer rows beyond that domain never places an order — the
  /// "customers without orders" population Q13 and Q22 depend on (dbgen
  /// reserves every third custkey the same way).
  size_t CustomerRows() const {
    const size_t active = OrdersRows() / 10 > 0 ? OrdersRows() / 10 : 1;
    return active + active / 2;
  }
  /// At least one supplier per nation (25 nations, round-robin).
  size_t SupplierRows() const {
    return PartRows() / 20 > 25 ? PartRows() / 20 : 25;
  }
  size_t PartsuppRows() const { return PartRows() * 4; }
};

/// Row counts and key domains the workload driver needs.
struct TpchInstance {
  storage::Table* lineitem = nullptr;
  storage::Table* orders = nullptr;
  storage::Table* part = nullptr;
  storage::Table* customer = nullptr;
  storage::Table* supplier = nullptr;
  storage::Table* partsupp = nullptr;
  storage::Table* nation = nullptr;
  storage::Table* region = nullptr;
  size_t lineitem_rows = 0;
  size_t orders_rows = 0;
  size_t part_rows = 0;
  size_t customer_rows = 0;
  size_t supplier_rows = 0;
  size_t partsupp_rows = 0;
};

/// The i-th supplier (0..3) stocking part `partkey` in PARTSUPP, and the
/// value l_suppkey rows are aligned to. Deterministic, 4 distinct
/// suppliers per part (the stride is < S/1 apart and strictly below S).
inline int64_t PartsuppSupplier(int64_t partkey, int64_t i,
                                int64_t supplier_rows) {
  const int64_t step =
      supplier_rows / 4 > 1 ? supplier_rows / 4 : 1;
  return (partkey - 1 + i * step) % supplier_rows + 1;
}

/// Creates and loads all eight tables into `db`. Builds dictionaries and
/// primary-key hash indexes on the three fact tables. Deterministic for a
/// fixed seed; the original three-table value stream is byte-identical to
/// earlier revisions (the dimension tables and surrogate columns are
/// filled from a second, independently seeded stream).
Result<TpchInstance> LoadTpch(engine::Database* db, const TpchConfig& config);

}  // namespace anker::tpch

#endif  // ANKER_TPCH_DATAGEN_H_
