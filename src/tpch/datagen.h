#ifndef ANKER_TPCH_DATAGEN_H_
#define ANKER_TPCH_DATAGEN_H_

#include <cstdint>

#include "common/status.h"
#include "engine/database.h"

namespace anker::tpch {

/// Generator parameters. The data is synthetic but follows TPC-H's key
/// structure (dense order/part keys, 1..7 lineitems per order) and value
/// distributions (uniform quantities/discounts, date windows, the small
/// dictionary domains the paper's OLTP transactions draw from) closely
/// enough that selectivities of Q1/Q4/Q6/Q17 match the spec's shape.
/// Substitution note (docs/ARCHITECTURE.md §8): the paper uses dbgen;
/// we generate in-process to keep the repo self-contained.
struct TpchConfig {
  /// Number of LINEITEM rows; ORDERS ~ lineitem/4 (orders carry 1..7
  /// lines), PART = lineitem/30 like TPC-H's 6M/200k ratio.
  size_t lineitem_rows = 60000;
  uint64_t seed = 42;

  size_t OrdersRows() const { return lineitem_rows / 4 + 1; }
  size_t PartRows() const { return lineitem_rows / 30 + 1; }
};

/// Row counts and key domains the workload driver needs.
struct TpchInstance {
  storage::Table* lineitem = nullptr;
  storage::Table* orders = nullptr;
  storage::Table* part = nullptr;
  size_t lineitem_rows = 0;
  size_t orders_rows = 0;
  size_t part_rows = 0;
};

/// Creates and loads the three tables into `db`. Builds dictionaries and
/// primary-key hash indexes. Deterministic for a fixed seed.
Result<TpchInstance> LoadTpch(engine::Database* db, const TpchConfig& config);

}  // namespace anker::tpch

#endif  // ANKER_TPCH_DATAGEN_H_
