#ifndef ANKER_TPCH_WORKLOAD_DRIVER_H_
#define ANKER_TPCH_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/histogram.h"
#include "engine/database.h"
#include "tpch/oltp_transactions.h"
#include "tpch/queries.h"
#include "tpch/reference_kernels.h"

namespace anker::tpch {

/// Mixed-workload configuration (paper Sections 5.3/5.4/5.7).
struct WorkloadConfig {
  uint64_t oltp_transactions = 500000;
  /// OLAP transactions fired alongside, spread evenly over the stream
  /// (the paper fires 10, drawn from the 7-transaction OLAP set).
  uint64_t olap_transactions = 0;
  size_t threads = 8;
  uint64_t seed = 7;
};

/// End-to-end measurements.
struct WorkloadResult {
  double wall_seconds = 0;
  uint64_t oltp_committed = 0;
  uint64_t oltp_aborted = 0;
  uint64_t olap_completed = 0;
  Histogram olap_latency;  ///< Nanoseconds per OLAP transaction.
  double throughput_tps = 0;  ///< (oltp+olap completed) / wall_seconds.
};

/// Drives the paper's workload against a configured Database: a stream of
/// random OLTP transactions worked by a thread pool, optionally with OLAP
/// transactions interleaved. Also implements the Figure 7 latency
/// experiment (7 threads of OLTP pressure, the 8th thread measuring one
/// OLAP transaction).
class WorkloadDriver {
 public:
  WorkloadDriver(engine::Database* db, const TpchInstance& instance);

  /// Runs `config.oltp_transactions` random OLTP transactions (plus
  /// `config.olap_transactions` OLAP transactions drawn round-robin from
  /// the full OLAP set) on `config.threads` worker threads.
  WorkloadResult RunMixed(const WorkloadConfig& config);

  /// Which OLAP implementation a measurement drives: the query-layer
  /// plans (the engine's real path) or the retired hand-written kernels
  /// (reference baseline for bench_fig7 --query_api).
  enum class OlapPath { kQueryLayer, kReference };

  /// Figure 7 experiment: pressurizes the system with OLTP transactions on
  /// (threads-1) workers while one dedicated thread measures the latency
  /// of `kind`, fired `repetitions` times; returns mean latency in
  /// nanoseconds.
  /// `min_nanos` (optional) receives the fastest repetition — a less
  /// noise-sensitive statistic for A/B comparisons (CI uses it for the
  /// query-layer vs hand-written gate).
  double MeasureOlapLatency(OlapKind kind, const WorkloadConfig& config,
                            int repetitions = 5,
                            OlapPath path = OlapPath::kQueryLayer,
                            double* min_nanos = nullptr);

  /// Runs one OLAP transaction end to end (begin, snapshot acquire,
  /// execute, commit); returns its result digest.
  Result<OlapResult> RunOlapOnce(OlapKind kind, const OlapParams& params,
                                 OlapPath path = OlapPath::kQueryLayer);

  /// Heterogeneous mode only (no-op otherwise): materializes a first
  /// snapshot of every column the OLAP set touches. The very first
  /// materialization of a column flushes the entire freshly loaded column
  /// image into the backing file; benches call this once after load so
  /// that the measured epochs only pay for incremental dirt, as a
  /// long-running system would.
  Status WarmupSnapshots();

  OltpTransactions& oltp() { return oltp_; }
  TpchQueries& queries() { return queries_; }
  ReferenceKernels& reference() { return reference_; }

 private:
  engine::Database* db_;
  TpchInstance instance_;
  OltpTransactions oltp_;
  TpchQueries queries_;
  ReferenceKernels reference_;
};

}  // namespace anker::tpch

#endif  // ANKER_TPCH_WORKLOAD_DRIVER_H_
