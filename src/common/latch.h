#ifndef ANKER_COMMON_LATCH_H_
#define ANKER_COMMON_LATCH_H_

#include <atomic>
#include <shared_mutex>

#include "common/macros.h"

namespace anker {

/// Tiny test-and-set spin lock. Used in paths where a fault handler or a
/// very short critical section cannot afford a futex sleep.
class SpinLock {
 public:
  SpinLock() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(SpinLock);

  void Lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }

  bool TryLock() { return !flag_.test_and_set(std::memory_order_acquire); }

  void Unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  ANKER_DISALLOW_COPY_AND_MOVE(SpinLockGuard);

 private:
  SpinLock& lock_;
};

/// Shared/exclusive latch protecting a column. Updating transactions hold
/// it shared; snapshot materialization holds it exclusive, which drains and
/// blocks updaters exactly as described in the paper (Section 2.2.3).
class Latch {
 public:
  Latch() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(Latch);

  void LockShared() { mutex_.lock_shared(); }
  void UnlockShared() { mutex_.unlock_shared(); }
  void LockExclusive() { mutex_.lock(); }
  void UnlockExclusive() { mutex_.unlock(); }
  bool TryLockExclusive() { return mutex_.try_lock(); }

 private:
  std::shared_mutex mutex_;
};

/// RAII shared guard.
class SharedGuard {
 public:
  explicit SharedGuard(Latch& latch) : latch_(latch) { latch_.LockShared(); }
  ~SharedGuard() { latch_.UnlockShared(); }
  ANKER_DISALLOW_COPY_AND_MOVE(SharedGuard);

 private:
  Latch& latch_;
};

/// RAII exclusive guard.
class ExclusiveGuard {
 public:
  explicit ExclusiveGuard(Latch& latch) : latch_(latch) {
    latch_.LockExclusive();
  }
  ~ExclusiveGuard() { latch_.UnlockExclusive(); }
  ANKER_DISALLOW_COPY_AND_MOVE(ExclusiveGuard);

 private:
  Latch& latch_;
};

}  // namespace anker

#endif  // ANKER_COMMON_LATCH_H_
