#ifndef ANKER_COMMON_MACROS_H_
#define ANKER_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Set when compiling under ThreadSanitizer (-fsanitize=thread). The scan
/// kernels' tight loops intentionally read column slots non-atomically
/// and validate the block afterwards through a seqlock (the paper's
/// tight-loop strategy); under ANKER_TSAN those reads are issued as
/// relaxed atomic loads instead — same bytes, no compiler-level tearing —
/// so TSan only reports *unintended* races. See RawSlotLoad in
/// engine/executor.h.
#if defined(__SANITIZE_THREAD__)
#define ANKER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ANKER_TSAN 1
#endif
#endif

/// Aborts the process with a message when an invariant is violated.
/// Used for programming errors; recoverable errors use anker::Status.
#define ANKER_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ANKER_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define ANKER_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ANKER_CHECK failed: %s (%s) at %s:%d\n", #cond,\
                   (msg), __FILE__, __LINE__);                             \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Deletes copy operations for a class.
#define ANKER_DISALLOW_COPY(ClassName)        \
  ClassName(const ClassName&) = delete;       \
  ClassName& operator=(const ClassName&) = delete

/// Deletes copy and move operations for a class.
#define ANKER_DISALLOW_COPY_AND_MOVE(ClassName) \
  ANKER_DISALLOW_COPY(ClassName);               \
  ClassName(ClassName&&) = delete;              \
  ClassName& operator=(ClassName&&) = delete

#endif  // ANKER_COMMON_MACROS_H_
