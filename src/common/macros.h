#ifndef ANKER_COMMON_MACROS_H_
#define ANKER_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a message when an invariant is violated.
/// Used for programming errors; recoverable errors use anker::Status.
#define ANKER_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ANKER_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define ANKER_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ANKER_CHECK failed: %s (%s) at %s:%d\n", #cond,\
                   (msg), __FILE__, __LINE__);                             \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Deletes copy operations for a class.
#define ANKER_DISALLOW_COPY(ClassName)        \
  ClassName(const ClassName&) = delete;       \
  ClassName& operator=(const ClassName&) = delete

/// Deletes copy and move operations for a class.
#define ANKER_DISALLOW_COPY_AND_MOVE(ClassName) \
  ANKER_DISALLOW_COPY(ClassName);               \
  ClassName(ClassName&&) = delete;              \
  ClassName& operator=(ClassName&&) = delete

#endif  // ANKER_COMMON_MACROS_H_
