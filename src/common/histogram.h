#ifndef ANKER_COMMON_HISTOGRAM_H_
#define ANKER_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace anker {

/// Latency histogram with exact percentile queries over recorded samples.
/// Designed for bench harness use (record nanoseconds, query p50/p95/...).
/// Not thread-safe; each worker records into its own histogram and the
/// harness merges at the end.
class Histogram {
 public:
  Histogram() = default;

  void Record(int64_t value_nanos);

  /// Merges all samples from `other` into this histogram.
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  int64_t min() const;
  int64_t max() const;
  double Mean() const;
  /// Exact percentile (q in [0,100]) over recorded samples.
  int64_t Percentile(double q) const;

  /// One-line summary: count/mean/p50/p95/p99/max in milliseconds.
  std::string Summary() const;

 private:
  void SortIfNeeded() const;

  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = true;
};

}  // namespace anker

#endif  // ANKER_COMMON_HISTOGRAM_H_
