#include "common/rng.h"

#include "common/macros.h"

namespace anker {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// SplitMix64 used to expand the single seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ANKER_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ANKER_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextDoubleInRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace anker
