#ifndef ANKER_COMMON_FAULT_INJECTOR_H_
#define ANKER_COMMON_FAULT_INJECTOR_H_

// Process-wide fault injection for crash / partition drills. Production
// binaries run with the injector disarmed (every probe compiles down to
// one atomic pointer load); the replication and crash harnesses arm it
// through the environment to make "the process dies mid-fsync" and "the
// replication socket flakes" reproducible, seeded events instead of
// hand-timed SIGKILLs.
//
// Arming (read once, at first use):
//   ANKER_FAULTS="wal.flush.pre:kill:0.01,repl.send:fail:0.05"
//   ANKER_FAULT_SEED=12345
//
// Each entry is `<point>:<action>:<probability>` where action is `kill`
// (immediate _exit(137), no flush, no destructors — indistinguishable
// from SIGKILL) or `fail` (the probe reports failure and the call site
// surfaces a recoverable IO error — a simulated partition or disk hiccup).
// Unknown points are accepted: the table is data, not code, so harnesses
// can arm points added later without a lockstep upgrade.
//
// Call sites name their points as stable string literals; the registered
// points are documented in docs/OPERATIONS.md (fault drill section).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace anker {

class FaultInjector {
 public:
  /// The process-wide injector (armed from the environment on first use).
  static FaultInjector& Instance();

  /// True when any fault point is armed. Cheap enough for hot paths.
  bool armed() const {
    return table_.load(std::memory_order_acquire) != nullptr;
  }

  /// Dies via _exit(137) with probability p when `point` is armed with
  /// action `kill`. No-op otherwise.
  void MaybeKill(std::string_view point);

  /// Returns true with probability p when `point` is armed with action
  /// `fail`: the caller must surface a recoverable error (never abort).
  bool ShouldFail(std::string_view point);

  /// Test hook: replaces the armed table from a spec string (same grammar
  /// as ANKER_FAULTS). Passing "" disarms. Safe against concurrent probes:
  /// the new table is published atomically and in-flight probes may still
  /// act on the previous one.
  void ArmForTest(const std::string& spec, uint64_t seed);

 private:
  struct Point {
    std::string name;
    bool kill = false;  ///< kill vs fail.
    double probability = 0.0;
  };
  /// An immutable armed-point set. Probes read the current table through
  /// one acquire load; re-arming publishes a fresh table and parks the old
  /// one in retired_ (probes hold no epoch, so retired tables must outlive
  /// the process — re-arming only happens in tests, so that is bounded).
  struct Table {
    std::vector<Point> points;
  };

  FaultInjector();
  void Arm(const std::string& spec, uint64_t seed);
  static const Point* Find(const Table& table, std::string_view point,
                           bool kill);
  bool Roll(double probability);

  std::atomic<const Table*> table_{nullptr};  ///< null = disarmed.
  std::mutex arm_mutex_;                      ///< serializes re-arming.
  std::vector<std::unique_ptr<const Table>> retired_;
  /// splitmix64 counter: fetch_add keeps rolls thread-safe without a lock
  /// (probes run on commit and replication hot paths).
  std::atomic<uint64_t> rng_state_{0x9E3779B97F4A7C15ULL};
};

}  // namespace anker

#endif  // ANKER_COMMON_FAULT_INJECTOR_H_
