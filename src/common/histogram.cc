#include "common/histogram.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/macros.h"

namespace anker {

void Histogram::Record(int64_t value_nanos) {
  samples_.push_back(value_nanos);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void Histogram::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

int64_t Histogram::min() const {
  ANKER_CHECK(!samples_.empty());
  SortIfNeeded();
  return samples_.front();
}

int64_t Histogram::max() const {
  ANKER_CHECK(!samples_.empty());
  SortIfNeeded();
  return samples_.back();
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

int64_t Histogram::Percentile(double q) const {
  ANKER_CHECK(!samples_.empty());
  ANKER_CHECK(q >= 0.0 && q <= 100.0);
  SortIfNeeded();
  const size_t rank = static_cast<size_t>(
      (q / 100.0) * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

std::string Histogram::Summary() const {
  if (samples_.empty()) return "(no samples)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                count(), Mean() / 1e6, Percentile(50) / 1e6,
                Percentile(95) / 1e6, Percentile(99) / 1e6, max() / 1e6);
  return buf;
}

}  // namespace anker
