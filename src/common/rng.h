#ifndef ANKER_COMMON_RNG_H_
#define ANKER_COMMON_RNG_H_

#include <cstdint>

namespace anker {

/// Small, fast, deterministic pseudo-random generator (xoshiro256**).
/// Deterministic seeding makes data generation and tests reproducible.
class Rng {
 public:
  /// Seeds the generator. Identical seeds produce identical sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi);

  /// True with probability p (p in [0,1]).
  bool NextBool(double p);

 private:
  uint64_t state_[4];
};

}  // namespace anker

#endif  // ANKER_COMMON_RNG_H_
