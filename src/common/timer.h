#ifndef ANKER_COMMON_TIMER_H_
#define ANKER_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace anker {

/// Monotonic wall-clock timer with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace anker

#endif  // ANKER_COMMON_TIMER_H_
