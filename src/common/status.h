#ifndef ANKER_COMMON_STATUS_H_
#define ANKER_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace anker {

/// Error codes for recoverable failures. Transaction aborts are modeled as
/// statuses (kAborted) so callers can retry; invariant violations use
/// ANKER_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kAborted,         ///< Transaction aborted (conflict or validation failure).
  kResourceBusy,    ///< Latch/lock could not be acquired.
  kNotSupported,
  kInternal,
};

/// RocksDB-style status object: cheap to return, carries a code and an
/// optional message. The library does not use exceptions.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceBusy(std::string msg) {
    return Status(StatusCode::kResourceBusy, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceBusy() const { return code_ == StatusCode::kResourceBusy; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "Aborted: ww-conflict on row 5".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Returns early from the enclosing function if `expr` is a non-OK Status.
#define ANKER_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::anker::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// A value-or-status pair, used where a function computes a value but can
/// fail recoverably.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path reads naturally).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {
    ANKER_CHECK_MSG(!status_.ok(), "Result built from OK status needs value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const {
    ANKER_CHECK(ok());
    return value_;
  }
  T& value() {
    ANKER_CHECK(ok());
    return value_;
  }
  T&& TakeValue() {
    ANKER_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace anker

#endif  // ANKER_COMMON_STATUS_H_
