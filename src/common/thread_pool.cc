#include "common/thread_pool.h"

namespace anker {

ThreadPool::ThreadPool(size_t num_threads) {
  ANKER_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ANKER_CHECK_MSG(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> guard(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace anker
