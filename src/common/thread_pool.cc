#include "common/thread_pool.h"

namespace anker {

ThreadPool::ThreadPool(size_t num_threads) {
  ANKER_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ANKER_CHECK_MSG(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] {
    return queue_.empty() && helper_queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::EnsureThreads(size_t num_threads) {
  std::lock_guard<std::mutex> guard(mutex_);
  ANKER_CHECK_MSG(!shutdown_, "EnsureThreads after shutdown");
  while (workers_.size() < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::TryRunOneHelper() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (helper_queue_.empty()) return false;
    task = std::move(helper_queue_.front());
    helper_queue_.pop_front();
    ++in_flight_;
  }
  task();
  {
    std::lock_guard<std::mutex> guard(mutex_);
    --in_flight_;
    if (queue_.empty() && helper_queue_.empty() && in_flight_ == 0) {
      all_done_.notify_all();
    }
  }
  return true;
}

void ThreadPool::ParallelRun(size_t parallelism,
                             const std::function<void(size_t)>& work) {
  ANKER_CHECK(parallelism > 0);
  size_t helpers = 0;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    helpers = std::min(parallelism - 1, workers_.size());
  }
  if (helpers == 0) {
    work(0);
    return;
  }

  WaitGroup wg;
  wg.Add(static_cast<int>(helpers));
  {
    std::lock_guard<std::mutex> guard(mutex_);
    // `work` and `wg` live on this frame; ParallelRun does not return
    // until every helper has called wg.Done(), so the references stay
    // valid for the helpers' whole lifetime.
    for (size_t slot = 1; slot <= helpers; ++slot) {
      helper_queue_.push_back([&work, &wg, slot] {
        work(slot);
        wg.Done();
      });
    }
  }
  task_available_.notify_all();

  work(0);

  // Late helpers may still sit in the helper queue (every worker busy,
  // possibly itself blocked right here). Drain helpers — ours or another
  // scan's — until our group's are all taken, then sleep until the ones
  // running elsewhere finish.
  while (!wg.TryWait()) {
    if (!TryRunOneHelper()) {
      wg.Wait();
      break;
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] {
        return shutdown_ || !helper_queue_.empty() || !queue_.empty();
      });
      // Helpers first: they are short-lived morsels whose ParallelRun
      // caller is actively blocked on them.
      if (!helper_queue_.empty()) {
        task = std::move(helper_queue_.front());
        helper_queue_.pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        if (shutdown_) return;
        continue;
      }
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> guard(mutex_);
      --in_flight_;
      if (queue_.empty() && helper_queue_.empty() && in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace anker
