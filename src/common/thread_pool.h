#ifndef ANKER_COMMON_THREAD_POOL_H_
#define ANKER_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace anker {

/// Lightweight completion counter for fan-out/fan-in patterns.
class WaitGroup {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> guard(mutex_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> guard(mutex_);
    ANKER_CHECK(count_ > 0);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  /// Non-blocking check: true iff the count is currently zero.
  bool TryWait() {
    std::lock_guard<std::mutex> guard(mutex_);
    return count_ == 0;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_ = 0;
};

/// Fixed-at-construction (but growable, see EnsureThreads) worker pool: the
/// process-wide executor for both coarse stream tasks (one per workload
/// stream) and fine-grained scan morsels. Two queues exist:
///  - the *task* queue holds coarse, potentially long-running work
///    submitted with Submit();
///  - the *helper* queue holds short-lived morsel helpers enqueued by
///    ParallelRun. Workers prefer it, and threads blocked inside
///    ParallelRun drain it while they wait — never the task queue, so a
///    waiting scan can never get stuck behind (or inlined into) a
///    multi-second stream task.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ANKER_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// Enqueues a coarse task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  /// Grows the pool to at least `num_threads` workers (never shrinks).
  /// Safe to call while tasks are running.
  void EnsureThreads(size_t num_threads);

  /// Runs `work(slot)` on up to `parallelism` participants: the calling
  /// thread (slot 0) plus up to parallelism-1 pool workers, then blocks
  /// until all participants returned. `work` must pull its own morsels
  /// from shared state until exhausted, so a helper that starts late (or
  /// never gets a core) simply finds nothing to do.
  ///
  /// Deadlock-free when called from inside a pool task: while waiting, the
  /// caller executes queued *helper* tasks (its own or other scans'), so
  /// helper work always makes progress even when every worker is itself
  /// blocked in ParallelRun.
  void ParallelRun(size_t parallelism,
                   const std::function<void(size_t slot)>& work);

  /// Morsel-driven parallel loop: carves [begin, end) into chunks of
  /// `grain` items and fans them out over up to `parallelism` participants
  /// via ParallelRun. `fn(chunk_begin, chunk_end, slot)` is called with
  /// slot in [0, parallelism); chunks are claimed dynamically from a shared
  /// counter, so uneven chunk costs still balance.
  template <typename Fn>
  void ParallelFor(size_t begin, size_t end, size_t grain, size_t parallelism,
                   Fn&& fn) {
    ANKER_CHECK(grain > 0);
    if (begin >= end) return;
    const size_t items = end - begin;
    const size_t chunks = (items + grain - 1) / grain;
    if (parallelism <= 1 || chunks <= 1) {
      fn(begin, end, size_t{0});
      return;
    }
    std::atomic<size_t> next_chunk{0};
    ParallelRun(std::min(parallelism, chunks), [&](size_t slot) {
      for (;;) {
        const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= chunks) return;
        const size_t chunk_begin = begin + chunk * grain;
        const size_t chunk_end = std::min(chunk_begin + grain, end);
        fn(chunk_begin, chunk_end, slot);
      }
    });
  }

  size_t num_threads() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return workers_.size();
  }

 private:
  void WorkerLoop();
  /// Pops and runs one helper task on the calling thread. False if none
  /// was queued.
  bool TryRunOneHelper();

  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::deque<std::function<void()>> helper_queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace anker

#endif  // ANKER_COMMON_THREAD_POOL_H_
