#ifndef ANKER_COMMON_THREAD_POOL_H_
#define ANKER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace anker {

/// Fixed-size worker pool used by the workload driver to execute streams of
/// OLTP/OLAP transactions. Tasks are plain std::function<void()>; callers
/// track their own completion (see WaitGroup below).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ANKER_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Lightweight completion counter for fan-out/fan-in patterns.
class WaitGroup {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> guard(mutex_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> guard(mutex_);
    ANKER_CHECK(count_ > 0);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_ = 0;
};

}  // namespace anker

#endif  // ANKER_COMMON_THREAD_POOL_H_
