#include "common/fault_injector.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace anker {

namespace {

/// splitmix64 finalizer: a counter through this is a fine uniform source
/// for fault rolls (no statistical ambition beyond "seeded and spread").
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("ANKER_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
  if (const char* s = std::getenv("ANKER_FAULT_SEED")) {
    seed = static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  Arm(spec, seed);
}

void FaultInjector::ArmForTest(const std::string& spec, uint64_t seed) {
  Arm(spec, seed);
}

void FaultInjector::Arm(const std::string& spec, uint64_t seed) {
  std::vector<Point> points;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const size_t c1 = entry.find(':');
    const size_t c2 = c1 == std::string::npos ? c1 : entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      std::fprintf(stderr, "anker: ignoring malformed ANKER_FAULTS entry %s\n",
                   entry.c_str());
      continue;
    }
    Point point;
    point.name = entry.substr(0, c1);
    const std::string action = entry.substr(c1 + 1, c2 - c1 - 1);
    point.probability = std::atof(entry.c_str() + c2 + 1);
    if (action == "kill") {
      point.kill = true;
    } else if (action != "fail") {
      std::fprintf(stderr, "anker: ignoring unknown fault action %s\n",
                   action.c_str());
      continue;
    }
    if (point.probability <= 0.0) continue;
    points.push_back(std::move(point));
  }
  const Table* next =
      points.empty() ? nullptr : new Table{std::move(points)};
  std::lock_guard<std::mutex> lock(arm_mutex_);
  rng_state_.store(seed * 0x9E3779B97F4A7C15ULL + 1, std::memory_order_relaxed);
  if (const Table* old = table_.exchange(next, std::memory_order_acq_rel)) {
    retired_.emplace_back(old);
  }
}

const FaultInjector::Point* FaultInjector::Find(const Table& table,
                                                std::string_view point,
                                                bool kill) {
  for (const Point& p : table.points) {
    if (p.kill == kill && p.name == point) return &p;
  }
  return nullptr;
}

bool FaultInjector::Roll(double probability) {
  if (probability >= 1.0) return true;
  const uint64_t z =
      Mix(rng_state_.fetch_add(0x9E3779B97F4A7C15ULL,
                               std::memory_order_relaxed));
  // 53-bit mantissa draw in [0, 1).
  const double draw = static_cast<double>(z >> 11) * 0x1.0p-53;
  return draw < probability;
}

void FaultInjector::MaybeKill(std::string_view point) {
  const Table* table = table_.load(std::memory_order_acquire);
  if (table == nullptr) return;
  const Point* p = Find(*table, point, /*kill=*/true);
  if (p == nullptr || !Roll(p->probability)) return;
  // SIGKILL semantics: no stdio flush, no atexit, no destructors. The
  // write() is async-signal-safe-grade plumbing so harnesses can log
  // which point fired without risking a deadlock in stdio.
  char buf[128];
  const int n = std::snprintf(buf, sizeof(buf), "anker: fault kill at %.*s\n",
                              static_cast<int>(point.size()), point.data());
  if (n > 0) {
    const ssize_t ignored = ::write(2, buf, static_cast<size_t>(n));
    (void)ignored;
  }
  ::_exit(137);
}

bool FaultInjector::ShouldFail(std::string_view point) {
  const Table* table = table_.load(std::memory_order_acquire);
  if (table == nullptr) return false;
  const Point* p = Find(*table, point, /*kill=*/false);
  return p != nullptr && Roll(p->probability);
}

}  // namespace anker
