#ifndef ANKER_COMMON_BITMAP_H_
#define ANKER_COMMON_BITMAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace anker {

/// Fixed-size bitmap used to track dirty pages per snapshot epoch and
/// versioned rows per block. Not thread-safe; callers synchronize.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits) { Resize(num_bits); }

  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
    popcount_ = 0;
  }

  size_t size() const { return num_bits_; }

  /// Number of set bits (maintained incrementally).
  size_t count() const { return popcount_; }

  bool Test(size_t i) const {
    ANKER_CHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    ANKER_CHECK(i < num_bits_);
    uint64_t& w = words_[i >> 6];
    const uint64_t mask = 1ULL << (i & 63);
    if (!(w & mask)) {
      w |= mask;
      ++popcount_;
    }
  }

  void Clear(size_t i) {
    ANKER_CHECK(i < num_bits_);
    uint64_t& w = words_[i >> 6];
    const uint64_t mask = 1ULL << (i & 63);
    if (w & mask) {
      w &= ~mask;
      --popcount_;
    }
  }

  /// Clears all bits without releasing memory.
  void Reset() {
    std::fill(words_.begin(), words_.end(), 0);
    popcount_ = 0;
  }

  /// Calls fn(index) for every set bit, in increasing order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Calls fn(first, count) for every maximal run of consecutive set bits.
  /// Used to batch madvise/mmap calls over contiguous dirty-page runs.
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    size_t run_start = 0;
    size_t run_len = 0;
    ForEachSet([&](size_t i) {
      if (run_len > 0 && i == run_start + run_len) {
        ++run_len;
      } else {
        if (run_len > 0) fn(run_start, run_len);
        run_start = i;
        run_len = 1;
      }
    });
    if (run_len > 0) fn(run_start, run_len);
  }

 private:
  size_t num_bits_ = 0;
  size_t popcount_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace anker

#endif  // ANKER_COMMON_BITMAP_H_
