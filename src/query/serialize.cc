#include "query/serialize.h"

#include "wal/wal_format.h"

namespace anker::query {

namespace {

using wal::GetString;
using wal::GetU32;
using wal::GetU64;
using wal::GetU8;
using wal::PutString;
using wal::PutU32;
using wal::PutU64;
using wal::PutU8;

Status Truncated() {
  return Status::InvalidArgument("truncated wire query encoding");
}

// Node flags: which optional members follow.
constexpr uint8_t kHasLhs = 1u << 0;
constexpr uint8_t kHasRhs = 1u << 1;
constexpr uint8_t kIsString = 1u << 2;

bool ValidExprKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(ExprKind::kOr);
}

bool ValidExprType(uint8_t type) {
  return type <= static_cast<uint8_t>(ExprType::kBool);
}

bool ValidAggKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(AggKind::kMax);
}

Status EncodeNode(const ExprNode* node, size_t depth, size_t* budget,
                  std::string* out) {
  if (node == nullptr) {
    return Status::InvalidArgument("cannot encode an invalid expression");
  }
  if (depth > kMaxWireExprDepth) {
    return Status::InvalidArgument("expression too deep for the wire");
  }
  if (*budget == 0) {
    return Status::InvalidArgument("expression too large for the wire");
  }
  --*budget;
  PutU8(out, static_cast<uint8_t>(node->kind));
  PutU8(out, static_cast<uint8_t>(node->type));
  uint8_t flags = 0;
  if (node->lhs != nullptr) flags |= kHasLhs;
  if (node->rhs != nullptr) flags |= kHasRhs;
  if (node->is_string) flags |= kIsString;
  PutU8(out, flags);
  PutString(out, node->name);
  PutU64(out, node->raw);
  PutString(out, node->text);
  if (node->lhs != nullptr) {
    ANKER_RETURN_IF_ERROR(EncodeNode(node->lhs.get(), depth + 1, budget, out));
  }
  if (node->rhs != nullptr) {
    ANKER_RETURN_IF_ERROR(EncodeNode(node->rhs.get(), depth + 1, budget, out));
  }
  return Status::OK();
}

Status DecodeNode(std::string_view* in, size_t depth, size_t* budget,
                  std::shared_ptr<const ExprNode>* out) {
  if (depth > kMaxWireExprDepth) {
    return Status::InvalidArgument("wire expression too deep");
  }
  if (*budget == 0) {
    return Status::InvalidArgument("wire expression has too many nodes");
  }
  --*budget;
  uint8_t kind = 0, type = 0, flags = 0;
  if (!GetU8(in, &kind) || !GetU8(in, &type) || !GetU8(in, &flags)) {
    return Truncated();
  }
  if (!ValidExprKind(kind)) {
    return Status::InvalidArgument("unknown expression kind tag on the wire");
  }
  if (!ValidExprType(type)) {
    return Status::InvalidArgument("unknown expression type tag on the wire");
  }
  if ((flags & ~(kHasLhs | kHasRhs | kIsString)) != 0) {
    return Status::InvalidArgument("unknown expression flag bits on the wire");
  }
  auto node = std::make_shared<ExprNode>();
  node->kind = static_cast<ExprKind>(kind);
  node->type = static_cast<ExprType>(type);
  node->is_string = (flags & kIsString) != 0;
  if (!GetString(in, &node->name) || !GetU64(in, &node->raw) ||
      !GetString(in, &node->text)) {
    return Truncated();
  }
  if ((flags & kHasLhs) != 0) {
    std::shared_ptr<const ExprNode> lhs;
    ANKER_RETURN_IF_ERROR(DecodeNode(in, depth + 1, budget, &lhs));
    node->lhs = std::move(lhs);
  }
  if ((flags & kHasRhs) != 0) {
    std::shared_ptr<const ExprNode> rhs;
    ANKER_RETURN_IF_ERROR(DecodeNode(in, depth + 1, budget, &rhs));
    node->rhs = std::move(rhs);
  }
  *out = std::move(node);
  return Status::OK();
}

}  // namespace

Status EncodeExpr(const Expr& expr, std::string* out) {
  size_t budget = kMaxWireExprNodes;
  return EncodeNode(expr.node(), 0, &budget, out);
}

Status DecodeExpr(std::string_view* in, Expr* expr) {
  size_t budget = kMaxWireExprNodes;
  std::shared_ptr<const ExprNode> root;
  ANKER_RETURN_IF_ERROR(DecodeNode(in, 0, &budget, &root));
  *expr = Expr(std::move(root));
  return Status::OK();
}

Status EncodeWireQuery(const WireQuery& query, std::string* out) {
  if (query.aggs.size() > kMaxWireQueryLists ||
      query.group_by.size() > kMaxWireQueryLists) {
    return Status::InvalidArgument("wire query lists too large");
  }
  PutString(out, query.table);
  PutU8(out, query.filter.valid() ? 1 : 0);
  if (query.filter.valid()) {
    ANKER_RETURN_IF_ERROR(EncodeExpr(query.filter, out));
  }
  PutU32(out, static_cast<uint32_t>(query.aggs.size()));
  for (const Agg& agg : query.aggs) {
    PutU8(out, static_cast<uint8_t>(agg.kind()));
    PutString(out, agg.name());
    PutU8(out, agg.expr().valid() ? 1 : 0);
    if (agg.expr().valid()) {
      ANKER_RETURN_IF_ERROR(EncodeExpr(agg.expr(), out));
    }
  }
  PutU32(out, static_cast<uint32_t>(query.group_by.size()));
  for (const std::string& column : query.group_by) {
    PutString(out, column);
  }
  return Status::OK();
}

Status DecodeWireQuery(std::string_view* in, WireQuery* query) {
  *query = WireQuery();
  uint8_t has_filter = 0;
  if (!GetString(in, &query->table) || !GetU8(in, &has_filter)) {
    return Truncated();
  }
  if (has_filter > 1) {
    return Status::InvalidArgument("bad filter presence tag on the wire");
  }
  if (has_filter == 1) {
    ANKER_RETURN_IF_ERROR(DecodeExpr(in, &query->filter));
  }
  uint32_t naggs = 0;
  if (!GetU32(in, &naggs)) return Truncated();
  if (naggs > kMaxWireQueryLists) {
    return Status::InvalidArgument("too many aggregates on the wire");
  }
  for (uint32_t i = 0; i < naggs; ++i) {
    uint8_t kind = 0, has_expr = 0;
    std::string name;
    if (!GetU8(in, &kind) || !GetString(in, &name) || !GetU8(in, &has_expr)) {
      return Truncated();
    }
    if (!ValidAggKind(kind)) {
      return Status::InvalidArgument("unknown aggregate kind tag on the wire");
    }
    if (has_expr > 1) {
      return Status::InvalidArgument("bad aggregate expr tag on the wire");
    }
    Expr expr;
    if (has_expr == 1) {
      ANKER_RETURN_IF_ERROR(DecodeExpr(in, &expr));
    }
    query->aggs.push_back(
        Agg(static_cast<AggKind>(kind), std::move(expr)).As(std::move(name)));
  }
  uint32_t ngroup = 0;
  if (!GetU32(in, &ngroup)) return Truncated();
  if (ngroup > kMaxWireQueryLists) {
    return Status::InvalidArgument("too many group-by columns on the wire");
  }
  for (uint32_t i = 0; i < ngroup; ++i) {
    std::string column;
    if (!GetString(in, &column)) return Truncated();
    query->group_by.push_back(std::move(column));
  }
  return Status::OK();
}

Result<Query> CompileWireQuery(const WireQuery& query,
                               const storage::Catalog& catalog) {
  if (!catalog.HasTable(query.table)) {
    return Status::NotFound("unknown table: " + query.table);
  }
  QueryBuilder builder(catalog.GetTable(query.table));
  if (query.filter.valid()) builder.Filter(query.filter);
  builder.Aggregate(query.aggs);
  if (!query.group_by.empty()) builder.GroupBy(query.group_by);
  return builder.Build();
}

void EncodeParams(const Params& params, std::string* out) {
  const auto& values = params.values();
  PutU32(out, static_cast<uint32_t>(values.size()));
  for (const auto& [name, value] : values) {
    PutString(out, name);
    PutU8(out, static_cast<uint8_t>(value.type));
    PutU8(out, value.is_string ? 1 : 0);
    PutU64(out, value.raw);
    PutString(out, value.text);
  }
}

Status DecodeParams(std::string_view* in, Params* params) {
  *params = Params();
  uint32_t count = 0;
  if (!GetU32(in, &count)) return Truncated();
  if (count > kMaxWireQueryLists) {
    return Status::InvalidArgument("too many parameters on the wire");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name, text;
    uint8_t type = 0, is_string = 0;
    uint64_t raw = 0;
    if (!GetString(in, &name) || !GetU8(in, &type) || !GetU8(in, &is_string) ||
        !GetU64(in, &raw) || !GetString(in, &text)) {
      return Truncated();
    }
    if (!ValidExprType(type) || is_string > 1) {
      return Status::InvalidArgument("bad parameter tag on the wire");
    }
    Params::Value value;
    value.type = static_cast<ExprType>(type);
    value.raw = raw;
    value.is_string = is_string == 1;
    value.text = std::move(text);
    params->Set(name, value);
  }
  return Status::OK();
}

}  // namespace anker::query
