#include "query/serialize.h"

#include "wal/wal_format.h"

namespace anker::query {

namespace {

using wal::GetString;
using wal::GetU32;
using wal::GetU64;
using wal::GetU8;
using wal::PutString;
using wal::PutU32;
using wal::PutU64;
using wal::PutU8;

Status Truncated() {
  return Status::InvalidArgument("truncated wire query encoding");
}

// Node flags: which optional members follow.
constexpr uint8_t kHasLhs = 1u << 0;
constexpr uint8_t kHasRhs = 1u << 1;
constexpr uint8_t kIsString = 1u << 2;

bool ValidExprKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(ExprKind::kOr);
}

bool ValidExprType(uint8_t type) {
  return type <= static_cast<uint8_t>(ExprType::kBool);
}

bool ValidAggKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(AggKind::kCountDistinct);
}

bool ValidJoinType(uint8_t type) {
  return type <= static_cast<uint8_t>(JoinType::kLeftOuter);
}

bool ValidWinFn(uint8_t fn) {
  return fn <= static_cast<uint8_t>(WinFn::kCount);
}

Status EncodeNode(const ExprNode* node, size_t depth, size_t* budget,
                  std::string* out) {
  if (node == nullptr) {
    return Status::InvalidArgument("cannot encode an invalid expression");
  }
  if (depth > kMaxWireExprDepth) {
    return Status::InvalidArgument("expression too deep for the wire");
  }
  if (*budget == 0) {
    return Status::InvalidArgument("expression too large for the wire");
  }
  --*budget;
  PutU8(out, static_cast<uint8_t>(node->kind));
  PutU8(out, static_cast<uint8_t>(node->type));
  uint8_t flags = 0;
  if (node->lhs != nullptr) flags |= kHasLhs;
  if (node->rhs != nullptr) flags |= kHasRhs;
  if (node->is_string) flags |= kIsString;
  PutU8(out, flags);
  PutString(out, node->name);
  PutU64(out, node->raw);
  PutString(out, node->text);
  if (node->lhs != nullptr) {
    ANKER_RETURN_IF_ERROR(EncodeNode(node->lhs.get(), depth + 1, budget, out));
  }
  if (node->rhs != nullptr) {
    ANKER_RETURN_IF_ERROR(EncodeNode(node->rhs.get(), depth + 1, budget, out));
  }
  return Status::OK();
}

Status DecodeNode(std::string_view* in, size_t depth, size_t* budget,
                  std::shared_ptr<const ExprNode>* out) {
  if (depth > kMaxWireExprDepth) {
    return Status::InvalidArgument("wire expression too deep");
  }
  if (*budget == 0) {
    return Status::InvalidArgument("wire expression has too many nodes");
  }
  --*budget;
  uint8_t kind = 0, type = 0, flags = 0;
  if (!GetU8(in, &kind) || !GetU8(in, &type) || !GetU8(in, &flags)) {
    return Truncated();
  }
  if (!ValidExprKind(kind)) {
    return Status::InvalidArgument("unknown expression kind tag on the wire");
  }
  if (!ValidExprType(type)) {
    return Status::InvalidArgument("unknown expression type tag on the wire");
  }
  if ((flags & ~(kHasLhs | kHasRhs | kIsString)) != 0) {
    return Status::InvalidArgument("unknown expression flag bits on the wire");
  }
  auto node = std::make_shared<ExprNode>();
  node->kind = static_cast<ExprKind>(kind);
  node->type = static_cast<ExprType>(type);
  node->is_string = (flags & kIsString) != 0;
  if (!GetString(in, &node->name) || !GetU64(in, &node->raw) ||
      !GetString(in, &node->text)) {
    return Truncated();
  }
  if ((flags & kHasLhs) != 0) {
    std::shared_ptr<const ExprNode> lhs;
    ANKER_RETURN_IF_ERROR(DecodeNode(in, depth + 1, budget, &lhs));
    node->lhs = std::move(lhs);
  }
  if ((flags & kHasRhs) != 0) {
    std::shared_ptr<const ExprNode> rhs;
    ANKER_RETURN_IF_ERROR(DecodeNode(in, depth + 1, budget, &rhs));
    node->rhs = std::move(rhs);
  }
  *out = std::move(node);
  return Status::OK();
}

}  // namespace

Status EncodeExpr(const Expr& expr, std::string* out) {
  size_t budget = kMaxWireExprNodes;
  return EncodeNode(expr.node(), 0, &budget, out);
}

Status DecodeExpr(std::string_view* in, Expr* expr) {
  size_t budget = kMaxWireExprNodes;
  std::shared_ptr<const ExprNode> root;
  ANKER_RETURN_IF_ERROR(DecodeNode(in, 0, &budget, &root));
  *expr = Expr(std::move(root));
  return Status::OK();
}

namespace {

/// Optional-expression framing: presence byte, then the tree.
Status PutOptExpr(const Expr& expr, std::string* out) {
  PutU8(out, expr.valid() ? 1 : 0);
  if (expr.valid()) ANKER_RETURN_IF_ERROR(EncodeExpr(expr, out));
  return Status::OK();
}

Status GetOptExpr(std::string_view* in, Expr* expr) {
  uint8_t has = 0;
  if (!GetU8(in, &has)) return Truncated();
  if (has > 1) {
    return Status::InvalidArgument("bad presence tag on the wire");
  }
  if (has == 1) ANKER_RETURN_IF_ERROR(DecodeExpr(in, expr));
  return Status::OK();
}

Status PutNameList(const std::vector<std::string>& names, std::string* out) {
  if (names.size() > kMaxWireQueryLists) {
    return Status::InvalidArgument("wire query lists too large");
  }
  PutU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) PutString(out, name);
  return Status::OK();
}

Status GetNameList(std::string_view* in, std::vector<std::string>* names) {
  uint32_t count = 0;
  if (!GetU32(in, &count)) return Truncated();
  if (count > kMaxWireQueryLists) {
    return Status::InvalidArgument("wire query lists too large");
  }
  names->clear();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!GetString(in, &name)) return Truncated();
    names->push_back(std::move(name));
  }
  return Status::OK();
}

Status PutSortList(const std::vector<SortSpec>& keys, std::string* out) {
  if (keys.size() > kMaxWireQueryLists) {
    return Status::InvalidArgument("wire query lists too large");
  }
  PutU32(out, static_cast<uint32_t>(keys.size()));
  for (const SortSpec& key : keys) {
    PutString(out, key.column);
    PutU8(out, key.desc ? 1 : 0);
  }
  return Status::OK();
}

Status GetSortList(std::string_view* in, std::vector<SortSpec>* keys) {
  uint32_t count = 0;
  if (!GetU32(in, &count)) return Truncated();
  if (count > kMaxWireQueryLists) {
    return Status::InvalidArgument("wire query lists too large");
  }
  keys->clear();
  for (uint32_t i = 0; i < count; ++i) {
    SortSpec key;
    uint8_t desc = 0;
    if (!GetString(in, &key.column) || !GetU8(in, &desc)) return Truncated();
    if (desc > 1) {
      return Status::InvalidArgument("bad sort direction tag on the wire");
    }
    key.desc = desc == 1;
    keys->push_back(std::move(key));
  }
  return Status::OK();
}

Status EncodeWireQueryInner(const WireQuery& query, size_t depth,
                            std::string* out) {
  if (depth > kMaxWireQueryDepth) {
    return Status::InvalidArgument("wire query nests too deep");
  }
  if (query.aggs.size() > kMaxWireQueryLists ||
      query.joins.size() > kMaxWireQueryLists ||
      query.win_funcs.size() > kMaxWireQueryLists ||
      query.select.size() > kMaxWireQueryLists) {
    return Status::InvalidArgument("wire query lists too large");
  }
  PutString(out, query.table);
  PutU8(out, query.sub != nullptr ? 1 : 0);
  if (query.sub != nullptr) {
    ANKER_RETURN_IF_ERROR(EncodeWireQueryInner(*query.sub, depth + 1, out));
  }
  ANKER_RETURN_IF_ERROR(PutOptExpr(query.filter, out));
  PutU32(out, static_cast<uint32_t>(query.aggs.size()));
  for (const Agg& agg : query.aggs) {
    PutU8(out, static_cast<uint8_t>(agg.kind()));
    PutString(out, agg.name());
    ANKER_RETURN_IF_ERROR(PutOptExpr(agg.expr(), out));
  }
  ANKER_RETURN_IF_ERROR(PutNameList(query.group_by, out));
  // ---- v2: the operator-DAG surface ----
  PutU32(out, static_cast<uint32_t>(query.joins.size()));
  for (const WireJoin& join : query.joins) {
    PutU8(out, join.input.sub != nullptr ? 1 : 0);
    if (join.input.sub != nullptr) {
      ANKER_RETURN_IF_ERROR(
          EncodeWireQueryInner(*join.input.sub, depth + 1, out));
    } else {
      PutString(out, join.input.table);
      ANKER_RETURN_IF_ERROR(PutOptExpr(join.input.filter, out));
    }
    PutU8(out, static_cast<uint8_t>(join.type));
    ANKER_RETURN_IF_ERROR(PutNameList(join.probe_keys, out));
    ANKER_RETURN_IF_ERROR(PutNameList(join.build_keys, out));
    ANKER_RETURN_IF_ERROR(PutOptExpr(join.residual, out));
  }
  ANKER_RETURN_IF_ERROR(PutOptExpr(query.having, out));
  PutU8(out, query.has_window ? 1 : 0);
  if (query.has_window) {
    PutU32(out, static_cast<uint32_t>(query.win_funcs.size()));
    for (const WindowDef& def : query.win_funcs) {
      PutU8(out, static_cast<uint8_t>(def.fn));
      PutString(out, def.name);
      ANKER_RETURN_IF_ERROR(PutOptExpr(def.input, out));
    }
    ANKER_RETURN_IF_ERROR(PutNameList(query.win_partition, out));
    ANKER_RETURN_IF_ERROR(PutSortList(query.win_order, out));
  }
  ANKER_RETURN_IF_ERROR(PutOptExpr(query.post_filter, out));
  PutU32(out, static_cast<uint32_t>(query.select.size()));
  for (const SelectItem& item : query.select) {
    PutString(out, item.column);
    PutString(out, item.alias);
  }
  ANKER_RETURN_IF_ERROR(PutSortList(query.order_by, out));
  PutU64(out, static_cast<uint64_t>(query.limit));
  return Status::OK();
}

Status DecodeWireQueryInner(std::string_view* in, size_t depth,
                            WireQuery* query) {
  if (depth > kMaxWireQueryDepth) {
    return Status::InvalidArgument("wire query nests too deep");
  }
  *query = WireQuery();
  uint8_t has_sub = 0;
  if (!GetString(in, &query->table) || !GetU8(in, &has_sub)) {
    return Truncated();
  }
  if (has_sub > 1) {
    return Status::InvalidArgument("bad sub-query tag on the wire");
  }
  if (has_sub == 1) {
    query->sub = std::make_shared<WireQuery>();
    ANKER_RETURN_IF_ERROR(
        DecodeWireQueryInner(in, depth + 1, query->sub.get()));
  }
  ANKER_RETURN_IF_ERROR(GetOptExpr(in, &query->filter));
  uint32_t naggs = 0;
  if (!GetU32(in, &naggs)) return Truncated();
  if (naggs > kMaxWireQueryLists) {
    return Status::InvalidArgument("too many aggregates on the wire");
  }
  for (uint32_t i = 0; i < naggs; ++i) {
    uint8_t kind = 0;
    std::string name;
    if (!GetU8(in, &kind) || !GetString(in, &name)) return Truncated();
    if (!ValidAggKind(kind)) {
      return Status::InvalidArgument("unknown aggregate kind tag on the wire");
    }
    Expr expr;
    ANKER_RETURN_IF_ERROR(GetOptExpr(in, &expr));
    query->aggs.push_back(
        Agg(static_cast<AggKind>(kind), std::move(expr)).As(std::move(name)));
  }
  ANKER_RETURN_IF_ERROR(GetNameList(in, &query->group_by));
  // ---- v2: the operator-DAG surface ----
  uint32_t njoins = 0;
  if (!GetU32(in, &njoins)) return Truncated();
  if (njoins > kMaxWireQueryLists) {
    return Status::InvalidArgument("too many joins on the wire");
  }
  for (uint32_t i = 0; i < njoins; ++i) {
    WireJoin join;
    uint8_t input_is_sub = 0;
    if (!GetU8(in, &input_is_sub)) return Truncated();
    if (input_is_sub > 1) {
      return Status::InvalidArgument("bad join input tag on the wire");
    }
    if (input_is_sub == 1) {
      join.input.sub = std::make_shared<WireQuery>();
      ANKER_RETURN_IF_ERROR(
          DecodeWireQueryInner(in, depth + 1, join.input.sub.get()));
    } else {
      if (!GetString(in, &join.input.table)) return Truncated();
      ANKER_RETURN_IF_ERROR(GetOptExpr(in, &join.input.filter));
    }
    uint8_t type = 0;
    if (!GetU8(in, &type)) return Truncated();
    if (!ValidJoinType(type)) {
      return Status::InvalidArgument("unknown join type tag on the wire");
    }
    join.type = static_cast<JoinType>(type);
    ANKER_RETURN_IF_ERROR(GetNameList(in, &join.probe_keys));
    ANKER_RETURN_IF_ERROR(GetNameList(in, &join.build_keys));
    ANKER_RETURN_IF_ERROR(GetOptExpr(in, &join.residual));
    query->joins.push_back(std::move(join));
  }
  ANKER_RETURN_IF_ERROR(GetOptExpr(in, &query->having));
  uint8_t has_window = 0;
  if (!GetU8(in, &has_window)) return Truncated();
  if (has_window > 1) {
    return Status::InvalidArgument("bad window tag on the wire");
  }
  query->has_window = has_window == 1;
  if (query->has_window) {
    uint32_t nfuncs = 0;
    if (!GetU32(in, &nfuncs)) return Truncated();
    if (nfuncs > kMaxWireQueryLists) {
      return Status::InvalidArgument("too many window functions on the wire");
    }
    for (uint32_t i = 0; i < nfuncs; ++i) {
      WindowDef def;
      uint8_t fn = 0;
      if (!GetU8(in, &fn) || !GetString(in, &def.name)) return Truncated();
      if (!ValidWinFn(fn)) {
        return Status::InvalidArgument(
            "unknown window function tag on the wire");
      }
      def.fn = static_cast<WinFn>(fn);
      ANKER_RETURN_IF_ERROR(GetOptExpr(in, &def.input));
      query->win_funcs.push_back(std::move(def));
    }
    ANKER_RETURN_IF_ERROR(GetNameList(in, &query->win_partition));
    ANKER_RETURN_IF_ERROR(GetSortList(in, &query->win_order));
  }
  ANKER_RETURN_IF_ERROR(GetOptExpr(in, &query->post_filter));
  uint32_t nselect = 0;
  if (!GetU32(in, &nselect)) return Truncated();
  if (nselect > kMaxWireQueryLists) {
    return Status::InvalidArgument("too many select items on the wire");
  }
  for (uint32_t i = 0; i < nselect; ++i) {
    SelectItem item;
    if (!GetString(in, &item.column) || !GetString(in, &item.alias)) {
      return Truncated();
    }
    query->select.push_back(std::move(item));
  }
  ANKER_RETURN_IF_ERROR(GetSortList(in, &query->order_by));
  uint64_t limit = 0;
  if (!GetU64(in, &limit)) return Truncated();
  query->limit = static_cast<int64_t>(limit);
  if (query->limit < -1) {
    return Status::InvalidArgument("bad limit on the wire");
  }
  return Status::OK();
}

Result<Query> CompileWireQueryInner(const WireQuery& query,
                                    const storage::Catalog& catalog,
                                    size_t depth) {
  if (depth > kMaxWireQueryDepth) {
    return Status::InvalidArgument("wire query nests too deep");
  }
  std::unique_ptr<QueryBuilder> builder;
  if (query.sub != nullptr) {
    auto sub = CompileWireQueryInner(*query.sub, catalog, depth + 1);
    if (!sub.ok()) return sub.status();
    builder = std::make_unique<QueryBuilder>(sub.value());
  } else {
    if (!catalog.HasTable(query.table)) {
      return Status::NotFound("unknown table: " + query.table);
    }
    builder = std::make_unique<QueryBuilder>(catalog.GetTable(query.table));
  }
  if (query.filter.valid()) builder->Filter(query.filter);
  if (!query.aggs.empty()) builder->Aggregate(query.aggs);
  if (!query.group_by.empty()) builder->GroupBy(query.group_by);
  for (const WireJoin& join : query.joins) {
    if (join.input.sub != nullptr) {
      auto sub = CompileWireQueryInner(*join.input.sub, catalog, depth + 1);
      if (!sub.ok()) return sub.status();
      builder->Join(JoinInput(sub.value()), join.type, join.probe_keys,
                    join.build_keys, join.residual);
    } else {
      if (!catalog.HasTable(join.input.table)) {
        return Status::NotFound("unknown table: " + join.input.table);
      }
      storage::Table* build = catalog.GetTable(join.input.table);
      builder->Join(join.input.filter.valid()
                        ? JoinInput(build, join.input.filter)
                        : JoinInput(build),
                    join.type, join.probe_keys, join.build_keys,
                    join.residual);
    }
  }
  if (query.having.valid()) builder->Having(query.having);
  if (query.has_window) {
    builder->Window(query.win_funcs, query.win_partition, query.win_order);
  }
  if (query.post_filter.valid()) builder->PostFilter(query.post_filter);
  if (!query.select.empty()) builder->Select(query.select);
  if (!query.order_by.empty()) builder->OrderBy(query.order_by);
  if (query.limit >= 0) builder->Limit(query.limit);
  return builder->Build();
}

}  // namespace

Status EncodeWireQuery(const WireQuery& query, std::string* out) {
  return EncodeWireQueryInner(query, 0, out);
}

Status DecodeWireQuery(std::string_view* in, WireQuery* query) {
  return DecodeWireQueryInner(in, 0, query);
}

Result<Query> CompileWireQuery(const WireQuery& query,
                               const storage::Catalog& catalog) {
  return CompileWireQueryInner(query, catalog, 0);
}

void EncodeParams(const Params& params, std::string* out) {
  const auto& values = params.values();
  PutU32(out, static_cast<uint32_t>(values.size()));
  for (const auto& [name, value] : values) {
    PutString(out, name);
    PutU8(out, static_cast<uint8_t>(value.type));
    PutU8(out, value.is_string ? 1 : 0);
    PutU64(out, value.raw);
    PutString(out, value.text);
  }
}

Status DecodeParams(std::string_view* in, Params* params) {
  *params = Params();
  uint32_t count = 0;
  if (!GetU32(in, &count)) return Truncated();
  if (count > kMaxWireQueryLists) {
    return Status::InvalidArgument("too many parameters on the wire");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name, text;
    uint8_t type = 0, is_string = 0;
    uint64_t raw = 0;
    if (!GetString(in, &name) || !GetU8(in, &type) || !GetU8(in, &is_string) ||
        !GetU64(in, &raw) || !GetString(in, &text)) {
      return Truncated();
    }
    if (!ValidExprType(type) || is_string > 1) {
      return Status::InvalidArgument("bad parameter tag on the wire");
    }
    Params::Value value;
    value.type = static_cast<ExprType>(type);
    value.raw = raw;
    value.is_string = is_string == 1;
    value.text = std::move(text);
    params->Set(name, value);
  }
  return Status::OK();
}

}  // namespace anker::query
