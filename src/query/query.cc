#include "query/query.h"

#include <cmath>
#include <limits>
#include <map>

#include "query/dag.h"

namespace anker::query {

Params& Params::SetInt(const std::string& name, int64_t value) {
  values_[name] = Value{ExprType::kInt64, storage::EncodeInt64(value), "",
                        false};
  return *this;
}
Params& Params::SetDouble(const std::string& name, double value) {
  values_[name] = Value{ExprType::kDouble, storage::EncodeDouble(value), "",
                        false};
  return *this;
}
Params& Params::SetDate(const std::string& name, int64_t days) {
  values_[name] = Value{ExprType::kDate, storage::EncodeDate(days), "",
                        false};
  return *this;
}
Params& Params::SetDictCode(const std::string& name, uint32_t code) {
  values_[name] = Value{ExprType::kDict, storage::EncodeDict(code), "",
                        false};
  return *this;
}
Params& Params::SetString(const std::string& name, std::string text) {
  values_[name] = Value{ExprType::kDict, 0, std::move(text), true};
  return *this;
}

const Params::Value* Params::Find(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

Agg Sum(Expr expr) { return Agg(AggKind::kSum, std::move(expr)); }
Agg Count() { return Agg(AggKind::kCount, Expr()); }
Agg Avg(Expr expr) { return Agg(AggKind::kAvg, std::move(expr)); }
Agg Min(Expr expr) { return Agg(AggKind::kMin, std::move(expr)); }
Agg Max(Expr expr) { return Agg(AggKind::kMax, std::move(expr)); }
Agg CountDistinct(Expr expr) {
  return Agg(AggKind::kCountDistinct, std::move(expr));
}

WindowDef WinRank(std::string name) {
  return WindowDef{std::move(name), WinFn::kRank, Expr()};
}
WindowDef WinRowNumber(std::string name) {
  return WindowDef{std::move(name), WinFn::kRowNumber, Expr()};
}
WindowDef WinCount(std::string name) {
  return WindowDef{std::move(name), WinFn::kCount, Expr()};
}
WindowDef WinSum(Expr input, std::string name) {
  return WindowDef{std::move(name), WinFn::kSum, std::move(input)};
}
WindowDef WinAvg(Expr input, std::string name) {
  return WindowDef{std::move(name), WinFn::kAvg, std::move(input)};
}
WindowDef WinMin(Expr input, std::string name) {
  return WindowDef{std::move(name), WinFn::kMin, std::move(input)};
}
WindowDef WinMax(Expr input, std::string name) {
  return WindowDef{std::move(name), WinFn::kMax, std::move(input)};
}

JoinInput::JoinInput(const Query& sub) : sub_(sub.shared_plan()) {}

double QueryResult::Value(const std::string& name) const {
  ANKER_CHECK_MSG(!rows.empty(), "QueryResult::Value on empty result");
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return rows[0].values[i];
  }
  ANKER_CHECK_MSG(false, ("unknown aggregate '" + name + "'").c_str());
  return 0;
}

QueryBuilder Query::On(storage::Table* table) { return QueryBuilder(table); }
QueryBuilder Query::On(const Query& sub) { return QueryBuilder(sub); }

QueryBuilder::QueryBuilder(const Query& sub) : sub_(sub.shared_plan()) {}

QueryBuilder& QueryBuilder::Filter(Expr predicate) {
  filter_ = filter_.valid() ? (std::move(filter_) && std::move(predicate))
                            : std::move(predicate);
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(std::vector<Agg> aggs) {
  for (Agg& agg : aggs) aggs_.push_back(std::move(agg));
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(std::vector<std::string> columns) {
  for (std::string& name : columns) group_by_.push_back(std::move(name));
  return *this;
}

QueryBuilder& QueryBuilder::Join(JoinInput build, JoinType type,
                                 std::vector<std::string> probe_keys,
                                 std::vector<std::string> build_keys,
                                 Expr residual) {
  joins_.push_back(JoinClause{std::move(build), type, std::move(probe_keys),
                              std::move(build_keys), std::move(residual)});
  return *this;
}

QueryBuilder& QueryBuilder::Having(Expr predicate) {
  having_ = having_.valid() ? (std::move(having_) && std::move(predicate))
                            : std::move(predicate);
  return *this;
}

QueryBuilder& QueryBuilder::Window(std::vector<WindowDef> funcs,
                                   std::vector<std::string> partition_by,
                                   std::vector<SortSpec> order) {
  has_window_ = true;
  for (WindowDef& def : funcs) win_funcs_.push_back(std::move(def));
  win_partition_ = std::move(partition_by);
  win_order_ = std::move(order);
  return *this;
}

QueryBuilder& QueryBuilder::PostFilter(Expr predicate) {
  post_filter_ = post_filter_.valid()
                     ? (std::move(post_filter_) && std::move(predicate))
                     : std::move(predicate);
  return *this;
}

QueryBuilder& QueryBuilder::Select(std::vector<SelectItem> items) {
  for (SelectItem& item : items) select_.push_back(std::move(item));
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(std::vector<SortSpec> keys) {
  for (SortSpec& key : keys) order_by_.push_back(std::move(key));
  return *this;
}

QueryBuilder& QueryBuilder::Limit(int64_t n) {
  limit_ = n;
  return *this;
}

bool QueryBuilder::NeedsDag() const {
  if (sub_ != nullptr || !joins_.empty() || having_.valid() || has_window_ ||
      post_filter_.valid() || !select_.empty() || !order_by_.empty() ||
      limit_ >= 0 || aggs_.empty()) {
    return true;
  }
  for (const Agg& agg : aggs_) {
    if (agg.kind() == AggKind::kCountDistinct) return true;
  }
  return false;
}

Result<Query> QueryBuilder::Build() const {
  // The DAG lowering performs the full name / type validation for every
  // declarable shape, so it runs first unconditionally; its plan also
  // backs force_dag differential runs and server-side recompilation.
  auto dag = BuildDagQuery(*this);
  if (!dag.ok()) return dag.status();
  if (NeedsDag()) return dag;
  // Single-table filtered-aggregate shape: try the fused / vectorized
  // kernels and graft the DAG plan on for force_dag; shapes those kernels
  // reject (non-dict group keys, wide domains) run as a DAG instead.
  auto fast = BuildFastPath();
  if (!fast.ok()) return dag;
  std::shared_ptr<CompiledQuery> plan = fast.TakeValue();
  plan->dag = dag.value().plan().dag;
  plan->param_names = dag.value().plan().param_names;
  return Query(std::shared_ptr<const CompiledQuery>(std::move(plan)));
}

namespace {

constexpr size_t kMaxTemps = 12;
constexpr uint32_t kMaxGroups = 1024;

uint32_t BitsFor(size_t domain) {
  uint32_t bits = 1;
  while ((size_t{1} << bits) < domain) ++bits;
  return bits;
}

/// Flattens a multiplication chain into its factors.
void MulFactors(const ExprNode* node, std::vector<const ExprNode*>* out) {
  if (node->kind == ExprKind::kMul) {
    MulFactors(node->lhs.get(), out);
    MulFactors(node->rhs.get(), out);
    return;
  }
  out->push_back(node);
}

bool IsLiteralOne(const ExprNode* node) {
  return node->kind == ExprKind::kLiteral && !node->is_string &&
         node->type == ExprType::kDouble &&
         storage::DecodeDouble(node->raw) == 1.0;
}

bool IsDoubleCol(const ExprNode* node, const ColumnSet& cols) {
  return node->kind == ExprKind::kColumn &&
         cols.table()->HasColumn(node->name) &&
         cols.table()->GetColumn(node->name)->type() ==
             storage::ValueType::kDouble;
}

/// Classifies one multiplication factor for fused-form matching.
enum class FactorKind { kCol, kOneMinusCol, kOnePlusCol, kOther };

FactorKind ClassifyFactor(const ExprNode* node, const ColumnSet& cols,
                          const ExprNode** col_out) {
  if (IsDoubleCol(node, cols)) {
    *col_out = node;
    return FactorKind::kCol;
  }
  if (node->kind == ExprKind::kSub && IsLiteralOne(node->lhs.get()) &&
      IsDoubleCol(node->rhs.get(), cols)) {
    *col_out = node->rhs.get();
    return FactorKind::kOneMinusCol;
  }
  if (node->kind == ExprKind::kAdd) {
    if (IsLiteralOne(node->lhs.get()) &&
        IsDoubleCol(node->rhs.get(), cols)) {
      *col_out = node->rhs.get();
      return FactorKind::kOnePlusCol;
    }
    if (IsLiteralOne(node->rhs.get()) &&
        IsDoubleCol(node->lhs.get(), cols)) {
      *col_out = node->lhs.get();
      return FactorKind::kOnePlusCol;
    }
  }
  return FactorKind::kOther;
}

/// Tries to match an aggregate input expression onto the fused form menu
/// (double columns only — the kernels read raw slots as doubles).
/// Returns kExpr when the shape is outside the menu.
AggForm MatchForm(AggKind kind, const ExprNode* node, ColumnSet* cols,
                  uint16_t* a, uint16_t* b, uint16_t* c) {
  auto use = [&](const ExprNode* col_node, uint16_t* out) {
    auto index = cols->Use(col_node->name);
    ANKER_CHECK(index.ok());  // Registered during type checking.
    *out = index.value();
  };
  if (kind == AggKind::kMin || kind == AggKind::kMax) {
    if (IsDoubleCol(node, *cols)) {
      use(node, a);
      return kind == AggKind::kMin ? AggForm::kMin : AggForm::kMax;
    }
    return AggForm::kExpr;
  }
  // Sum / Avg shapes.
  std::vector<const ExprNode*> factors;
  MulFactors(node, &factors);
  const ExprNode* cols_found[3] = {nullptr, nullptr, nullptr};
  if (factors.size() == 1) {
    const ExprNode* col = nullptr;
    if (ClassifyFactor(factors[0], *cols, &col) == FactorKind::kCol) {
      use(col, a);
      return AggForm::kSum;
    }
    return AggForm::kExpr;
  }
  if (factors.size() == 2) {
    const ExprNode* c0 = nullptr;
    const ExprNode* c1 = nullptr;
    const FactorKind k0 = ClassifyFactor(factors[0], *cols, &c0);
    const FactorKind k1 = ClassifyFactor(factors[1], *cols, &c1);
    if (k0 == FactorKind::kCol && k1 == FactorKind::kCol) {
      use(c0, a);
      use(c1, b);
      return AggForm::kSumMul;
    }
    if (k0 == FactorKind::kCol && k1 == FactorKind::kOneMinusCol) {
      use(c0, a);
      use(c1, b);
      return AggForm::kSumOneMinusMul;
    }
    if (k0 == FactorKind::kOneMinusCol && k1 == FactorKind::kCol) {
      use(c1, a);
      use(c0, b);
      return AggForm::kSumOneMinusMul;
    }
    return AggForm::kExpr;
  }
  if (factors.size() == 3) {
    // a * (1 - b) * (1 + c), factors in evaluation order.
    const FactorKind k0 = ClassifyFactor(factors[0], *cols, &cols_found[0]);
    const FactorKind k1 = ClassifyFactor(factors[1], *cols, &cols_found[1]);
    const FactorKind k2 = ClassifyFactor(factors[2], *cols, &cols_found[2]);
    if (k0 == FactorKind::kCol && k1 == FactorKind::kOneMinusCol &&
        k2 == FactorKind::kOnePlusCol) {
      use(cols_found[0], a);
      use(cols_found[1], b);
      use(cols_found[2], c);
      return AggForm::kSumChargeMul;
    }
    return AggForm::kExpr;
  }
  return AggForm::kExpr;
}

/// Compiles an expression into the vectorized temp program with
/// value-numbering CSE. Returns the temp index holding the (double)
/// result.
class VecCompiler {
 public:
  VecCompiler(CompiledQuery* plan, ColumnSet* cols)
      : plan_(plan), cols_(cols) {}

  Result<int> Compile(const std::shared_ptr<const ExprNode>& node) {
    const std::string sig = Signature(node.get());
    auto it = memo_.find(sig);
    if (it != memo_.end()) return it->second;

    VecInst inst;
    if (IsConst(node.get())) {
      inst.op = VecOp::kConst;
      inst.cexpr = node;
    } else if (node->kind == ExprKind::kColumn) {
      auto col = cols_->Use(node->name);
      if (!col.ok()) return col.status();
      inst.col = col.value();
      switch (cols_->columns()[col.value()]->type()) {
        case storage::ValueType::kDouble:
          inst.op = VecOp::kLoadF64;
          break;
        case storage::ValueType::kDict32:
          inst.op = VecOp::kLoadDict;
          break;
        default:
          inst.op = VecOp::kLoadI64;
          break;
      }
    } else if (node->kind == ExprKind::kAdd ||
               node->kind == ExprKind::kSub ||
               node->kind == ExprKind::kMul) {
      const bool lconst = IsConst(node->lhs.get());
      const bool rconst = IsConst(node->rhs.get());
      if (lconst && !rconst) {
        auto temp = Compile(node->rhs);
        if (!temp.ok()) return temp;
        inst.a = static_cast<uint8_t>(temp.value());
        inst.cexpr = node->lhs;
        switch (node->kind) {
          case ExprKind::kAdd: inst.op = VecOp::kAddC; break;
          case ExprKind::kSub: inst.op = VecOp::kRsubC; break;
          default: inst.op = VecOp::kMulC; break;
        }
      } else if (rconst && !lconst) {
        auto temp = Compile(node->lhs);
        if (!temp.ok()) return temp;
        inst.a = static_cast<uint8_t>(temp.value());
        inst.cexpr = node->rhs;
        switch (node->kind) {
          case ExprKind::kAdd: inst.op = VecOp::kAddC; break;
          case ExprKind::kSub: inst.op = VecOp::kSubC; break;
          default: inst.op = VecOp::kMulC; break;
        }
      } else {
        auto lhs = Compile(node->lhs);
        if (!lhs.ok()) return lhs;
        auto rhs = Compile(node->rhs);
        if (!rhs.ok()) return rhs;
        inst.a = static_cast<uint8_t>(lhs.value());
        inst.b = static_cast<uint8_t>(rhs.value());
        switch (node->kind) {
          case ExprKind::kAdd: inst.op = VecOp::kAdd; break;
          case ExprKind::kSub: inst.op = VecOp::kSub; break;
          default: inst.op = VecOp::kMul; break;
        }
      }
    } else {
      return Status::NotSupported(
          "comparisons inside aggregate expressions are not supported");
    }

    if (plan_->num_temps >= kMaxTemps) {
      return Status::NotSupported("aggregate expressions need more than " +
                                  std::to_string(kMaxTemps) +
                                  " temporaries");
    }
    inst.dst = static_cast<uint8_t>(plan_->num_temps++);
    plan_->prog.push_back(inst);
    memo_[sig] = inst.dst;
    return static_cast<int>(inst.dst);
  }

 private:
  static bool IsConst(const ExprNode* node) {
    if (node == nullptr) return true;
    if (node->kind == ExprKind::kColumn) return false;
    return IsConst(node->lhs.get()) && IsConst(node->rhs.get());
  }

  std::string Signature(const ExprNode* node) {
    if (node == nullptr) return "_";
    std::string sig(1, static_cast<char>('A' + static_cast<int>(node->kind)));
    switch (node->kind) {
      case ExprKind::kColumn:
        return sig + node->name;
      case ExprKind::kLiteral:
        return sig + std::to_string(node->raw);
      case ExprKind::kParam:
        return sig + node->name;
      default:
        return sig + "(" + Signature(node->lhs.get()) + "," +
               Signature(node->rhs.get()) + ")";
    }
  }

  CompiledQuery* plan_;
  ColumnSet* cols_;
  std::map<std::string, int> memo_;
};

}  // namespace

Result<std::shared_ptr<CompiledQuery>> QueryBuilder::BuildFastPath() const {
  if (table_ == nullptr) {
    return Status::InvalidArgument("Query::On requires a table");
  }
  if (aggs_.empty()) {
    return Status::InvalidArgument("a query needs at least one aggregate");
  }

  auto plan = std::make_shared<CompiledQuery>();
  plan->table = table_;
  ColumnSet cols(table_);

  // ---- filter: type check, then split into simple + generic terms ----
  if (filter_.valid()) {
    auto type = TypeCheck(filter_, *table_);
    if (!type.ok()) return type.status();
    if (type.value() != ExprType::kBool) {
      return Status::InvalidArgument(
          std::string("filter must be boolean, got ") +
          ExprTypeName(type.value()));
    }
    ANKER_RETURN_IF_ERROR(
        LowerFilter(filter_, &cols, &plan->preds, &plan->generic_preds));
  }

  // ---- group key: packed small-domain dictionary codes ----
  uint32_t total_bits = 0;
  for (const std::string& name : group_by_) {
    auto index = cols.Use(name);
    if (!index.ok()) return index.status();
    storage::Column* column = table_->GetColumn(name);
    if (column->type() != storage::ValueType::kDict32) {
      return Status::NotSupported(
          "GroupBy supports dictionary-encoded columns, '" + name +
          "' is " + ExprTypeName(ExprTypeFor(column->type())));
    }
    const storage::Dictionary* dict = table_->GetDictionary(name);
    const uint32_t bits = BitsFor(std::max<size_t>(dict->size(), 2));
    plan->key.cols.push_back(index.value());
    plan->key.bits.push_back(bits);
    plan->key_names.push_back(name);
    total_bits += bits;
    if (total_bits > 31 || (uint32_t{1} << total_bits) > kMaxGroups) {
      return Status::NotSupported(
          "GroupBy key domain exceeds " + std::to_string(kMaxGroups) +
          " packed groups");
    }
  }
  plan->key.num_groups = plan->key.grouped() ? (uint32_t{1} << total_bits)
                                             : 1;

  // ---- aggregates: type check, fused-form matching, temp program ----
  VecCompiler compiler(plan.get(), &cols);
  int declared_count_slot = -1;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const Agg& agg = aggs_[i];
    AggSpec spec;
    spec.kind = agg.kind();
    spec.name = agg.name().empty() ? "agg" + std::to_string(i) : agg.name();
    spec.slot = static_cast<int>(i);
    for (size_t j = 0; j < i; ++j) {
      if (plan->aggs[j].name == spec.name) {
        return Status::InvalidArgument("duplicate aggregate name '" +
                                       spec.name + "'");
      }
    }
    if (agg.kind() == AggKind::kCount) {
      spec.form = AggForm::kCount;
      if (declared_count_slot < 0) declared_count_slot = spec.slot;
    } else {
      if (!agg.expr().valid()) {
        return Status::InvalidArgument("aggregate '" + spec.name +
                                       "' needs an input expression");
      }
      auto type = TypeCheck(agg.expr(), *table_);
      if (!type.ok()) return type.status();
      const bool minmax =
          agg.kind() == AggKind::kMin || agg.kind() == AggKind::kMax;
      const bool ok_type = type.value() == ExprType::kInt64 ||
                           type.value() == ExprType::kDouble ||
                           (minmax && type.value() == ExprType::kDate);
      if (!ok_type) {
        return Status::InvalidArgument(
            std::string("cannot aggregate over ") +
            ExprTypeName(type.value()) + " (aggregate '" + spec.name +
            "')");
      }
      spec.expr = agg.expr();
      spec.form = MatchForm(agg.kind(), agg.expr().node(), &cols, &spec.a,
                            &spec.b, &spec.c);
      if (spec.form == AggForm::kExpr) {
        auto temp = compiler.Compile(agg.expr().shared());
        if (!temp.ok()) return temp.status();
        spec.temp = temp.value();
      }
    }
    plan->aggs.push_back(std::move(spec));
  }

  // Grouped queries (group presence) and Avg (the divisor) need a row
  // count; reuse a declared Count or append a hidden one.
  bool needs_count = plan->key.grouped();
  for (const AggSpec& spec : plan->aggs) {
    if (spec.kind == AggKind::kAvg) needs_count = true;
  }
  plan->count_slot = declared_count_slot;
  if (needs_count && plan->count_slot < 0) {
    AggSpec hidden;
    hidden.kind = AggKind::kCount;
    hidden.form = AggForm::kCount;
    hidden.name = "__count";
    hidden.hidden = true;
    hidden.slot = static_cast<int>(plan->aggs.size());
    plan->count_slot = hidden.slot;
    plan->aggs.push_back(std::move(hidden));
  }

  plan->num_slots = plan->aggs.size();
  plan->total_slots = plan->num_slots * plan->key.num_groups;
  if (plan->total_slots > kMaxTotalSlots) {
    return Status::NotSupported(
        "groups x aggregates exceeds the accumulator budget (" +
        std::to_string(plan->total_slots) + " > " +
        std::to_string(kMaxTotalSlots) + " slots)");
  }

  // A plan referencing no column at all (bare unfiltered count) still
  // needs one scan spine: the driver takes row count and block metadata
  // from its readers. Same fallback as the DAG's BuildTableScan.
  if (cols.columns().empty()) {
    if (table_->schema().empty()) {
      return Status::InvalidArgument("table '" + table_->name() +
                                     "' has no columns");
    }
    ANKER_RETURN_IF_ERROR(cols.Use(table_->schema()[0].name).status());
  }
  plan->columns = cols.columns();
  plan->column_types = cols.types();

  // ---- strategy selection ----
  if (!plan->key.grouped()) {
    plan->strategy = ExecStrategy::kVectorized;
  } else {
    // Fused kernels carry a fixed-size local predicate array; busier
    // filters take the generic grouped path instead of being truncated.
    bool fusable = plan->generic_preds.empty() &&
                   plan->preds.size() <= kMaxFusedSimplePreds &&
                   (plan->key.cols.size() == 1 || plan->key.cols.size() == 2);
    std::vector<AggForm> forms;
    for (const AggSpec& spec : plan->aggs) {
      forms.push_back(spec.form);
      if (spec.form == AggForm::kExpr) fusable = false;
    }
    if (fusable) {
      // Operand-sharing pattern: flat operand position -> first
      // occurrence of that column (the registry may carry a kernel with
      // exactly this sharing baked in; see fused.cc).
      std::vector<uint16_t> flat_cols;
      std::vector<uint16_t> pattern;
      std::vector<uint16_t> distinct;
      for (const AggSpec& spec : plan->aggs) {
        const size_t arity = FusedArity(spec.form);
        const uint16_t operands[3] = {spec.a, spec.b, spec.c};
        for (size_t o = 0; o < arity; ++o) {
          flat_cols.push_back(operands[o]);
          uint16_t slot = 0xffff;
          for (size_t d = 0; d < distinct.size(); ++d) {
            if (distinct[d] == operands[o]) {
              slot = static_cast<uint16_t>(d);
              break;
            }
          }
          if (slot == 0xffff) {
            slot = static_cast<uint16_t>(distinct.size());
            distinct.push_back(operands[o]);
          }
          pattern.push_back(slot);
        }
      }
      const FusedLookup lookup =
          FindFusedKernel(forms, plan->key.cols.size(), pattern);
      plan->fused = lookup.set;
      plan->fused_vals = lookup.deduplicated ? distinct : flat_cols;
    }
    plan->strategy = plan->fused != nullptr ? ExecStrategy::kFusedGrouped
                                            : ExecStrategy::kGroupedVec;
  }

  return plan;
}

}  // namespace anker::query
