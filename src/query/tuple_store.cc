#include "query/tuple_store.h"

#include <algorithm>
#include <cstring>

namespace anker::query {

TempTupleStore::TempTupleStore(size_t width, SpillArena* arena)
    : width_(width), arena_(arena) {
  ANKER_CHECK_MSG(width_ > 0, "tuple store needs at least one column");
}

TempTupleStore::~TempTupleStore() {
  for (Chunk& c : chunks_) {
    if (!c.data.empty()) arena_->Sub(c.data.size() * sizeof(uint64_t));
  }
  if (file_ != nullptr) std::fclose(file_);
}

Status TempTupleStore::EnsureTail() {
  if (!chunks_.empty() && tail_rows_ < kChunkRows) return Status::OK();
  // Current tail is complete: spill it first if over budget, then start
  // a fresh chunk.
  if (!chunks_.empty() && arena_->OverBudget()) {
    ANKER_RETURN_IF_ERROR(SpillChunk(&chunks_.back()));
  }
  chunks_.emplace_back();
  Chunk& c = chunks_.back();
  c.data.assign(width_ * kChunkRows, 0);
  arena_->Add(c.data.size() * sizeof(uint64_t));
  tail_rows_ = 0;
  return Status::OK();
}

Status TempTupleStore::Append(const uint64_t* row) {
  ANKER_CHECK_MSG(!sealed_, "Append after Finish");
  ANKER_RETURN_IF_ERROR(EnsureTail());
  uint64_t* base = chunks_.back().data.data();
  for (size_t c = 0; c < width_; ++c) {
    base[c * kChunkRows + tail_rows_] = row[c];
  }
  ++tail_rows_;
  chunks_.back().rows = tail_rows_;
  ++rows_;
  return Status::OK();
}

Status TempTupleStore::AppendGather(const uint64_t* const* cols,
                                    const uint16_t* src, size_t r) {
  ANKER_CHECK_MSG(!sealed_, "Append after Finish");
  ANKER_RETURN_IF_ERROR(EnsureTail());
  uint64_t* base = chunks_.back().data.data();
  for (size_t c = 0; c < width_; ++c) {
    base[c * kChunkRows + tail_rows_] = cols[src[c]][r];
  }
  ++tail_rows_;
  chunks_.back().rows = tail_rows_;
  ++rows_;
  return Status::OK();
}

Status TempTupleStore::SpillChunk(Chunk* chunk) {
  if (chunk->data.empty()) return Status::OK();  // Already spilled.
  if (file_ == nullptr) {
    file_ = std::tmpfile();
    if (file_ == nullptr) {
      return Status::IoError("cannot create spill file for tuple store");
    }
  }
  // Only the occupied prefix of each column is written; ReadSlice knows
  // the on-disk column stride is chunk->rows, not kChunkRows.
  const size_t bytes_per_col = chunk->rows * sizeof(uint64_t);
  chunk->file_offset = file_bytes_;
  if (std::fseek(file_, file_bytes_, SEEK_SET) != 0) {
    return Status::IoError("seek failed on tuple-store spill file");
  }
  for (size_t c = 0; c < width_; ++c) {
    const uint64_t* col = chunk->data.data() + c * kChunkRows;
    if (std::fwrite(col, 1, bytes_per_col, file_) != bytes_per_col) {
      return Status::IoError("short write to tuple-store spill file");
    }
  }
  file_bytes_ += static_cast<long>(width_ * bytes_per_col);
  arena_->Sub(chunk->data.size() * sizeof(uint64_t));
  arena_->spilled_chunks += 1;
  arena_->spilled_bytes += width_ * bytes_per_col;
  chunk->data.clear();
  chunk->data.shrink_to_fit();
  return Status::OK();
}

Status TempTupleStore::Finish() {
  if (sealed_) return Status::OK();
  sealed_ = true;
  // A partially filled tail stays resident unless the arena is over
  // budget; completed stores are usually consumed immediately.
  if (!chunks_.empty() && arena_->OverBudget()) {
    ANKER_RETURN_IF_ERROR(SpillChunk(&chunks_.back()));
  }
  return Status::OK();
}

size_t TempTupleStore::chunk_rows(size_t chunk) const {
  ANKER_CHECK(chunk < chunks_.size());
  return chunks_[chunk].rows;
}

Status TempTupleStore::ReadSlice(size_t chunk, size_t row0, size_t n,
                                 uint64_t* dst) const {
  const Chunk& c = chunks_[chunk];
  ANKER_CHECK(row0 + n <= c.rows);
  if (!c.data.empty()) {
    for (size_t col = 0; col < width_; ++col) {
      std::memcpy(dst + col * n, c.data.data() + col * kChunkRows + row0,
                  n * sizeof(uint64_t));
    }
    return Status::OK();
  }
  // Spilled: column stride on disk is c.rows.
  for (size_t col = 0; col < width_; ++col) {
    const long off = c.file_offset +
                     static_cast<long>((col * c.rows + row0) *
                                       sizeof(uint64_t));
    if (std::fseek(file_, off, SEEK_SET) != 0) {
      return Status::IoError("seek failed on tuple-store spill file");
    }
    if (std::fread(dst + col * n, sizeof(uint64_t), n, file_) != n) {
      return Status::IoError("short read from tuple-store spill file");
    }
  }
  return Status::OK();
}

Status TempTupleStore::ForEachChunk(
    const std::function<Status(const uint64_t* const* cols,
                               size_t rows)>& fn) const {
  ANKER_CHECK_MSG(sealed_, "ForEachChunk before Finish");
  std::vector<const uint64_t*> col_ptrs(width_);
  for (size_t i = 0; i < chunks_.size(); ++i) {
    const Chunk& c = chunks_[i];
    if (c.rows == 0) continue;
    if (!c.data.empty()) {
      for (size_t col = 0; col < width_; ++col) {
        col_ptrs[col] = c.data.data() + col * kChunkRows;
      }
      ANKER_RETURN_IF_ERROR(fn(col_ptrs.data(), c.rows));
    } else {
      scratch_.resize(width_ * c.rows);
      ANKER_RETURN_IF_ERROR(ReadSlice(i, 0, c.rows, scratch_.data()));
      for (size_t col = 0; col < width_; ++col) {
        col_ptrs[col] = scratch_.data() + col * c.rows;
      }
      ANKER_RETURN_IF_ERROR(fn(col_ptrs.data(), c.rows));
    }
  }
  return Status::OK();
}

TempTupleStore::SliceReader::SliceReader(const TempTupleStore* store,
                                         size_t chunk, size_t buffer_rows)
    : store_(store),
      chunk_(chunk),
      limit_(store->chunk_rows(chunk)),
      buffer_rows_(buffer_rows == 0 ? 1 : buffer_rows),
      col_ptrs_(store->width()) {}

Result<size_t> TempTupleStore::SliceReader::Next(
    const uint64_t* const** cols) {
  if (next_ >= limit_) return size_t{0};
  const size_t n = std::min(buffer_rows_, limit_ - next_);
  buffer_.resize(store_->width() * n);
  ANKER_RETURN_IF_ERROR(
      store_->ReadSlice(chunk_, next_, n, buffer_.data()));
  for (size_t col = 0; col < store_->width(); ++col) {
    col_ptrs_[col] = buffer_.data() + col * n;
  }
  next_ += n;
  *cols = col_ptrs_.data();
  return n;
}

}  // namespace anker::query
