#ifndef ANKER_QUERY_PLAN_H_
#define ANKER_QUERY_PLAN_H_

// Internal physical-plan structures of the query layer: what
// QueryBuilder::Build compiles a declarative query into, and what the
// executors in exec.cc / fused.cc / dag_exec.cc consume. Nothing here is
// part of the public API surface (query.h re-exports only the handles).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/expr.h"
#include "storage/table.h"

namespace anker::query {

class Params;

/// How a compiled query executes (see docs/QUERY_API.md for the lowering
/// rules):
///  - kFusedGrouped: grouped aggregation whose aggregate expressions all
///    matched the fused-kernel menu — one compile-time-unrolled pass per
///    block, the same shape a hand-written kernel would take;
///  - kGroupedVec: grouped aggregation fallback — vectorized selection +
///    temp passes, generic per-aggregate accumulation;
///  - kVectorized: ungrouped aggregation — selection-vector passes with
///    unrolled reductions (beats per-row loops on selective filters).
enum class ExecStrategy : uint8_t {
  kFusedGrouped,
  kGroupedVec,
  kVectorized,
  /// Operator DAG (query/dag.h): scans feeding partitioned hash joins,
  /// hash aggregation, window functions and sort/top-k through
  /// spill-capable tuple stores. Everything the fast paths cannot shape.
  kDag,
};

/// Join types of the DAG's partitioned hash join.
enum class JoinType : uint8_t {
  kInner,
  kLeftSemi,   ///< Probe row kept iff some build row matches.
  kLeftAnti,   ///< Probe row kept iff no build row matches.
  kLeftOuter,  ///< Unmatched probe rows padded with zeroed build columns.
};

/// Window function kinds (whole-partition frame; see QueryBuilder::
/// Window).
enum class WinFn : uint8_t {
  kRank,
  kRowNumber,
  kSum,
  kAvg,
  kMin,
  kMax,
  kCount,
};

/// Hard budget on a plan's accumulator slots (groups x aggregates,
/// incl. the hidden count): sized so the executor can keep the whole
/// accumulator in a fixed stack array. Build rejects bigger plans; the
/// executor's ExecAcc is dimensioned by this same constant.
inline constexpr size_t kMaxTotalSlots = 1024;

/// Most simple predicates a fused kernel accepts; plans with more lower
/// to the generic grouped path (which has no predicate bound).
inline constexpr size_t kMaxFusedSimplePreds = 16;

/// Fused aggregate forms: the closed menu of per-row update shapes the
/// pre-instantiated kernels cover. kExpr marks an aggregate that did not
/// match the menu and is evaluated through the temp program instead.
enum class AggForm : uint8_t {
  kCount,           ///< += 1
  kSum,             ///< += a
  kSumMul,          ///< += a * b
  kSumOneMinusMul,  ///< += a * (1 - b)
  kSumChargeMul,    ///< += a * (1 - b) * (1 + c)
  kMin,             ///< min= a
  kMax,             ///< max= a
  kExpr,
};

/// Declared aggregate kinds (public builder surface). kCountDistinct is
/// DAG-only: the fused fast paths carry no per-group distinct sets.
enum class AggKind : uint8_t {
  kSum,
  kCount,
  kAvg,
  kMin,
  kMax,
  kCountDistinct,
};

/// A filter term of the shape `column <op> const-expr`, canonicalized to a
/// typed interval. Bounds are const expressions (literals, params, and
/// arithmetic over them) folded to raw values at bind time.
struct SimplePred {
  uint16_t col = 0;  ///< Index into CompiledQuery::columns.
  ExprType domain = ExprType::kInt64;  ///< Compare domain after encoding.
  std::shared_ptr<const ExprNode> lo;  ///< nullptr = open below.
  std::shared_ptr<const ExprNode> hi;  ///< nullptr = open above.
  bool lo_strict = false;
  bool hi_strict = false;
};

/// SimplePred after parameter substitution: a closed raw-value range
/// (strict bounds absorbed: +-1 for integer domains, nextafter for
/// doubles; dictionary codes and dates compare as int64).
struct BoundPred {
  uint16_t col = 0;
  bool is_double = false;
  int64_t ilo = 0, ihi = 0;
  double dlo = 0, dhi = 0;
};

/// Filter term that did not lower to a SimplePred (disjunctions, !=,
/// column-to-column compares): kept as an expression and evaluated per
/// surviving row by the scalar interpreter.
struct GenericPred {
  Expr expr;
};

/// Packed small-domain group key (Q1-style): each key column is a
/// dictionary column whose code domain fits `bits[i]` bits; the group
/// index concatenates the masked codes.
struct KeySpec {
  std::vector<uint16_t> cols;
  std::vector<uint32_t> bits;
  uint32_t num_groups = 1;
  bool grouped() const { return !cols.empty(); }
};

/// Ops of the vectorized temp program. Loads gather a column through the
/// selection (decoding by column type); arithmetic runs temp-at-a-time;
/// *C variants fold a const-expr operand (bound per execution).
enum class VecOp : uint8_t {
  kLoadF64,   ///< temps[dst] = double(col)
  kLoadI64,   ///< temps[dst] = (double)int64(col)
  kLoadDict,  ///< temps[dst] = (double)dict_code(col)
  kConst,     ///< temps[dst] = c
  kAdd,       ///< temps[dst] = temps[a] + temps[b]
  kSub,
  kMul,
  kAddC,   ///< temps[dst] = temps[a] + c
  kSubC,   ///< temps[dst] = temps[a] - c
  kRsubC,  ///< temps[dst] = c - temps[a]
  kMulC,   ///< temps[dst] = temps[a] * c
};

struct VecInst {
  VecOp op;
  uint8_t dst = 0;
  uint8_t a = 0;
  uint8_t b = 0;
  uint16_t col = 0;
  std::shared_ptr<const ExprNode> cexpr;  ///< Const operand of *C/kConst.
};

/// One declared aggregate after lowering.
struct AggSpec {
  std::string name;
  AggKind kind = AggKind::kSum;
  AggForm form = AggForm::kExpr;
  uint16_t a = 0, b = 0, c = 0;  ///< Operand columns of fused forms.
  int temp = -1;                 ///< Temp holding the input (kExpr path).
  int slot = -1;                 ///< Output slot within a group.
  bool hidden = false;           ///< Implicit count, not in the result.
  Expr expr;                     ///< Original input (invalid for kCount).
};

/// Number of column operands a fused form consumes from the flat operand
/// array (kernel operands are laid out positionally, aggregate by
/// aggregate, at compile-time offsets).
constexpr size_t FusedArity(AggForm form) {
  switch (form) {
    case AggForm::kCount:
    case AggForm::kExpr:
      return 0;
    case AggForm::kSum:
    case AggForm::kMin:
    case AggForm::kMax:
      return 1;
    case AggForm::kSumMul:
    case AggForm::kSumOneMinusMul:
      return 2;
    case AggForm::kSumChargeMul:
      return 3;
  }
  return 0;
}

/// Group-key descriptor handed to a fused kernel for the current block.
struct FusedKey {
  const uint64_t* k0 = nullptr;
  const uint64_t* k1 = nullptr;  ///< nullptr for single-key grouping.
  uint32_t mask0 = 0, mask1 = 0;
  uint32_t shift1 = 0;  ///< Bits of key 1 (key = (c0&m0)<<shift1 | c1&m1).
  uint32_t stride = 1;  ///< Slots per group.
};

/// Signature of a pre-instantiated fused kernel: folds one block into the
/// group slots. Rows failing a predicate are skipped (branch), matching
/// the shape of a hand-written kernel.
using FusedFn = void (*)(double* slots, const uint64_t* const* cols,
                         const BoundPred* preds, size_t npreds,
                         const FusedKey& key, const uint64_t* const* vals,
                         size_t n);

/// One registry entry: the kernel additionally comes specialized per
/// bound-predicate count (0, 1, 2; index 3 = runtime-count fallback), so
/// the common 0-2 predicate queries run with the predicate loop unrolled.
struct FusedKernelSet {
  FusedFn by_npreds[4] = {nullptr, nullptr, nullptr, nullptr};
  FusedFn Select(size_t npreds) const {
    return by_npreds[npreds < 3 ? npreds : 3];
  }
};

/// Registry lookup result. `deduplicated` tells the executor how the
/// matched kernel expects its flat operand array: collapsed to distinct
/// value slots (an operand-sharing pattern matched exactly) or one
/// pointer per operand position (identity-pattern fallback).
struct FusedLookup {
  const FusedKernelSet* set = nullptr;
  bool deduplicated = false;
};

/// Registry lookup: kernel set for the slot-form sequence, number of key
/// columns (1 or 2) and operand-sharing pattern (flat position -> value
/// slot). An empty `set` means the shape is not in the menu.
FusedLookup FindFusedKernel(const std::vector<AggForm>& forms, size_t nkeys,
                            const std::vector<uint16_t>& pattern);

struct DagPlan;

/// The immutable compiled plan behind a Query handle.
struct CompiledQuery {
  storage::Table* table = nullptr;
  std::vector<storage::Column*> columns;  ///< Deduplicated scan set.
  std::vector<ExprType> column_types;
  std::vector<SimplePred> preds;
  std::vector<GenericPred> generic_preds;
  KeySpec key;
  std::vector<std::string> key_names;
  std::vector<AggSpec> aggs;  ///< Declared order; hidden count last.
  int count_slot = -1;        ///< Slot of some count (-1 if none needed).
  size_t num_slots = 0;       ///< Slots per group (incl. hidden).
  size_t total_slots = 0;     ///< num_groups * num_slots.
  std::vector<VecInst> prog;
  size_t num_temps = 0;
  ExecStrategy strategy = ExecStrategy::kVectorized;
  const FusedKernelSet* fused = nullptr;
  /// Column index per value slot of the fused kernel's operand array
  /// (deduplicated when an operand-sharing pattern matched).
  std::vector<uint16_t> fused_vals;
  /// Operator-DAG lowering of the same declaration (query/dag.h). Set on
  /// every plan: kDag strategies execute it, fast-path strategies keep it
  /// for ExecOptions::force_dag differential runs.
  std::shared_ptr<const DagPlan> dag;
  /// Every parameter name the plan (and its sub-plans) can bind, sorted:
  /// Execute rejects bindings outside this set as recoverable errors.
  std::vector<std::string> param_names;
};

/// ---- shared helpers (plan.cc) -------------------------------------------

/// Evaluates a column-free expression to a typed raw value, substituting
/// params. Fails on missing/mistyped params.
struct ConstValue {
  ExprType type = ExprType::kInt64;
  uint64_t raw = 0;
};

Result<ConstValue> EvalConstExpr(const ExprNode* node, const Params& params);

/// Lowers a filter expression into simple + generic terms against the
/// table. `col_index` maps an existing column name to its index in the
/// plan's column set, appending new columns on demand.
class ColumnSet {
 public:
  explicit ColumnSet(storage::Table* table) : table_(table) {}
  /// Index of `name`, registering the column on first use.
  Result<uint16_t> Use(const std::string& name);
  const std::vector<storage::Column*>& columns() const { return columns_; }
  std::vector<ExprType> types() const;
  storage::Table* table() const { return table_; }

 private:
  storage::Table* table_;
  std::vector<storage::Column*> columns_;
  std::vector<std::string> names_;
};

Status LowerFilter(const Expr& filter, ColumnSet* cols,
                   std::vector<SimplePred>* preds,
                   std::vector<GenericPred>* generic);

/// Registers every column an expression references with the column set.
Status RegisterExprColumns(const Expr& expr, ColumnSet* cols);

/// Binds simple predicates against params: folds bound expressions,
/// resolves string literals through the column's dictionary, absorbs
/// strictness into the closed range.
Status BindPreds(const CompiledQuery& plan, const Params& params,
                 std::vector<BoundPred>* out);
Status BindPredsFor(const std::vector<SimplePred>& preds,
                    const std::vector<storage::Column*>& columns,
                    storage::Table* table, const Params& params,
                    std::vector<BoundPred>* out);

/// Row-wise check of bound predicates over block-local column spans.
inline bool PredsPass(const BoundPred* preds, size_t npreds,
                      const uint64_t* const* cols, size_t i) {
  for (size_t p = 0; p < npreds; ++p) {
    const BoundPred& pd = preds[p];
    if (pd.is_double) {
      const double v = storage::DecodeDouble(cols[pd.col][i]);
      if (v < pd.dlo || v > pd.dhi) return false;
    } else {
      const int64_t v = static_cast<int64_t>(cols[pd.col][i]);
      if (v < pd.ilo || v > pd.ihi) return false;
    }
  }
  return true;
}

/// A scalar expression bound for execution: params folded, column refs
/// resolved to plan column indexes. Used by generic predicates and the
/// semi-join passes.
struct BoundScalar {
  std::shared_ptr<const ExprNode> root;
};

Result<BoundScalar> BindScalar(const Expr& expr, ColumnSet* cols,
                               const Params& params);
Result<BoundScalar> BindScalarFor(const Expr& expr,
                                  const std::vector<storage::Column*>& columns,
                                  storage::Table* table, const Params& params);

/// Typed scalar evaluation over one row of block-local column spans.
struct ScalarValue {
  ExprType type = ExprType::kInt64;
  int64_t i = 0;
  double d = 0;
  bool b = false;
};

ScalarValue EvalScalar(const ExprNode* node, const uint64_t* const* cols,
                       size_t i);

/// Double value of a bound scalar over one row (numeric expressions).
double EvalScalarDouble(const BoundScalar& expr, const uint64_t* const* cols,
                        size_t i);
/// Boolean value of a bound scalar over one row (predicates).
bool EvalScalarBool(const BoundScalar& expr, const uint64_t* const* cols,
                    size_t i);

}  // namespace anker::query

#endif  // ANKER_QUERY_PLAN_H_
