#ifndef ANKER_QUERY_DAG_H_
#define ANKER_QUERY_DAG_H_

// The physical operator DAG behind ExecStrategy::kDag: a linear pipeline
// of composable operators lowered from the QueryBuilder surface —
//
//   scan/sub -> join* -> aggregate -> window -> filter -> select
//            -> sort/top-k -> limit
//
// Operators exchange tuples through spill-capable TempTupleStores
// (query/tuple_store.h) holding raw 8-byte slot values in the storage
// encoding, so the same scalar interpreter (plan.h's EvalScalar) that
// powers generic scan predicates evaluates every post-scan expression.
//
// Determinism contract: a DAG execution produces bit-identical results
// regardless of scan parallelism or spilling. Scan leaves reassemble
// their output in block order; the hash join always partitions both
// sides and emits (partition, probe-order); sorts use a total order
// (keys, then the full row as tie-break). The differential plan fuzzer
// (tests/query/plan_fuzz_test.cc) holds this contract down.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/plan.h"
#include "query/query.h"

namespace anker::query {

/// One column of an operator's output schema. The dictionary pointer
/// travels with dict-typed columns so string literals in post-scan
/// expressions (residuals, having, post filters) still resolve to codes.
struct DagOutCol {
  std::string name;
  ExprType type = ExprType::kInt64;
  const storage::Dictionary* dict = nullptr;
};

/// Sort key over a stage's schema.
struct DagSortKey {
  uint16_t col = 0;
  bool desc = false;
};

/// Pipeline leaf: a filtered base-table scan (morsel-parallel
/// FoldBlockwise) or the output of a compiled sub-query. Base scans
/// project `columns` in order (schema mirrors them); sub inputs adopt the
/// sub-plan's final schema and may be post-filtered tuple-wise.
struct DagScan {
  storage::Table* table = nullptr;
  std::shared_ptr<const CompiledQuery> sub;  ///< Set iff table == nullptr.
  std::vector<storage::Column*> columns;
  std::vector<SimplePred> preds;
  std::vector<GenericPred> generic_preds;
  std::vector<Expr> sub_filters;  ///< Tuple filters over a sub input.
  std::vector<DagOutCol> schema;
};

/// Partitioned hash build/probe join. Output schema: inner/outer = probe
/// schema ++ build schema minus the build keys (outer additionally
/// appends an int64 `__matched` flag); semi/anti = probe schema.
struct DagJoin {
  JoinType type = JoinType::kInner;
  DagScan build;
  std::vector<uint16_t> probe_keys;  ///< Into the probe (input) schema.
  std::vector<uint16_t> build_keys;  ///< Into build.schema.
  /// Extra match condition over the combined probe ++ full build schema,
  /// evaluated per candidate pair (non-equi conditions).
  Expr residual;
  /// Filter conjuncts assigned to run right after this join (their
  /// columns span both sides), over the output schema.
  std::vector<Expr> post_filters;
  std::vector<uint16_t> build_out;  ///< Build slots appended (inner/outer).
  std::vector<DagOutCol> schema;    ///< Output schema.
};

/// One aggregate of the DAG's hash aggregation.
struct DagAggSpec {
  std::string name;
  AggKind kind = AggKind::kCount;
  Expr expr;  ///< Over the input schema; invalid for kCount.
};

/// Hash aggregation over arbitrary-typed group keys; groups are emitted
/// in first-seen order (deterministic: the input order is). Matching the
/// fast paths, groups only materialize from actual input rows — an empty
/// input yields an empty result even ungrouped. Group state lives in
/// memory; the spill machinery bounds the operator *inputs*.
struct DagAggregate {
  bool present = false;
  std::vector<uint16_t> group_cols;  ///< Into the input schema.
  std::vector<DagAggSpec> aggs;
  Expr having;                    ///< Over the output schema; optional.
  std::vector<DagOutCol> schema;  ///< Group cols ++ double agg outputs.
};

/// One window function output column.
struct DagWinSpec {
  std::string name;
  WinFn fn = WinFn::kCount;
  Expr input;  ///< Over the input schema; invalid for rank/count forms.
};

/// Window stage: sorts the input by (partition, order) and appends one
/// double column per function — whole-partition aggregates, or rank /
/// row_number along the order keys.
struct DagWindow {
  bool present = false;
  std::vector<uint16_t> partition_cols;
  std::vector<DagSortKey> order;  ///< Over the input schema.
  std::vector<DagWinSpec> funcs;
  std::vector<DagOutCol> schema;  ///< Input ++ double func outputs.
};

/// The compiled pipeline. `schema` is the final (post-select) schema that
/// result assembly maps onto QueryResult keys/values.
struct DagPlan {
  DagScan scan;
  std::vector<DagJoin> joins;
  DagAggregate agg;
  DagWindow window;
  /// Filter after aggregation/window (may reference their outputs), over
  /// the pre-select schema; optional.
  Expr final_filter;
  std::vector<uint16_t> select;  ///< Pre-select slots; empty = identity.
  std::vector<DagOutCol> schema;
  std::vector<DagSortKey> order;  ///< Over the final schema.
  int64_t limit = -1;             ///< -1 = unlimited.
};

/// ---- lowering (dag_build.cc) --------------------------------------------

/// Compiles the builder's collected pieces into a CompiledQuery carrying
/// a DagPlan (strategy kDag): resolves names stage by stage, pushes
/// Filter conjuncts to the earliest covering stage, type-checks every
/// expression against its stage schema, and unions the scan column sets
/// (including sub-plans') for the OLAP snapshot declaration.
Result<Query> BuildDagQuery(const QueryBuilder& builder);

/// Type inference against a tuple schema: the same rules as
/// expr.h's TypeCheck, with columns resolved by schema name.
Result<ExprType> TypeCheckTuple(const Expr& expr,
                                const std::vector<DagOutCol>& schema);

/// Binds an expression for tuple-wise evaluation: params fold into
/// literals, column names resolve to schema slots, and string literals /
/// string params in dictionary equalities resolve to codes through the
/// schema column's dictionary. The result evaluates with EvalScalar over
/// chunk column spans.
Result<BoundScalar> BindTupleScalar(const Expr& expr,
                                    const std::vector<DagOutCol>& schema,
                                    const Params& params);

/// Appends every parameter name referenced by `expr` to `names`.
void CollectParamNames(const Expr& expr, std::vector<std::string>* names);

/// ---- execution (dag_exec.cc) --------------------------------------------

/// Runs plan.dag inside `ctx` (which must cover plan.columns). Used by
/// Execute for kDag strategies and for ExecOptions::force_dag.
Status ExecuteDag(const CompiledQuery& plan, const engine::OlapContext& ctx,
                  const Params& params, const ExecOptions& options,
                  QueryResult* result);

}  // namespace anker::query

#endif  // ANKER_QUERY_DAG_H_
