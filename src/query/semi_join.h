#ifndef ANKER_QUERY_SEMI_JOIN_H_
#define ANKER_QUERY_SEMI_JOIN_H_

// Two-pass aggregated semi join: the declarative form of TPC-H Q17's
// access pattern ("small-quantity-order revenue"). A build-side scan
// collects the qualifying join keys; probe pass 1 computes a per-key
// average of `avg_value`; probe pass 2 sums `agg_value` over the rows
// whose `avg_value` stays below `guard_scale` times that per-key average:
//
//   SemiJoinSpec spec;
//   spec.build_table = part;
//   spec.build_filter = Col("p_brand") == Param("brand", kDict) && ...;
//   spec.build_key = "p_partkey";
//   spec.probe_table = lineitem;
//   spec.probe_key = "l_partkey";
//   spec.avg_value = Col("l_quantity");
//   spec.guard_scale = F64(0.2);
//   spec.agg_value = Col("l_extendedprice");
//
// All three passes run inside one OLAP transaction (one snapshot), so the
// build and probe sides observe the same point in time.

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "query/query.h"

namespace anker::query {

struct SemiJoinSpec {
  storage::Table* build_table = nullptr;
  Expr build_filter;              ///< Optional; boolean over build columns.
  std::string build_key;          ///< Int64 key column of the build side.
  storage::Table* probe_table = nullptr;
  std::string probe_key;          ///< Int64 key column of the probe side.
  Expr avg_value;                 ///< Numeric, averaged per key (pass 1).
  Expr guard_scale;               ///< Const expr: threshold multiplier.
  Expr agg_value;                 ///< Numeric, summed when below guard.
  std::string result_name = "value";
};

struct CompiledSemiJoin;

/// Immutable compiled plan; run it with Database::Run or Execute below.
class SemiJoinQuery {
 public:
  SemiJoinQuery() = default;

  /// Type-checks both sides and compiles the passes.
  static Result<SemiJoinQuery> Build(SemiJoinSpec spec);

  bool valid() const { return plan_ != nullptr; }
  /// Union of build- and probe-side columns (the OLAP column set).
  const std::vector<storage::Column*>& columns() const;

  const CompiledSemiJoin& plan() const { return *plan_; }

 private:
  explicit SemiJoinQuery(std::shared_ptr<const CompiledSemiJoin> plan)
      : plan_(std::move(plan)) {}
  std::shared_ptr<const CompiledSemiJoin> plan_;
};

/// Executes inside an existing OLAP transaction covering columns().
/// The result carries one row with the summed aggregate under
/// spec.result_name; rows_scanned counts the final probe pass.
Status Execute(const SemiJoinQuery& query, const engine::OlapContext& ctx,
               const Params& params, QueryResult* result);

}  // namespace anker::query

#endif  // ANKER_QUERY_SEMI_JOIN_H_
