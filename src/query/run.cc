// Database::Run — the engine's query-shaped OLAP entry points. Lives in
// the query layer (the engine header only forward-declares the query
// types) so the engine target carries no compile-time dependency on the
// query surface.
#include "query/query.h"

namespace anker::engine {

namespace {

Result<query::QueryResult> RunImpl(Database* db, const query::Query& q,
                                   const query::Params& params,
                                   const query::ExecOptions& options) {
  auto ctx = db->BeginOlap(q.columns());
  if (!ctx.ok()) return ctx.status();
  query::QueryResult result;
  const Status executed =
      query::Execute(q, *ctx.value(), params, options, &result);
  const Status finished = db->FinishOlap(ctx.TakeValue());
  if (!executed.ok()) return executed;
  if (!finished.ok()) return finished;
  return result;
}

}  // namespace

Result<query::QueryResult> Database::Run(const query::Query& q,
                                         const query::Params& params) {
  return RunImpl(this, q, params, query::ExecOptions());
}

Result<query::QueryResult> Database::Run(const query::Query& q,
                                         const query::Params& params,
                                         const query::ExecOptions& options) {
  return RunImpl(this, q, params, options);
}

}  // namespace anker::engine
