#ifndef ANKER_QUERY_QUERY_H_
#define ANKER_QUERY_QUERY_H_

// The composable query surface of the engine: typed expression trees
// (query/expr.h) assembled into declarative scan pipelines that compile
// onto the engine's block-specialized scan kernels. A workload becomes a
// ~10-line definition instead of a hand-rolled fold:
//
//   auto q = Query::On(lineitem)
//                .Filter(Col("l_shipdate") <= Param("cutoff", kDate))
//                .Aggregate({Sum(Col("l_quantity")).As("sum_qty"),
//                            Count().As("n")})
//                .GroupBy({"l_returnflag", "l_linestatus"})
//                .Build();
//   auto result = db.Run(q.value(), Params().SetDate("cutoff", 2436));
//
// See docs/QUERY_API.md for the full builder reference and the lowering
// rules onto the fused / vectorized kernels.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "query/expr.h"
#include "query/plan.h"

namespace anker::query {

/// Per-execution parameter bindings for Param() placeholders. Chainable:
///   Params().SetDate("start", 800).SetDouble("disc", 0.05)
class Params {
 public:
  Params& SetInt(const std::string& name, int64_t value);
  Params& SetDouble(const std::string& name, double value);
  Params& SetDate(const std::string& name, int64_t days);
  Params& SetDictCode(const std::string& name, uint32_t code);
  /// Dictionary parameter by text; resolved through the compared column's
  /// dictionary when the predicate is bound.
  Params& SetString(const std::string& name, std::string text);

  struct Value {
    ExprType type = ExprType::kInt64;
    uint64_t raw = 0;
    std::string text;
    bool is_string = false;
  };

  /// Raw binding (wire deserialization; the typed setters above are the
  /// ergonomic surface).
  Params& Set(const std::string& name, Value value) {
    values_[name] = std::move(value);
    return *this;
  }

  const Value* Find(const std::string& name) const;

  /// All bindings, name-ordered (wire serialization iterates them).
  const std::map<std::string, Value>& values() const { return values_; }

 private:
  std::map<std::string, Value> values_;
};

/// One aggregate of a query's output, built by the factories below.
class Agg {
 public:
  Agg() = default;
  Agg(AggKind kind, Expr expr) : kind_(kind), expr_(std::move(expr)) {}

  /// Names the output slot (defaults to agg<i> by position).
  Agg As(std::string name) const {
    Agg copy = *this;
    copy.name_ = std::move(name);
    return copy;
  }

  AggKind kind() const { return kind_; }
  const Expr& expr() const { return expr_; }
  const std::string& name() const { return name_; }

 private:
  AggKind kind_ = AggKind::kCount;
  Expr expr_;
  std::string name_;
};

Agg Sum(Expr expr);
Agg Count();
Agg Avg(Expr expr);
Agg Min(Expr expr);
Agg Max(Expr expr);

/// Result of one query execution: named aggregate slots per group row,
/// plus the scan statistics of the underlying fold. Ungrouped queries
/// yield exactly one row with empty key codes; grouped queries yield one
/// row per non-empty group, ordered by packed key.
struct QueryResult {
  struct Row {
    std::vector<uint32_t> keys;   ///< Dictionary codes of the group key.
    std::vector<double> values;   ///< One per declared aggregate.
  };

  std::vector<std::string> columns;    ///< Aggregate names (declared order).
  std::vector<std::string> key_names;  ///< Group-by column names.
  std::vector<Row> rows;
  uint64_t rows_scanned = 0;
  engine::ScanStats scan;

  /// Single-row convenience: value of the named aggregate in rows[0].
  /// CHECK-fails when the result is empty or the name is unknown.
  double Value(const std::string& name) const;
};

/// An immutable, compiled query plan. Cheap to copy (shared state),
/// reusable across executions and threads; parameters vary per Run.
class Query {
 public:
  Query() = default;

  /// Entry point of the builder chain.
  static class QueryBuilder On(storage::Table* table);

  bool valid() const { return plan_ != nullptr; }
  storage::Table* table() const { return plan_->table; }
  /// Every column the query touches — the engine materializes snapshots
  /// for exactly this set (fine-granular, per-column snapshotting).
  const std::vector<storage::Column*>& columns() const {
    return plan_->columns;
  }
  ExecStrategy strategy() const { return plan_->strategy; }

  const CompiledQuery& plan() const { return *plan_; }

 private:
  friend class QueryBuilder;
  explicit Query(std::shared_ptr<const CompiledQuery> plan)
      : plan_(std::move(plan)) {}
  std::shared_ptr<const CompiledQuery> plan_;
};

/// Collects the declarative pieces; Build() type-checks against the
/// table's schema and lowers onto a physical strategy.
class QueryBuilder {
 public:
  explicit QueryBuilder(storage::Table* table) : table_(table) {}

  /// Adds a filter; multiple calls conjoin.
  QueryBuilder& Filter(Expr predicate);
  /// Declares the aggregate outputs (required; appends).
  QueryBuilder& Aggregate(std::vector<Agg> aggs);
  /// Groups by dictionary-encoded columns with small code domains; the
  /// packed key domain (product of rounded-up code domains) must stay
  /// within 1024 groups.
  QueryBuilder& GroupBy(std::vector<std::string> columns);

  /// Type-checks and compiles. Errors: NotFound (unknown column),
  /// InvalidArgument (type errors, non-boolean filter, duplicate names),
  /// NotSupported (group domain too large, too many columns/temps).
  Result<Query> Build() const;

 private:
  storage::Table* table_;
  Expr filter_;
  std::vector<Agg> aggs_;
  std::vector<std::string> group_by_;
};

/// Executes a compiled query inside an existing OLAP transaction whose
/// column set covers query.columns() (returns InvalidArgument otherwise).
/// Most callers want Database::Run, which manages the transaction and
/// infers the column set.
Status Execute(const Query& query, const engine::OlapContext& ctx,
               const Params& params, QueryResult* result);

}  // namespace anker::query

#endif  // ANKER_QUERY_QUERY_H_
