#ifndef ANKER_QUERY_QUERY_H_
#define ANKER_QUERY_QUERY_H_

// The composable query surface of the engine: typed expression trees
// (query/expr.h) assembled into declarative pipelines that compile onto a
// physical operator DAG — morsel-parallel scans, partitioned hash joins,
// hash aggregation, window functions and sort/top-k — or, for the
// single-table filtered-aggregate shapes, directly onto the engine's
// block-specialized scan kernels. A workload becomes a ~10-line
// definition instead of a hand-rolled fold:
//
//   auto q = Query::On(lineitem)
//                .Filter(Col("l_shipdate") > Param("cutoff", kDate))
//                .Join({orders, Col("o_orderdate") < Param("cutoff2",
//                                                          kDate)},
//                      JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
//                .Aggregate({Sum(Col("l_extendedprice") *
//                                (F64(1.0) - Col("l_discount")))
//                                .As("revenue")})
//                .GroupBy({"l_orderkey"})
//                .OrderBy({{"revenue", true}})
//                .Limit(10)
//                .Build();
//   auto result = db.Run(q.value(), Params().SetDate("cutoff", 2436)...);
//
// See docs/QUERY_API.md for the full builder reference and the lowering
// rules onto the fused / vectorized kernels and the operator DAG.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "query/expr.h"
#include "query/plan.h"

namespace anker::query {

/// Per-execution parameter bindings for Param() placeholders. Chainable:
///   Params().SetDate("start", 800).SetDouble("disc", 0.05)
/// Binding a name the plan never references is reported by Execute /
/// Database::Run as a recoverable InvalidArgument (a typo'd parameter
/// name must not silently bind nothing).
class Params {
 public:
  Params& SetInt(const std::string& name, int64_t value);
  Params& SetDouble(const std::string& name, double value);
  Params& SetDate(const std::string& name, int64_t days);
  Params& SetDictCode(const std::string& name, uint32_t code);
  /// Dictionary parameter by text; resolved through the compared column's
  /// dictionary when the predicate is bound.
  Params& SetString(const std::string& name, std::string text);

  struct Value {
    ExprType type = ExprType::kInt64;
    uint64_t raw = 0;
    std::string text;
    bool is_string = false;
  };

  /// Raw binding (wire deserialization; the typed setters above are the
  /// ergonomic surface).
  Params& Set(const std::string& name, Value value) {
    values_[name] = std::move(value);
    return *this;
  }

  const Value* Find(const std::string& name) const;

  /// All bindings, name-ordered (wire serialization iterates them).
  const std::map<std::string, Value>& values() const { return values_; }

 private:
  std::map<std::string, Value> values_;
};

/// One aggregate of a query's output, built by the factories below.
class Agg {
 public:
  Agg() = default;
  Agg(AggKind kind, Expr expr) : kind_(kind), expr_(std::move(expr)) {}

  /// Names the output slot (defaults to agg<i> by position).
  Agg As(std::string name) const {
    Agg copy = *this;
    copy.name_ = std::move(name);
    return copy;
  }

  AggKind kind() const { return kind_; }
  const Expr& expr() const { return expr_; }
  const std::string& name() const { return name_; }

 private:
  AggKind kind_ = AggKind::kCount;
  Expr expr_;
  std::string name_;
};

Agg Sum(Expr expr);
Agg Count();
Agg Avg(Expr expr);
Agg Min(Expr expr);
Agg Max(Expr expr);
/// Number of distinct values of `expr` per group (DAG-only: the fused
/// fast paths never carry per-group distinct sets).
Agg CountDistinct(Expr expr);

/// Sort key of OrderBy / window ordering: column name of the stage's
/// output schema plus direction.
struct SortSpec {
  std::string column;
  bool desc = false;
};

/// One window function declaration. Aggregate functions (sum/avg/min/
/// max/count) are computed over the whole partition (no frame); kRank /
/// kRowNumber additionally need the window's order keys.
struct WindowDef {
  std::string name;
  WinFn fn = WinFn::kCount;
  Expr input;  ///< Invalid for kRank / kRowNumber / kCount.
};

WindowDef WinRank(std::string name);
WindowDef WinRowNumber(std::string name);
WindowDef WinCount(std::string name);
WindowDef WinSum(Expr input, std::string name);
WindowDef WinAvg(Expr input, std::string name);
WindowDef WinMin(Expr input, std::string name);
WindowDef WinMax(Expr input, std::string name);

/// One output column of a Select projection: a column of the current
/// schema, optionally renamed (the aliasing point for self-joins).
struct SelectItem {
  std::string column;
  std::string alias;  ///< Empty = keep the source name.
};

class Query;

/// Build side of a Join: a base table (optionally pre-filtered — the
/// filter runs inside the build scan) or a finished sub-query.
class JoinInput {
 public:
  JoinInput(storage::Table* table) : table_(table) {}  // NOLINT: implicit.
  JoinInput(storage::Table* table, Expr filter)
      : table_(table), filter_(std::move(filter)) {}
  JoinInput(const Query& sub);  // NOLINT: implicit.

  storage::Table* table() const { return table_; }
  const Expr& filter() const { return filter_; }
  const std::shared_ptr<const CompiledQuery>& sub() const { return sub_; }

 private:
  storage::Table* table_ = nullptr;
  Expr filter_;
  std::shared_ptr<const CompiledQuery> sub_;
};

/// Per-execution knobs of Execute / Database::Run. Defaults match the
/// plain overloads.
struct ExecOptions {
  /// Run through the operator DAG even when the plan compiled onto a
  /// fused / vectorized fast path (differential testing).
  bool force_dag = false;
  /// Memory budget of one execution's intermediate tuple stores; above
  /// it, completed chunks spill to anonymous temporary files.
  size_t spill_threshold_bytes = size_t{256} << 20;
  /// Overrides the transaction's scan options (thread pool, morsel size,
  /// test hooks) for every scan of this execution.
  const engine::ScanOptions* scan_options = nullptr;
};

/// Result of one query execution: named output columns per row, plus the
/// scan statistics of the underlying folds. Double-typed outputs land in
/// `values`; integer-domain outputs (group keys, dictionary codes, dates,
/// int64 projections) land in `keys`, typed by `key_types`.
struct QueryResult {
  struct Row {
    std::vector<uint64_t> keys;   ///< Integer-domain outputs (see key_types).
    std::vector<double> values;   ///< Double-typed outputs.
  };

  std::vector<std::string> columns;    ///< Names of the double outputs.
  std::vector<std::string> key_names;  ///< Names of the integer outputs.
  std::vector<ExprType> key_types;     ///< One per key column.
  /// Key/value interleave of the producing plan's output schema: one tag
  /// per output column in schema order (0 = key slot, 1 = value slot).
  /// Empty means "keys then values". Lets a consumer that re-sorts rows
  /// (the shard router's merge) reproduce the engine's full-row tiebreak
  /// order exactly. Filled by the DAG executor; travels in QUERY_DONE.
  std::vector<uint8_t> interleave;
  std::vector<Row> rows;
  uint64_t rows_scanned = 0;
  /// Shards that did NOT contribute to this result (down or failing
  /// mid-query under the router's --allow_partial). 0 = complete. A
  /// non-zero count means aggregates under-count and rows are missing;
  /// travels in QUERY_DONE so clients can tell degraded from complete.
  /// Always 0 from a single engine server.
  uint32_t shards_missing = 0;
  engine::ScanStats scan;

  /// Single-row convenience: value of the named aggregate in rows[0].
  /// CHECK-fails when the result is empty or the name is unknown.
  double Value(const std::string& name) const;
};

/// An immutable, compiled query plan. Cheap to copy (shared state),
/// reusable across executions and threads; parameters vary per Run.
class Query {
 public:
  Query() = default;

  /// Entry point of the builder chain.
  static class QueryBuilder On(storage::Table* table);
  /// Pipelines over the rows another query produces (sub-query input).
  static class QueryBuilder On(const Query& sub);

  bool valid() const { return plan_ != nullptr; }
  storage::Table* table() const { return plan_->table; }
  /// Every column the query touches, across all of its scans — the engine
  /// materializes snapshots for exactly this set.
  const std::vector<storage::Column*>& columns() const {
    return plan_->columns;
  }
  ExecStrategy strategy() const { return plan_->strategy; }

  const CompiledQuery& plan() const { return *plan_; }
  const std::shared_ptr<const CompiledQuery>& shared_plan() const {
    return plan_;
  }

 private:
  friend class QueryBuilder;
  friend Result<Query> BuildDagQuery(const QueryBuilder& builder);
  explicit Query(std::shared_ptr<const CompiledQuery> plan)
      : plan_(std::move(plan)) {}
  std::shared_ptr<const CompiledQuery> plan_;
};

/// Collects the declarative pieces; Build() type-checks against the
/// schemas involved and lowers onto a physical strategy: the fused /
/// vectorized single-table kernels when the shape allows, the operator
/// DAG otherwise. Stage order is fixed: input -> joins (declaration
/// order) -> aggregate -> having -> window -> PostFilter -> Select ->
/// OrderBy -> Limit. Filter() conjuncts are pushed to the earliest stage
/// whose schema covers their columns (base scan, or after some join).
/// Column names must be unambiguous across every input; rename through a
/// Select in a sub-query where they are not (self-joins).
class QueryBuilder {
 public:
  explicit QueryBuilder(storage::Table* table) : table_(table) {}
  explicit QueryBuilder(const Query& sub);

  /// Adds a filter; multiple calls conjoin.
  QueryBuilder& Filter(Expr predicate);
  /// Declares the aggregate outputs (appends).
  QueryBuilder& Aggregate(std::vector<Agg> aggs);
  /// Groups the aggregates. The DAG's hash aggregation takes keys of any
  /// type; the fused fast paths additionally require dictionary columns
  /// with small packed domains.
  QueryBuilder& GroupBy(std::vector<std::string> columns);

  /// Hash-joins the pipeline (probe side) against `build`. Key lists are
  /// positional pairs of equal length and matching types. `residual` is
  /// an extra boolean over the combined probe+build schema evaluated per
  /// candidate pair (non-equi conditions). Inner and left-outer joins
  /// append the build columns (minus its keys) to the schema; left-outer
  /// additionally appends an int64 `__matched` flag (0 for the padded
  /// probe-only rows, whose build columns are zeroed). Semi/anti joins
  /// keep the probe schema only.
  QueryBuilder& Join(JoinInput build, JoinType type,
                     std::vector<std::string> probe_keys,
                     std::vector<std::string> build_keys,
                     Expr residual = Expr());

  /// Filters groups after aggregation (over group keys + agg outputs).
  QueryBuilder& Having(Expr predicate);

  /// Appends window function outputs: every function is computed per
  /// partition (whole-partition frame), with kRank / kRowNumber ordered
  /// by `order`.
  QueryBuilder& Window(std::vector<WindowDef> funcs,
                       std::vector<std::string> partition_by,
                       std::vector<SortSpec> order = {});

  /// Filters rows after aggregation and window functions (may reference
  /// window outputs).
  QueryBuilder& PostFilter(Expr predicate);

  /// Projects (and renames) the output schema. A query must declare
  /// aggregates, a Select, or both.
  QueryBuilder& Select(std::vector<SelectItem> items);

  /// Sorts the final rows. Deterministic: ties break by the full row, so
  /// top-k results are stable across execution strategies.
  QueryBuilder& OrderBy(std::vector<SortSpec> keys);

  /// Keeps the first `n` rows (after OrderBy when present).
  QueryBuilder& Limit(int64_t n);

  /// Type-checks and compiles. Errors: NotFound (unknown column),
  /// InvalidArgument (type errors, non-boolean filter, duplicate or
  /// ambiguous names, key list mismatches), NotSupported (unsupported
  /// shapes).
  Result<Query> Build() const;

  /// One collected Join clause (consumed by the DAG lowering).
  struct JoinClause {
    JoinInput input;
    JoinType type = JoinType::kInner;
    std::vector<std::string> probe_keys;
    std::vector<std::string> build_keys;
    Expr residual;
  };

 private:
  friend Result<Query> BuildDagQuery(const QueryBuilder& builder);

  /// The original single-table filtered-aggregate lowering (fused /
  /// vectorized strategies). Fails on shapes only the DAG handles.
  Result<std::shared_ptr<CompiledQuery>> BuildFastPath() const;
  /// True when the declared shape can only run as a DAG.
  bool NeedsDag() const;

  storage::Table* table_ = nullptr;
  std::shared_ptr<const CompiledQuery> sub_;
  Expr filter_;
  std::vector<Agg> aggs_;
  std::vector<std::string> group_by_;
  std::vector<JoinClause> joins_;
  Expr having_;
  bool has_window_ = false;
  std::vector<WindowDef> win_funcs_;
  std::vector<std::string> win_partition_;
  std::vector<SortSpec> win_order_;
  Expr post_filter_;
  std::vector<SelectItem> select_;
  std::vector<SortSpec> order_by_;
  int64_t limit_ = -1;
};

/// Executes a compiled query inside an existing OLAP transaction whose
/// column set covers query.columns() (returns InvalidArgument otherwise).
/// Most callers want Database::Run, which manages the transaction and
/// infers the column set.
Status Execute(const Query& query, const engine::OlapContext& ctx,
               const Params& params, QueryResult* result);
Status Execute(const Query& query, const engine::OlapContext& ctx,
               const Params& params, const ExecOptions& options,
               QueryResult* result);

}  // namespace anker::query

#endif  // ANKER_QUERY_QUERY_H_
