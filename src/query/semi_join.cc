#include "query/semi_join.h"

#include <unordered_map>
#include <unordered_set>

#include "query/plan.h"

namespace anker::query {

struct CompiledSemiJoin {
  SemiJoinSpec spec;
  // Build side.
  std::vector<storage::Column*> build_columns;
  std::vector<SimplePred> build_preds;
  std::vector<GenericPred> build_generic;
  uint16_t build_key_col = 0;
  // Probe side (its own column space).
  std::vector<storage::Column*> probe_columns;
  uint16_t probe_key_col = 0;
  // Union, for BeginOlap.
  std::vector<storage::Column*> all_columns;
};

const std::vector<storage::Column*>& SemiJoinQuery::columns() const {
  return plan_->all_columns;
}

Result<SemiJoinQuery> SemiJoinQuery::Build(SemiJoinSpec spec) {
  if (spec.build_table == nullptr || spec.probe_table == nullptr) {
    return Status::InvalidArgument("semi join needs build and probe tables");
  }
  auto plan = std::make_shared<CompiledSemiJoin>();

  // ---- build side ----
  ColumnSet build_cols(spec.build_table);
  auto build_key = build_cols.Use(spec.build_key);
  if (!build_key.ok()) return build_key.status();
  plan->build_key_col = build_key.value();
  if (spec.build_table->GetColumn(spec.build_key)->type() !=
      storage::ValueType::kInt64) {
    return Status::InvalidArgument("build key '" + spec.build_key +
                                   "' must be an int64 column");
  }
  if (spec.build_filter.valid()) {
    auto type = TypeCheck(spec.build_filter, *spec.build_table);
    if (!type.ok()) return type.status();
    if (type.value() != ExprType::kBool) {
      return Status::InvalidArgument("build filter must be boolean");
    }
    ANKER_RETURN_IF_ERROR(LowerFilter(spec.build_filter, &build_cols,
                                      &plan->build_preds,
                                      &plan->build_generic));
  }
  plan->build_columns = build_cols.columns();

  // ---- probe side ----
  ColumnSet probe_cols(spec.probe_table);
  auto probe_key = probe_cols.Use(spec.probe_key);
  if (!probe_key.ok()) return probe_key.status();
  plan->probe_key_col = probe_key.value();
  if (spec.probe_table->GetColumn(spec.probe_key)->type() !=
      storage::ValueType::kInt64) {
    return Status::InvalidArgument("probe key '" + spec.probe_key +
                                   "' must be an int64 column");
  }
  for (const Expr* expr : {&spec.avg_value, &spec.agg_value}) {
    if (!expr->valid()) {
      return Status::InvalidArgument(
          "semi join needs avg_value and agg_value expressions");
    }
    auto type = TypeCheck(*expr, *spec.probe_table);
    if (!type.ok()) return type.status();
    if (type.value() != ExprType::kInt64 &&
        type.value() != ExprType::kDouble) {
      return Status::InvalidArgument(
          "avg_value / agg_value must be numeric");
    }
    ANKER_RETURN_IF_ERROR(RegisterExprColumns(*expr, &probe_cols));
  }
  if (!spec.guard_scale.valid() || !IsConstExpr(spec.guard_scale)) {
    return Status::InvalidArgument(
        "guard_scale must be a constant expression (literals/params)");
  }
  plan->probe_columns = probe_cols.columns();

  plan->all_columns = plan->build_columns;
  for (storage::Column* column : plan->probe_columns) {
    plan->all_columns.push_back(column);
  }
  plan->spec = std::move(spec);
  return SemiJoinQuery(std::move(plan));
}

namespace {

struct KeyStats {
  double sum = 0;
  uint64_t count = 0;
};

}  // namespace

Status Execute(const SemiJoinQuery& query, const engine::OlapContext& ctx,
               const Params& params, QueryResult* result) {
  if (!query.valid()) return Status::InvalidArgument("invalid semi join");
  const CompiledSemiJoin& plan = query.plan();

  // Bind everything up front.
  std::vector<BoundPred> build_preds;
  ANKER_RETURN_IF_ERROR(BindPredsFor(plan.build_preds, plan.build_columns,
                                     plan.spec.build_table, params,
                                     &build_preds));
  std::vector<BoundScalar> build_generic;
  for (const GenericPred& pred : plan.build_generic) {
    auto bound = BindScalarFor(pred.expr, plan.build_columns,
                               plan.spec.build_table, params);
    if (!bound.ok()) return bound.status();
    build_generic.push_back(bound.TakeValue());
  }
  auto avg_value = BindScalarFor(plan.spec.avg_value, plan.probe_columns,
                                 plan.spec.probe_table, params);
  if (!avg_value.ok()) return avg_value.status();
  auto agg_value = BindScalarFor(plan.spec.agg_value, plan.probe_columns,
                                 plan.spec.probe_table, params);
  if (!agg_value.ok()) return agg_value.status();
  auto scale = EvalConstExpr(plan.spec.guard_scale.node(), params);
  if (!scale.ok()) return scale.status();
  const double guard_scale =
      scale.value().type == ExprType::kDouble
          ? storage::DecodeDouble(scale.value().raw)
          : static_cast<double>(storage::DecodeInt64(scale.value().raw));

  // Readers for both sides out of the one OLAP context.
  auto make_readers = [&](const std::vector<storage::Column*>& columns,
                          std::vector<engine::ColumnReader>* readers)
      -> Status {
    readers->reserve(columns.size());
    for (storage::Column* column : columns) {
      auto reader = ctx.TryReader(column);
      if (!reader.ok()) return reader.status();
      readers->push_back(reader.value());
    }
    return Status::OK();
  };
  std::vector<engine::ColumnReader> build_readers;
  ANKER_RETURN_IF_ERROR(make_readers(plan.build_columns, &build_readers));
  std::vector<engine::ColumnReader> probe_readers;
  ANKER_RETURN_IF_ERROR(make_readers(plan.probe_columns, &probe_readers));

  std::vector<const engine::ColumnReader*> build_ptrs;
  for (const engine::ColumnReader& reader : build_readers) {
    build_ptrs.push_back(&reader);
  }
  std::vector<const engine::ColumnReader*> probe_ptrs;
  for (const engine::ColumnReader& reader : probe_readers) {
    probe_ptrs.push_back(&reader);
  }
  engine::ScanDriver build_driver(build_ptrs);
  engine::ScanDriver probe_driver(probe_ptrs);
  const engine::ScanOptions options = ctx.scan_options();

  // ---- build pass: qualifying key set ----
  struct BuildAcc {
    std::unordered_set<int64_t> keys;
  };
  BuildAcc qualifying{};
  const uint16_t key_col = plan.build_key_col;
  build_driver.FoldBlockwise<BuildAcc>(
      &qualifying,
      [&](BuildAcc& acc, const engine::ScanBlock& block) {
        for (size_t i = 0; i < block.rows; ++i) {
          if (!PredsPass(build_preds.data(), build_preds.size(), block.cols,
                         i)) {
            continue;
          }
          bool pass = true;
          for (const BoundScalar& pred : build_generic) {
            if (!EvalScalarBool(pred, block.cols, i)) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          acc.keys.insert(
              storage::DecodeInt64(block.cols[key_col][i]));
        }
      },
      [](BuildAcc& into, BuildAcc&& from) { into.keys.merge(from.keys); },
      nullptr, options);

  // ---- probe pass 1: per-key average of avg_value ----
  struct Pass1Acc {
    std::unordered_map<int64_t, KeyStats> stats;
  };
  Pass1Acc per_key{};
  const uint16_t probe_key = plan.probe_key_col;
  probe_driver.FoldBlockwise<Pass1Acc>(
      &per_key,
      [&](Pass1Acc& acc, const engine::ScanBlock& block) {
        for (size_t i = 0; i < block.rows; ++i) {
          const int64_t key =
              storage::DecodeInt64(block.cols[probe_key][i]);
          if (qualifying.keys.count(key) == 0) continue;
          KeyStats& stats = acc.stats[key];
          stats.sum += EvalScalarDouble(avg_value.value(), block.cols, i);
          ++stats.count;
        }
      },
      [](Pass1Acc& into, Pass1Acc&& from) {
        for (auto& [key, stats] : from.stats) {
          KeyStats& s = into.stats[key];
          s.sum += stats.sum;
          s.count += stats.count;
        }
      },
      nullptr, options);

  // ---- probe pass 2: guarded aggregation ----
  struct Pass2Acc {
    double total = 0;
    uint64_t rows = 0;
  };
  Pass2Acc total{};
  engine::ScanStats stats;
  probe_driver.FoldBlockwise<Pass2Acc>(
      &total,
      [&](Pass2Acc& acc, const engine::ScanBlock& block) {
        acc.rows += block.rows;
        for (size_t i = 0; i < block.rows; ++i) {
          const int64_t key =
              storage::DecodeInt64(block.cols[probe_key][i]);
          auto it = per_key.stats.find(key);
          if (it == per_key.stats.end() || it->second.count == 0) continue;
          const double avg =
              it->second.sum / static_cast<double>(it->second.count);
          if (EvalScalarDouble(avg_value.value(), block.cols, i) <
              guard_scale * avg) {
            acc.total += EvalScalarDouble(agg_value.value(), block.cols, i);
          }
        }
      },
      [](Pass2Acc& into, Pass2Acc&& from) {
        into.total += from.total;
        into.rows += from.rows;
      },
      &stats, options);

  result->columns = {plan.spec.result_name};
  result->key_names.clear();
  result->rows.clear();
  QueryResult::Row row;
  row.values.push_back(total.total);
  result->rows.push_back(std::move(row));
  result->rows_scanned = total.rows;
  result->scan = stats;
  return Status::OK();
}

}  // namespace anker::query
