// Pre-instantiated fused grouped-aggregation kernels.
//
// A grouped query whose aggregates all match the AggForm menu executes
// through one of these: a single per-row pass with the aggregate update
// sequence unrolled at compile time (template parameter pack over the
// forms), exactly the shape a hand-written kernel takes — which is why
// the builder path benchmarks at parity with the retired hand-rolled
// TPC-H kernels (see bench_fig7_olap_latency --query_api). Column
// operands, predicate bounds and key masks stay runtime values, so one
// instantiation serves every query of the same *shape*.
//
// Three codegen details make the kernels match hand-written loops:
//  - everything the row loop reads (operand pointers, predicate bounds,
//    key masks) is copied into kernel locals first: the kernel is reached
//    through a function pointer, so without the copies the compiler would
//    have to assume slot writes alias the descriptor arrays and reload
//    them on every row;
//  - the predicate count is a template parameter (index 3 of a kernel set
//    is the runtime-count fallback): a constant bound lets the compiler
//    unroll the predicate loop and keep bounds in registers;
//  - operand *sharing* is a template parameter (OpndPattern): a query
//    like Q1 references l_extendedprice in three aggregates, and the
//    pattern maps all three onto one kernel-local pointer, so the live
//    pointer set stays small enough for register allocation.
//
// The registry lists the shipped shapes; a grouped query outside the menu
// falls back to the generic vectorized path in exec.cc.
#include <array>
#include <utility>

#include "query/plan.h"

namespace anker::query {

namespace {

inline double D(uint64_t raw) { return storage::DecodeDouble(raw); }

/// Compile-time layout of a form pack's operands in the flat operand
/// list: every aggregate knows the constant offset of its operands.
template <AggForm... Fs>
struct FlatLayout {
  static constexpr size_t kNumAggs = sizeof...(Fs);
  static constexpr std::array<size_t, kNumAggs> MakeBases() {
    std::array<size_t, kNumAggs> bases{};
    const AggForm forms[] = {Fs...};
    size_t offset = 0;
    for (size_t j = 0; j < kNumAggs; ++j) {
      bases[j] = offset;
      offset += FusedArity(forms[j]);
    }
    return bases;
  }
  static constexpr std::array<size_t, kNumAggs> kBases = MakeBases();
  static constexpr size_t kNumOpnds = (FusedArity(Fs) + ... + 0);
};

/// Maps flat operand positions onto deduplicated value slots, at compile
/// time. The identity pattern (0,1,2,...) means "no sharing"; a
/// registered sharing pattern collapses repeated columns onto one slot.
template <size_t... Vs>
struct OpndPattern {
  static constexpr size_t kSize = sizeof...(Vs);
  static constexpr size_t kArr[sizeof...(Vs) + 1] = {Vs..., 0};
  static constexpr size_t At(size_t i) { return i < kSize ? kArr[i] : 0; }
  static constexpr size_t NumVals() {
    size_t num = 0;
    for (size_t i = 0; i < kSize; ++i) {
      if (kArr[i] + 1 > num) num = kArr[i] + 1;
    }
    return num;
  }
  static std::vector<uint16_t> Vec() { return {Vs...}; }
};

template <typename Seq>
struct IdentityPatternFor;
template <size_t... Is>
struct IdentityPatternFor<std::index_sequence<Is...>> {
  using type = OpndPattern<Is...>;
};

/// Per-aggregate update, operand value slots resolved at compile time.
template <AggForm F, typename P, size_t Base>
inline void ApplyForm(double& slot, const uint64_t* const* v, size_t i) {
  [[maybe_unused]] constexpr size_t kA = P::At(Base);
  [[maybe_unused]] constexpr size_t kB = P::At(Base + 1);
  [[maybe_unused]] constexpr size_t kC = P::At(Base + 2);
  if constexpr (F == AggForm::kCount) {
    slot += 1.0;
  } else if constexpr (F == AggForm::kSum) {
    slot += D(v[kA][i]);
  } else if constexpr (F == AggForm::kSumMul) {
    slot += D(v[kA][i]) * D(v[kB][i]);
  } else if constexpr (F == AggForm::kSumOneMinusMul) {
    slot += D(v[kA][i]) * (1.0 - D(v[kB][i]));
  } else if constexpr (F == AggForm::kSumChargeMul) {
    slot += D(v[kA][i]) * (1.0 - D(v[kB][i])) * (1.0 + D(v[kC][i]));
  } else if constexpr (F == AggForm::kMin) {
    const double value = D(v[kA][i]);
    if (value < slot) slot = value;
  } else if constexpr (F == AggForm::kMax) {
    const double value = D(v[kA][i]);
    if (value > slot) slot = value;
  }
}

template <typename P, AggForm... Fs, size_t... Is>
inline void ApplyAll(double* slot, const uint64_t* const* vals, size_t i,
                     std::index_sequence<Is...>) {
  (ApplyForm<Fs, P, FlatLayout<Fs...>::kBases[Is]>(slot[Is], vals, i), ...);
}

/// Predicate with the column pointer resolved, held in kernel-local
/// storage so the optimizer can prove slot writes never alias it.
struct LocalPred {
  const uint64_t* col;
  bool is_double;
  int64_t ilo, ihi;
  double dlo, dhi;
};

/// The fused block kernel: per row, short-circuit the predicate list,
/// compute the packed group key, apply every aggregate unrolled.
template <size_t NKEYS, int NPREDS, typename P, AggForm... Fs>
void FusedKernel(double* slots, const uint64_t* const* cols,
                 const BoundPred* preds, size_t npreds, const FusedKey& key,
                 const uint64_t* const* vals, size_t n) {
  constexpr size_t kNumAggs = sizeof...(Fs);
  constexpr size_t kNumVals = P::NumVals();
  const uint64_t* local_vals[kNumVals > 0 ? kNumVals : 1];
  for (size_t j = 0; j < kNumVals; ++j) local_vals[j] = vals[j];
  // Build routes plans with more predicates to the generic grouped
  // path, so the bound is an invariant here, not a truncation point.
  ANKER_CHECK(npreds <= kMaxFusedSimplePreds);
  LocalPred local_preds[kMaxFusedSimplePreds];
  const size_t np = NPREDS >= 0 ? static_cast<size_t>(NPREDS) : npreds;
  for (size_t p = 0; p < np; ++p) {
    local_preds[p] = LocalPred{cols[preds[p].col], preds[p].is_double,
                               preds[p].ilo,      preds[p].ihi,
                               preds[p].dlo,      preds[p].dhi};
  }
  const FusedKey local_key = key;

  for (size_t i = 0; i < n; ++i) {
    bool pass = true;
    for (size_t p = 0; p < np; ++p) {
      const LocalPred& pd = local_preds[p];
      if (pd.is_double) {
        const double v = D(pd.col[i]);
        if (v < pd.dlo || v > pd.dhi) {
          pass = false;
          break;
        }
      } else {
        const int64_t v = static_cast<int64_t>(pd.col[i]);
        if (v < pd.ilo || v > pd.ihi) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) continue;
    uint32_t group = static_cast<uint32_t>(local_key.k0[i]) & local_key.mask0;
    if constexpr (NKEYS == 2) {
      group = (group << local_key.shift1) |
              (static_cast<uint32_t>(local_key.k1[i]) & local_key.mask1);
    }
    double* slot = slots + group * local_key.stride;
    ApplyAll<P, Fs...>(slot, local_vals, i,
                       std::make_index_sequence<kNumAggs>{});
  }
}

struct FusedEntry {
  std::vector<AggForm> forms;
  size_t nkeys;
  std::vector<uint16_t> pattern;  ///< Flat operand position -> value slot.
  bool identity;
  FusedKernelSet set;
};

template <size_t NKEYS, typename P, AggForm... Fs>
FusedKernelSet MakeSet() {
  FusedKernelSet set;
  set.by_npreds[0] = &FusedKernel<NKEYS, 0, P, Fs...>;
  set.by_npreds[1] = &FusedKernel<NKEYS, 1, P, Fs...>;
  set.by_npreds[2] = &FusedKernel<NKEYS, 2, P, Fs...>;
  set.by_npreds[3] = &FusedKernel<NKEYS, -1, P, Fs...>;
  return set;
}

/// Registers a shape with the identity (no-sharing) operand pattern.
template <AggForm... Fs>
void Register(std::vector<FusedEntry>* registry) {
  using P = typename IdentityPatternFor<
      std::make_index_sequence<FlatLayout<Fs...>::kNumOpnds>>::type;
  registry->push_back({{Fs...}, 1, P::Vec(), true, MakeSet<1, P, Fs...>()});
  registry->push_back({{Fs...}, 2, P::Vec(), true, MakeSet<2, P, Fs...>()});
}

/// Registers a shape with an explicit operand-sharing pattern.
template <typename P, AggForm... Fs>
void RegisterShared(std::vector<FusedEntry>* registry) {
  static_assert(P::kSize == FlatLayout<Fs...>::kNumOpnds,
                "pattern must cover every operand");
  registry->push_back({{Fs...}, 1, P::Vec(), false, MakeSet<1, P, Fs...>()});
  registry->push_back({{Fs...}, 2, P::Vec(), false, MakeSet<2, P, Fs...>()});
}

const std::vector<FusedEntry>& Registry() {
  static const std::vector<FusedEntry>* registry = [] {
    auto* entries = new std::vector<FusedEntry>();
    using F = AggForm;
    // Count-only and plain-sum shapes (Q4, simple rollups). The trailing
    // kCount comes for free: compilation appends a hidden count to every
    // grouped query that lacks one.
    Register<F::kCount>(entries);
    Register<F::kSum, F::kCount>(entries);
    Register<F::kSum, F::kSum, F::kCount>(entries);
    Register<F::kSum, F::kSum, F::kSum, F::kCount>(entries);
    Register<F::kSum, F::kSum, F::kSum, F::kSum, F::kCount>(entries);
    // Product / discount shapes.
    Register<F::kSumMul, F::kCount>(entries);
    Register<F::kSum, F::kSumMul, F::kCount>(entries);
    Register<F::kSum, F::kSumOneMinusMul, F::kCount>(entries);
    // Min/max roll-ups (sensor-style dashboards).
    Register<F::kMin, F::kMax, F::kCount>(entries);
    Register<F::kSum, F::kMin, F::kMax, F::kCount>(entries);
    Register<F::kSum, F::kSum, F::kMin, F::kMax, F::kCount>(entries);
    // TPC-H Q1: pricing summary. The sharing pattern collapses the eight
    // operand slots onto four distinct columns (qty, price, disc, tax):
    //   Sum(qty)=0 | Sum(price)=1 | Sum(price*(1-disc))=1,2 |
    //   Sum(price*(1-disc)*(1+tax))=1,2,3 | Sum(disc)=2 | Count
    RegisterShared<OpndPattern<0, 1, 1, 2, 1, 2, 3, 2>, F::kSum, F::kSum,
                   F::kSumOneMinusMul, F::kSumChargeMul, F::kSum, F::kCount>(
        entries);
    // Shared-column revenue shapes: Sum(a) with Sum(a*b) / Sum(a*(1-b)).
    RegisterShared<OpndPattern<0, 0, 1>, F::kSum, F::kSumMul, F::kCount>(
        entries);
    RegisterShared<OpndPattern<0, 0, 1>, F::kSum, F::kSumOneMinusMul,
                   F::kCount>(entries);
    return entries;
  }();
  return *registry;
}

}  // namespace

FusedLookup FindFusedKernel(const std::vector<AggForm>& forms, size_t nkeys,
                            const std::vector<uint16_t>& pattern) {
  FusedLookup lookup;
  for (const FusedEntry& entry : Registry()) {
    if (entry.nkeys != nkeys || entry.forms != forms) continue;
    if (entry.pattern == pattern) {
      // Exact sharing match: operands arrive deduplicated.
      lookup.set = &entry.set;
      lookup.deduplicated = true;
      return lookup;
    }
    if (entry.identity && lookup.set == nullptr) {
      // Always applicable: the flat operand list simply carries repeated
      // pointers for shared columns.
      lookup.set = &entry.set;
      lookup.deduplicated = false;
    }
  }
  return lookup;
}

}  // namespace anker::query
