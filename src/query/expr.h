#ifndef ANKER_QUERY_EXPR_H_
#define ANKER_QUERY_EXPR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"
#include "storage/value.h"

namespace anker::query {

/// Scalar type of an expression. Columns map from storage::ValueType;
/// comparisons and conjunctions produce kBool. kDict values are the dense
/// dictionary codes of string columns — equality-only, like the storage
/// layer's encoding.
enum class ExprType : uint8_t {
  kInt64,
  kDouble,
  kDate,
  kDict,
  kBool,
};

const char* ExprTypeName(ExprType type);

/// ExprType of a storage column type.
ExprType ExprTypeFor(storage::ValueType type);

enum class ExprKind : uint8_t {
  kColumn,   ///< Reference to a column of the query's table, by name.
  kLiteral,  ///< Typed constant (raw slot encoding, or a string).
  kParam,    ///< Named placeholder bound at execution time (see Params).
  kAdd,
  kSub,
  kMul,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

/// One immutable node of an expression tree. Nodes are shared (an Expr
/// value is a shared_ptr handle), so sub-expressions can be reused across
/// queries freely.
struct ExprNode {
  ExprKind kind;
  // kColumn / kParam: the name. kParam additionally carries its declared
  // type in `type`.
  std::string name;
  ExprType type = ExprType::kInt64;
  // kLiteral: raw slot encoding per `type`; string literals (dictionary
  // equality) keep the text and resolve to a code when the query is built
  // against a concrete table.
  uint64_t raw = 0;
  std::string text;
  bool is_string = false;
  std::shared_ptr<const ExprNode> lhs;
  std::shared_ptr<const ExprNode> rhs;
};

/// Value-semantic handle on an expression tree. Compose with the factory
/// functions and operators below, e.g.
///   Col("l_extendedprice") * (F64(1.0) - Col("l_discount"))
///   Col("l_shipdate") <= Param("cutoff", ExprType::kDate)
///   Col("p_brand") == Str("Brand#23")
class Expr {
 public:
  Expr() = default;
  explicit Expr(std::shared_ptr<const ExprNode> node)
      : node_(std::move(node)) {}

  bool valid() const { return node_ != nullptr; }
  const ExprNode* node() const { return node_.get(); }
  std::shared_ptr<const ExprNode> shared() const { return node_; }

 private:
  std::shared_ptr<const ExprNode> node_;
};

/// ---- leaf factories -----------------------------------------------------

/// Column of the query's table (resolved when the query is built).
Expr Col(std::string name);
/// Typed constants.
Expr I64(int64_t value);
Expr F64(double value);
/// Date constant, in days since the TPC-H epoch (storage::ValueType::kDate).
Expr DateDays(int64_t days);
/// String constant for dictionary-encoded equality; resolves to the dense
/// code of the compared column's dictionary at build time.
Expr Str(std::string text);
/// Dictionary code constant (when the caller already holds the code).
Expr DictCode(uint32_t code);
/// Named parameter with a declared type; the value is supplied per
/// execution through Params. Using the same name twice refers to the same
/// parameter (the declared types must agree).
Expr Param(std::string name, ExprType type);

/// ---- composition --------------------------------------------------------

Expr operator+(Expr lhs, Expr rhs);
Expr operator-(Expr lhs, Expr rhs);
Expr operator*(Expr lhs, Expr rhs);
Expr operator<(Expr lhs, Expr rhs);
Expr operator<=(Expr lhs, Expr rhs);
Expr operator>(Expr lhs, Expr rhs);
Expr operator>=(Expr lhs, Expr rhs);
Expr operator==(Expr lhs, Expr rhs);
Expr operator!=(Expr lhs, Expr rhs);
Expr operator&&(Expr lhs, Expr rhs);
Expr operator||(Expr lhs, Expr rhs);

/// Closed interval: lo <= value && value <= hi (desugared to the
/// conjunction, so it lowers to the same fused range predicates).
Expr Between(Expr value, Expr lo, Expr hi);

/// ---- type checking ------------------------------------------------------

/// Infers the type of `expr` against `table`'s schema, enforcing the
/// typing rules (arithmetic over numeric types with int->double
/// promotion, date +/- int64 day offsets, equality-only dictionary
/// comparisons, boolean conjunctions). Returns InvalidArgument on a type
/// error and NotFound for unknown columns.
Result<ExprType> TypeCheck(const Expr& expr, const storage::Table& table);

/// True when the expression references no columns (literals, params and
/// arithmetic over them) — such expressions are foldable to a constant at
/// bind time and may appear as predicate bounds.
bool IsConstExpr(const Expr& expr);

}  // namespace anker::query

#endif  // ANKER_QUERY_EXPR_H_
