// Execution of compiled queries over the engine's blockwise scan fold.
//
// All three strategies run inside ScanDriver::FoldBlockwise, so version
// handling (snapshot vs live, tight vs staged blocks, seqlock retries) is
// entirely the engine's business: a block always arrives as plain value
// spans, and the same arithmetic runs in every processing mode — which is
// what keeps query results bit-identical across modes.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>

#include "query/dag.h"
#include "query/query.h"

namespace anker::query {

namespace {

constexpr size_t kBlockCap = mvcc::kRowsPerBlock;

inline double D(uint64_t raw) { return storage::DecodeDouble(raw); }

/// Accumulator handed through FoldBlockwise. The slot array is left
/// uninitialized on construction (a per-block Acc is constructed for
/// every 1024-row block); PrepSlots copies the plan's initial slot image
/// and flips `inited` — merge treats uninitialized accumulators as empty.
struct ExecAcc {
  ExecAcc() {}  // NOLINT: slots stay uninitialized by design.
  bool inited = false;
  uint64_t rows = 0;
  double slots[kMaxTotalSlots];  ///< Build caps total_slots at this size.
};

/// Per-participant working memory of the vectorized strategies,
/// recycled through a pool because fold participants are created by the
/// engine, not by us (and help-while-waiting worker nesting makes
/// thread_local scratch unsafe).
struct Scratch {
  explicit Scratch(size_t num_temps) {
    sel_a.resize(kBlockCap);
    sel_b.resize(kBlockCap);
    keys.resize(kBlockCap);
    temps.resize(std::max<size_t>(1, num_temps) * kBlockCap);
  }
  std::vector<uint16_t> sel_a, sel_b;
  std::vector<uint32_t> keys;
  std::vector<double> temps;
  double* temp(size_t t) { return temps.data() + t * kBlockCap; }
};

class ScratchPool {
 public:
  explicit ScratchPool(size_t num_temps) : num_temps_(num_temps) {}

  std::unique_ptr<Scratch> Acquire() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<Scratch> scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<Scratch>(num_temps_);
  }

  void Release(std::unique_ptr<Scratch> scratch) {
    std::lock_guard<std::mutex> guard(mutex_);
    free_.push_back(std::move(scratch));
  }

 private:
  size_t num_temps_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Scratch>> free_;
};

/// Everything bound for one execution: predicates with params folded in,
/// const operands of the temp program, and the initial slot image
/// (zeroes; +-inf for min/max slots).
struct BoundQuery {
  const CompiledQuery* plan = nullptr;
  std::vector<BoundPred> preds;
  std::vector<BoundScalar> generic;
  std::vector<double> cvals;  ///< Per prog instruction.
  std::vector<double> init_slots;
  std::vector<uint8_t> slot_op;  ///< Per in-group slot: 0 +, 1 min, 2 max.
  bool has_minmax = false;
  std::unique_ptr<ScratchPool> pool;
};

Status Bind(const CompiledQuery& plan, const Params& params,
            BoundQuery* bound) {
  bound->plan = &plan;
  ANKER_RETURN_IF_ERROR(BindPreds(plan, params, &bound->preds));
  bound->generic.clear();
  for (const GenericPred& pred : plan.generic_preds) {
    auto scalar =
        BindScalarFor(pred.expr, plan.columns, plan.table, params);
    if (!scalar.ok()) return scalar.status();
    bound->generic.push_back(scalar.TakeValue());
  }
  bound->cvals.assign(plan.prog.size(), 0.0);
  for (size_t i = 0; i < plan.prog.size(); ++i) {
    if (plan.prog[i].cexpr == nullptr) continue;
    auto value = EvalConstExpr(plan.prog[i].cexpr.get(), params);
    if (!value.ok()) return value.status();
    const ConstValue& v = value.value();
    bound->cvals[i] = v.type == ExprType::kDouble
                          ? storage::DecodeDouble(v.raw)
                          : static_cast<double>(storage::DecodeInt64(v.raw));
  }

  bound->slot_op.assign(plan.num_slots, 0);
  for (const AggSpec& agg : plan.aggs) {
    if (agg.kind == AggKind::kMin) bound->slot_op[agg.slot] = 1;
    if (agg.kind == AggKind::kMax) bound->slot_op[agg.slot] = 2;
  }
  bound->init_slots.assign(plan.total_slots, 0.0);
  for (size_t s = 0; s < plan.total_slots; ++s) {
    const uint8_t op = bound->slot_op[s % plan.num_slots];
    if (op == 1) {
      bound->init_slots[s] = std::numeric_limits<double>::infinity();
      bound->has_minmax = true;
    } else if (op == 2) {
      bound->init_slots[s] = -std::numeric_limits<double>::infinity();
      bound->has_minmax = true;
    }
  }
  bound->pool = std::make_unique<ScratchPool>(plan.num_temps);
  return Status::OK();
}

inline void PrepSlots(const BoundQuery& bound, ExecAcc* acc) {
  if (acc->inited) return;
  std::memcpy(acc->slots, bound.init_slots.data(),
              bound.plan->total_slots * sizeof(double));
  acc->inited = true;
}

/// ---- selection passes ---------------------------------------------------

size_t FilterPass(const BoundPred& pred, const uint64_t* col,
                  const uint16_t* sel, size_t k, uint16_t* out) {
  size_t kept = 0;
  if (pred.is_double) {
    const double lo = pred.dlo;
    const double hi = pred.dhi;
    if (sel == nullptr) {
      for (size_t i = 0; i < k; ++i) {
        out[kept] = static_cast<uint16_t>(i);
        const double v = D(col[i]);
        kept += static_cast<size_t>(v >= lo && v <= hi);
      }
    } else {
      for (size_t i = 0; i < k; ++i) {
        out[kept] = sel[i];
        const double v = D(col[sel[i]]);
        kept += static_cast<size_t>(v >= lo && v <= hi);
      }
    }
  } else {
    const int64_t lo = pred.ilo;
    const int64_t hi = pred.ihi;
    if (sel == nullptr) {
      for (size_t i = 0; i < k; ++i) {
        out[kept] = static_cast<uint16_t>(i);
        const int64_t v = static_cast<int64_t>(col[i]);
        kept += static_cast<size_t>(v >= lo && v <= hi);
      }
    } else {
      for (size_t i = 0; i < k; ++i) {
        out[kept] = sel[i];
        const int64_t v = static_cast<int64_t>(col[sel[i]]);
        kept += static_cast<size_t>(v >= lo && v <= hi);
      }
    }
  }
  return kept;
}

size_t GenericPass(const BoundScalar& pred, const uint64_t* const* cols,
                   const uint16_t* sel, size_t k, uint16_t* out) {
  size_t kept = 0;
  for (size_t i = 0; i < k; ++i) {
    const uint16_t r = sel == nullptr ? static_cast<uint16_t>(i) : sel[i];
    out[kept] = r;
    kept += static_cast<size_t>(EvalScalarBool(pred, cols, r));
  }
  return kept;
}

/// Runs the filter chain; returns the surviving count and points *sel at
/// the surviving selection (nullptr = all rows).
size_t RunFilters(const BoundQuery& bound, const uint64_t* const* cols,
                  size_t n, Scratch* scratch, const uint16_t** sel) {
  *sel = nullptr;
  size_t k = n;
  uint16_t* bufs[2] = {scratch->sel_a.data(), scratch->sel_b.data()};
  int which = 0;
  for (const BoundPred& pred : bound.preds) {
    k = FilterPass(pred, cols[pred.col], *sel, k, bufs[which]);
    *sel = bufs[which];
    which ^= 1;
    if (k == 0) return 0;
  }
  for (const BoundScalar& pred : bound.generic) {
    k = GenericPass(pred, cols, *sel, k, bufs[which]);
    *sel = bufs[which];
    which ^= 1;
    if (k == 0) return 0;
  }
  return k;
}

/// ---- vectorized temp program --------------------------------------------

void RunProg(const BoundQuery& bound, const uint64_t* const* cols,
             const uint16_t* sel, size_t k, Scratch* scratch) {
  const CompiledQuery& plan = *bound.plan;
  for (size_t pc = 0; pc < plan.prog.size(); ++pc) {
    const VecInst& inst = plan.prog[pc];
    double* dst = scratch->temp(inst.dst);
    switch (inst.op) {
      case VecOp::kLoadF64: {
        const uint64_t* col = cols[inst.col];
        if (sel == nullptr) {
          for (size_t i = 0; i < k; ++i) dst[i] = D(col[i]);
        } else {
          for (size_t i = 0; i < k; ++i) dst[i] = D(col[sel[i]]);
        }
        break;
      }
      case VecOp::kLoadI64: {
        const uint64_t* col = cols[inst.col];
        if (sel == nullptr) {
          for (size_t i = 0; i < k; ++i) {
            dst[i] = static_cast<double>(static_cast<int64_t>(col[i]));
          }
        } else {
          for (size_t i = 0; i < k; ++i) {
            dst[i] = static_cast<double>(static_cast<int64_t>(col[sel[i]]));
          }
        }
        break;
      }
      case VecOp::kLoadDict: {
        const uint64_t* col = cols[inst.col];
        if (sel == nullptr) {
          for (size_t i = 0; i < k; ++i) {
            dst[i] = static_cast<double>(storage::DecodeDict(col[i]));
          }
        } else {
          for (size_t i = 0; i < k; ++i) {
            dst[i] = static_cast<double>(storage::DecodeDict(col[sel[i]]));
          }
        }
        break;
      }
      case VecOp::kConst: {
        const double c = bound.cvals[pc];
        for (size_t i = 0; i < k; ++i) dst[i] = c;
        break;
      }
      case VecOp::kAdd: {
        const double* a = scratch->temp(inst.a);
        const double* b = scratch->temp(inst.b);
        for (size_t i = 0; i < k; ++i) dst[i] = a[i] + b[i];
        break;
      }
      case VecOp::kSub: {
        const double* a = scratch->temp(inst.a);
        const double* b = scratch->temp(inst.b);
        for (size_t i = 0; i < k; ++i) dst[i] = a[i] - b[i];
        break;
      }
      case VecOp::kMul: {
        const double* a = scratch->temp(inst.a);
        const double* b = scratch->temp(inst.b);
        for (size_t i = 0; i < k; ++i) dst[i] = a[i] * b[i];
        break;
      }
      case VecOp::kAddC: {
        const double* a = scratch->temp(inst.a);
        const double c = bound.cvals[pc];
        for (size_t i = 0; i < k; ++i) dst[i] = a[i] + c;
        break;
      }
      case VecOp::kSubC: {
        const double* a = scratch->temp(inst.a);
        const double c = bound.cvals[pc];
        for (size_t i = 0; i < k; ++i) dst[i] = a[i] - c;
        break;
      }
      case VecOp::kRsubC: {
        const double* a = scratch->temp(inst.a);
        const double c = bound.cvals[pc];
        for (size_t i = 0; i < k; ++i) dst[i] = c - a[i];
        break;
      }
      case VecOp::kMulC: {
        const double* a = scratch->temp(inst.a);
        const double c = bound.cvals[pc];
        for (size_t i = 0; i < k; ++i) dst[i] = a[i] * c;
        break;
      }
    }
  }
}

/// ---- reductions (ungrouped / vectorized) --------------------------------

/// 4-way unrolled sum: breaks the serial add dependency chain, which
/// makes dense column sums ~3x faster than a per-row fold. The partial
/// order is fixed, so results stay deterministic for a given block
/// structure.
template <typename ValueFn>
inline double SumReduce(size_t k, ValueFn&& value) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    s0 += value(i);
    s1 += value(i + 1);
    s2 += value(i + 2);
    s3 += value(i + 3);
  }
  for (; i < k; ++i) s0 += value(i);
  return (s0 + s1) + (s2 + s3);
}

void ReduceAgg(const AggSpec& agg, const uint64_t* const* cols,
               const uint16_t* sel, size_t k, Scratch* scratch,
               double* slot) {
  auto row = [&](size_t i) -> size_t {
    return sel == nullptr ? i : sel[i];
  };
  switch (agg.form) {
    case AggForm::kCount:
      *slot += static_cast<double>(k);
      return;
    case AggForm::kSum: {
      const uint64_t* a = cols[agg.a];
      *slot += SumReduce(k, [&](size_t i) { return D(a[row(i)]); });
      return;
    }
    case AggForm::kSumMul: {
      const uint64_t* a = cols[agg.a];
      const uint64_t* b = cols[agg.b];
      *slot += SumReduce(k, [&](size_t i) {
        const size_t r = row(i);
        return D(a[r]) * D(b[r]);
      });
      return;
    }
    case AggForm::kSumOneMinusMul: {
      const uint64_t* a = cols[agg.a];
      const uint64_t* b = cols[agg.b];
      *slot += SumReduce(k, [&](size_t i) {
        const size_t r = row(i);
        return D(a[r]) * (1.0 - D(b[r]));
      });
      return;
    }
    case AggForm::kSumChargeMul: {
      const uint64_t* a = cols[agg.a];
      const uint64_t* b = cols[agg.b];
      const uint64_t* c = cols[agg.c];
      *slot += SumReduce(k, [&](size_t i) {
        const size_t r = row(i);
        return D(a[r]) * (1.0 - D(b[r])) * (1.0 + D(c[r]));
      });
      return;
    }
    case AggForm::kMin: {
      const uint64_t* a = cols[agg.a];
      double m = *slot;
      for (size_t i = 0; i < k; ++i) m = std::min(m, D(a[row(i)]));
      *slot = m;
      return;
    }
    case AggForm::kMax: {
      const uint64_t* a = cols[agg.a];
      double m = *slot;
      for (size_t i = 0; i < k; ++i) m = std::max(m, D(a[row(i)]));
      *slot = m;
      return;
    }
    case AggForm::kExpr: {
      const double* t = scratch->temp(agg.temp);
      switch (agg.kind) {
        case AggKind::kMin: {
          double m = *slot;
          for (size_t i = 0; i < k; ++i) m = std::min(m, t[i]);
          *slot = m;
          return;
        }
        case AggKind::kMax: {
          double m = *slot;
          for (size_t i = 0; i < k; ++i) m = std::max(m, t[i]);
          *slot = m;
          return;
        }
        default:
          *slot += SumReduce(k, [&](size_t i) { return t[i]; });
          return;
      }
    }
  }
}

/// ---- grouped strategies -------------------------------------------------

void ComputeKeys(const CompiledQuery& plan, const uint64_t* const* cols,
                 const uint16_t* sel, size_t k, Scratch* scratch) {
  uint32_t* keys = scratch->keys.data();
  const uint32_t stride = static_cast<uint32_t>(plan.num_slots);
  bool first = true;
  for (size_t kc = 0; kc < plan.key.cols.size(); ++kc) {
    const uint64_t* col = cols[plan.key.cols[kc]];
    const uint32_t bits = plan.key.bits[kc];
    const uint32_t mask = (uint32_t{1} << bits) - 1;
    if (first) {
      for (size_t i = 0; i < k; ++i) {
        const size_t r = sel == nullptr ? i : sel[i];
        keys[i] = static_cast<uint32_t>(col[r]) & mask;
      }
      first = false;
    } else {
      for (size_t i = 0; i < k; ++i) {
        const size_t r = sel == nullptr ? i : sel[i];
        keys[i] = (keys[i] << bits) |
                  (static_cast<uint32_t>(col[r]) & mask);
      }
    }
  }
  for (size_t i = 0; i < k; ++i) keys[i] *= stride;
}

void GroupedVecBlock(const BoundQuery& bound, ExecAcc& acc,
                     const engine::ScanBlock& block, Scratch* scratch) {
  const CompiledQuery& plan = *bound.plan;
  const uint16_t* sel = nullptr;
  const size_t k =
      RunFilters(bound, block.cols, block.rows, scratch, &sel);
  if (k == 0) return;
  if (!plan.prog.empty()) RunProg(bound, block.cols, sel, k, scratch);
  ComputeKeys(plan, block.cols, sel, k, scratch);
  const uint32_t* keys = scratch->keys.data();
  for (size_t i = 0; i < k; ++i) {
    const size_t r = sel == nullptr ? i : sel[i];
    double* slot = acc.slots + keys[i];
    for (const AggSpec& agg : plan.aggs) {
      double v = 0;
      switch (agg.form) {
        case AggForm::kCount:
          slot[agg.slot] += 1.0;
          continue;
        case AggForm::kSum:
          v = D(block.cols[agg.a][r]);
          break;
        case AggForm::kSumMul:
          v = D(block.cols[agg.a][r]) * D(block.cols[agg.b][r]);
          break;
        case AggForm::kSumOneMinusMul:
          v = D(block.cols[agg.a][r]) *
              (1.0 - D(block.cols[agg.b][r]));
          break;
        case AggForm::kSumChargeMul:
          v = D(block.cols[agg.a][r]) *
              (1.0 - D(block.cols[agg.b][r])) *
              (1.0 + D(block.cols[agg.c][r]));
          break;
        case AggForm::kMin:
          slot[agg.slot] = std::min(slot[agg.slot],
                                    D(block.cols[agg.a][r]));
          continue;
        case AggForm::kMax:
          slot[agg.slot] = std::max(slot[agg.slot],
                                    D(block.cols[agg.a][r]));
          continue;
        case AggForm::kExpr:
          v = scratch->temp(agg.temp)[i];
          if (agg.kind == AggKind::kMin) {
            slot[agg.slot] = std::min(slot[agg.slot], v);
            continue;
          }
          if (agg.kind == AggKind::kMax) {
            slot[agg.slot] = std::max(slot[agg.slot], v);
            continue;
          }
          break;
      }
      slot[agg.slot] += v;
    }
  }
}

void FusedBlock(const BoundQuery& bound, ExecAcc& acc,
                const engine::ScanBlock& block) {
  const CompiledQuery& plan = *bound.plan;
  FusedKey key;
  key.k0 = block.cols[plan.key.cols[0]];
  key.mask0 = (uint32_t{1} << plan.key.bits[0]) - 1;
  if (plan.key.cols.size() == 2) {
    key.k1 = block.cols[plan.key.cols[1]];
    key.mask1 = (uint32_t{1} << plan.key.bits[1]) - 1;
    key.shift1 = plan.key.bits[1];
  }
  key.stride = static_cast<uint32_t>(plan.num_slots);

  // Operand value slots in the layout the matched kernel expects
  // (deduplicated or flat; see fused.cc's OpndPattern).
  const uint64_t* vals[48];
  ANKER_CHECK(plan.fused_vals.size() <= 48);
  for (size_t v = 0; v < plan.fused_vals.size(); ++v) {
    vals[v] = block.cols[plan.fused_vals[v]];
  }
  plan.fused->Select(bound.preds.size())(acc.slots, block.cols,
                                         bound.preds.data(),
                                         bound.preds.size(), key, vals,
                                         block.rows);
}

void VectorizedBlock(const BoundQuery& bound, ExecAcc& acc,
                     const engine::ScanBlock& block, Scratch* scratch) {
  const CompiledQuery& plan = *bound.plan;
  const uint16_t* sel = nullptr;
  const size_t k =
      RunFilters(bound, block.cols, block.rows, scratch, &sel);
  if (k == 0) return;
  if (!plan.prog.empty()) RunProg(bound, block.cols, sel, k, scratch);
  for (const AggSpec& agg : plan.aggs) {
    ReduceAgg(agg, block.cols, sel, k, scratch, acc.slots + agg.slot);
  }
}

/// ---- result assembly ----------------------------------------------------

void Assemble(const BoundQuery& bound, const ExecAcc& total,
              const engine::ScanStats& stats, QueryResult* result) {
  const CompiledQuery& plan = *bound.plan;
  result->columns.clear();
  result->key_names = plan.key_names;
  // Fast-path group keys are always packed dictionary codes.
  result->key_types.assign(plan.key_names.size(), ExprType::kDict);
  result->rows.clear();
  result->rows_scanned = total.rows;
  result->scan = stats;
  for (const AggSpec& agg : plan.aggs) {
    if (!agg.hidden) result->columns.push_back(agg.name);
  }

  const double* slots = total.slots;
  std::vector<double> empty;
  if (!total.inited) {
    empty = bound.init_slots;
    slots = empty.data();
  }

  for (uint32_t g = 0; g < plan.key.num_groups; ++g) {
    const double* group = slots + g * plan.num_slots;
    if (plan.key.grouped()) {
      ANKER_CHECK(plan.count_slot >= 0);
      if (group[plan.count_slot] == 0) continue;
    }
    QueryResult::Row row;
    // Unpack the group key codes (most significant key column first, the
    // packing order of ComputeKeys / the fused kernels).
    uint32_t rest = g;
    row.keys.resize(plan.key.cols.size());
    for (size_t kc = plan.key.cols.size(); kc-- > 0;) {
      const uint32_t bits = plan.key.bits[kc];
      row.keys[kc] = rest & ((uint32_t{1} << bits) - 1);
      rest >>= bits;
    }
    for (const AggSpec& agg : plan.aggs) {
      if (agg.hidden) continue;
      double value = group[agg.slot];
      if (agg.kind == AggKind::kAvg) {
        const double count = group[plan.count_slot];
        value = count > 0 ? value / count : 0.0;
      }
      row.values.push_back(value);
    }
    result->rows.push_back(std::move(row));
  }
}

}  // namespace

Status Execute(const Query& query, const engine::OlapContext& ctx,
               const Params& params, QueryResult* result) {
  return Execute(query, ctx, params, ExecOptions(), result);
}

Status Execute(const Query& query, const engine::OlapContext& ctx,
               const Params& params, const ExecOptions& exec_options,
               QueryResult* result) {
  if (!query.valid()) return Status::InvalidArgument("invalid query");
  const CompiledQuery& plan = query.plan();

  // A binding the plan never references is a recoverable error, not a
  // silent no-op (typo'd parameter names must surface).
  for (const auto& entry : params.values()) {
    if (!std::binary_search(plan.param_names.begin(),
                            plan.param_names.end(), entry.first)) {
      return Status::InvalidArgument("parameter '" + entry.first +
                                     "' is not used by this query");
    }
  }

  if (plan.strategy == ExecStrategy::kDag ||
      (exec_options.force_dag && plan.dag != nullptr)) {
    return ExecuteDag(plan, ctx, params, exec_options, result);
  }

  BoundQuery bound;
  ANKER_RETURN_IF_ERROR(Bind(plan, params, &bound));

  std::vector<engine::ColumnReader> readers;
  readers.reserve(plan.columns.size());
  for (storage::Column* column : plan.columns) {
    auto reader = ctx.TryReader(column);
    if (!reader.ok()) return reader.status();
    readers.push_back(reader.value());
  }
  std::vector<const engine::ColumnReader*> reader_ptrs;
  reader_ptrs.reserve(readers.size());
  for (const engine::ColumnReader& reader : readers) {
    reader_ptrs.push_back(&reader);
  }
  engine::ScanDriver driver(std::move(reader_ptrs));

  auto merge = [&](ExecAcc& into, ExecAcc&& from) {
    if (!from.inited) return;
    if (!into.inited) {
      into.inited = true;
      into.rows = from.rows;
      std::memcpy(into.slots, from.slots,
                  plan.total_slots * sizeof(double));
      return;
    }
    into.rows += from.rows;
    if (!bound.has_minmax) {
      for (size_t s = 0; s < plan.total_slots; ++s) {
        into.slots[s] += from.slots[s];
      }
      return;
    }
    for (size_t s = 0; s < plan.total_slots; ++s) {
      switch (bound.slot_op[s % plan.num_slots]) {
        case 1:
          into.slots[s] = std::min(into.slots[s], from.slots[s]);
          break;
        case 2:
          into.slots[s] = std::max(into.slots[s], from.slots[s]);
          break;
        default:
          into.slots[s] += from.slots[s];
          break;
      }
    }
  };

  ExecAcc total{};
  engine::ScanStats stats;
  const engine::ScanOptions options = exec_options.scan_options != nullptr
                                          ? *exec_options.scan_options
                                          : ctx.scan_options();

  switch (plan.strategy) {
    case ExecStrategy::kFusedGrouped: {
      driver.FoldBlockwise<ExecAcc>(
          &total,
          [&](ExecAcc& acc, const engine::ScanBlock& block) {
            PrepSlots(bound, &acc);
            acc.rows += block.rows;
            FusedBlock(bound, acc, block);
          },
          merge, &stats, options);
      break;
    }
    case ExecStrategy::kGroupedVec: {
      driver.FoldBlockwise<ExecAcc>(
          &total,
          [&](ExecAcc& acc, const engine::ScanBlock& block) {
            PrepSlots(bound, &acc);
            acc.rows += block.rows;
            std::unique_ptr<Scratch> scratch = bound.pool->Acquire();
            GroupedVecBlock(bound, acc, block, scratch.get());
            bound.pool->Release(std::move(scratch));
          },
          merge, &stats, options);
      break;
    }
    case ExecStrategy::kVectorized: {
      driver.FoldBlockwise<ExecAcc>(
          &total,
          [&](ExecAcc& acc, const engine::ScanBlock& block) {
            PrepSlots(bound, &acc);
            acc.rows += block.rows;
            std::unique_ptr<Scratch> scratch = bound.pool->Acquire();
            VectorizedBlock(bound, acc, block, scratch.get());
            bound.pool->Release(std::move(scratch));
          },
          merge, &stats, options);
      break;
    }
    case ExecStrategy::kDag:
      return Status::Internal("kDag strategy reached the fast-path switch");
  }

  Assemble(bound, total, stats, result);
  return Status::OK();
}

}  // namespace anker::query
